//! `sgml_processor` — the command-line face of the SG-ML Processor: loads a
//! bundle directory of SG-ML model files, compiles it into an operational
//! cyber range, reports the generated inventory, and optionally runs it.
//!
//! ```text
//! sgml_processor <bundle-dir> [--run <seconds>] [--dot] [--validate-only] [--format text|json]
//! sgml_processor lint <bundle-dir> [--format text|json]
//! ```
//!
//! `lint` (and `--validate-only`, which is its alias on the main form) runs
//! the `sgcr-lint` static analyzer over the bundle *without* constructing a
//! cyber range: files are parsed leniently, cross-file references, network
//! addressing, power topology, protection sanity, and bundle hygiene are
//! checked, and findings are printed as coded, span-carrying diagnostics.
//! The exit code is nonzero when any finding is an error.

use sgcr_core::{CyberRange, SgmlBundle};
use sgcr_lint::source::LoadedBundle;
use sgcr_lint::{json, lint_bundle, report};
use sgcr_net::SimDuration;
use std::process::ExitCode;

const USAGE: &str = "usage: sgml_processor <bundle-dir> [--run <seconds>] [--dot] \
                     [--validate-only] [--format text|json]\n       \
                     sgml_processor lint <bundle-dir> [--format text|json]";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let lint_mode = args.first().map(String::as_str) == Some("lint");
    if lint_mode {
        args.remove(0);
    }
    let Some(dir) = args.first().cloned() else {
        return usage();
    };

    let mut run_seconds: Option<u64> = None;
    let mut dot = false;
    let mut validate_only = lint_mode;
    let mut format = Format::Text;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--run" if !lint_mode => {
                i += 1;
                let Some(value) = args.get(i).and_then(|s| s.parse().ok()) else {
                    return usage();
                };
                run_seconds = Some(value);
            }
            "--dot" if !lint_mode => dot = true,
            "--validate-only" if !lint_mode => validate_only = true,
            "--format" => {
                i += 1;
                format = match args.get(i).map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    _ => return usage(),
                };
            }
            _ => return usage(),
        }
        i += 1;
    }

    if validate_only {
        return lint(&dir, format);
    }
    generate(&dir, run_seconds, dot)
}

/// Statically analyzes the bundle; never constructs a `CyberRange`.
fn lint(dir: &str, format: Format) -> ExitCode {
    let bundle = match LoadedBundle::from_dir(dir) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let lint_report = lint_bundle(&bundle);
    match format {
        Format::Text => print!("{}", report::render_text(&lint_report, &bundle)),
        Format::Json => print!("{}", json::to_json(&lint_report)),
    }
    if lint_report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Generates (and optionally runs) the cyber range.
fn generate(dir: &str, run_seconds: Option<u64>, dot: bool) -> ExitCode {
    let bundle = match SgmlBundle::from_dir(dir) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {}: {} SSD, {} SCD, {} ICD, {} SED, supplementary: ied={} scada={} plc={} power={}",
        dir,
        bundle.ssds.len(),
        bundle.scds.len(),
        bundle.icds.len(),
        bundle.seds.len(),
        bundle.ied_config.is_some(),
        bundle.scada_config.is_some(),
        bundle.plc_config.is_some(),
        bundle.power_extra.is_some(),
    );

    let mut range = match CyberRange::generate(&bundle) {
        Ok(range) => range,
        Err(e) => {
            eprintln!("error: model set does not compile:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &range.diagnostics {
        eprintln!("  {d}");
    }
    println!("{}", range.summary());
    if dot {
        println!("{}", range.plan.to_dot());
    }
    if let Some(seconds) = run_seconds {
        eprintln!("running {seconds} s of co-simulated time…");
        let wall = std::time::Instant::now();
        range.run_for(SimDuration::from_secs(seconds));
        eprintln!(
            "done: {} power-flow steps ({} solve errors) in {:.2} s wall clock",
            range.step_stats.len(),
            range.solve_errors.len(),
            wall.elapsed().as_secs_f64()
        );
        if let Some(scada) = &range.scada {
            println!("SCADA tags:");
            for tag in scada.tag_names() {
                println!("  {:20} = {:?}", tag, scada.tag_value(&tag));
            }
            for (point, message) in scada.active_alarms() {
                println!("  ALARM {point}: {message}");
            }
        }
        for (name, handle) in &range.ieds {
            let trips = handle.trip_count();
            if trips > 0 {
                println!("  IED {name}: {trips} protection trip(s)");
            }
        }
    }
    ExitCode::SUCCESS
}
