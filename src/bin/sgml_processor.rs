//! `sgml_processor` — the command-line face of the SG-ML Processor: loads a
//! bundle directory of SG-ML model files, compiles it into an operational
//! cyber range, reports the generated inventory, and optionally runs it.
//!
//! ```text
//! sgml_processor build <bundle-dir> [--dot]
//! sgml_processor run   <bundle-dir> [--seconds <n>] [--dot] [--no-check]
//!                      [--metrics <file>] [--journal <file>]
//!                      [--trace <file>] [--spans <file>] [--fault-seed <n>]
//! sgml_processor lint  <bundle-dir> [--format text|json|sarif]
//!                      [--cache <dir>] [--deny-warnings]
//! sgml_processor exercise <bundle-dir> [--scenario <file>] [--report <file>]
//!                      [--journal <file>] [--trace <file>] [--fault-seed <n>]
//!                      [--no-check]
//! sgml_processor serve <bundle-dir> [--tenants <n>] [--threads <n>]
//!                      [--seconds <n>] [--scenario <file>] [--out <dir>]
//!                      [--report <file>] [--step-budget-ms <n>]
//!                      [--max-overruns <n>] [--max-restarts <n>]
//!                      [--restart-backoff-ms <n>] [--admit-max <n>]
//!                      [--fault-seed <n>] [--status-addr <host:port>]
//!                      [--no-check]
//! sgml_processor watch <host:port> [--interval-ms <n>] [--iterations <n>]
//! ```
//!
//! `build` compiles the bundle and prints the generated inventory without
//! advancing simulated time. `run` additionally co-simulates `--seconds` of
//! range time (default 10); with `--metrics` it enables the telemetry
//! subsystem and writes a JSON metrics snapshot to the given file, and with
//! `--journal` it writes the typed event journal as JSON Lines. `--trace`
//! enables causal tracing and writes a Chrome trace-event JSON file (loadable
//! in Perfetto, one track per plane); `--spans` writes the raw span log as
//! JSON Lines.
//!
//! `lint` runs the `sgcr-lint` static analyzer over the bundle *without*
//! constructing a cyber range: files are parsed leniently, cross-file
//! references, network addressing, power topology, protection sanity,
//! PLC control-logic semantics, and bundle hygiene are checked, and
//! findings are printed as coded, span-carrying diagnostics. Exit codes:
//! `0` when clean or warnings-only, `1` for warnings under
//! `--deny-warnings`, `2` when any finding is an error. `--format sarif`
//! emits SARIF 2.1.0 for CI ingestion. `--cache <dir>` routes the analysis
//! through the incremental query engine: per-file results are memoized on
//! disk behind content fingerprints, reuse statistics go to stderr, and
//! stdout stays byte-identical to the uncached run.
//!
//! `run` and `exercise` front-gate the bundle through the same analyzer:
//! lint *errors* abort before the range starts (exit 2), warnings are
//! reported on stderr but do not block. `--no-check` skips the gate.
//!
//! `exercise` compiles the bundle and runs a declarative exercise scenario
//! (`*.scenario.xml`) against it via `sgcr-scenario`: stages fire on
//! schedule, objectives are polled each step, and the scored after-action
//! report is printed as text (and written as deterministic JSON with
//! `--report`). `--scenario` may be omitted when the bundle ships exactly
//! one scenario file. A failed objective is a scored *result*, not an
//! error — the exit code is nonzero only when the exercise cannot run.
//!
//! `--fault-seed` (on `run` and `exercise`) seeds the deterministic
//! fault-injection PRNG (`sgcr-faults`): identical seeds replay identical
//! loss/jitter/corruption patterns. On `exercise` the flag overrides any
//! `faultSeed=` attribute in the scenario XML.
//!
//! `serve` is the multi-tenant **range farm**: the bundle is compiled
//! *once* into an immutable shared model, then `--tenants` independent
//! ranges (or scored exercises, with `--scenario`) run concurrently across
//! a worker thread pool. Tenant `i` uses fault seed `--fault-seed + i`, so
//! every tenant is individually byte-replayable. With `--out <dir>` each
//! tenant streams its own `tenant-NNNN.journal.jsonl` and
//! `tenant-NNNN.metrics.json`; `--step-budget-ms` enforces a per-tenant
//! wall-clock step budget (`--max-overruns` halts repeat offenders), and
//! `--report` writes the farm throughput/latency report (ranges/sec, p50,
//! p99, max step latency) as JSON — the schema `BENCH_farm.json` tracks.
//! `--status-addr <host:port>` additionally serves the farm's live state
//! over HTTP while it runs: `/metrics` is the bucket-merged farm metric
//! registry in Prometheus text exposition format, `/status` is
//! deterministic per-tenant JSON, `/healthz` is a liveness probe — and the
//! same endpoint is the dynamic lifecycle API (`POST /tenants` admits a
//! tenant mid-run, `DELETE /tenants/<id>` drains one gracefully).
//! `--max-restarts` turns on the farm supervisor: halted or crashed
//! tenants restart from their last mid-run checkpoint with exponential
//! backoff (base `--restart-backoff-ms`, default 100) until the restart
//! budget is exhausted; `--admit-max` caps how many extra tenants the
//! lifecycle API may admit beyond the initial fleet.
//!
//! `watch` is the companion dashboard: it polls a running farm's
//! `--status-addr` endpoint every `--interval-ms` (default 1000) and
//! redraws a per-tenant state table until the farm finishes (or
//! `--iterations` polls have been made). Transient scrape failures are
//! retried with capped exponential backoff instead of killing the
//! dashboard; only repeated consecutive failures end it.
//!
//! The pre-subcommand invocation forms (`sgml_processor <bundle-dir>
//! [--run <seconds>] [--validate-only] …`) keep working as deprecated
//! aliases and print a one-line migration hint on stderr.

use sgcr_adversary::AttackGraph;
use sgcr_core::{CompiledModel, RangeBuilder, SgmlBundle};
use sgcr_farm::{run_farm, FarmConfig};
use sgcr_lint::source::LoadedBundle;
use sgcr_lint::{engine, json, lint_bundle, report, sarif};
use sgcr_net::SimDuration;
use sgcr_obs::Telemetry;
use sgcr_scenario::{run_exercise, Scenario};
use std::process::ExitCode;

const USAGE: &str = "usage: sgml_processor build <bundle-dir> [--dot]\n       \
                     sgml_processor run <bundle-dir> [--seconds <n>] [--dot] \
                     [--no-check] [--metrics <file>] [--journal <file>] \
                     [--trace <file>] [--spans <file>] [--fault-seed <n>]\n       \
                     sgml_processor lint <bundle-dir> [--format text|json|sarif] \
                     [--cache <dir>] [--deny-warnings]\n       \
                     sgml_processor exercise <bundle-dir> [--scenario <file>] \
                     [--report <file>] [--journal <file>] [--trace <file>] \
                     [--fault-seed <n>] [--no-check]\n       \
                     sgml_processor attack-graph <bundle-dir> \
                     [--format json|dot]\n       \
                     sgml_processor serve <bundle-dir> [--tenants <n>] \
                     [--threads <n>] [--seconds <n>] [--scenario <file>] \
                     [--out <dir>] [--report <file>] [--step-budget-ms <n>] \
                     [--max-overruns <n>] [--max-restarts <n>] \
                     [--restart-backoff-ms <n>] [--admit-max <n>] \
                     [--fault-seed <n>] [--status-addr <host:port>] \
                     [--no-check]\n       \
                     sgml_processor watch <host:port> [--interval-ms <n>] \
                     [--iterations <n>]";

/// Default co-simulated duration for `run` when `--seconds` is omitted.
const DEFAULT_RUN_SECONDS: u64 = 10;

/// Default tenant count for `serve` when `--tenants` is omitted.
const DEFAULT_SERVE_TENANTS: usize = 8;

/// Default co-simulated seconds per tenant for `serve`.
const DEFAULT_SERVE_SECONDS: u64 = 10;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

/// Output format for `attack-graph` (no SARIF — it is a graph, not a
/// diagnostic list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GraphFormat {
    Json,
    Dot,
}

/// A fully parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Cmd {
    Build {
        dir: String,
        dot: bool,
    },
    Run {
        dir: String,
        seconds: u64,
        dot: bool,
        no_check: bool,
        metrics: Option<String>,
        journal: Option<String>,
        trace: Option<String>,
        spans: Option<String>,
        fault_seed: Option<u64>,
    },
    Lint {
        dir: String,
        format: Format,
        cache: Option<String>,
        deny_warnings: bool,
    },
    Exercise {
        dir: String,
        scenario: Option<String>,
        report: Option<String>,
        journal: Option<String>,
        trace: Option<String>,
        fault_seed: Option<u64>,
        no_check: bool,
    },
    Serve {
        dir: String,
        tenants: usize,
        threads: usize,
        seconds: u64,
        scenario: Option<String>,
        out: Option<String>,
        report: Option<String>,
        step_budget_ms: Option<u64>,
        max_overruns: u64,
        max_restarts: u64,
        restart_backoff_ms: u64,
        admit_max: usize,
        fault_seed: u64,
        status_addr: Option<String>,
        no_check: bool,
    },
    Watch {
        addr: String,
        interval_ms: u64,
        iterations: Option<u64>,
    },
    AttackGraph {
        dir: String,
        format: GraphFormat,
    },
}

/// Parse result: the command plus an optional deprecation notice to print
/// on stderr (set when a legacy pre-subcommand form was used).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Parsed {
    cmd: Cmd,
    deprecation: Option<String>,
}

/// Parses command-line arguments (without the program name). Pure so the
/// whole surface — subcommands, flags, and legacy aliases — is unit-testable.
fn parse_args(args: &[String]) -> Result<Parsed, String> {
    let Some(first) = args.first().map(String::as_str) else {
        return Err(String::from("missing <bundle-dir> or subcommand"));
    };
    match first {
        "build" => parse_build(&args[1..]),
        "run" => parse_run(&args[1..]),
        "lint" => parse_lint(&args[1..]),
        "exercise" => parse_exercise(&args[1..]),
        "serve" => parse_serve(&args[1..]),
        "watch" => parse_watch(&args[1..]),
        "attack-graph" => parse_attack_graph(&args[1..]),
        "-h" | "--help" | "help" => Err(String::new()),
        _ => parse_legacy(args),
    }
}

fn take_dir(args: &[String]) -> Result<(String, &[String]), String> {
    match args.first() {
        Some(dir) if !dir.starts_with('-') => Ok((dir.clone(), &args[1..])),
        Some(flag) => Err(format!("expected <bundle-dir>, found `{flag}`")),
        None => Err(String::from("missing <bundle-dir>")),
    }
}

/// Returns the value of a `--flag <value>` pair at `args[i]`, advancing `i`.
fn flag_value<'a>(args: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("`{flag}` requires a value"))
}

fn parse_build(args: &[String]) -> Result<Parsed, String> {
    let (dir, rest) = take_dir(args)?;
    let mut dot = false;
    for arg in rest {
        match arg.as_str() {
            "--dot" => dot = true,
            other => return Err(format!("unknown argument `{other}` for `build`")),
        }
    }
    Ok(Parsed {
        cmd: Cmd::Build { dir, dot },
        deprecation: None,
    })
}

/// Parses the value of `--fault-seed` as an unsigned 64-bit integer.
fn parse_fault_seed(value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("`--fault-seed` expects an unsigned integer, found `{value}`"))
}

fn parse_run(args: &[String]) -> Result<Parsed, String> {
    let (dir, rest) = take_dir(args)?;
    let mut seconds = DEFAULT_RUN_SECONDS;
    let mut dot = false;
    let mut no_check = false;
    let mut metrics = None;
    let mut journal = None;
    let mut trace = None;
    let mut spans = None;
    let mut fault_seed = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--seconds" => {
                let value = flag_value(rest, &mut i, "--seconds")?;
                seconds = value
                    .parse()
                    .map_err(|_| format!("`--seconds` expects an integer, found `{value}`"))?;
            }
            "--dot" => dot = true,
            "--no-check" => no_check = true,
            "--metrics" => metrics = Some(flag_value(rest, &mut i, "--metrics")?.to_string()),
            "--journal" => journal = Some(flag_value(rest, &mut i, "--journal")?.to_string()),
            "--trace" => trace = Some(flag_value(rest, &mut i, "--trace")?.to_string()),
            "--spans" => spans = Some(flag_value(rest, &mut i, "--spans")?.to_string()),
            "--fault-seed" => {
                fault_seed = Some(parse_fault_seed(flag_value(rest, &mut i, "--fault-seed")?)?);
            }
            other => return Err(format!("unknown argument `{other}` for `run`")),
        }
        i += 1;
    }
    Ok(Parsed {
        cmd: Cmd::Run {
            dir,
            seconds,
            dot,
            no_check,
            metrics,
            journal,
            trace,
            spans,
            fault_seed,
        },
        deprecation: None,
    })
}

fn parse_format(value: &str) -> Result<Format, String> {
    match value {
        "text" => Ok(Format::Text),
        "json" => Ok(Format::Json),
        "sarif" => Ok(Format::Sarif),
        other => Err(format!(
            "`--format` expects text|json|sarif, found `{other}`"
        )),
    }
}

fn parse_lint(args: &[String]) -> Result<Parsed, String> {
    let (dir, rest) = take_dir(args)?;
    let mut format = Format::Text;
    let mut cache = None;
    let mut deny_warnings = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--format" => format = parse_format(flag_value(rest, &mut i, "--format")?)?,
            "--cache" => cache = Some(flag_value(rest, &mut i, "--cache")?.to_string()),
            "--deny-warnings" => deny_warnings = true,
            other => return Err(format!("unknown argument `{other}` for `lint`")),
        }
        i += 1;
    }
    Ok(Parsed {
        cmd: Cmd::Lint {
            dir,
            format,
            cache,
            deny_warnings,
        },
        deprecation: None,
    })
}

fn parse_exercise(args: &[String]) -> Result<Parsed, String> {
    let (dir, rest) = take_dir(args)?;
    let mut scenario = None;
    let mut report = None;
    let mut journal = None;
    let mut trace = None;
    let mut fault_seed = None;
    let mut no_check = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--scenario" => scenario = Some(flag_value(rest, &mut i, "--scenario")?.to_string()),
            "--report" => report = Some(flag_value(rest, &mut i, "--report")?.to_string()),
            "--journal" => journal = Some(flag_value(rest, &mut i, "--journal")?.to_string()),
            "--trace" => trace = Some(flag_value(rest, &mut i, "--trace")?.to_string()),
            "--fault-seed" => {
                fault_seed = Some(parse_fault_seed(flag_value(rest, &mut i, "--fault-seed")?)?);
            }
            "--no-check" => no_check = true,
            other => return Err(format!("unknown argument `{other}` for `exercise`")),
        }
        i += 1;
    }
    Ok(Parsed {
        cmd: Cmd::Exercise {
            dir,
            scenario,
            report,
            journal,
            trace,
            fault_seed,
            no_check,
        },
        deprecation: None,
    })
}

/// Parses a `--flag <n>` unsigned integer value.
fn parse_uint(flag: &str, value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("`{flag}` expects an unsigned integer, found `{value}`"))
}

fn parse_serve(args: &[String]) -> Result<Parsed, String> {
    let (dir, rest) = take_dir(args)?;
    let mut tenants = DEFAULT_SERVE_TENANTS;
    let mut threads = 0;
    let mut seconds = DEFAULT_SERVE_SECONDS;
    let mut scenario = None;
    let mut out = None;
    let mut report = None;
    let mut step_budget_ms = None;
    let mut max_overruns = 0;
    let mut max_restarts = 0;
    let mut restart_backoff_ms = 0;
    let mut admit_max = 0;
    let mut fault_seed = 0;
    let mut status_addr = None;
    let mut no_check = false;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--tenants" => {
                tenants = parse_uint("--tenants", flag_value(rest, &mut i, "--tenants")?)? as usize;
            }
            "--threads" => {
                threads = parse_uint("--threads", flag_value(rest, &mut i, "--threads")?)? as usize;
            }
            "--seconds" => {
                seconds = parse_uint("--seconds", flag_value(rest, &mut i, "--seconds")?)?;
            }
            "--scenario" => scenario = Some(flag_value(rest, &mut i, "--scenario")?.to_string()),
            "--out" => out = Some(flag_value(rest, &mut i, "--out")?.to_string()),
            "--report" => report = Some(flag_value(rest, &mut i, "--report")?.to_string()),
            "--step-budget-ms" => {
                step_budget_ms = Some(parse_uint(
                    "--step-budget-ms",
                    flag_value(rest, &mut i, "--step-budget-ms")?,
                )?);
            }
            "--max-overruns" => {
                max_overruns = parse_uint(
                    "--max-overruns",
                    flag_value(rest, &mut i, "--max-overruns")?,
                )?;
            }
            "--max-restarts" => {
                max_restarts = parse_uint(
                    "--max-restarts",
                    flag_value(rest, &mut i, "--max-restarts")?,
                )?;
            }
            "--restart-backoff-ms" => {
                restart_backoff_ms = parse_uint(
                    "--restart-backoff-ms",
                    flag_value(rest, &mut i, "--restart-backoff-ms")?,
                )?;
            }
            "--admit-max" => {
                admit_max =
                    parse_uint("--admit-max", flag_value(rest, &mut i, "--admit-max")?)? as usize;
            }
            "--fault-seed" => {
                fault_seed = parse_fault_seed(flag_value(rest, &mut i, "--fault-seed")?)?;
            }
            "--status-addr" => {
                status_addr = Some(flag_value(rest, &mut i, "--status-addr")?.to_string());
            }
            "--no-check" => no_check = true,
            other => return Err(format!("unknown argument `{other}` for `serve`")),
        }
        i += 1;
    }
    if tenants == 0 {
        return Err(String::from("`--tenants` must be at least 1"));
    }
    Ok(Parsed {
        cmd: Cmd::Serve {
            dir,
            tenants,
            threads,
            seconds,
            scenario,
            out,
            report,
            step_budget_ms,
            max_overruns,
            max_restarts,
            restart_backoff_ms,
            admit_max,
            fault_seed,
            status_addr,
            no_check,
        },
        deprecation: None,
    })
}

fn parse_watch(args: &[String]) -> Result<Parsed, String> {
    let (addr, rest) = take_dir(args).map_err(|e| e.replace("<bundle-dir>", "<host:port>"))?;
    let mut interval_ms = 1000;
    let mut iterations = None;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--interval-ms" => {
                interval_ms =
                    parse_uint("--interval-ms", flag_value(rest, &mut i, "--interval-ms")?)?;
            }
            "--iterations" => {
                iterations = Some(parse_uint(
                    "--iterations",
                    flag_value(rest, &mut i, "--iterations")?,
                )?);
            }
            other => return Err(format!("unknown argument `{other}` for `watch`")),
        }
        i += 1;
    }
    Ok(Parsed {
        cmd: Cmd::Watch {
            addr,
            interval_ms,
            iterations,
        },
        deprecation: None,
    })
}

fn parse_attack_graph(args: &[String]) -> Result<Parsed, String> {
    let (dir, rest) = take_dir(args)?;
    let mut format = GraphFormat::Json;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--format" => {
                format = match flag_value(rest, &mut i, "--format")? {
                    "json" => GraphFormat::Json,
                    "dot" => GraphFormat::Dot,
                    other => {
                        return Err(format!("`--format` expects json|dot, found `{other}`"));
                    }
                };
            }
            other => return Err(format!("unknown argument `{other}` for `attack-graph`")),
        }
        i += 1;
    }
    Ok(Parsed {
        cmd: Cmd::AttackGraph { dir, format },
        deprecation: None,
    })
}

/// The pre-subcommand form: `<bundle-dir> [--run <seconds>] [--dot]
/// [--validate-only] [--format text|json]`. Mapped onto the subcommands
/// with a one-line deprecation notice.
fn parse_legacy(args: &[String]) -> Result<Parsed, String> {
    let (dir, rest) = take_dir(args)?;
    let mut run_seconds: Option<u64> = None;
    let mut dot = false;
    let mut validate_only = false;
    let mut format = Format::Text;
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--run" => {
                let value = flag_value(rest, &mut i, "--run")?;
                run_seconds = Some(
                    value
                        .parse()
                        .map_err(|_| format!("`--run` expects an integer, found `{value}`"))?,
                );
            }
            "--dot" => dot = true,
            "--validate-only" => validate_only = true,
            "--format" => format = parse_format(flag_value(rest, &mut i, "--format")?)?,
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    let (cmd, replacement) = if validate_only {
        (
            Cmd::Lint {
                dir: dir.clone(),
                format,
                cache: None,
                deny_warnings: false,
            },
            format!("lint {dir}"),
        )
    } else if let Some(seconds) = run_seconds {
        (
            Cmd::Run {
                dir: dir.clone(),
                seconds,
                dot,
                no_check: false,
                metrics: None,
                journal: None,
                trace: None,
                spans: None,
                fault_seed: None,
            },
            format!("run {dir} --seconds {seconds}"),
        )
    } else {
        (
            Cmd::Build {
                dir: dir.clone(),
                dot,
            },
            format!("build {dir}"),
        )
    };
    Ok(Parsed {
        cmd,
        deprecation: Some(format!(
            "warning: bare `sgml_processor <bundle-dir>` forms are deprecated; \
             use `sgml_processor {replacement}`"
        )),
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("error: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(notice) = &parsed.deprecation {
        eprintln!("{notice}");
    }
    match parsed.cmd {
        Cmd::Build { dir, dot } => generate(&dir, None, dot, &Sinks::default(), None),
        Cmd::Run {
            dir,
            seconds,
            dot,
            no_check,
            metrics,
            journal,
            trace,
            spans,
            fault_seed,
        } => {
            if let Some(code) = front_gate(&dir, no_check) {
                return code;
            }
            generate(
                &dir,
                Some(seconds),
                dot,
                &Sinks {
                    metrics,
                    journal,
                    trace,
                    spans,
                },
                fault_seed,
            )
        }
        Cmd::Lint {
            dir,
            format,
            cache,
            deny_warnings,
        } => lint(&dir, format, cache.as_deref(), deny_warnings),
        Cmd::Exercise {
            dir,
            scenario,
            report,
            journal,
            trace,
            fault_seed,
            no_check,
        } => {
            if let Some(code) = front_gate(&dir, no_check) {
                return code;
            }
            exercise(
                &dir,
                scenario.as_deref(),
                report.as_deref(),
                &Sinks {
                    journal,
                    trace,
                    ..Sinks::default()
                },
                fault_seed,
            )
        }
        Cmd::Serve {
            dir,
            tenants,
            threads,
            seconds,
            scenario,
            out,
            report,
            step_budget_ms,
            max_overruns,
            max_restarts,
            restart_backoff_ms,
            admit_max,
            fault_seed,
            status_addr,
            no_check,
        } => {
            if let Some(code) = front_gate(&dir, no_check) {
                return code;
            }
            serve(
                &dir,
                ServeOptions {
                    tenants,
                    threads,
                    seconds,
                    scenario,
                    out,
                    report,
                    step_budget_ms,
                    max_overruns,
                    max_restarts,
                    restart_backoff_ms,
                    admit_max,
                    fault_seed,
                    status_addr,
                },
            )
        }
        Cmd::Watch {
            addr,
            interval_ms,
            iterations,
        } => watch(&addr, interval_ms, iterations),
        Cmd::AttackGraph { dir, format } => attack_graph(&dir, format),
    }
}

/// Output files requested for a `run`: each enables the corresponding part of
/// the observability subsystem only when set.
#[derive(Debug, Default)]
struct Sinks {
    metrics: Option<String>,
    journal: Option<String>,
    trace: Option<String>,
    spans: Option<String>,
}

impl Sinks {
    /// True when any telemetry sink (metrics or journal) was requested.
    fn wants_telemetry(&self) -> bool {
        self.metrics.is_some() || self.journal.is_some()
    }

    /// True when any tracing sink (Chrome trace or span log) was requested.
    fn wants_tracing(&self) -> bool {
        self.trace.is_some() || self.spans.is_some()
    }
}

/// Lint exit code for a finished report under the documented contract:
/// clean and warnings-only exit 0 (1 with `--deny-warnings`), errors exit 2.
fn lint_exit_code(lint_report: &sgcr_lint::LintReport, deny_warnings: bool) -> ExitCode {
    if lint_report.has_errors() {
        ExitCode::from(2)
    } else if deny_warnings && lint_report.warning_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Statically analyzes the bundle; never constructs a `CyberRange`.
///
/// With `--cache <dir>` the incremental query engine answers from memoized
/// per-file results where file contents are unchanged; reuse statistics go
/// to stderr so stdout stays byte-identical to an uncached run.
fn lint(dir: &str, format: Format, cache: Option<&str>, deny_warnings: bool) -> ExitCode {
    let (lint_report, bundle) = if let Some(cache_dir) = cache {
        match engine::lint_dir_incremental(dir, std::path::Path::new(cache_dir)) {
            Ok(outcome) => {
                eprintln!(
                    "lint cache: {} reused, {} recomputed queries",
                    outcome.stats.reused, outcome.stats.recomputed
                );
                (outcome.report, outcome.bundle)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let bundle = match LoadedBundle::from_dir(dir) {
            Ok(bundle) => bundle,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let lint_report = lint_bundle(&bundle);
        (lint_report, bundle)
    };
    match format {
        Format::Text => print!("{}", report::render_text(&lint_report, &bundle)),
        Format::Json => print!("{}", json::to_json(&lint_report)),
        Format::Sarif => print!("{}", sarif::to_sarif(&lint_report)),
    }
    lint_exit_code(&lint_report, deny_warnings)
}

/// The pre-flight static check `run` and `exercise` perform before building
/// the range. Lint errors abort with exit 2 and the findings on stderr;
/// warnings are reported but do not block. Returns `None` when the range
/// may start. `--no-check` (or an unreadable directory, which the builder
/// will report properly) skips the gate.
fn front_gate(dir: &str, no_check: bool) -> Option<ExitCode> {
    if no_check {
        return None;
    }
    let bundle = LoadedBundle::from_dir(dir).ok()?;
    let lint_report = lint_bundle(&bundle);
    if lint_report.diagnostics.is_empty() {
        return None;
    }
    eprint!("{}", report::render_text(&lint_report, &bundle));
    if lint_report.has_errors() {
        eprintln!(
            "error: bundle fails static checks ({} error(s)); \
             fix them or pass --no-check to start the range anyway",
            lint_report.error_count()
        );
        return Some(ExitCode::from(2));
    }
    None
}

/// Runs a declarative exercise scenario against a freshly generated range
/// and prints the scored after-action report.
fn exercise(
    dir: &str,
    scenario_path: Option<&str>,
    report_path: Option<&str>,
    sinks: &Sinks,
    fault_seed: Option<u64>,
) -> ExitCode {
    let bundle = match SgmlBundle::from_dir(dir) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let xml = match scenario_path {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => match bundle.scenarios.as_slice() {
            [only] => only.clone(),
            [] => {
                eprintln!("error: {dir} ships no *.scenario.xml; pass --scenario <file>");
                return ExitCode::FAILURE;
            }
            many => {
                eprintln!(
                    "error: {dir} ships {} scenario files; pass --scenario <file>",
                    many.len()
                );
                return ExitCode::FAILURE;
            }
        },
    };
    let mut scenario = match Scenario::parse(&xml) {
        Ok(scenario) => scenario,
        Err(e) => {
            eprintln!("error: invalid scenario: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The command line wins over the scenario's own faultSeed= attribute.
    if fault_seed.is_some() {
        scenario.fault_seed = fault_seed;
    }

    let telemetry = if sinks.wants_tracing() {
        Telemetry::with_tracing()
    } else {
        Telemetry::new()
    };
    let model = match CompiledModel::shared(&bundle) {
        Ok(model) => model,
        Err(e) => {
            eprintln!("error: model set does not compile:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &model.diagnostics {
        eprintln!("  {d}");
    }
    let mut range = match RangeBuilder::from_model(model)
        .telemetry(telemetry.clone())
        .build()
    {
        Ok(range) => range,
        Err(e) => {
            eprintln!("error: range cannot be instantiated:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "running exercise {:?} ({} stages, {} objectives, {} ms)…",
        scenario.name,
        scenario.stages.len(),
        scenario.objectives.len(),
        scenario.duration_ms
    );
    let exercise_report = match run_exercise(&mut range, &scenario) {
        Ok(exercise_report) => exercise_report,
        Err(e) => {
            eprintln!("error: exercise cannot run: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", exercise_report.to_text());
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(path, exercise_report.to_json()) {
            eprintln!("error: cannot write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("JSON report written to {path}");
    }
    if !write_sinks(sinks, &telemetry) {
        return ExitCode::FAILURE;
    }
    // Failed objectives are scored results, not tool failures.
    ExitCode::SUCCESS
}

/// Derives the attack graph from the compiled model and prints it — the
/// adversary plane's view of the bundle, for inspection and tooling.
fn attack_graph(dir: &str, format: GraphFormat) -> ExitCode {
    let bundle = match SgmlBundle::from_dir(dir) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = match CompiledModel::compile(&bundle) {
        Ok(model) => model,
        Err(e) => {
            eprintln!("error: model set does not compile:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    let graph = AttackGraph::derive(&model);
    match format {
        GraphFormat::Json => println!("{}", graph.to_json()),
        GraphFormat::Dot => print!("{}", graph.to_dot()),
    }
    ExitCode::SUCCESS
}

/// The `serve` subcommand's flag surface, bundled so it can grow without
/// the function signature sprawling.
struct ServeOptions {
    tenants: usize,
    threads: usize,
    seconds: u64,
    scenario: Option<String>,
    out: Option<String>,
    report: Option<String>,
    step_budget_ms: Option<u64>,
    max_overruns: u64,
    max_restarts: u64,
    restart_backoff_ms: u64,
    admit_max: usize,
    fault_seed: u64,
    status_addr: Option<String>,
}

/// The multi-tenant range farm: compiles the bundle once, then multiplexes
/// `tenants` independent ranges (or exercises) across a worker pool via
/// `sgcr-farm`, streaming per-tenant journals/metrics and reporting farm
/// throughput and step-latency percentiles.
fn serve(dir: &str, opts: ServeOptions) -> ExitCode {
    let ServeOptions {
        tenants,
        threads,
        seconds,
        scenario,
        out,
        report,
        step_budget_ms,
        max_overruns,
        max_restarts,
        restart_backoff_ms,
        admit_max,
        fault_seed,
        status_addr,
    } = opts;
    let (scenario_path, out, report_path) =
        (scenario.as_deref(), out.as_deref(), report.as_deref());
    let bundle = match SgmlBundle::from_dir(dir) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match scenario_path {
        Some(path) => {
            let xml = match std::fs::read_to_string(path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("error: reading {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Scenario::parse(&xml) {
                Ok(scenario) => Some(scenario),
                Err(e) => {
                    eprintln!("error: invalid scenario: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    let compile_start = std::time::Instant::now();
    let model = match CompiledModel::shared(&bundle) {
        Ok(model) => model,
        Err(e) => {
            eprintln!("error: model set does not compile:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &model.diagnostics {
        eprintln!("  {d}");
    }
    eprintln!(
        "compiled once in {:.1} ms: {}",
        compile_start.elapsed().as_secs_f64() * 1e3,
        model.summary()
    );
    eprintln!(
        "serving {tenants} tenants x {seconds} s{}…",
        match &scenario {
            Some(s) => format!(" of exercise {:?}", s.name),
            None => String::new(),
        }
    );
    if let Some(addr) = &status_addr {
        eprintln!(
            "live status endpoint on http://{addr}/ (/metrics /status /healthz; \
             POST /tenants, DELETE /tenants/<id>)"
        );
    }
    if max_restarts > 0 {
        eprintln!("supervisor on: up to {max_restarts} restart(s)/tenant from mid-run checkpoints");
    }

    let config = FarmConfig {
        tenants,
        threads,
        sim_seconds: seconds,
        step_budget_ms,
        max_overruns,
        base_fault_seed: fault_seed,
        interval: None,
        scenario,
        out_dir: out.map(std::path::PathBuf::from),
        status_addr,
        collect_interval_ms: 0,
        restart_max: max_restarts,
        restart_backoff_ms,
        admit_max,
    };
    let farm_report = run_farm(model, &config);
    print!("{}", farm_report.to_text());
    if let Some(dir) = out {
        eprintln!("per-tenant journals/metrics written to {dir}/");
    }
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(path, farm_report.to_json()) {
            eprintln!("error: cannot write report to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("farm report written to {path}");
    }
    if farm_report.tenants_failed > 0 {
        eprintln!("error: {} tenant(s) failed", farm_report.tenants_failed);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// How many consecutive failed scrapes `watch` tolerates (each retried
/// with capped exponential backoff) before concluding the endpoint is gone.
const WATCH_MAX_FAILURES: u32 = 6;

/// The `watch` retry backoff before attempt number `failures`: doubling
/// from 100 ms, capped at 2 s.
fn watch_backoff(failures: u32) -> std::time::Duration {
    std::time::Duration::from_millis((100u64 << failures.saturating_sub(1).min(5)).min(2000))
}

/// Polls a running farm's `--status-addr` endpoint and redraws a per-tenant
/// dashboard until the endpoint goes away (the farm finished) or
/// `--iterations` polls have been made.
///
/// A failed scrape does not kill the dashboard: it is retried with capped
/// exponential backoff, and only [`WATCH_MAX_FAILURES`] consecutive
/// failures end the session — success if the farm was ever reached (it
/// finished and closed the endpoint), failure if it never was.
fn watch(addr: &str, interval_ms: u64, iterations: Option<u64>) -> ExitCode {
    let mut polled = 0u64;
    let mut ever_connected = false;
    let mut failures = 0u32;
    loop {
        match sgcr_farm::http_get(addr, "/status") {
            Ok(body) => {
                ever_connected = true;
                failures = 0;
                match render_watch(&body) {
                    Ok(frame) => {
                        // ANSI clear-screen + cursor-home, then the frame.
                        print!("\x1b[2J\x1b[H{frame}");
                        use std::io::Write as _;
                        let _ = std::io::stdout().flush();
                    }
                    Err(e) => {
                        eprintln!("error: malformed /status response from {addr}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                failures += 1;
                if failures >= WATCH_MAX_FAILURES {
                    if ever_connected {
                        println!("status endpoint {addr} closed — farm finished");
                        return ExitCode::SUCCESS;
                    }
                    eprintln!("error: cannot reach {addr} after {failures} attempts: {e}");
                    return ExitCode::FAILURE;
                }
                let backoff = watch_backoff(failures);
                eprintln!(
                    "warning: scrape of {addr} failed ({e}); retry {failures}/{} in {} ms",
                    WATCH_MAX_FAILURES - 1,
                    backoff.as_millis()
                );
                std::thread::sleep(backoff);
                continue;
            }
        }
        polled += 1;
        if let Some(max) = iterations {
            if polled >= max {
                return ExitCode::SUCCESS;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(50)));
    }
}

/// Renders one `/status` JSON document as a watch dashboard frame. Pure, so
/// the dashboard is unit-testable without a live farm.
fn render_watch(body: &str) -> Result<String, String> {
    use sgcr_obs::json::{self as obs_json, Value};
    let doc = obs_json::parse(body)?;
    let uint = |v: &Value, key: &str| v.get(key).and_then(Value::as_u64).unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "farm: {} tenants on {} threads x {} s sim{}\n",
        uint(&doc, "tenants"),
        uint(&doc, "threads"),
        uint(&doc, "sim_seconds"),
        match doc.get("step_budget_ms").and_then(Value::as_u64) {
            Some(ms) => format!(" | budget {ms} ms/step"),
            None => String::new(),
        }
    ));
    out.push_str(&format!(
        "running {} | completed {} | halted {} | failed {} | given up {} | drained {}\n\n",
        uint(&doc, "tenants_running"),
        uint(&doc, "tenants_completed"),
        uint(&doc, "tenants_halted"),
        uint(&doc, "tenants_failed"),
        uint(&doc, "tenants_given_up"),
        uint(&doc, "tenants_drained"),
    ));
    out.push_str("tenant  state      steps      overruns  solve_errs  restarts  score\n");
    let tenants = doc
        .get("per_tenant")
        .and_then(Value::as_array)
        .ok_or("missing per_tenant array")?;
    for t in tenants {
        let score = match t.get("score") {
            Some(score) if score.get("earned").is_some() => format!(
                "{}/{}",
                score.get("earned").and_then(Value::as_u64).unwrap_or(0),
                score.get("total").and_then(Value::as_u64).unwrap_or(0)
            ),
            _ => String::from("-"),
        };
        out.push_str(&format!(
            "{:>6}  {:<9}  {:>9}  {:>8}  {:>10}  {:>8}  {score}\n",
            uint(t, "tenant"),
            t.get("state").and_then(Value::as_str).unwrap_or("?"),
            uint(t, "steps"),
            uint(t, "budget_overruns"),
            uint(t, "solve_errors"),
            uint(t, "restarts"),
        ));
    }
    Ok(out)
}

/// Writes whichever observability sinks were requested; false on I/O error.
fn write_sinks(sinks: &Sinks, telemetry: &Telemetry) -> bool {
    if let Some(path) = &sinks.metrics {
        if let Err(e) = std::fs::write(path, telemetry.snapshot().to_json()) {
            eprintln!("error: cannot write metrics to {path}: {e}");
            return false;
        }
        eprintln!("metrics snapshot written to {path}");
    }
    if let Some(path) = &sinks.journal {
        if let Err(e) = std::fs::write(path, telemetry.journal_jsonl()) {
            eprintln!("error: cannot write journal to {path}: {e}");
            return false;
        }
        eprintln!(
            "event journal written to {path} ({} events, {} evicted)",
            telemetry.events().len(),
            telemetry.events_dropped()
        );
    }
    if let Some(path) = &sinks.trace {
        if let Err(e) = std::fs::write(path, telemetry.tracer().chrome_trace_json()) {
            eprintln!("error: cannot write trace to {path}: {e}");
            return false;
        }
        eprintln!(
            "Chrome trace written to {path} ({} spans, {} evicted) — open in ui.perfetto.dev",
            telemetry.spans().len(),
            telemetry.spans_dropped()
        );
    }
    if let Some(path) = &sinks.spans {
        if let Err(e) = std::fs::write(path, telemetry.tracer().spans_jsonl()) {
            eprintln!("error: cannot write span log to {path}: {e}");
            return false;
        }
        eprintln!("span log written to {path}");
    }
    true
}

/// Generates (and for `run`, co-simulates) the cyber range. Telemetry is
/// enabled only when a `--metrics` or `--journal` sink was requested, and
/// causal tracing only when `--trace` or `--spans` was given, so a plain run
/// keeps the zero-overhead disabled path.
fn generate(
    dir: &str,
    run_seconds: Option<u64>,
    dot: bool,
    sinks: &Sinks,
    fault_seed: Option<u64>,
) -> ExitCode {
    let bundle = match SgmlBundle::from_dir(dir) {
        Ok(bundle) => bundle,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {}: {} SSD, {} SCD, {} ICD, {} SED, supplementary: ied={} scada={} plc={} power={}",
        dir,
        bundle.ssds.len(),
        bundle.scds.len(),
        bundle.icds.len(),
        bundle.seds.len(),
        bundle.ied_config.is_some(),
        bundle.scada_config.is_some(),
        bundle.plc_config.is_some(),
        bundle.power_extra.is_some(),
    );

    let telemetry = if sinks.wants_tracing() {
        Telemetry::with_tracing()
    } else if sinks.wants_telemetry() {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    let model = match CompiledModel::shared(&bundle) {
        Ok(model) => model,
        Err(e) => {
            eprintln!("error: model set does not compile:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    for d in &model.diagnostics {
        eprintln!("  {d}");
    }
    let mut builder = RangeBuilder::from_model(model).telemetry(telemetry.clone());
    if let Some(seed) = fault_seed {
        builder = builder.fault_seed(seed);
    }
    let mut range = match builder.build() {
        Ok(range) => range,
        Err(e) => {
            eprintln!("error: range cannot be instantiated:\n{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", range.summary());
    if dot {
        println!("{}", range.plan().to_dot());
    }
    if let Some(seconds) = run_seconds {
        eprintln!("running {seconds} s of co-simulated time…");
        let wall = std::time::Instant::now();
        range.run_for(SimDuration::from_secs(seconds));
        eprintln!(
            "done: {} power-flow steps ({} solve errors) in {:.2} s wall clock",
            range.steps_total(),
            range.solve_errors().len(),
            wall.elapsed().as_secs_f64()
        );
        if let Some(scada) = &range.scada {
            println!("SCADA tags:");
            for tag in scada.tag_names() {
                println!("  {:20} = {:?}", tag, scada.tag_value(&tag));
            }
            for (point, message) in scada.active_alarms() {
                println!("  ALARM {point}: {message}");
            }
        }
        for (name, handle) in &range.ieds {
            let trips = handle.trip_count();
            if trips > 0 {
                println!("  IED {name}: {trips} protection trip(s)");
            }
        }
    }
    if !write_sinks(sinks, &telemetry) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    fn argv(line: &str) -> Vec<String> {
        line.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn build_subcommand_parses() {
        let parsed = parse_args(&argv("build bundles/epic --dot")).unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Build {
                dir: "bundles/epic".into(),
                dot: true
            }
        );
        assert!(parsed.deprecation.is_none());
    }

    #[test]
    fn run_subcommand_parses_all_flags() {
        let parsed = parse_args(&argv(
            "run bundles/epic --seconds 30 --metrics m.json --journal j.jsonl \
             --trace t.json --spans s.jsonl --fault-seed 99",
        ))
        .unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Run {
                dir: "bundles/epic".into(),
                seconds: 30,
                dot: false,
                no_check: false,
                metrics: Some("m.json".into()),
                journal: Some("j.jsonl".into()),
                trace: Some("t.json".into()),
                spans: Some("s.jsonl".into()),
                fault_seed: Some(99),
            }
        );
        assert!(parsed.deprecation.is_none());
    }

    #[test]
    fn run_accepts_no_check() {
        let parsed = parse_args(&argv("run bundles/epic --no-check")).unwrap();
        match parsed.cmd {
            Cmd::Run { no_check, .. } => assert!(no_check),
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn run_defaults_seconds() {
        let parsed = parse_args(&argv("run bundles/epic")).unwrap();
        match parsed.cmd {
            Cmd::Run {
                seconds,
                metrics,
                journal,
                trace,
                spans,
                fault_seed,
                ..
            } => {
                assert_eq!(seconds, DEFAULT_RUN_SECONDS);
                assert!(metrics.is_none());
                assert!(journal.is_none());
                assert!(trace.is_none());
                assert!(spans.is_none());
                assert!(fault_seed.is_none());
            }
            other => panic!("expected run, got {other:?}"),
        }
    }

    #[test]
    fn lint_subcommand_parses_format() {
        let parsed = parse_args(&argv("lint bundles/epic --format json")).unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Lint {
                dir: "bundles/epic".into(),
                format: Format::Json,
                cache: None,
                deny_warnings: false,
            }
        );
    }

    #[test]
    fn lint_subcommand_parses_sarif_cache_and_deny_warnings() {
        let parsed = parse_args(&argv(
            "lint bundles/epic --format sarif --cache .lint-cache --deny-warnings",
        ))
        .unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Lint {
                dir: "bundles/epic".into(),
                format: Format::Sarif,
                cache: Some(".lint-cache".into()),
                deny_warnings: true,
            }
        );
    }

    #[test]
    fn lint_exit_codes_follow_the_contract() {
        use sgcr_lint::LintReport;
        use sgcr_scl::{codes, Diagnostic};
        let clean = LintReport::default();
        assert_eq!(lint_exit_code(&clean, false), ExitCode::SUCCESS);
        assert_eq!(lint_exit_code(&clean, true), ExitCode::SUCCESS);
        let warning = LintReport {
            diagnostics: vec![Diagnostic::warning(codes::ORPHAN_ICD, "orphan", "x")],
        };
        assert_eq!(lint_exit_code(&warning, false), ExitCode::SUCCESS);
        assert_eq!(lint_exit_code(&warning, true), ExitCode::FAILURE);
        let error = LintReport {
            diagnostics: vec![Diagnostic::error(codes::ST_PARSE_FAILED, "bad", "x")],
        };
        assert_eq!(lint_exit_code(&error, false), ExitCode::from(2));
        assert_eq!(lint_exit_code(&error, true), ExitCode::from(2));
    }

    #[test]
    fn legacy_bare_dir_maps_to_build_with_warning() {
        let parsed = parse_args(&argv("bundles/epic --dot")).unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Build {
                dir: "bundles/epic".into(),
                dot: true
            }
        );
        let notice = parsed.deprecation.unwrap();
        assert!(notice.contains("deprecated"));
        assert!(notice.contains("build bundles/epic"));
    }

    #[test]
    fn legacy_run_flag_maps_to_run() {
        let parsed = parse_args(&argv("bundles/epic --run 5")).unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Run {
                dir: "bundles/epic".into(),
                seconds: 5,
                dot: false,
                no_check: false,
                metrics: None,
                journal: None,
                trace: None,
                spans: None,
                fault_seed: None,
            }
        );
        assert!(parsed.deprecation.unwrap().contains("--seconds 5"));
    }

    #[test]
    fn legacy_validate_only_maps_to_lint() {
        let parsed = parse_args(&argv("bundles/epic --validate-only --format json")).unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Lint {
                dir: "bundles/epic".into(),
                format: Format::Json,
                cache: None,
                deny_warnings: false,
            }
        );
        assert!(parsed.deprecation.is_some());
    }

    #[test]
    fn exercise_subcommand_parses_all_flags() {
        let parsed = parse_args(&argv(
            "exercise bundles/epic --scenario s.scenario.xml --report r.json \
             --journal j.jsonl --trace t.json --fault-seed 7",
        ))
        .unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Exercise {
                dir: "bundles/epic".into(),
                scenario: Some("s.scenario.xml".into()),
                report: Some("r.json".into()),
                journal: Some("j.jsonl".into()),
                trace: Some("t.json".into()),
                fault_seed: Some(7),
                no_check: false,
            }
        );
        assert!(parsed.deprecation.is_none());
    }

    #[test]
    fn exercise_accepts_no_check() {
        let parsed = parse_args(&argv("exercise bundles/epic --no-check")).unwrap();
        match parsed.cmd {
            Cmd::Exercise { no_check, .. } => assert!(no_check),
            other => panic!("expected exercise, got {other:?}"),
        }
    }

    #[test]
    fn exercise_scenario_and_report_are_optional() {
        let parsed = parse_args(&argv("exercise bundles/epic")).unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Exercise {
                dir: "bundles/epic".into(),
                scenario: None,
                report: None,
                journal: None,
                trace: None,
                fault_seed: None,
                no_check: false,
            }
        );
    }

    #[test]
    fn attack_graph_subcommand_parses() {
        let parsed = parse_args(&argv("attack-graph bundles/epic")).unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::AttackGraph {
                dir: "bundles/epic".into(),
                format: GraphFormat::Json,
            }
        );
        let parsed = parse_args(&argv("attack-graph bundles/epic --format dot")).unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::AttackGraph {
                dir: "bundles/epic".into(),
                format: GraphFormat::Dot,
            }
        );
    }

    #[test]
    fn attack_graph_rejects_bad_format() {
        assert!(parse_args(&argv("attack-graph bundles/epic --format sarif")).is_err());
        assert!(parse_args(&argv("attack-graph bundles/epic --dot")).is_err());
        assert!(parse_args(&argv("attack-graph")).is_err());
    }

    #[test]
    fn serve_subcommand_parses_all_flags() {
        let parsed = parse_args(&argv(
            "serve bundles/epic --tenants 128 --threads 4 --seconds 30 \
             --scenario s.scenario.xml --out /tmp/farm --report farm.json \
             --step-budget-ms 100 --max-overruns 5 --max-restarts 3 \
             --restart-backoff-ms 50 --admit-max 16 --fault-seed 42 \
             --status-addr 127.0.0.1:9644 --no-check",
        ))
        .unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Serve {
                dir: "bundles/epic".into(),
                tenants: 128,
                threads: 4,
                seconds: 30,
                scenario: Some("s.scenario.xml".into()),
                out: Some("/tmp/farm".into()),
                report: Some("farm.json".into()),
                step_budget_ms: Some(100),
                max_overruns: 5,
                max_restarts: 3,
                restart_backoff_ms: 50,
                admit_max: 16,
                fault_seed: 42,
                status_addr: Some("127.0.0.1:9644".into()),
                no_check: true,
            }
        );
        assert!(parsed.deprecation.is_none());
    }

    #[test]
    fn serve_status_addr_is_optional() {
        let parsed = parse_args(&argv("serve bundles/epic")).unwrap();
        match parsed.cmd {
            Cmd::Serve { status_addr, .. } => assert!(status_addr.is_none()),
            other => panic!("expected serve, got {other:?}"),
        }
    }

    #[test]
    fn watch_subcommand_parses_flags_and_defaults() {
        let parsed = parse_args(&argv(
            "watch 127.0.0.1:9644 --interval-ms 250 --iterations 3",
        ))
        .unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Watch {
                addr: "127.0.0.1:9644".into(),
                interval_ms: 250,
                iterations: Some(3),
            }
        );
        let parsed = parse_args(&argv("watch 127.0.0.1:9644")).unwrap();
        assert_eq!(
            parsed.cmd,
            Cmd::Watch {
                addr: "127.0.0.1:9644".into(),
                interval_ms: 1000,
                iterations: None,
            }
        );
        assert!(parse_args(&argv("watch")).is_err());
        assert!(parse_args(&argv("watch 127.0.0.1:9644 --bogus")).is_err());
    }

    #[test]
    fn watch_dashboard_renders_status_json() {
        let body = r#"{"tenants":2,"threads":2,"sim_seconds":5,"scenario":false,
            "step_budget_ms":100,"tenants_running":1,"tenants_completed":1,
            "tenants_halted":0,"tenants_failed":0,"per_tenant":[
            {"tenant":0,"state":"completed","steps":50,"budget_overruns":0,
             "solve_errors":0,"score":{"earned":3,"total":4}},
            {"tenant":1,"state":"running","steps":12,"budget_overruns":2,
             "solve_errors":1,"score":null}]}"#;
        let frame = render_watch(body).unwrap();
        assert!(frame.contains("farm: 2 tenants on 2 threads x 5 s sim | budget 100 ms/step"));
        assert!(frame.contains("running 1 | completed 1 | halted 0 | failed 0"));
        assert!(frame.contains("completed"));
        assert!(frame.contains("3/4"));
        assert!(frame.lines().count() >= 6);
        assert!(render_watch("not json").is_err());
    }

    #[test]
    fn serve_defaults_are_sensible() {
        let parsed = parse_args(&argv("serve bundles/epic")).unwrap();
        match parsed.cmd {
            Cmd::Serve {
                tenants,
                threads,
                seconds,
                fault_seed,
                max_restarts,
                restart_backoff_ms,
                admit_max,
                ..
            } => {
                assert_eq!(tenants, DEFAULT_SERVE_TENANTS);
                assert_eq!(threads, 0); // one per core
                assert_eq!(seconds, DEFAULT_SERVE_SECONDS);
                assert_eq!(fault_seed, 0);
                assert_eq!(max_restarts, 0); // supervision off by default
                assert_eq!(restart_backoff_ms, 0); // 0 = library default
                assert_eq!(admit_max, 0); // no dynamic headroom by default
            }
            other => panic!("expected serve, got {other:?}"),
        }
    }

    #[test]
    fn watch_backoff_doubles_and_caps() {
        assert_eq!(watch_backoff(1).as_millis(), 100);
        assert_eq!(watch_backoff(2).as_millis(), 200);
        assert_eq!(watch_backoff(3).as_millis(), 400);
        assert_eq!(watch_backoff(5).as_millis(), 1600);
        assert_eq!(watch_backoff(6).as_millis(), 2000);
        assert_eq!(watch_backoff(60).as_millis(), 2000);
    }

    #[test]
    fn serve_rejects_zero_tenants() {
        assert!(parse_args(&argv("serve bundles/epic --tenants 0")).is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&argv("run")).is_err());
        assert!(parse_args(&argv("run bundles/epic --seconds abc")).is_err());
        assert!(parse_args(&argv("run bundles/epic --metrics")).is_err());
        assert!(parse_args(&argv("run bundles/epic --trace")).is_err());
        assert!(parse_args(&argv("run bundles/epic --spans")).is_err());
        assert!(parse_args(&argv("run bundles/epic --fault-seed")).is_err());
        assert!(parse_args(&argv("run bundles/epic --fault-seed abc")).is_err());
        assert!(parse_args(&argv("exercise bundles/epic --fault-seed -1")).is_err());
        assert!(parse_args(&argv("lint bundles/epic --format yaml")).is_err());
        assert!(parse_args(&argv("lint bundles/epic --cache")).is_err());
        assert!(parse_args(&argv("exercise")).is_err());
        assert!(parse_args(&argv("exercise bundles/epic --scenario")).is_err());
        assert!(parse_args(&argv("exercise bundles/epic --bogus")).is_err());
        assert!(parse_args(&argv("build bundles/epic --bogus")).is_err());
        assert!(parse_args(&argv("bundles/epic --bogus")).is_err());
    }
}
