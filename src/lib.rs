#![warn(missing_docs)]

//! # sg-cyber-range
//!
//! Automated generation of smart grid cyber ranges from SG-ML models — a
//! from-scratch Rust reproduction of *"Towards Automated Generation of Smart
//! Grid Cyber Range for Cybersecurity Experiments and Training"* (DSN 2023),
//! including every substrate the original system glued together from
//! third-party software.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | role (paper component) |
//! |--------|-------|------------------------|
//! | [`core`] | `sgcr-core` | SG-ML language + processor + cyber-range runtime (**the contribution**) |
//! | [`scl`] | `sgcr-scl` | IEC 61850 SCL: SSD/SCD/ICD/SED parsing, writing, consolidation |
//! | [`powerflow`] | `sgcr-powerflow` | steady-state AC power flow (Pandapower substitute) |
//! | [`net`] | `sgcr-net` | discrete-event network emulator (Mininet substitute) |
//! | [`obs`] | `sgcr-obs` | telemetry: metrics registry + event journal, zero-overhead when off |
//! | [`faults`] | `sgcr-faults` | deterministic fault injection: link impairments, crashes, degradation |
//! | [`iec61850`] | `sgcr-iec61850` | MMS/GOOSE/SV/R-GOOSE stack (libiec61850 substitute) |
//! | [`ied`] | `sgcr-ied` | virtual IED with Table-II protection functions |
//! | [`plc`] | `sgcr-plc` | virtual PLC: ST interpreter + PLCopen XML (OpenPLC61850 substitute) |
//! | [`scada`] | `sgcr-scada` | virtual SCADA HMI (ScadaBR substitute) |
//! | [`modbus`] | `sgcr-modbus` | Modbus TCP |
//! | [`kvstore`] | `sgcr-kvstore` | cyber↔physical process cache (MySQL substitute) |
//! | [`attack`] | `sgcr-attack` | FCI, ARP-spoof MITM, scanning, capture analysis |
//! | [`scenario`] | `sgcr-scenario` | declarative exercises: scenario XML → staged attacks → scored reports |
//! | [`adversary`] | `sgcr-adversary` | attack-graph derivation + seeded goal-driven campaign planning |
//! | [`models`] | `sgcr-models` | EPIC testbed + synthetic multi-substation model generators |
//! | [`xml`] | `sgcr-xml` | self-contained XML parser/writer |
//!
//! # Quickstart
//!
//! ```
//! use sg_cyber_range::core::{CompiledModel, CyberRange};
//! use sg_cyber_range::models::epic_bundle;
//! use sg_cyber_range::net::SimDuration;
//!
//! // Compile the EPIC model set once, then instantiate an operational range…
//! let model = CompiledModel::shared(&epic_bundle())?;
//! let mut range = CyberRange::instantiate(model)?;
//! // …and run two seconds of co-simulated cyber + physical time.
//! range.run_for(SimDuration::from_secs(2));
//! assert!(range.scada.as_ref().unwrap().polls_completed() > 0);
//! # Ok::<(), sg_cyber_range::core::RangeError>(())
//! ```

pub use sgcr_adversary as adversary;
pub use sgcr_attack as attack;
pub use sgcr_core as core;
pub use sgcr_farm as farm;
pub use sgcr_faults as faults;
pub use sgcr_iec61850 as iec61850;
pub use sgcr_ied as ied;
pub use sgcr_kvstore as kvstore;
pub use sgcr_modbus as modbus;
pub use sgcr_models as models;
pub use sgcr_net as net;
pub use sgcr_obs as obs;
pub use sgcr_plc as plc;
pub use sgcr_powerflow as powerflow;
pub use sgcr_scada as scada;
pub use sgcr_scenario as scenario;
pub use sgcr_scl as scl;
pub use sgcr_xml as xml;
