#!/usr/bin/env bash
# Load/soak harness for the multi-tenant range farm.
#
# Exports the built-in EPIC SG-ML model set, compiles it once, then multiplexes
# TENANTS concurrent ranges across the machine's cores via `sgml_processor
# serve`, writing per-tenant journals/metrics plus a machine-readable farm
# report (ranges/sec, p50/p99/max step latency) to REPORT.
#
# Usage:
#   scripts/farm_load_test.sh                 # 128 tenants x 2 s -> BENCH_farm.json
#   TENANTS=512 SIM_SECONDS=10 scripts/farm_load_test.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TENANTS="${TENANTS:-128}"
SIM_SECONDS="${SIM_SECONDS:-2}"
STEP_BUDGET_MS="${STEP_BUDGET_MS:-250}"
OUT_DIR="${OUT_DIR:-target/farm-load}"
REPORT="${REPORT:-BENCH_farm.json}"
BUNDLE="target/farm-load-bundle"

cargo build --release --bin sgml_processor --example export_epic_model

rm -rf "$BUNDLE" "$OUT_DIR"
./target/release/examples/export_epic_model "$BUNDLE" >/dev/null

./target/release/sgml_processor serve "$BUNDLE" \
  --tenants "$TENANTS" \
  --seconds "$SIM_SECONDS" \
  --step-budget-ms "$STEP_BUDGET_MS" \
  --fault-seed 42 \
  --out "$OUT_DIR" \
  --report "$REPORT"

JOURNALS=$(ls "$OUT_DIR"/tenant-*.journal.jsonl 2>/dev/null | wc -l)
if [ "$JOURNALS" -ne "$TENANTS" ]; then
  echo "error: expected $TENANTS per-tenant journals in $OUT_DIR, found $JOURNALS" >&2
  exit 1
fi
echo "ok: $JOURNALS per-tenant journals in $OUT_DIR/, farm report in $REPORT"
