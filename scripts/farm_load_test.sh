#!/usr/bin/env bash
# Load/soak harness for the multi-tenant range farm.
#
# Exports the built-in EPIC SG-ML model set, compiles it once, then multiplexes
# TENANTS concurrent ranges across the machine's cores via `sgml_processor
# serve`, writing per-tenant journals/metrics plus a machine-readable farm
# report (ranges/sec, p50/p99/max step latency) to REPORT.
#
# The latest full report is kept in REPORT (BENCH_farm.json); every run also
# appends a timestamped summary line to HISTORY (BENCH_farm.jsonl) so the
# farm's throughput/latency trajectory accumulates across runs.
#
# Usage:
#   scripts/farm_load_test.sh                 # 128 tenants x 2 s -> BENCH_farm.json
#   TENANTS=512 SIM_SECONDS=10 scripts/farm_load_test.sh
set -euo pipefail
cd "$(dirname "$0")/.."

TENANTS="${TENANTS:-128}"
SIM_SECONDS="${SIM_SECONDS:-2}"
STEP_BUDGET_MS="${STEP_BUDGET_MS:-250}"
OUT_DIR="${OUT_DIR:-target/farm-load}"
REPORT="${REPORT:-BENCH_farm.json}"
HISTORY="${HISTORY:-BENCH_farm.jsonl}"
BUNDLE="target/farm-load-bundle"

cargo build --release --bin sgml_processor --example export_epic_model

rm -rf "$BUNDLE" "$OUT_DIR"
./target/release/examples/export_epic_model "$BUNDLE" >/dev/null

./target/release/sgml_processor serve "$BUNDLE" \
  --tenants "$TENANTS" \
  --seconds "$SIM_SECONDS" \
  --step-budget-ms "$STEP_BUDGET_MS" \
  --fault-seed 42 \
  --out "$OUT_DIR" \
  --report "$REPORT"

JOURNALS=$(ls "$OUT_DIR"/tenant-*.journal.jsonl 2>/dev/null | wc -l)
if [ "$JOURNALS" -ne "$TENANTS" ]; then
  echo "error: expected $TENANTS per-tenant journals in $OUT_DIR, found $JOURNALS" >&2
  exit 1
fi

# A load run with failed or given-up tenants is a failed run, full stop —
# don't let a green exit code paper over a broken farm.
FAILED=$(python3 - "$REPORT" <<'PY'
import json, sys
report = json.load(open(sys.argv[1]))
print(report.get("tenants_failed", 0) + report.get("tenants_given_up", 0))
PY
)
if [ "$FAILED" -ne 0 ]; then
  echo "error: $FAILED tenants failed or were given up; see $REPORT" >&2
  exit 1
fi

# Append a timestamped one-line summary of this run (farm-level fields only,
# no per_tenant detail) to the history file; REPORT keeps the full latest run.
python3 - "$REPORT" "$HISTORY" <<'PY'
import json, sys, datetime
report_path, history_path = sys.argv[1], sys.argv[2]
with open(report_path) as f:
    report = json.load(f)
entry = {"timestamp": datetime.datetime.now(datetime.timezone.utc)
         .isoformat(timespec="seconds")}
entry.update({k: v for k, v in report.items() if k != "per_tenant"})
with open(history_path, "a") as f:
    f.write(json.dumps(entry, sort_keys=False) + "\n")
PY

echo "ok: $JOURNALS per-tenant journals in $OUT_DIR/, farm report in $REPORT (history: $HISTORY)"
