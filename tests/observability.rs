//! End-to-end observability: the telemetry subsystem threaded through the
//! generated EPIC range — metrics cover net/powerflow/range, the journal
//! carries typed packet/solve/trip events, and a disabled-telemetry run is
//! byte-identical to an instrumented one.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange, RangeBuilder};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::SimDuration;
use sg_cyber_range::obs::{Event, Telemetry};

fn instrumented_epic_range() -> (CyberRange, Telemetry) {
    let bundle = epic_bundle();
    let telemetry = Telemetry::new();
    let range = RangeBuilder::from_model(CompiledModel::shared(&bundle).expect("bundle compiles"))
        .telemetry(telemetry.clone())
        .build()
        .expect("EPIC bundle must compile");
    (range, telemetry)
}

#[test]
fn metrics_cover_net_powerflow_and_range() {
    let (mut range, telemetry) = instrumented_epic_range();
    range.run_for(SimDuration::from_secs(3));
    let snapshot = telemetry.snapshot();

    // Network plane: frames move, and they land.
    let sent = snapshot.counter("net.frames_sent").unwrap_or(0);
    let delivered = snapshot.counter("net.frames_delivered").unwrap_or(0);
    assert!(sent > 0, "hosts must transmit frames");
    assert!(delivered > 0, "frames must be delivered");
    assert!(delivered >= sent / 2, "most unicast traffic is delivered");
    let latency = snapshot
        .histogram("net.link_latency_seconds")
        .expect("link latency histogram registered");
    assert!(latency.count > 0);
    assert!(latency.sum > 0.0, "links have nonzero delay");
    // Per-host meters resolved for planned hosts.
    assert!(
        snapshot
            .counters
            .iter()
            .any(|(name, value)| name.starts_with("net.host.") && *value > 0),
        "per-host counters populated: {:?}",
        snapshot.counters
    );

    // Physical plane: periodic power-flow solves with wall-time and
    // NR-iteration histograms.
    let solves = snapshot.counter("powerflow.solves").unwrap_or(0);
    assert!(solves > 0, "periodic solves recorded");
    let solve_seconds = snapshot
        .histogram("powerflow.solve_seconds")
        .expect("solve wall-time histogram registered");
    assert_eq!(solve_seconds.count, solves);
    assert!(solve_seconds.sum > 0.0, "solves take nonzero wall time");
    let iterations = snapshot
        .histogram("powerflow.nr_iterations")
        .expect("NR iteration histogram registered");
    assert!(iterations.count > 0);
    // Registered lazily on first failure; a healthy run has none.
    assert_eq!(
        snapshot
            .counter("powerflow.convergence_failures")
            .unwrap_or(0),
        0
    );

    // Range runtime: step bookkeeping folded into the registry.
    assert_eq!(snapshot.counter("range.steps"), Some(range.steps_total()));
    let step_seconds = snapshot
        .histogram("range.step_seconds")
        .expect("step wall-time histogram registered");
    assert_eq!(step_seconds.count, range.steps_total());
}

#[test]
fn metrics_json_is_well_formed_and_carries_golden_keys() {
    let (mut range, telemetry) = instrumented_epic_range();
    range.run_for(SimDuration::from_secs(2));
    let json = telemetry.snapshot().to_json();

    // Golden keys the CLI contract (`run --metrics`) promises.
    assert!(json.contains("\"net.frames_delivered\""));
    assert!(json.contains("\"powerflow.solve_seconds\""));
    assert!(json.contains("\"counters\""));
    assert!(json.contains("\"journal_dropped\""));
    assert!(json.contains("\"+Inf\""), "histograms carry an +Inf bucket");
    // Nonzero counts actually serialized (not an empty shell).
    let solve_count = telemetry
        .snapshot()
        .histogram("powerflow.solve_seconds")
        .map(|h| h.count)
        .unwrap_or(0);
    assert!(solve_count > 0);
    assert!(json.contains(&format!("\"count\": {solve_count}")));
    // Balanced braces is a cheap well-formedness proxy for the hand-rolled
    // serializer (strings in metric names never contain braces).
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced JSON:\n{json}");
}

#[test]
fn journal_carries_packet_solve_and_trip_events() {
    let (mut range, telemetry) = instrumented_epic_range();
    range.run_for(SimDuration::from_secs(1));

    // Overload the smart-home feeder so TIED2's PTOC trips (same scenario
    // as the epic_range protection test).
    let load1 = range.power.load_by_name("EPIC/Load1").unwrap();
    range.power.load[load1.index()].p_mw = 0.2;
    range.run_for(SimDuration::from_secs(3));
    assert!(range.ieds["TIED2"].trip_count() >= 1, "scenario must trip");

    let events = telemetry.events();
    let has = |pred: &dyn Fn(&Event) -> bool| events.iter().any(|r| pred(&r.event));
    assert!(
        has(&|e| matches!(e, Event::PacketSent { .. })),
        "journal has PacketSent"
    );
    assert!(
        has(&|e| matches!(e, Event::PacketDelivered { .. })),
        "journal has PacketDelivered"
    );
    assert!(
        has(&|e| matches!(e, Event::SolveCompleted { .. })),
        "journal has SolveCompleted"
    );
    assert!(
        has(&|e| matches!(e, Event::ProtectionTrip { ied, .. } if ied == "TIED2")),
        "journal has the TIED2 ProtectionTrip"
    );

    // Sequence numbers are monotonic and timestamps never go backwards.
    for pair in events.windows(2) {
        assert!(pair[1].seq > pair[0].seq);
    }

    // The JSONL rendering is one typed object per line.
    let jsonl = telemetry.journal_jsonl();
    for line in jsonl.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        assert!(line.contains("\"type\":"), "line: {line}");
        assert!(line.contains("\"seq\":"), "line: {line}");
    }
    assert!(jsonl.lines().count() > 0);
}

#[test]
fn disabled_telemetry_is_behaviorally_invisible() {
    // The zero-overhead-when-off contract: instrumentation must never
    // perturb simulation results. Run the same scenario with telemetry
    // disabled and enabled; every SCADA tag must be byte-identical.
    let run = |telemetry: Telemetry| {
        let bundle = epic_bundle();
        let mut range =
            RangeBuilder::from_model(CompiledModel::shared(&bundle).expect("bundle compiles"))
                .telemetry(telemetry)
                .build()
                .expect("EPIC bundle must compile");
        range.run_for(SimDuration::from_secs(3));
        let scada = range.scada.as_ref().unwrap();
        let mut tags: Vec<(String, String)> = scada
            .tag_names()
            .into_iter()
            .map(|name| {
                let value = scada.tag_value(&name);
                (name, format!("{value:?}"))
            })
            .collect();
        tags.sort();
        (tags, range.steps_total(), range.store.snapshot().len())
    };
    let dark = run(Telemetry::disabled());
    let lit = run(Telemetry::new());
    assert_eq!(dark, lit, "telemetry must not perturb the simulation");
}

#[test]
fn per_plane_step_profile_partitions_step_wall_time() {
    // Every step's wall time is attributed across the co-simulation planes
    // (power solve, network dispatch, PLC scans, IED processing, SCADA
    // housekeeping, other apps); the attributed slices are disjoint
    // sub-intervals of the step, so their sum can never exceed the total
    // step wall time.
    let (mut range, telemetry) = instrumented_epic_range();
    for _ in 0..30 {
        range.step();
    }
    let snapshot = telemetry.snapshot();
    let total = snapshot
        .histogram("range.step_seconds")
        .expect("step wall-time histogram registered");
    assert_eq!(total.count, range.steps_total());

    let planes = ["power", "net", "ied", "plc", "scada", "other"];
    let mut plane_sum = 0.0;
    for plane in planes {
        let name = format!("step.plane.{plane}_seconds");
        let h = snapshot
            .histogram(&name)
            .unwrap_or_else(|| panic!("{name} histogram registered"));
        assert_eq!(h.count, range.steps_total(), "{name} observes every step");
        plane_sum += h.sum;
    }
    assert!(plane_sum > 0.0, "plane attribution must be nonzero");
    assert!(
        plane_sum <= total.sum * (1.0 + 1e-9) + 1e-12,
        "summed plane time {plane_sum} exceeds total step time {}",
        total.sum
    );
    // The EPIC range has real IEDs, a PLC, and SCADA attached, so at least
    // one application plane must have accumulated wall time.
    let app_planes: f64 = ["ied", "plc", "scada"]
        .iter()
        .map(|p| {
            snapshot
                .histogram(&format!("step.plane.{p}_seconds"))
                .map(|h| h.sum)
                .unwrap_or(0.0)
        })
        .sum();
    assert!(app_planes > 0.0, "application planes accumulate wall time");
}

#[test]
fn disabled_telemetry_registers_no_plane_profile() {
    // The profiling path must stay zero-overhead when telemetry is off:
    // the disabled snapshot carries no instruments at all.
    let bundle = epic_bundle();
    let mut range =
        RangeBuilder::from_model(CompiledModel::shared(&bundle).expect("bundle compiles"))
            .telemetry(Telemetry::disabled())
            .build()
            .expect("EPIC bundle must compile");
    for _ in 0..5 {
        range.step();
    }
    let snapshot = Telemetry::disabled().snapshot();
    assert!(snapshot.histograms.is_empty());
}
