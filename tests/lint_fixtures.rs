//! Golden tests for `sgcr-lint` over the fixture bundles in
//! `tests/fixtures/lint/`: each bundle is crafted to trip one specific
//! diagnostic code, and the tests pin the code, severity, and span.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sgcr_lint::source::LoadedBundle;
use sgcr_lint::{engine, json, lint_bundle, report, sarif, LintReport};
use sgcr_scl::{codes, Severity};
use std::path::PathBuf;

fn fixture_dir(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/lint")
        .join(name)
}

fn load_fixture(name: &str) -> (LoadedBundle, LintReport) {
    let bundle = LoadedBundle::from_dir(fixture_dir(name)).expect("fixture bundle loads");
    let report = lint_bundle(&bundle);
    (bundle, report)
}

#[test]
fn dangling_ied_reference_is_flagged() {
    let (_, report) = load_fixture("dangling_ied");
    let finding = report
        .with_code(codes::LNODE_UNKNOWN_IED)
        .next()
        .unwrap_or_else(|| panic!("expected SG0103, got {:#?}", report.diagnostics));
    assert!(finding.message.contains("GHOST"));
    let span = finding.span.as_ref().expect("SG0103 carries a span");
    assert_eq!(span.file, "substation01.ssd.xml");
    assert_eq!(span.line, 19, "LNode element line");
    // A dangling diagram reference is suspicious, not fatal.
    assert!(!report.has_errors(), "{:#?}", report.diagnostics);
}

#[test]
fn duplicate_ip_is_an_error_with_span() {
    let (_, report) = load_fixture("dup_ip");
    assert!(report.has_errors());
    let finding = report
        .with_code(codes::DUPLICATE_IP)
        .next()
        .unwrap_or_else(|| panic!("expected SG0201, got {:#?}", report.diagnostics));
    assert!(finding.message.contains("10.0.1.11"));
    let span = finding.span.as_ref().expect("SG0201 carries a span");
    assert_eq!(span.file, "substation01.scd.xml");
    assert_eq!(span.line, 17, "second ConnectedAP element line");
    // The duplicate is the only defect in this bundle.
    assert_eq!(report.error_count(), 1, "{:#?}", report.diagnostics);
}

#[test]
fn island_without_infeed_is_an_error() {
    let (_, report) = load_fixture("island");
    assert!(report.has_errors());
    let finding = report
        .with_code(codes::ISLAND_NO_SLACK)
        .next()
        .unwrap_or_else(|| panic!("expected SG0302, got {:#?}", report.diagnostics));
    let span = finding.span.as_ref().expect("SG0302 carries a span");
    assert_eq!(span.file, "substation01.ssd.xml");
}

#[test]
fn orphan_icd_is_a_warning_only() {
    let (_, report) = load_fixture("orphan_icd");
    assert!(!report.has_errors(), "{:#?}", report.diagnostics);
    let finding = report
        .with_code(codes::ORPHAN_ICD)
        .next()
        .unwrap_or_else(|| panic!("expected SG0501, got {:#?}", report.diagnostics));
    assert!(finding.message.contains("ORPHAN1"));
    assert_eq!(
        finding.span.as_ref().map(|s| s.file.as_str()),
        Some("orphan1.icd.xml")
    );
}

#[test]
fn st_logic_fixture_trips_every_sg6xxx_code() {
    let (_, report) = load_fixture("st_logic");
    let expect = [
        (codes::ST_PARSE_FAILED, Severity::Error),
        (codes::ST_TYPE_MISMATCH, Severity::Warning),
        (codes::ST_UNKNOWN_VARIABLE, Severity::Error),
        (codes::ST_BAD_FB_CALL, Severity::Warning),
        (codes::ST_READ_BEFORE_WRITE, Severity::Warning),
        (codes::ST_DEAD_STORE, Severity::Warning),
        (codes::ST_UNREACHABLE, Severity::Warning),
        (codes::ST_DIVISION_BY_ZERO, Severity::Error),
        (codes::PLC_BINDING_UNDECLARED, Severity::Error),
        (codes::SCADA_TAG_UNDRIVEN, Severity::Warning),
    ];
    for (code, severity) in expect {
        let finding = report
            .with_code(code)
            .next()
            .unwrap_or_else(|| panic!("expected {code}, got {:#?}", report.diagnostics));
        assert_eq!(finding.severity, severity, "{code}: {finding:?}");
        let span = finding.span.as_ref().unwrap_or_else(|| {
            panic!("{code} must carry a span: {finding:?}");
        });
        assert!(span.line > 0, "{code} span has no line: {finding:?}");
    }
    // Every SG6xxx span points into the file that holds the defect.
    for d in report
        .diagnostics
        .iter()
        .filter(|d| d.code.starts_with("SG6"))
    {
        let file = d.span.as_ref().map(|s| s.file.as_str()).unwrap_or("");
        if d.code == codes::SCADA_TAG_UNDRIVEN {
            assert_eq!(file, "scada_config.xml", "{d:?}");
        } else {
            assert_eq!(file, "plc_config.xml", "{d:?}");
        }
    }
    // Seeded positions: the division by a literal zero sits on the CDATA
    // line `out := raw / 0;` of the second PLC.
    let div = report.with_code(codes::ST_DIVISION_BY_ZERO).next().unwrap();
    let span = div.span.as_ref().unwrap();
    assert_eq!(span.line, 22, "division-by-zero line: {div:?}");
}

#[test]
fn epic_bundle_is_deliberately_clean() {
    // The shipped EPIC model set is the "known good" reference: the whole
    // roster — including the new SG6xxx semantic tier — must stay silent.
    let bundle = LoadedBundle::from_bundle(&sg_cyber_range::models::epic_bundle());
    let report = lint_bundle(&bundle);
    assert!(
        report.diagnostics.is_empty(),
        "EPIC must stay lint-clean: {:#?}",
        report.diagnostics
    );
}

#[test]
fn sarif_output_matches_golden_file() {
    let (_, report) = load_fixture("st_logic");
    let sarif = sarif::to_sarif(&report);
    let golden_path = fixture_dir("st_logic.sarif");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden_path.display()));
    assert_eq!(
        sarif, golden,
        "SARIF output drifted from tests/fixtures/lint/st_logic.sarif; \
         regenerate it with `sgml_processor lint tests/fixtures/lint/st_logic --format sarif`"
    );
}

#[test]
fn incremental_cache_is_byte_identical_and_reuses_queries() {
    // Copy the fixture into a scratch dir so we can edit one file.
    let scratch = std::env::temp_dir().join(format!("sgcr-lint-cli-{}", std::process::id()));
    let bundle_dir = scratch.join("bundle");
    let cache_dir = scratch.join("cache");
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&bundle_dir).unwrap();
    for entry in std::fs::read_dir(fixture_dir("st_logic")).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), bundle_dir.join(entry.file_name())).unwrap();
    }

    let cold = engine::lint_dir_incremental(&bundle_dir, &cache_dir).unwrap();
    assert_eq!(cold.stats.reused, 0, "{:?}", cold.stats);
    let direct = lint_bundle(&LoadedBundle::from_dir(&bundle_dir).unwrap());
    assert_eq!(cold.report, direct, "engine must match lint_bundle");

    // Warm run: everything answered from cache, bytes identical.
    let warm = engine::lint_dir_incremental(&bundle_dir, &cache_dir).unwrap();
    assert_eq!(warm.stats.recomputed, 0, "{:?}", warm.stats);
    assert!(warm.stats.reused >= 1, "{:?}", warm.stats);
    assert_eq!(json::to_json(&warm.report), json::to_json(&cold.report));
    assert_eq!(
        report::render_text(&warm.report, &warm.bundle),
        report::render_text(&cold.report, &cold.bundle),
        "cached stdout must be byte-identical"
    );

    // Touch one file: only its per-file query (plus the cross-file query)
    // recomputes; the report is unchanged because only whitespace moved.
    let ssd = bundle_dir.join("substation01.ssd.xml");
    let text = std::fs::read_to_string(&ssd).unwrap();
    std::fs::write(&ssd, format!("{text}\n")).unwrap();
    let edited = engine::lint_dir_incremental(&bundle_dir, &cache_dir).unwrap();
    assert_eq!(edited.stats.recomputed, 2, "{:?}", edited.stats);
    assert_eq!(
        edited.stats.reused,
        warm.stats.reused - 2,
        "{:?}",
        edited.stats
    );
    assert_eq!(json::to_json(&edited.report), json::to_json(&cold.report));

    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn text_rendering_includes_snippet_and_caret() {
    let (bundle, report) = load_fixture("dup_ip");
    let text = report::render_text(&report, &bundle);
    assert!(text.contains("error[SG0201]"), "{text}");
    assert!(text.contains("--> substation01.scd.xml:17:"), "{text}");
    assert!(text.contains("<ConnectedAP iedName=\"GIED2\""), "{text}");
    assert!(
        text.contains("= note: two access points share one IP address"),
        "{text}"
    );
}

#[test]
fn json_output_round_trips() {
    for fixture in ["dangling_ied", "dup_ip", "island", "orphan_icd", "st_logic"] {
        let (_, report) = load_fixture(fixture);
        let encoded = json::to_json(&report);
        let decoded = json::from_json(&encoded)
            .unwrap_or_else(|e| panic!("{fixture}: JSON round trip failed: {e}\n{encoded}"));
        assert_eq!(decoded, report, "{fixture}");
    }
}

#[test]
fn every_emitted_code_is_registered() {
    for fixture in ["dangling_ied", "dup_ip", "island", "orphan_icd", "st_logic"] {
        let (_, report) = load_fixture(fixture);
        assert!(
            !report.diagnostics.is_empty(),
            "{fixture} should trip its lint"
        );
        for diagnostic in &report.diagnostics {
            assert!(
                codes::lookup(diagnostic.code).is_some(),
                "{fixture}: unregistered code {}",
                diagnostic.code
            );
        }
    }
}
