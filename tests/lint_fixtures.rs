//! Golden tests for `sgcr-lint` over the fixture bundles in
//! `tests/fixtures/lint/`: each bundle is crafted to trip one specific
//! diagnostic code, and the tests pin the code, severity, and span.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sgcr_lint::source::LoadedBundle;
use sgcr_lint::{json, lint_bundle, report, LintReport};
use sgcr_scl::codes;
use std::path::PathBuf;

fn load_fixture(name: &str) -> (LoadedBundle, LintReport) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/lint")
        .join(name);
    let bundle = LoadedBundle::from_dir(&dir).expect("fixture bundle loads");
    let report = lint_bundle(&bundle);
    (bundle, report)
}

#[test]
fn dangling_ied_reference_is_flagged() {
    let (_, report) = load_fixture("dangling_ied");
    let finding = report
        .with_code(codes::LNODE_UNKNOWN_IED)
        .next()
        .unwrap_or_else(|| panic!("expected SG0103, got {:#?}", report.diagnostics));
    assert!(finding.message.contains("GHOST"));
    let span = finding.span.as_ref().expect("SG0103 carries a span");
    assert_eq!(span.file, "substation01.ssd.xml");
    assert_eq!(span.line, 19, "LNode element line");
    // A dangling diagram reference is suspicious, not fatal.
    assert!(!report.has_errors(), "{:#?}", report.diagnostics);
}

#[test]
fn duplicate_ip_is_an_error_with_span() {
    let (_, report) = load_fixture("dup_ip");
    assert!(report.has_errors());
    let finding = report
        .with_code(codes::DUPLICATE_IP)
        .next()
        .unwrap_or_else(|| panic!("expected SG0201, got {:#?}", report.diagnostics));
    assert!(finding.message.contains("10.0.1.11"));
    let span = finding.span.as_ref().expect("SG0201 carries a span");
    assert_eq!(span.file, "substation01.scd.xml");
    assert_eq!(span.line, 17, "second ConnectedAP element line");
    // The duplicate is the only defect in this bundle.
    assert_eq!(report.error_count(), 1, "{:#?}", report.diagnostics);
}

#[test]
fn island_without_infeed_is_an_error() {
    let (_, report) = load_fixture("island");
    assert!(report.has_errors());
    let finding = report
        .with_code(codes::ISLAND_NO_SLACK)
        .next()
        .unwrap_or_else(|| panic!("expected SG0302, got {:#?}", report.diagnostics));
    let span = finding.span.as_ref().expect("SG0302 carries a span");
    assert_eq!(span.file, "substation01.ssd.xml");
}

#[test]
fn orphan_icd_is_a_warning_only() {
    let (_, report) = load_fixture("orphan_icd");
    assert!(!report.has_errors(), "{:#?}", report.diagnostics);
    let finding = report
        .with_code(codes::ORPHAN_ICD)
        .next()
        .unwrap_or_else(|| panic!("expected SG0501, got {:#?}", report.diagnostics));
    assert!(finding.message.contains("ORPHAN1"));
    assert_eq!(
        finding.span.as_ref().map(|s| s.file.as_str()),
        Some("orphan1.icd.xml")
    );
}

#[test]
fn text_rendering_includes_snippet_and_caret() {
    let (bundle, report) = load_fixture("dup_ip");
    let text = report::render_text(&report, &bundle);
    assert!(text.contains("error[SG0201]"), "{text}");
    assert!(text.contains("--> substation01.scd.xml:17:"), "{text}");
    assert!(text.contains("<ConnectedAP iedName=\"GIED2\""), "{text}");
    assert!(
        text.contains("= note: two access points share one IP address"),
        "{text}"
    );
}

#[test]
fn json_output_round_trips() {
    for fixture in ["dangling_ied", "dup_ip", "island", "orphan_icd"] {
        let (_, report) = load_fixture(fixture);
        let encoded = json::to_json(&report);
        let decoded = json::from_json(&encoded)
            .unwrap_or_else(|e| panic!("{fixture}: JSON round trip failed: {e}\n{encoded}"));
        assert_eq!(decoded, report, "{fixture}");
    }
}

#[test]
fn every_emitted_code_is_registered() {
    for fixture in ["dangling_ied", "dup_ip", "island", "orphan_icd"] {
        let (_, report) = load_fixture(fixture);
        assert!(
            !report.diagnostics.is_empty(),
            "{fixture} should trip its lint"
        );
        for diagnostic in &report.diagnostics {
            assert!(
                codes::lookup(diagnostic.code).is_some(),
                "{fixture}: unregistered code {}",
                diagnostic.code
            );
        }
    }
}
