//! The file-driven workflow the paper's users follow: model files on disk →
//! SG-ML Processor → operational range; plus pcap export of range traffic.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::attack::{CaptureSummary, ProtocolClass};
use sg_cyber_range::core::{CompiledModel, CyberRange, SgmlBundle};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::{pcap, SimDuration};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sgcr-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn bundle_roundtrips_through_a_directory() {
    let dir = temp_dir("bundle");
    let original = epic_bundle();
    original.write_to_dir(&dir).expect("write bundle");

    // The directory holds self-describing files.
    let names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.contains(&"substation01.ssd.xml".to_string()),
        "{names:?}"
    );
    assert!(names.contains(&"GIED1.icd.xml".to_string()), "{names:?}");
    assert!(names.contains(&"ied_config.xml".to_string()));
    assert!(names.contains(&"power_config.xml".to_string()));

    let reloaded = SgmlBundle::from_dir(&dir).expect("reload bundle");
    assert_eq!(reloaded.ssds, original.ssds);
    assert_eq!(reloaded.scds, original.scds);
    assert_eq!(reloaded.seds, original.seds);
    assert_eq!(reloaded.ied_config, original.ied_config);
    assert_eq!(reloaded.scada_config, original.scada_config);
    assert_eq!(reloaded.plc_config, original.plc_config);
    assert_eq!(reloaded.power_extra, original.power_extra);
    // ICDs may be reordered lexicographically; compare as sets.
    let mut a = reloaded.icds.clone();
    let mut b = original.icds.clone();
    a.sort();
    b.sort();
    assert_eq!(a, b);

    // The reloaded bundle compiles and runs.
    let mut range = CyberRange::instantiate(
        CompiledModel::shared(&reloaded).expect("reloaded bundle compiles"),
    )
    .expect("reloaded bundle compiles");
    range.run_for(SimDuration::from_secs(1));
    assert!((range.solve_errors().len() == 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn edited_model_changes_the_generated_range() {
    // The paper's customization workflow: edit a shared XML template and
    // regenerate. Double one load in the SSD file on disk.
    let dir = temp_dir("edit");
    epic_bundle().write_to_dir(&dir).expect("write");
    let ssd_path = dir.join("substation01.ssd.xml");
    let text = std::fs::read_to_string(&ssd_path).unwrap();
    let edited = text.replace(r#"p_mw="0.015""#, r#"p_mw="0.03""#);
    assert_ne!(text, edited, "the expected load parameter exists");
    std::fs::write(&ssd_path, edited).unwrap();

    let bundle = SgmlBundle::from_dir(&dir).expect("reload");
    let range =
        CyberRange::instantiate(CompiledModel::shared(&bundle).expect("edited bundle compiles"))
            .expect("edited bundle compiles");
    let load = range.power.load_by_name("EPIC/Load1").unwrap();
    assert_eq!(range.power.load[load.index()].p_mw, 0.03);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_directory_and_empty_directory_are_reported() {
    assert!(SgmlBundle::from_dir("/no/such/sgcr/dir").is_err());
    let dir = temp_dir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let err = SgmlBundle::from_dir(&dir).unwrap_err();
    assert!(err.message.contains("no SCL model files"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn range_traffic_exports_as_wireshark_compatible_pcap() {
    let mut range =
        CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).expect("compiles"))
            .expect("compiles");
    let gied1 = range.node("GIED1").unwrap();
    range.net.enable_capture(gied1);
    range.run_for(SimDuration::from_secs(2));

    let frames = range.net.captured(gied1);
    assert!(!frames.is_empty());
    let summary = CaptureSummary::of(frames);
    assert!(summary.count(ProtocolClass::Mms) > 0);

    let file = pcap::to_pcap(frames);
    // Structural validation: magic + linktype + records sum to file length.
    assert_eq!(&file[..4], &0xa1b2_c3d4u32.to_le_bytes());
    assert_eq!(
        u32::from_le_bytes(file[20..24].try_into().unwrap()),
        1,
        "LINKTYPE_ETHERNET"
    );
    let mut offset = 24usize;
    let mut records = 0usize;
    while offset < file.len() {
        let incl = u32::from_le_bytes(file[offset + 8..offset + 12].try_into().unwrap()) as usize;
        let orig = u32::from_le_bytes(file[offset + 12..offset + 16].try_into().unwrap()) as usize;
        assert_eq!(incl, orig);
        offset += 16 + incl;
        records += 1;
    }
    assert_eq!(offset, file.len(), "records tile the file exactly");
    assert_eq!(records, frames.len());
    // Timestamps are monotone non-decreasing.
    let mut last = (0u32, 0u32);
    let mut cursor = 24usize;
    for _ in 0..records {
        let secs = u32::from_le_bytes(file[cursor..cursor + 4].try_into().unwrap());
        let micros = u32::from_le_bytes(file[cursor + 4..cursor + 8].try_into().unwrap());
        assert!((secs, micros) >= last);
        last = (secs, micros);
        let len = u32::from_le_bytes(file[cursor + 8..cursor + 12].try_into().unwrap()) as usize;
        cursor += 16 + len;
    }
}
