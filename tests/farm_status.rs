//! The farm's live observability plane end-to-end: a 4-tenant farm serves
//! `/metrics` (Prometheus text exposition), `/status` (deterministic
//! per-tenant JSON), and `/healthz` while it runs; the exposition format
//! itself is pinned by a golden fixture.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::CompiledModel;
use sg_cyber_range::farm::{http_get, run_farm_with_status, FarmConfig, StatusServer};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::SimDuration;
use sg_cyber_range::obs::json::Value;
use sg_cyber_range::obs::{json, prom, HistogramSnapshot, MetricsSnapshot};
use std::time::{Duration, Instant};

/// The Prometheus text exposition of a known snapshot is byte-pinned by a
/// committed golden file, so exporter drift is a reviewed diff, not an
/// accident a scrape config discovers in production.
#[test]
fn prometheus_exposition_matches_golden_fixture() {
    let snapshot = MetricsSnapshot {
        counters: vec![
            ("farm.ranges_total".to_string(), 4),
            ("range.solve_errors_total".to_string(), 1),
        ],
        gauges: vec![
            ("farm.tenants_running".to_string(), 2.0),
            ("range.step_overrun_ratio".to_string(), 0.25),
        ],
        histograms: vec![(
            "range.step_seconds".to_string(),
            HistogramSnapshot {
                count: 5,
                sum: 0.0105,
                buckets: vec![(0.001, 3), (0.01, 1), (f64::INFINITY, 1)],
            },
        )],
        journal_dropped: 2,
        spans_dropped: 0,
    };
    let rendered = prom::render(&snapshot);
    let golden = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/obs/metrics.prom"),
    )
    .expect("golden fixture readable");
    assert_eq!(
        rendered, golden,
        "Prometheus exposition drifted from tests/fixtures/obs/metrics.prom"
    );
}

/// Polls `path` on the endpoint until it answers or the deadline passes.
fn get_with_retry(addr: &str, path: &str, deadline: Duration) -> Option<String> {
    let start = Instant::now();
    loop {
        match http_get(addr, path) {
            Ok(body) => return Some(body),
            Err(_) if start.elapsed() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return None,
        }
    }
}

#[test]
fn live_farm_serves_status_and_metrics_over_http() {
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");

    // Calibrate the workload so the farm stays alive for a few wall-clock
    // seconds on this machine: time a small single-tenant run first.
    let probe = FarmConfig {
        tenants: 1,
        sim_seconds: 2,
        interval: Some(SimDuration::from_millis(1)),
        ..FarmConfig::default()
    };
    let probe_start = Instant::now();
    let probe_report = run_farm_with_status(model.clone(), &probe, None);
    assert_eq!(probe_report.tenants_failed, 0);
    let wall_per_sim_second = (probe_start.elapsed().as_secs_f64() / 2.0).max(1e-4);
    let sim_seconds = ((4.0 / wall_per_sim_second) as u64).clamp(4, 100_000);

    let server = StatusServer::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = server.local_addr().to_string();
    let config = FarmConfig {
        tenants: 4,
        threads: 2,
        sim_seconds,
        interval: Some(SimDuration::from_millis(1)),
        ..FarmConfig::default()
    };
    let farm = std::thread::spawn({
        let model = model.clone();
        move || run_farm_with_status(model, &config, Some(server))
    });

    // The endpoint must come up with the farm.
    let health = get_with_retry(&addr, "/healthz", Duration::from_secs(30))
        .expect("/healthz answers while the farm runs");
    assert_eq!(health, "ok\n");

    // `/status` round-trips through the JSON parser with the documented
    // shape: farm dimensions, live counts, and one entry per tenant.
    let status_body =
        get_with_retry(&addr, "/status", Duration::from_secs(10)).expect("/status answers");
    let status = json::parse(&status_body).expect("/status body is valid JSON");
    assert_eq!(status.get("tenants").and_then(Value::as_u64), Some(4));
    assert_eq!(status.get("threads").and_then(Value::as_u64), Some(2));
    assert_eq!(
        status.get("sim_seconds").and_then(Value::as_u64),
        Some(sim_seconds)
    );
    assert_eq!(status.get("scenario").and_then(Value::as_bool), Some(false));
    let per_tenant = status
        .get("per_tenant")
        .and_then(Value::as_array)
        .expect("per_tenant array present");
    assert_eq!(per_tenant.len(), 4);
    let states = ["pending", "running", "completed", "halted", "failed"];
    for (i, t) in per_tenant.iter().enumerate() {
        assert_eq!(t.get("tenant").and_then(Value::as_u64), Some(i as u64));
        let state = t.get("state").and_then(Value::as_str).expect("state");
        assert!(states.contains(&state), "unknown state {state}");
        assert!(t.get("steps").and_then(Value::as_u64).is_some());
        assert!(t.get("budget_overruns").and_then(Value::as_u64).is_some());
        assert!(t.get("solve_errors").and_then(Value::as_u64).is_some());
    }

    // `/metrics` is valid Prometheus text exposition with farm-aggregated
    // step-latency and per-plane histograms.
    let metrics =
        get_with_retry(&addr, "/metrics", Duration::from_secs(10)).expect("/metrics answers");
    assert!(metrics.contains("# TYPE sgcr_farm_ranges_total counter"));
    assert!(metrics.contains("# TYPE sgcr_range_step_seconds histogram"));
    assert!(metrics.contains("sgcr_range_step_seconds_bucket{le=\"+Inf\"}"));
    assert!(metrics.contains("# TYPE sgcr_step_plane_plc_seconds histogram"));
    assert!(metrics.contains("sgcr_step_plane_power_seconds_sum"));
    assert!(metrics.contains("sgcr_farm_tenants_running"));
    assert!(metrics.contains("sgcr_journal_dropped_total"));
    for line in metrics.lines() {
        assert!(
            line.starts_with('#') || line.split_whitespace().count() == 2,
            "malformed exposition line: {line}"
        );
    }

    // The merged registry stays bucket-bound while tenants step: a second
    // scrape moments later has exactly the same number of series lines.
    let metrics_again =
        get_with_retry(&addr, "/metrics", Duration::from_secs(10)).expect("/metrics answers");
    assert_eq!(
        metrics.lines().count(),
        metrics_again.lines().count(),
        "scrape size must not grow with executed steps"
    );

    let report = farm.join().expect("farm thread joins");
    assert_eq!(report.tenants_failed, 0, "{:?}", report.per_tenant);
    assert!(report.steps_total > 0);
    assert!(report.p99_step_seconds >= report.p50_step_seconds);
    assert!(report.max_step_seconds >= report.p99_step_seconds);
    #[cfg(target_os = "linux")]
    assert!(report.rss_peak_bytes > 0, "RSS sampled from procfs");

    // Once the farm finishes, the endpoint shuts down with it.
    let gone_by = Instant::now() + Duration::from_secs(5);
    while http_get(&addr, "/healthz").is_ok() {
        assert!(
            Instant::now() < gone_by,
            "endpoint must close after the farm"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn status_addr_bind_failure_fails_the_farm_up_front() {
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");
    let config = FarmConfig {
        tenants: 2,
        sim_seconds: 1,
        status_addr: Some("definitely-not-an-address".to_string()),
        ..FarmConfig::default()
    };
    let report = sg_cyber_range::farm::run_farm(model, &config);
    assert_eq!(report.tenants_failed, 2);
    assert!(report.per_tenant.iter().all(|t| t
        .error
        .as_deref()
        .is_some_and(|e| e.contains("status endpoint"))));
}
