//! The paper's §IV-B attack case studies, executed against the *generated*
//! EPIC cyber range: false command injection and ARP-spoofing MITM.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::attack::{
    CaptureSummary, FciAttackApp, FciPlan, MitmApp, MitmPlan, ProtocolClass, ScanPlan, ScannerApp,
    Transform,
};
use sg_cyber_range::core::{CompiledModel, CyberRange};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::{Ipv4Addr, SimDuration};

fn epic_range() -> CyberRange {
    CyberRange::instantiate(
        CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile"),
    )
    .expect("EPIC bundle must compile")
}

#[test]
fn fci_attack_opens_breaker_and_changes_power_flow() {
    let mut range = epic_range();
    range.run_for(SimDuration::from_secs(1));
    let before = range.last_result.line[0].p_from_mw.abs();
    assert!(before > 1e-6, "LGen carries power before the attack");

    // Compromised node on the generation segment's switch.
    range.add_host("malware-host", Ipv4Addr::new(10, 0, 1, 66), "GenBus");
    let victim = range.plan().host_ip("GIED1").unwrap();
    let (attack, report) = FciAttackApp::new(FciPlan {
        victim,
        item: "GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal".into(),
        value: false, // forged OPEN
        at_ms: 2000,
        interrogate: true,
    });
    range.attach_app("malware-host", Box::new(attack));

    range.run_for(SimDuration::from_secs(3));

    let report = report.lock().clone();
    assert_eq!(report.command_accepted, Some(true));
    assert!(
        !report.discovered_items.is_empty(),
        "recon listed the victim's model"
    );
    // Physical impact: the generation feeder is de-energized.
    assert!(!range.last_result.line[0].in_service);
    let cb = range.power.switch_by_name("EPIC/CB_GEN").unwrap();
    assert!(!range.power.switch[cb.index()].closed);
    // SCADA sees the consequence through the PLC-mediated feedback.
    let scada = range.scada.as_ref().unwrap();
    assert_eq!(
        scada.tag_value("CB_GEN_fb"),
        Some(0.0),
        "HMI shows CB_GEN open"
    );
}

#[test]
fn mitm_falsifies_scada_measurements_in_generated_range() {
    let mut range = epic_range();
    range.run_for(SimDuration::from_secs(2));
    let scada = range.scada.as_ref().unwrap().clone();
    let truthful = scada.tag_value("MicroFeeder_MW").expect("polled");
    assert!(truthful.abs() > 1e-6);

    // Attacker between the SCADA HMI and TIED1 (the MMS data source).
    // SCADA sits on the control bus; its traffic to TIED1 crosses the WAN.
    // Position the attacker on the control bus and poison both ends.
    range.add_host("mitm-box", Ipv4Addr::new(10, 0, 5, 66), "ControlBus");
    let scada_ip = range.plan().host_ip("SCADA").unwrap();
    let tied1_ip = range.plan().host_ip("TIED1").unwrap();
    let (mitm, handle) = MitmApp::new(MitmPlan {
        victim_a: scada_ip,
        victim_b: tied1_ip,
        start_ms: 3000,
        stop_ms: u64::MAX,
        transform: Transform::ScaleMmsFloats(10.0),
    });
    range.attach_app("mitm-box", Box::new(mitm));

    range.run_for(SimDuration::from_secs(6));

    let falsified = scada.tag_value("MicroFeeder_MW").expect("still polled");
    let report = handle.lock().clone();
    assert!(report.position_established, "ARP position established");
    assert!(report.modified > 0, "MMS responses rewritten: {report:?}");
    assert!(
        (falsified - truthful * 10.0).abs() < truthful.abs(),
        "HMI shows ~10x the true value: true={truthful}, shown={falsified}"
    );
    // Ground truth in the process store is untouched.
    let true_now = range
        .store
        .get_float("meas/EPIC/branch/LMicro/p_mw")
        .unwrap();
    assert!((true_now - truthful).abs() < truthful.abs() * 0.5);
}

#[test]
fn recon_scan_maps_the_generation_segment() {
    let mut range = epic_range();
    range.add_host("recon-box", Ipv4Addr::new(10, 0, 1, 99), "GenBus");
    let (scanner, report) = ScannerApp::new(ScanPlan {
        first: Ipv4Addr::new(10, 0, 1, 1),
        last: Ipv4Addr::new(10, 0, 1, 30),
        ports: vec![102, 502],
        probe_interval: SimDuration::from_millis(20),
    });
    range.attach_app("recon-box", Box::new(scanner));
    range.run_for(SimDuration::from_secs(6));

    let report = report.lock().clone();
    assert!(report.finished);
    // GIED1 and GIED2 live on 10.0.1.x.
    let gied1 = range.plan().host_ip("GIED1").unwrap();
    let gied2 = range.plan().host_ip("GIED2").unwrap();
    let found: Vec<Ipv4Addr> = report.hosts.iter().map(|(ip, _)| *ip).collect();
    assert!(found.contains(&gied1), "{found:?}");
    assert!(found.contains(&gied2), "{found:?}");
    assert_eq!(report.open_ports.get(&gied1), Some(&vec![102]));
}

#[test]
fn capture_on_ied_sees_grid_protocol_mix() {
    let mut range = epic_range();
    let gied1 = range.node("GIED1").unwrap();
    range.net.enable_capture(gied1);
    range.run_for(SimDuration::from_secs(3));
    let summary = CaptureSummary::of(range.net.captured(gied1));
    // The IED terminates MMS sessions (CPLC polling) and hears GOOSE.
    assert!(summary.count(ProtocolClass::Mms) > 0, "{summary}");
    assert!(summary.count(ProtocolClass::Goose) > 0, "{summary}");
}

#[test]
fn mitm_drop_transform_denies_visibility_then_tcp_recovers() {
    let mut range = epic_range();
    range.run_for(SimDuration::from_secs(2));
    let scada = range.scada.as_ref().unwrap().clone();
    let fresh_before = scada.tag("MicroFeeder_MW").unwrap();
    assert!(fresh_before.updated_ms > 0);

    range.add_host("dropper", Ipv4Addr::new(10, 0, 5, 67), "ControlBus");
    let scada_ip = range.plan().host_ip("SCADA").unwrap();
    let tied1_ip = range.plan().host_ip("TIED1").unwrap();
    let (mitm, handle) = MitmApp::new(MitmPlan {
        victim_a: scada_ip,
        victim_b: tied1_ip,
        start_ms: 3_000,
        stop_ms: 8_000,
        transform: Transform::Drop,
    });
    range.attach_app("dropper", Box::new(mitm));

    // During the drop window the tag stops updating (denial of visibility).
    range.run_for(SimDuration::from_secs(5));
    let during = scada.tag("MicroFeeder_MW").unwrap();
    assert!(
        during.updated_ms < 4_500,
        "no fresh updates while traffic is blackholed: {}",
        during.updated_ms
    );
    let report = handle.lock().clone();
    assert!(report.dropped > 0, "{report:?}");

    // After repair, TCP retransmission + fresh polls recover the stream.
    range.run_for(SimDuration::from_secs(6));
    let after = scada.tag("MicroFeeder_MW").unwrap();
    assert!(
        after.updated_ms > 8_000,
        "updates resume after the attack window: {}",
        after.updated_ms
    );
}
