//! The supervised long-lived farm end-to-end: crash/halt recovery with
//! bounded restarts from mid-run checkpoints, the dynamic tenant lifecycle
//! API (`POST /tenants`, `DELETE /tenants/<id>`), and a status endpoint
//! that answers hostile input with 4xx instead of wedging.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{Checkpoint, CompiledModel};
use sg_cyber_range::farm::{
    http_get, http_request, run_farm, run_farm_with_status, FarmConfig, StatusServer,
};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::SimDuration;
use sg_cyber_range::obs::json::{self, Value};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A scratch directory under the target dir that is removed on drop, so
/// repeated test runs never see stale tenant sinks.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir creates");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Polls `path` on the endpoint until it answers or the deadline passes.
fn get_with_retry(addr: &str, path: &str, deadline: Duration) -> Option<String> {
    let start = Instant::now();
    loop {
        match http_get(addr, path) {
            Ok(body) => return Some(body),
            Err(_) if start.elapsed() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => return None,
        }
    }
}

/// A tenant that halts every attempt is restarted from its checkpoint with
/// backoff until the circuit breaker gives it up — and every lifecycle
/// transition lands in the farm journal and the report.
#[test]
fn supervisor_restarts_halted_tenant_then_gives_up() {
    let scratch = ScratchDir::new("farm_supervisor_giveup");
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");
    let config = FarmConfig {
        tenants: 1,
        threads: 1,
        sim_seconds: 2,
        // An impossible budget: every step overruns, so every attempt halts
        // after exactly `max_overruns` steps.
        step_budget_ms: Some(0),
        max_overruns: 2,
        restart_max: 2,
        restart_backoff_ms: 1,
        out_dir: Some(scratch.0.clone()),
        ..FarmConfig::default()
    };

    let report = run_farm(model, &config);

    assert_eq!(report.tenants_failed, 0, "{:?}", report.per_tenant);
    assert_eq!(report.restarts_total, 2, "restart budget fully spent");
    assert_eq!(report.tenants_given_up, 1);
    let tenant = &report.per_tenant[0];
    assert!(tenant.given_up, "circuit breaker abandoned the tenant");
    assert!(tenant.halted, "the final attempt still halted");
    assert_eq!(tenant.restarts, 2);
    assert!(
        tenant.steps >= 4,
        "restarts resume from the checkpoint and make forward progress \
         (2 steps per attempt over 3 attempts), got {} steps",
        tenant.steps
    );

    // Checkpoint capture latency flows into the farm-level report.
    assert!(report.checkpoint_p50_seconds > 0.0);
    assert!(report.checkpoint_p99_seconds >= report.checkpoint_p50_seconds);

    // The supervision story is replayable from the farm journal.
    let farm_journal =
        std::fs::read_to_string(scratch.0.join("farm.journal.jsonl")).expect("farm journal");
    assert!(farm_journal.contains("\"type\":\"TenantCheckpointed\""));
    assert!(farm_journal.contains("\"type\":\"TenantRestarted\""));
    assert!(farm_journal.contains("\"restarts\":1"));
    assert!(farm_journal.contains("\"restarts\":2"));
    assert!(farm_journal.contains("\"type\":\"TenantGivenUp\""));
}

/// `POST /tenants` admits a tenant mid-run (and sheds load with 429 at the
/// cap), `DELETE /tenants/<id>` drains gracefully: a final checkpoint file
/// and flushed sinks on disk, `drained` state in the report.
#[test]
fn lifecycle_api_admits_and_drains_tenants_mid_run() {
    let scratch = ScratchDir::new("farm_lifecycle");
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");
    let server = StatusServer::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = server.local_addr().to_string();
    let config = FarmConfig {
        tenants: 1,
        threads: 2,
        // Far longer than the test will let it run: the drain ends it.
        sim_seconds: 600,
        interval: Some(SimDuration::from_millis(1)),
        admit_max: 1,
        out_dir: Some(scratch.0.clone()),
        ..FarmConfig::default()
    };
    let farm = std::thread::spawn({
        let model = model.clone();
        move || run_farm_with_status(model, &config, Some(server))
    });
    assert_eq!(
        get_with_retry(&addr, "/healthz", Duration::from_secs(30)).as_deref(),
        Some("ok\n")
    );

    // Admit one extra tenant; the next admission is over the cap.
    let (code, body) = http_request(&addr, "POST", "/tenants").expect("admit answers");
    assert_eq!(code, 201, "{body}");
    assert!(body.contains("\"tenant\":1"), "{body}");
    let (code, _) = http_request(&addr, "POST", "/tenants").expect("second admit answers");
    assert_eq!(code, 429, "admission over the cap sheds load");

    // Both tenants become visible and running; wait so each has an attempt
    // (and therefore a checkpoint anchor) before draining.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let status =
            json::parse(&http_get(&addr, "/status").expect("/status answers")).expect("valid JSON");
        assert_eq!(status.get("tenants").and_then(Value::as_u64), Some(2));
        let per_tenant = status.get("per_tenant").and_then(Value::as_array).unwrap();
        assert_eq!(per_tenant.len(), 2);
        let all_running = per_tenant.iter().all(|t| {
            t.get("state").and_then(Value::as_str) == Some("running")
                && t.get("steps").and_then(Value::as_u64).unwrap_or(0) > 0
        });
        if all_running {
            break;
        }
        assert!(Instant::now() < deadline, "tenants must start: {status:?}");
        std::thread::sleep(Duration::from_millis(10));
    }

    // The supervision instruments are registered (and scrapeable) even
    // before any restart happens.
    let metrics = http_get(&addr, "/metrics").expect("/metrics answers");
    assert!(metrics.contains("# TYPE sgcr_farm_restarts_total counter"));
    assert!(metrics.contains("# TYPE sgcr_farm_checkpoint_seconds histogram"));

    // Bad lifecycle requests answer 4xx.
    let (code, _) = http_request(&addr, "DELETE", "/tenants/99").expect("answers");
    assert_eq!(code, 404, "unknown tenant");
    let (code, _) = http_request(&addr, "DELETE", "/tenants/zero").expect("answers");
    assert_eq!(code, 400, "non-numeric tenant id");

    // Drain both tenants; the farm winds down on its own.
    for tenant in [0usize, 1] {
        let (code, body) =
            http_request(&addr, "DELETE", &format!("/tenants/{tenant}")).expect("drain answers");
        assert_eq!(code, 202, "{body}");
        assert!(body.contains("\"draining\":true"), "{body}");
    }

    let report = farm.join().expect("farm thread joins");
    assert_eq!(report.tenants_failed, 0, "{:?}", report.per_tenant);
    assert_eq!(report.tenants_drained, 2);
    assert_eq!(report.per_tenant.len(), 2, "admitted tenant is reported");
    for t in &report.per_tenant {
        assert!(t.drained, "tenant {} drained", t.tenant);
        assert!(!t.given_up);

        // Graceful drain leaves a final checkpoint beside flushed sinks.
        let checkpoint_path = scratch
            .0
            .join(format!("tenant-{:04}.checkpoint.json", t.tenant));
        let text = std::fs::read_to_string(&checkpoint_path).expect("checkpoint file written");
        let checkpoint = Checkpoint::from_json(&text).expect("checkpoint file decodes");
        assert_eq!(
            checkpoint.steps(),
            t.steps,
            "checkpoint is the drain boundary"
        );
        let journal = scratch
            .0
            .join(format!("tenant-{:04}.journal.jsonl", t.tenant));
        assert!(journal.is_file(), "drained tenant's journal is flushed");
    }
}

/// Sends `payload` raw, optionally half-closing the write side, and returns
/// the HTTP status line the endpoint answers with (empty if it just closed).
fn raw_request(addr: &str, payload: &[u8], half_close: bool) -> String {
    let mut stream = TcpStream::connect(addr).expect("endpoint connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(payload).expect("payload sends");
    stream.flush().unwrap();
    if half_close {
        stream.shutdown(std::net::Shutdown::Write).unwrap();
    }
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    String::from_utf8_lossy(&response)
        .lines()
        .next()
        .unwrap_or("")
        .to_string()
}

/// Hostile input gets a best-effort 4xx and never wedges the accept loop:
/// oversized request heads, truncated requests, malformed request lines,
/// unknown methods, and unknown paths are all answered, and `/healthz`
/// still works afterwards.
#[test]
fn status_endpoint_survives_hostile_input() {
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");
    let server = StatusServer::bind("127.0.0.1:0").expect("ephemeral port binds");
    let addr = server.local_addr().to_string();
    let config = FarmConfig {
        tenants: 1,
        threads: 1,
        sim_seconds: 600,
        interval: Some(SimDuration::from_millis(1)),
        ..FarmConfig::default()
    };
    let farm = std::thread::spawn({
        let model = model.clone();
        move || run_farm_with_status(model, &config, Some(server))
    });
    assert_eq!(
        get_with_retry(&addr, "/healthz", Duration::from_secs(30)).as_deref(),
        Some("ok\n")
    );

    // An oversized request line (no terminator within the 8 KiB head cap).
    let oversized = vec![b'A'; 16 * 1024];
    assert!(
        raw_request(&addr, &oversized, false).contains(" 431 "),
        "oversized head must be rejected"
    );

    // A truncated request: the client hangs up before the blank line.
    assert!(
        raw_request(&addr, b"GET /status HTTP/1.1\r\n", true).contains(" 400 "),
        "truncated head must be rejected"
    );

    // A request line without a path.
    assert!(
        raw_request(&addr, b"GARBAGE\r\n\r\n", true).contains(" 400 "),
        "malformed request line must be rejected"
    );

    // Unknown method and unknown path.
    assert_eq!(http_request(&addr, "BREW", "/status").unwrap().0, 405);
    assert_eq!(http_request(&addr, "GET", "/no-such-path").unwrap().0, 404);
    assert_eq!(http_request(&addr, "POST", "/status").unwrap().0, 404);

    // The endpoint is unfazed: health and admin both still answer.
    assert_eq!(http_get(&addr, "/healthz").unwrap(), "ok\n");
    let (code, _) = http_request(&addr, "DELETE", "/tenants/0").expect("drain answers");
    assert_eq!(code, 202);

    let report = farm.join().expect("farm thread joins");
    assert_eq!(report.tenants_drained, 1);
    assert_eq!(report.tenants_failed, 0, "{:?}", report.per_tenant);
}
