//! Failure injection on the generated range: infeasible power flow, PLC
//! program faults, link failures, and hostile/garbage traffic — the range
//! must degrade gracefully, never panic.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange, PlcConfig, PlcLogic, SgmlBundle};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::{HostCtx, Ipv4Addr, SimDuration, SocketApp};

fn epic_range() -> CyberRange {
    CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).expect("EPIC compiles"))
        .expect("EPIC compiles")
}

#[test]
fn infeasible_power_flow_is_survived() {
    let mut range = epic_range();
    range.run_for(SimDuration::from_secs(1));
    // Make the model electrically impossible: absurd load on a weak feeder.
    let load = range.power.load_by_name("EPIC/Load1").unwrap();
    range.power.load[load.index()].p_mw = 1.0e6;
    range.run_for(SimDuration::from_secs(1));
    // The step loop recorded solve errors but kept the range alive
    // (protection may legitimately have opened a breaker meanwhile).
    assert!(range.solve_errors().len() > 0, "solve failures recorded");
    // Cyber side kept running: SCADA still polls the (stale or post-trip)
    // state without crashing.
    range.run_for(SimDuration::from_secs(1));
    assert!(range.scada.as_ref().unwrap().polls_completed() > 0);
}

#[test]
fn plc_program_fault_latches_and_reports() {
    let mut bundle: SgmlBundle = epic_bundle();
    // Replace CPLC logic with a program that divides by an input that will
    // be zero at runtime.
    let mut config = PlcConfig::parse(bundle.plc_config.as_ref().unwrap()).unwrap();
    config.plcs[0].logic = PlcLogic::StructuredText(
        "PROGRAM bad VAR x AT %QW0 : INT; d : INT; END_VAR x := 100 / d; END_PROGRAM".to_string(),
    );
    config.plcs[0].reads.clear();
    config.plcs[0].writes.clear();
    bundle.plc_config = Some(config.to_xml());
    let mut range = CyberRange::instantiate(CompiledModel::shared(&bundle).expect("compiles"))
        .expect("compiles");
    range.run_for(SimDuration::from_secs(2));
    let status = range.plcs["CPLC"].lock();
    assert!(status.fault.is_some(), "fault latched: {:?}", status.fault);
    assert!(
        status.fault.as_ref().unwrap().contains("division by zero"),
        "{:?}",
        status.fault
    );
    // IEDs unaffected.
    drop(status);
    let p = range.ieds["GIED1"]
        .model
        .read("GIED1LD0/MMXU1$MX$TotW$mag$f")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(p.abs() > 1e-9);
}

#[test]
fn link_failure_stalls_scada_but_not_the_grid() {
    let mut range = epic_range();
    range.run_for(SimDuration::from_secs(2));
    let scada = range.scada.as_ref().unwrap().clone();
    let before = scada.tag("MicroFeeder_MW").unwrap();

    // Cut TIED1's access link: its MMS source goes dark.
    let tied1 = range.node("TIED1").unwrap();
    let trans_bus = range.net.node_by_name("TransBus").unwrap();
    assert!(range.net.set_link_state(tied1, trans_bus, false));

    range.run_for(SimDuration::from_secs(4));
    let after = scada.tag("MicroFeeder_MW").unwrap();
    // The tag's last update time froze (no fresh polls), value retained.
    assert_eq!(
        before.value, after.value,
        "stale value retained after link cut"
    );
    assert!(
        after.updated_ms <= before.updated_ms + 1500,
        "no fresh updates after the cut: {} vs {}",
        after.updated_ms,
        before.updated_ms
    );
    // The physical side and other tags keep flowing.
    assert!((range.solve_errors().len() == 0));
    let gen_tag = scada.tag("GenFeeder_kW").unwrap();
    assert!(
        gen_tag.updated_ms > after.updated_ms,
        "other sources still update"
    );

    // Repair: polling resumes (TCP retransmission recovers the session or a
    // fresh poll round reads again).
    assert!(range.net.set_link_state(tied1, trans_bus, true));
    range.run_for(SimDuration::from_secs(4));
    let repaired = scada.tag("MicroFeeder_MW").unwrap();
    assert!(
        repaired.updated_ms > after.updated_ms,
        "updates resume after repair"
    );
}

/// An app that sprays garbage at every service port of a victim.
struct GarbageSprayer {
    victim: Ipv4Addr,
    conn: Option<sg_cyber_range::net::ConnId>,
}

impl SocketApp for GarbageSprayer {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // Garbage to the R-GOOSE UDP port.
        ctx.send_udp(self.victim, 102, 4444, &[0xff; 64]);
        ctx.send_udp(self.victim, 102, 4444, &[0x01, 0x40, 0x81]);
        // Garbage over TCP to the MMS port.
        self.conn = Some(ctx.tcp_connect(self.victim, 102));
    }
    fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: sg_cyber_range::net::ConnId) {
        ctx.tcp_send(conn, &[0x03, 0x00, 0x00, 0xff]); // TPKT announcing 255 bytes
        ctx.tcp_send(conn, &[0xde, 0xad, 0xbe, 0xef]);
        ctx.tcp_send(conn, b"GET / HTTP/1.1\r\n\r\n"); // wrong protocol entirely
    }
}

#[test]
fn garbage_traffic_does_not_kill_the_ied() {
    let mut range = epic_range();
    range.add_host("fuzzer", Ipv4Addr::new(10, 0, 1, 77), "GenBus");
    let victim = range.plan().host_ip("GIED1").unwrap();
    range.attach_app("fuzzer", Box::new(GarbageSprayer { victim, conn: None }));
    range.run_for(SimDuration::from_secs(3));
    // GIED1 still serves its data model (CPLC keeps reading through it).
    let plc = range.plcs["CPLC"].lock();
    assert!(plc.reads_ok > 0, "IED still answers MMS after garbage");
    assert_eq!(plc.fault, None);
}

#[test]
fn breaker_command_for_unknown_target_is_ignored() {
    let mut range = epic_range();
    range.store.set(
        "cmd/EPIC/cb/NO_SUCH_CB/close",
        sg_cyber_range::kvstore::Value::Bool(false),
    );
    range.store.set(
        "cmd/EPIC/load/NO_SUCH_LOAD/p_mw",
        sg_cyber_range::kvstore::Value::Float(1.0),
    );
    range
        .store
        .set("cmd/garbage", sg_cyber_range::kvstore::Value::Bool(true));
    range.run_for(SimDuration::from_secs(1));
    assert!((range.solve_errors().len() == 0));
    // Real breakers untouched.
    assert!(range.power.switch.iter().all(|s| s.closed));
}
