//! The autonomous adversary plane, end to end: attack-graph derivation on
//! the generated EPIC range, and seeded goal-driven campaign planning whose
//! exercises replay byte-identically.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic

use sg_cyber_range::adversary::{plan, AttackGraph, EdgeKind, PlanRequest};
use sg_cyber_range::core::{CompiledModel, RangeBuilder};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::obs::Telemetry;
use sg_cyber_range::scenario::{run_exercise, Scenario};

const ADVERSARY_SCENARIO: &str = r#"<Scenario name="adv-replay" durationMs="8000">
  <Adversary goal="breakerOpen:EPIC/CB_GEN" budget="4" seed="7"/>
</Scenario>"#;

fn epic_graph() -> AttackGraph {
    let model = CompiledModel::compile(&epic_bundle()).expect("EPIC bundle must compile");
    AttackGraph::derive(&model)
}

/// Wall-clock solve durations are the one nondeterministic journal field;
/// strip them so the rest of the line can be compared byte-for-byte.
fn strip_wall_clock(journal: &str) -> String {
    journal
        .lines()
        .map(|line| match line.find(",\"seconds\":") {
            Some(start) => {
                let rest = &line[start + ",\"seconds\":".len()..];
                let end = rest
                    .find(|c: char| !matches!(c, '0'..='9' | '.' | 'e' | 'E' | '+' | '-'))
                    .unwrap_or(rest.len());
                format!("{}{}\n", &line[..start], &rest[end..])
            }
            None => format!("{line}\n"),
        })
        .collect()
}

/// One full exercise run with the planner-expanded scenario: returns the
/// report JSON and the (wall-clock-stripped) journal.
fn run_adversary_exercise() -> (String, String) {
    let bundle = epic_bundle();
    let scenario = Scenario::parse(ADVERSARY_SCENARIO).unwrap();
    let telemetry = Telemetry::new();
    let mut range = RangeBuilder::from_model(CompiledModel::shared(&bundle).unwrap())
        .telemetry(telemetry.clone())
        .build()
        .unwrap();
    let report = run_exercise(&mut range, &scenario).expect("campaign must plan and run");
    (
        report.to_json(),
        strip_wall_clock(&telemetry.journal_jsonl()),
    )
}

#[test]
fn epic_attack_graph_carries_protection_and_goose_edges() {
    let graph = epic_graph();

    // GIED1's PTOC protection function trips the generator breaker: that
    // dependency is what makes false command injection on GIED1 matter.
    assert!(
        graph.has_edge(
            "host:GIED1",
            "breaker:EPIC/CB_GEN",
            EdgeKind::ProtectionTrips
        ),
        "missing GIED1 -> EPIC/CB_GEN protection edge:\n{}",
        graph.to_dot()
    );

    // The PLC subscribes to GIED1's GOOSE control block — the lateral
    // dependency a campaign can exploit or disrupt.
    assert!(
        graph.has_edge("host:GIED1", "host:CPLC", EdgeKind::GooseSubscription),
        "missing GIED1 -> CPLC GOOSE subscription edge:\n{}",
        graph.to_dot()
    );
}

#[test]
fn same_seed_plans_are_byte_identical() {
    let graph = epic_graph();
    let request = PlanRequest {
        goal: "breakerOpen:EPIC/CB_GEN",
        budget: 4,
        seed: 7,
        ..PlanRequest::default()
    };
    let first = plan(&graph, &request).unwrap().to_json();
    let second = plan(&graph, &request).unwrap().to_json();
    assert_eq!(first, second, "seeded planner diverged on identical input");
}

#[test]
fn different_seeds_diverge() {
    let graph = epic_graph();
    let base = plan(
        &graph,
        &PlanRequest {
            goal: "breakerOpen:EPIC/CB_GEN",
            budget: 4,
            seed: 7,
            ..PlanRequest::default()
        },
    )
    .unwrap()
    .to_json();
    // Some nearby seed must produce a different campaign (victim choice,
    // host addresses, or timing); if none of 64 do, the "seeded" planner
    // is ignoring its seed.
    let diverged = (1..64).any(|seed| {
        plan(
            &graph,
            &PlanRequest {
                goal: "breakerOpen:EPIC/CB_GEN",
                budget: 4,
                seed,
                ..PlanRequest::default()
            },
        )
        .unwrap()
        .to_json()
            != base
    });
    assert!(diverged, "64 different seeds all produced the same plan");
}

#[test]
fn adversary_exercise_replays_byte_identically() {
    let (report_a, journal_a) = run_adversary_exercise();
    let (report_b, journal_b) = run_adversary_exercise();

    assert_eq!(report_a, report_b, "exercise report diverged across runs");
    assert_eq!(
        journal_a, journal_b,
        "exercise journal diverged across runs"
    );

    // The campaign actually happened: planned, multi-stage, goal reached.
    assert!(journal_a.contains("\"AdversaryPlanned\""), "{journal_a}");
    assert!(
        journal_a.contains("\"AdversaryGoalReached\""),
        "{journal_a}"
    );
    assert!(
        journal_a.matches("\"AdversaryActionStarted\"").count() >= 3,
        "expected a campaign of at least 3 stages"
    );
    assert!(report_a.contains("\"adv-goal\""), "{report_a}");
}
