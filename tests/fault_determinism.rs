//! Deterministic fault injection end-to-end: a seeded faulted run replays
//! byte-identically (journal and counters), a different seed produces a
//! different impairment pattern, and power-flow non-convergence degrades
//! measurement quality instead of presenting silently-fresh values.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange, RangeBuilder};
use sg_cyber_range::faults::LinkFault;
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::SimDuration;
use sg_cyber_range::obs::{Event, Telemetry};
use sg_cyber_range::scada::Quality;

/// Runs the EPIC range for six seconds with a lossy, jittery SCADA access
/// link under the given fault seed. Returns the full event journal and the
/// metric counters. (Histograms record wall-clock solve times, so only the
/// counters are replay-comparable.)
fn faulted_run(seed: u64) -> (String, Vec<(String, u64)>) {
    let bundle = epic_bundle();
    let telemetry = Telemetry::new();
    let mut range =
        RangeBuilder::from_model(CompiledModel::shared(&bundle).expect("bundle compiles"))
            .telemetry(telemetry.clone())
            .fault_seed(seed)
            .build()
            .expect("EPIC bundle must compile");
    let fault = LinkFault {
        loss: 0.15,
        jitter_ns: 2_000_000,
        ..LinkFault::default()
    };
    assert!(range.set_link_fault("SCADA", "ControlBus", fault));
    range.run_for(SimDuration::from_secs(6));
    (telemetry.journal_jsonl(), telemetry.snapshot().counters)
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

/// Drops the one wall-clock field in the journal (`SolveCompleted.seconds`)
/// so two replays of the same simulation compare byte-identically.
fn strip_wall_clock(journal: &str) -> String {
    journal
        .lines()
        .map(|line| match line.find(",\"seconds\":") {
            Some(start) => {
                let end = line[start..].find('}').map_or(line.len(), |j| start + j);
                format!("{}{}\n", &line[..start], &line[end..])
            }
            None => format!("{line}\n"),
        })
        .collect()
}

#[test]
fn same_seed_replays_byte_identically() {
    let (journal_a, counters_a) = faulted_run(42);
    let (journal_b, counters_b) = faulted_run(42);
    assert!(
        counter(&counters_a, "net.frames_dropped") > 0,
        "a 15% lossy link must drop frames: {counters_a:?}"
    );
    assert_eq!(
        strip_wall_clock(&journal_a),
        strip_wall_clock(&journal_b),
        "same seed must replay byte-identically (modulo wall-clock solve time)"
    );
    assert_eq!(counters_a, counters_b);
}

#[test]
fn different_seed_changes_the_impairment_pattern() {
    let (journal_a, counters_a) = faulted_run(1);
    let (journal_b, counters_b) = faulted_run(2);
    assert!(counter(&counters_a, "net.frames_dropped") > 0);
    assert!(counter(&counters_b, "net.frames_dropped") > 0);
    assert_ne!(
        strip_wall_clock(&journal_a),
        strip_wall_clock(&journal_b),
        "different seeds must draw different loss/jitter patterns"
    );
}

#[test]
fn snapshot_restore_replays_byte_identically_from_shared_model() {
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");
    let fault = LinkFault {
        loss: 0.15,
        jitter_ns: 2_000_000,
        ..LinkFault::default()
    };

    // Two independent tenants stamped out from the *same* Arc'd model.
    let first_telemetry = Telemetry::new();
    let mut tenant_a = RangeBuilder::from_model(model.clone())
        .telemetry(first_telemetry.clone())
        .fault_seed(7)
        .build()
        .expect("instantiates from shared model");
    let tenant_b = CyberRange::instantiate(model.clone()).expect("second tenant instantiates");
    assert!(
        std::sync::Arc::ptr_eq(tenant_a.model(), tenant_b.model()),
        "tenants share one compiled model, not copies"
    );

    assert!(tenant_a.set_link_fault("SCADA", "ControlBus", fault));
    tenant_a.run_for(SimDuration::from_secs(6));
    let first_journal = first_telemetry.journal_jsonl();
    assert!(tenant_a.steps_total() > 0);
    assert_eq!(
        tenant_b.steps_total(),
        0,
        "tenant A's run never leaks into B"
    );

    // Restoring the snapshot rewinds tenant A to generation zero; replaying
    // the same fault under the same seed is byte-identical to the first run.
    let snapshot = tenant_a.snapshot();
    let replay_telemetry = Telemetry::new();
    tenant_a
        .restore_with(replay_telemetry.clone())
        .expect("restore succeeds");
    assert_eq!(
        tenant_a.steps_total(),
        0,
        "restore rewinds to generation zero"
    );
    assert!(tenant_a.set_link_fault("SCADA", "ControlBus", fault));
    tenant_a.run_for(SimDuration::from_secs(6));
    assert_eq!(
        strip_wall_clock(&first_journal),
        strip_wall_clock(&replay_telemetry.journal_jsonl()),
        "restored range must replay byte-identically (modulo wall-clock solve time)"
    );

    // A brand-new range instantiated from the snapshot replays identically
    // too — the snapshot is a complete deterministic restart recipe.
    let fresh_telemetry = Telemetry::new();
    let mut fresh = snapshot
        .instantiate(fresh_telemetry.clone())
        .expect("snapshot instantiates");
    assert!(fresh.set_link_fault("SCADA", "ControlBus", fault));
    fresh.run_for(SimDuration::from_secs(6));
    assert_eq!(
        strip_wall_clock(&first_journal),
        strip_wall_clock(&fresh_telemetry.journal_jsonl()),
        "snapshot-instantiated range must replay byte-identically"
    );
}

#[test]
fn nonconvergence_holds_measurements_and_degrades_quality() {
    let bundle = epic_bundle();
    let telemetry = Telemetry::new();
    let mut range =
        RangeBuilder::from_model(CompiledModel::shared(&bundle).expect("bundle compiles"))
            .telemetry(telemetry.clone())
            .build()
            .expect("EPIC bundle must compile");
    range.run_for(SimDuration::from_secs(2));
    let scada = range.scada.as_ref().unwrap().clone();
    assert_eq!(scada.tag("GenFeeder_kW").unwrap().quality, Quality::Good);
    assert!(!range.measurements_held());

    // Poison a load so every subsequent power-flow solve fails.
    let load = range.power.load_by_name("EPIC/Load1").unwrap();
    let original_p_mw = range.power.load[load.index()].p_mw;
    range.power.load[load.index()].p_mw = f64::NAN;
    range.run_for(SimDuration::from_secs(3));

    assert!(range.measurements_held(), "failed solves hold measurements");
    assert!(range.solve_errors_total() > 0);
    // Tags polled after the first failed solve carry `Invalid` quality, so
    // the good-only numeric accessor refuses them — nothing downstream can
    // mistake held data for fresh data.
    assert_eq!(scada.tag("GenFeeder_kW").unwrap().quality, Quality::Invalid);
    assert!(scada.tag_value("GenFeeder_kW").is_none());
    assert!(telemetry
        .events()
        .iter()
        .any(|r| matches!(&r.event, Event::MeasurementsHeld { .. })));

    // Repair the model: the solver recovers, degradation clears, and the
    // next poll round restores Good quality.
    range.power.load[load.index()].p_mw = original_p_mw;
    range.run_for(SimDuration::from_secs(3));
    assert!(!range.measurements_held(), "recovery clears the hold");
    assert_eq!(scada.tag("GenFeeder_kW").unwrap().quality, Quality::Good);
    assert!(scada.tag_value("GenFeeder_kW").is_some());
    assert!(telemetry
        .events()
        .iter()
        .any(|r| matches!(&r.event, Event::MeasurementsRecovered { .. })));
}

#[test]
fn crashed_ied_recovers_after_scheduled_restart() {
    let mut range =
        CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).expect("EPIC compiles"))
            .expect("EPIC compiles");
    range.run_for(SimDuration::from_secs(2));
    let scada = range.scada.as_ref().unwrap().clone();
    let before = scada.tag("MicroVolt_pu").unwrap();

    // MIED1 crashes and is watchdog-restarted two seconds later.
    assert!(range.crash_host("MIED1", Some(2_000)));
    range.run_for(SimDuration::from_secs(2));
    let during = scada.tag("MicroVolt_pu").unwrap();
    assert!(
        during.updated_ms <= before.updated_ms + 1100,
        "no fresh polls while the source is down: {} vs {}",
        during.updated_ms,
        before.updated_ms
    );

    // After the restart the MMS server answers again and polling resumes.
    range.run_for(SimDuration::from_secs(4));
    let after = scada.tag("MicroVolt_pu").unwrap();
    assert!(
        after.updated_ms > during.updated_ms,
        "polling resumes after the scheduled restart"
    );
}
