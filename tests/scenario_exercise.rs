//! End-to-end exercise orchestration: the EPIC bundle's shipped scenario
//! must produce a scored, deterministic after-action report.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::scenario::{run_exercise, ExerciseReport, Scenario};

/// Run the bundle's embedded scenario on a fresh range.
fn run_shipped_scenario() -> ExerciseReport {
    let bundle = epic_bundle();
    let scenario = Scenario::parse(&bundle.scenarios[0]).unwrap();
    let mut range = CyberRange::instantiate(CompiledModel::shared(&bundle).unwrap()).unwrap();
    run_exercise(&mut range, &scenario).unwrap()
}

#[test]
fn epic_exercise_produces_scored_report() {
    let report = run_shipped_scenario();

    // Every stage ran to completion with a timeline.
    assert_eq!(report.stages.len(), 4);
    for stage in &report.stages {
        assert!(stage.started_ms.is_some(), "stage {} never ran", stage.id);
        assert!(stage.ended_ms.is_some(), "stage {} never ended", stage.id);
    }

    // Every objective resolved to an explicit pass/fail — none silently
    // dropped — and the JSON carries a per-objective timestamp.
    assert_eq!(report.objectives.len(), 6);
    assert!(report.passed_count() >= 1, "no objective passed at all");
    assert!(report.to_json().contains("\"resolved_at_ms\""));

    // The deliberately unmeetable deadline is reported as failed, not dropped.
    let home = report
        .objectives
        .iter()
        .find(|o| o.id == "home-open")
        .expect("home-open objective missing from report");
    assert!(!home.passed, "too-tight deadline should fail");
    assert!(home.detail.contains("deadline"), "detail: {}", home.detail);

    // Score arithmetic is consistent.
    let score = report.score();
    assert!(score.earned < score.total);
    assert!(score.earned > 0);
}

#[test]
fn exercise_reports_are_deterministic() {
    // Two fresh ranges, same scenario: the JSON reports (timestamps, details,
    // scores, everything) must be byte-identical.
    let first = run_shipped_scenario().to_json();
    let second = run_shipped_scenario().to_json();
    assert_eq!(first, second, "exercise replay diverged");
    assert!(first.contains("\"score\""));
}
