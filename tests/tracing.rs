//! End-to-end causal tracing: a forced protection trip on the EPIC range
//! produces one trace whose spans chain from the co-simulation step through
//! the tripping IED's GOOSE publication, across emulated network links, into
//! the PLC's scan/control logic and the SCADA alarm — and the exported
//! Chrome trace / span log files are structurally valid.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange, RangeBuilder};
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::SimDuration;
use sg_cyber_range::obs::{SpanRecord, Telemetry};

fn traced_epic_range() -> (CyberRange, Telemetry) {
    let bundle = epic_bundle();
    let telemetry = Telemetry::with_tracing();
    let range = RangeBuilder::from_model(CompiledModel::shared(&bundle).expect("bundle compiles"))
        .telemetry(telemetry.clone())
        .build()
        .expect("EPIC bundle must compile");
    (range, telemetry)
}

/// Overloads the generation feeder (LGen) past GIED1's PTOC pickup while
/// keeping both downstream feeders below their own pickups, so GIED1 — the
/// GOOSE publisher CPLC subscribes to — is the relay that operates.
fn force_gen_feeder_overload(range: &mut CyberRange) {
    let micro = range.power.load_by_name("EPIC/MicroLoad").unwrap();
    range.power.load[micro.index()].p_mw = 0.062;
    let load1 = range.power.load_by_name("EPIC/Load1").unwrap();
    range.power.load[load1.index()].p_mw = 0.085;
}

#[test]
fn protection_trip_traces_across_all_planes() {
    let (mut range, telemetry) = traced_epic_range();
    range.run_for(SimDuration::from_secs(1));
    assert_eq!(range.ieds["GIED1"].trip_count(), 0);

    force_gen_feeder_overload(&mut range);
    range.run_for(SimDuration::from_secs(4));
    assert!(
        range.ieds["GIED1"].trip_count() >= 1,
        "GIED1 PTOC must trip CB_GEN; events: {:?}",
        range.ieds["GIED1"].events()
    );

    let tracer = telemetry.tracer();
    let spans = tracer.spans();
    assert!(telemetry.is_tracing());
    assert_eq!(telemetry.spans_dropped(), 0, "buffer must not evict");

    // Downstream path 1: the PLC sheds the smart-home feeder over MMS.
    let control = spans
        .iter()
        .find(|s| {
            s.name == "plc.control" && s.attr("item").is_some_and(|i| i.contains("SIED2LD0/CSWI1"))
        })
        .expect("CPLC issues the load-shedding control to SIED2");
    let control_pub = assert_chains_to_goose_pub(&tracer, control, "plc.control");

    // Downstream path 2: the SCADA alarm the operator sees.
    let alarm = spans
        .iter()
        .find(|s| {
            s.name == "scada.alarm"
                && s.attr("point") == Some("GenProt_trip")
                && s.attr("state") == Some("raised")
        })
        .expect("SCADA raises the GenProt_trip alarm");
    let alarm_pub = assert_chains_to_goose_pub(&tracer, alarm, "scada.alarm");

    // Both effects descend from the same causal tree, rooted in the same
    // physical disturbance.
    assert_eq!(control_pub.trace_id, alarm_pub.trace_id);
    let trace = tracer.trace_of(control_pub.trace_id);
    assert!(trace.iter().any(|s| s.span_id == alarm.span_id));
    assert!(trace.iter().any(|s| s.span_id == control.span_id));
    assert_eq!(trace[0].name, "range.step", "trace roots at the step span");
}

/// Asserts `leaf`'s ancestry passes through a trip-caused GIED1 GOOSE
/// publication with at least one emulated link traversal in between (the
/// frame really crossed the network), and roots at a co-simulation step.
/// Returns the publication span.
fn assert_chains_to_goose_pub(
    tracer: &sg_cyber_range::obs::Tracer,
    leaf: &SpanRecord,
    what: &str,
) -> SpanRecord {
    let chain = tracer.ancestry(leaf.span_id);
    let names: Vec<&str> = chain.iter().map(|s| s.name).collect();
    let pub_index = chain
        .iter()
        .position(|s| s.name == "ied.goose_pub" && s.attr("ied") == Some("GIED1"))
        .unwrap_or_else(|| panic!("{what} must descend from GIED1's GOOSE publication: {names:?}"));
    // The publication itself was caused by the protection trip, which chains
    // back to the solve that exposed the overload.
    assert_eq!(
        &names[pub_index..],
        &[
            "ied.goose_pub",
            "ied.trip",
            "ied.sample",
            "power.solve",
            "range.step"
        ],
        "{what}: the GOOSE publication chains to the physical cause"
    );
    let hops = chain[..pub_index]
        .iter()
        .filter(|s| s.name == "net.link")
        .count();
    assert!(
        hops >= 1,
        "{what} must be separated from the GOOSE publication by ≥1 link traversal: {names:?}"
    );
    assert!(
        chain.iter().all(|s| s.trace_id == chain[0].trace_id),
        "one causal tree, one trace_id"
    );
    chain[pub_index].clone()
}

#[test]
fn tracing_is_behaviorally_invisible_and_deterministic() {
    // The zero-overhead contract extended to tracing: telemetry off,
    // telemetry on, and telemetry+tracing on must all produce byte-identical
    // simulation results — under the forced-trip scenario, so the traced
    // code paths (trip, GOOSE, PLC control, alarms) actually execute.
    let run = |telemetry: Telemetry| {
        let bundle = epic_bundle();
        let mut range =
            RangeBuilder::from_model(CompiledModel::shared(&bundle).expect("bundle compiles"))
                .telemetry(telemetry)
                .build()
                .expect("EPIC bundle must compile");
        range.run_for(SimDuration::from_secs(1));
        force_gen_feeder_overload(&mut range);
        range.run_for(SimDuration::from_secs(3));
        let scada = range.scada.as_ref().unwrap();
        let mut tags: Vec<(String, String)> = scada
            .tag_names()
            .into_iter()
            .map(|name| {
                let value = scada.tag_value(&name);
                (name, format!("{value:?}"))
            })
            .collect();
        tags.sort();
        (tags, range.steps_total(), range.store.snapshot().len())
    };
    let dark = run(Telemetry::disabled());
    let journal_only = run(Telemetry::new());
    let traced = run(Telemetry::with_tracing());
    assert_eq!(dark, journal_only, "telemetry must not perturb simulation");
    assert_eq!(dark, traced, "tracing must not perturb simulation");

    // Determinism: IDs come from monotonic counters driven by a
    // deterministic event loop, so two traced runs agree span-for-span.
    let spans_of = || {
        let bundle = epic_bundle();
        let telemetry = Telemetry::with_tracing();
        let mut range =
            RangeBuilder::from_model(CompiledModel::shared(&bundle).expect("bundle compiles"))
                .telemetry(telemetry.clone())
                .build()
                .expect("EPIC bundle must compile");
        range.run_for(SimDuration::from_secs(1));
        force_gen_feeder_overload(&mut range);
        range.run_for(SimDuration::from_secs(3));
        telemetry.spans()
    };
    assert_eq!(spans_of(), spans_of(), "same run, same IDs, same spans");
}

#[test]
fn journal_only_telemetry_records_no_spans() {
    // `Telemetry::new()` keeps the journal/metrics but leaves the tracer
    // disabled: no span IDs are assigned and nothing is buffered.
    let bundle = epic_bundle();
    let telemetry = Telemetry::new();
    let mut range =
        RangeBuilder::from_model(CompiledModel::shared(&bundle).expect("bundle compiles"))
            .telemetry(telemetry.clone())
            .build()
            .expect("EPIC bundle must compile");
    range.run_for(SimDuration::from_secs(2));
    assert!(!telemetry.is_tracing());
    assert!(!telemetry.tracer().is_enabled());
    assert!(telemetry.spans().is_empty(), "no spans without tracing");
    assert_eq!(telemetry.spans_dropped(), 0);
    assert!(
        !telemetry.events().is_empty(),
        "the journal still records events"
    );
}
