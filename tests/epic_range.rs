//! End-to-end: the EPIC cyber range generated from SG-ML files and driven
//! through the paper's workflows — monitoring, operator control, protection,
//! and load profiles.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange};
use sg_cyber_range::kvstore::Value;
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::net::SimDuration;

fn epic_range() -> CyberRange {
    CyberRange::instantiate(
        CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile"),
    )
    .expect("EPIC bundle must compile")
}

#[test]
fn generates_with_expected_inventory() {
    let range = epic_range();
    // 8 IEDs + CPLC + SCADA hosts; 5 segment switches + WAN backbone.
    assert_eq!(range.plan().hosts.len(), 10);
    assert_eq!(range.plan().switches.len(), 6);
    assert!(range.plan().switches.iter().any(|s| s.is_wan));
    assert_eq!(range.ieds.len(), 8);
    assert_eq!(range.plcs.len(), 1);
    assert!(range.scada.is_some());
    // Physical model: 4 segments' worth of elements.
    assert_eq!(range.power.bus.len(), 7);
    assert_eq!(range.power.line.len(), 3);
    assert_eq!(range.power.switch.len(), 3);
    assert_eq!(range.power.gen.len(), 2);
    assert_eq!(range.power.sgen.len(), 2);
    assert_eq!(range.power.load.len(), 3);
    // No error-level diagnostics.
    assert!(
        !range
            .diagnostics()
            .iter()
            .any(|d| d.severity == sg_cyber_range::scl::Severity::Error),
        "{:?}",
        range.diagnostics()
    );
}

#[test]
fn initial_power_flow_is_healthy() {
    let range = epic_range();
    for (i, bus) in range.power.bus.iter().enumerate() {
        let r = &range.last_result.bus[i];
        assert!(r.energized, "bus {} must be energized", bus.name);
        assert!(
            (0.9..=1.1).contains(&r.vm_pu),
            "bus {} voltage {} out of band",
            bus.name,
            r.vm_pu
        );
    }
    // Generation covers the load.
    let supplied: f64 = range.last_result.gen.iter().map(|g| g.p_mw).sum();
    assert!(supplied > 0.0);
}

#[test]
fn measurements_flow_to_ied_models_and_scada() {
    let mut range = epic_range();
    range.run_for(SimDuration::from_secs(3));

    // IED data models carry live measurements from the power flow.
    let gied1 = &range.ieds["GIED1"];
    let p = gied1
        .model
        .read("GIED1LD0/MMXU1$MX$TotW$mag$f")
        .and_then(|v| v.as_f64())
        .expect("GIED1 measures LGen power");
    assert!(p.abs() > 1e-6, "LGen power must be nonzero, got {p}");

    // SCADA tags populated over both protocols.
    let scada = range.scada.as_ref().unwrap();
    let micro = scada.tag_value("MicroFeeder_MW").expect("MMS-polled tag");
    assert!(micro.abs() > 1e-6);
    let volt = scada.tag_value("MicroVolt_pu").expect("MMS-polled tag");
    assert!((0.9..1.1).contains(&volt), "micro-grid voltage {volt}");
    // The CPLC chain: IED → MMS → PLC program → Modbus → SCADA.
    let via_plc = scada.tag_value("GenFeeder_kW").expect("PLC-mediated tag");
    assert!(via_plc > 0.0, "PLC-mediated feeder power, got {via_plc}");
    assert!(
        scada.tag_value("CB_GEN_fb").unwrap_or(0.0) > 0.0,
        "breaker feedback closed"
    );

    // PLC is scanning without faults.
    let plc = range.plcs["CPLC"].lock();
    assert!(plc.scans > 20);
    assert_eq!(plc.fault, None);
    assert!(plc.reads_ok > 0);
}

#[test]
fn operator_command_travels_scada_plc_ied_power() {
    let mut range = epic_range();
    range.run_for(SimDuration::from_secs(2));
    let before = range.last_result.line[0].p_from_mw.abs();
    assert!(before > 1e-6, "generation feeder initially carries power");

    // Operator opens CB_GEN from the HMI: coil → CPLC program → MMS Oper →
    // GIED1 → process store → power flow.
    range.scada.as_ref().unwrap().operate("CB_GEN_cmd", true); // close first (no-op, already closed)
    range.run_for(SimDuration::from_secs(1));
    range.scada.as_ref().unwrap().operate("CB_GEN_cmd", false);
    range.run_for(SimDuration::from_secs(2));

    // The generation segment is disconnected: LGen is out of service.
    assert!(
        !range.last_result.line[0].in_service,
        "generation feeder de-energized after operator open"
    );
    let gied1_events =
        range.ieds["GIED1"].events_of(sg_cyber_range::ied::IedEventKind::ControlExecuted);
    assert!(
        !gied1_events.is_empty(),
        "GIED1 executed the relayed command"
    );
    // The physical switch actually opened.
    let cb = range.power.switch_by_name("EPIC/CB_GEN").unwrap();
    assert!(!range.power.switch[cb.index()].closed);
}

#[test]
fn ptoc_trips_on_simulated_overload() {
    let mut range = epic_range();
    range.run_for(SimDuration::from_secs(1));
    assert_eq!(range.ieds["TIED2"].trip_count(), 0);

    // Force an overload on the smart-home feeder by inflating its loads.
    let load1 = range.power.load_by_name("EPIC/Load1").unwrap();
    range.power.load[load1.index()].p_mw = 0.2; // ~13x nominal
    range.run_for(SimDuration::from_secs(3));

    assert!(
        range.ieds["TIED2"].trip_count() >= 1,
        "TIED2 PTOC must trip CB_HOME; events: {:?}",
        range.ieds["TIED2"].events()
    );
    // The trip de-energized the smart-home bus.
    let cb = range.power.switch_by_name("EPIC/CB_HOME").unwrap();
    assert!(!range.power.switch[cb.index()].closed);
    let home_bus = range.power.bus_by_name("EPIC/LV/HomeBay/CN_HOME").unwrap();
    assert!(!range.last_result.bus[home_bus.index()].energized);
}

#[test]
fn load_profile_modulates_demand() {
    let mut range = epic_range();
    // The EPIC profile scales Load1 over a compressed "day" (8 points x 60 s).
    range.run_for(SimDuration::from_secs(2));
    let early = range.store.get_float("meas/EPIC/load/Load1/p_mw").unwrap();
    // Jump ahead by injecting the profile value directly: run to a later
    // profile segment (61 s in sim time).
    range.run_for(SimDuration::from_secs(60));
    let later = range.store.get_float("meas/EPIC/load/Load1/p_mw").unwrap();
    assert_ne!(early, later, "profile must change the served load");
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut range = epic_range();
        range.run_for(SimDuration::from_secs(3));
        let mut tags: Vec<(String, String)> = range
            .scada
            .as_ref()
            .unwrap()
            .tag_names()
            .into_iter()
            .map(|name| {
                let v = range.scada.as_ref().unwrap().tag_value(&name);
                (name, format!("{v:?}"))
            })
            .collect();
        tags.sort();
        let snapshot: Vec<(String, Value)> = range.store.snapshot();
        (tags, snapshot.len())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "two runs of the same model must be identical");
}

#[test]
fn missing_host_is_reported() {
    let mut bundle = epic_bundle();
    bundle.scada_host = Some("NO_SUCH_HOST".to_string());
    match CompiledModel::compile(&bundle) {
        Err(sg_cyber_range::core::RangeError::UnknownHost { host, .. }) => {
            assert_eq!(host, "NO_SUCH_HOST");
        }
        other => panic!("expected UnknownHost, got {other:?}", other = other.err()),
    }
}

#[test]
fn malformed_model_is_reported() {
    let mut bundle = epic_bundle();
    bundle.ssds[0] = "<SCL><Header id=\"broken\"/>".to_string(); // truncated XML
    assert!(matches!(
        CompiledModel::compile(&bundle),
        Err(sg_cyber_range::core::RangeError::Model { what: "SSD", .. })
    ));
}

#[test]
#[allow(deprecated)]
fn deprecated_generate_shim_still_works() {
    // `CyberRange::generate` / `RangeBuilder::new` stay as thin shims over
    // compile + instantiate so pre-split callers keep working unchanged.
    let range = CyberRange::generate(&epic_bundle()).expect("shim compiles the bundle");
    assert_eq!(range.plan().hosts.len(), 10);
    assert_eq!(range.steps_total(), 0);
}

#[test]
fn protection_trip_reports_spontaneously_to_mms_clients() {
    // A trip must surface at the HMI immediately via an MMS
    // InformationReport, not only at the next interrogation cycle.
    let mut range = epic_range();
    range.run_for(SimDuration::from_secs(2));

    // TIED1 is a SCADA MMS data source; overload its feeder (LMicro).
    let load = range.power.load_by_name("EPIC/MicroLoad").unwrap();
    range.power.load[load.index()].p_mw = 0.2;
    range.run_for(SimDuration::from_secs(3));

    assert!(range.ieds["TIED1"].trip_count() >= 1, "TIED1 PTOC tripped");
    let events = range.scada.as_ref().unwrap().events();
    assert!(
        events
            .iter()
            .any(|e| e.message.contains("REPORT") && e.message.contains("PTOC1")),
        "HMI event log carries the spontaneous trip report: {events:?}"
    );
}
