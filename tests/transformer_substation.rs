//! A hand-written two-voltage-level substation with a power transformer —
//! exercises the HV/MV path of the SSD compiler and the trafo measurements
//! end-to-end (no generated model uses a transformer).

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange, SgmlBundle};
use sg_cyber_range::net::SimDuration;

const SSD: &str = r#"<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="hvmv" version="1"/>
  <Substation name="HVMV">
    <PowerTransformer name="T1" type="PTR">
      <TransformerWinding name="W1" sgcr:ratedKV="110">
        <Terminal name="T1" connectivityNode="HVMV/HV/Feed/CNHV"/>
      </TransformerWinding>
      <TransformerWinding name="W2" sgcr:ratedKV="22">
        <Terminal name="T1" connectivityNode="HVMV/MV/Dist/CNMV"/>
      </TransformerWinding>
      <Private type="sgcr:ElectricalParams" sn_mva="40" vk_percent="11" vkr_percent="0.45"/>
    </PowerTransformer>
    <VoltageLevel name="HV">
      <Voltage multiplier="k" unit="V">110</Voltage>
      <Bay name="Feed">
        <ConnectivityNode name="CNHV" pathName="HVMV/HV/Feed/CNHV"/>
        <ConductingEquipment name="GRID" type="IFL">
          <Terminal name="T1" connectivityNode="HVMV/HV/Feed/CNHV"/>
          <Private type="sgcr:ElectricalParams" vm_pu="1.02"/>
        </ConductingEquipment>
      </Bay>
    </VoltageLevel>
    <VoltageLevel name="MV">
      <Voltage multiplier="k" unit="V">22</Voltage>
      <Bay name="Dist">
        <ConnectivityNode name="CNMV" pathName="HVMV/MV/Dist/CNMV"/>
        <ConnectivityNode name="CNF" pathName="HVMV/MV/Dist/CNF"/>
        <ConductingEquipment name="CBF" type="CBR">
          <Terminal name="T1" connectivityNode="HVMV/MV/Dist/CNMV"/>
          <Terminal name="T2" connectivityNode="HVMV/MV/Dist/CNF"/>
        </ConductingEquipment>
        <ConductingEquipment name="CITY" type="LOD">
          <Terminal name="T1" connectivityNode="HVMV/MV/Dist/CNF"/>
          <Private type="sgcr:ElectricalParams" p_mw="18" q_mvar="5"/>
        </ConductingEquipment>
      </Bay>
    </VoltageLevel>
  </Substation>
</SCL>"#;

const SCD: &str = r#"<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="hvmv-scd" version="1"/>
  <Substation name="HVMV"><VoltageLevel name="HV"><Voltage>110</Voltage></VoltageLevel></Substation>
  <Communication>
    <SubNetwork name="StationBus" type="8-MMS">
      <ConnectedAP iedName="TRIED1" apName="AP1">
        <Address><P type="IP">10.9.0.11</P><P type="IP-SUBNET">255.255.0.0</P></Address>
      </ConnectedAP>
    </SubNetwork>
  </Communication>
  <IED name="TRIED1"><AccessPoint name="AP1"><Server>
    <LDevice inst="LD0">
      <LN0 lnClass="LLN0" inst="" lnType="LLN0_T"/>
      <LN lnClass="MMXU" inst="1" lnType="MMXU_T"/>
      <LN lnClass="XCBR" inst="1" lnType="XCBR_T"/>
      <LN lnClass="CSWI" inst="1" lnType="CSWI_T"/>
      <LN lnClass="PTOC" inst="1" lnType="PTOC_T"/>
    </LDevice>
  </Server></AccessPoint></IED>
</SCL>"#;

const IED_CONFIG: &str = r#"<IEDConfig>
  <IED name="TRIED1" substation="HVMV" ld="TRIED1LD0" samplePeriodMs="100">
    <Measurement item="MMXU1$MX$TotW$mag$f" key="meas/HVMV/branch/T1/p_mw"/>
    <Measurement item="MMXU1$MX$A$phsA$cVal$mag$f" key="meas/HVMV/branch/T1/i_ka"/>
    <Breaker name="CBF" xcbr="XCBR1" cswi="CSWI1"/>
    <Protection type="PTOC" ln="PTOC1" measurementKey="meas/HVMV/branch/T1/i_ka"
                threshold="0.12" delayMs="200" breaker="CBF"/>
  </IED>
</IEDConfig>"#;

fn bundle() -> SgmlBundle {
    SgmlBundle {
        ssds: vec![SSD.to_string()],
        scds: vec![SCD.to_string()],
        icds: vec![],
        seds: vec![],
        ied_config: Some(IED_CONFIG.to_string()),
        scada_config: None,
        plc_config: None,
        power_extra: None,
        scenarios: vec![],
        scada_host: None,
    }
}

#[test]
fn transformer_substation_compiles_and_solves() {
    let range =
        CyberRange::instantiate(CompiledModel::shared(&bundle()).expect("HV/MV bundle compiles"))
            .expect("HV/MV bundle compiles");
    assert_eq!(range.power.trafo.len(), 1);
    let trafo = &range.power.trafo[0];
    assert_eq!(trafo.sn_mva, 40.0);
    assert_eq!(trafo.vn_hv_kv, 110.0);
    assert_eq!(trafo.vn_lv_kv, 22.0);

    // Base case: MV voltage sags below the HV set-point under 18 MW load.
    let hv = range.power.bus_by_name("HVMV/HV/Feed/CNHV").unwrap();
    let mv = range.power.bus_by_name("HVMV/MV/Dist/CNF").unwrap();
    let hv_v = range.last_result.bus[hv.index()].vm_pu;
    let mv_v = range.last_result.bus[mv.index()].vm_pu;
    assert!(
        (hv_v - 1.02).abs() < 1e-6,
        "slack holds set-point, got {hv_v}"
    );
    assert!(mv_v < hv_v, "load side sags: {mv_v} < {hv_v}");
    assert!(mv_v > 0.9, "but stays healthy: {mv_v}");

    // Transformer flow ≈ load + losses; loading vs 40 MVA rating.
    let flow = &range.last_result.trafo[0];
    assert!(
        flow.p_from_mw > 18.0 && flow.p_from_mw < 19.5,
        "{}",
        flow.p_from_mw
    );
    assert!(flow.loading_percent > 40.0 && flow.loading_percent < 60.0);
}

#[test]
fn transformer_measurements_reach_the_ied() {
    let mut range = CyberRange::instantiate(CompiledModel::shared(&bundle()).expect("compiles"))
        .expect("compiles");
    range.run_for(SimDuration::from_secs(1));
    let ied = &range.ieds["TRIED1"];
    let p = ied
        .model
        .read("TRIED1LD0/MMXU1$MX$TotW$mag$f")
        .and_then(|v| v.as_f64())
        .expect("trafo power mapped");
    assert!(p > 18.0, "IED reads the transformer flow: {p}");
}

#[test]
fn overcurrent_on_mv_feeder_trips_and_unloads_the_transformer() {
    let mut range = CyberRange::instantiate(CompiledModel::shared(&bundle()).expect("compiles"))
        .expect("compiles");
    range.run_for(SimDuration::from_secs(1));
    // The published branch current is the HV side: 18 MW @ 110 kV ≈ 0.095 kA.
    // Jump the load so it crosses the 0.12 kA pickup (~30 MW → 0.16 kA).
    let load = range.power.load_by_name("HVMV/CITY").unwrap();
    range.power.load[load.index()].p_mw = 30.0;
    range.run_for(SimDuration::from_secs(2));
    assert!(
        range.ieds["TRIED1"].trip_count() >= 1,
        "{:?}",
        range.ieds["TRIED1"].events()
    );
    // Breaker CBF opened → transformer unloaded.
    assert!(range.last_result.trafo[0].p_from_mw.abs() < 0.5);
}
