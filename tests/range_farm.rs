//! Multi-tenant range farm end-to-end: one compiled EPIC model instantiates
//! a hundred concurrent ranges, each with its own journal/metrics sinks, and
//! the farm report stays internally consistent.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::CompiledModel;
use sg_cyber_range::farm::{run_farm, FarmConfig};
use sg_cyber_range::models::epic_bundle;

/// A scratch directory under the target dir that is removed on drop, so
/// repeated test runs never see stale tenant sinks.
struct ScratchDir(std::path::PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir creates");
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn one_model_serves_one_hundred_tenants_with_per_tenant_journals() {
    let scratch = ScratchDir::new("range_farm_100");
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");
    let config = FarmConfig {
        tenants: 100,
        sim_seconds: 1,
        out_dir: Some(scratch.0.clone()),
        ..FarmConfig::default()
    };

    let report = run_farm(model, &config);

    assert_eq!(report.tenants, 100);
    assert_eq!(report.tenants_failed, 0, "{:?}", report.per_tenant);
    assert_eq!(report.per_tenant.len(), 100);
    assert!(report.ranges_per_sec > 0.0);
    assert!(report.steps_total > 0);
    assert!(report.p99_step_seconds >= report.p50_step_seconds);
    assert!(report.max_step_seconds >= report.p99_step_seconds);

    for t in &report.per_tenant {
        assert!(
            t.error.is_none(),
            "tenant {} failed: {:?}",
            t.tenant,
            t.error
        );
        assert!(t.steps > 0, "tenant {} never stepped", t.tenant);
        let journal = t.journal_path.as_ref().expect("journal path recorded");
        let journal = std::path::Path::new(journal);
        assert!(journal.is_file(), "missing journal {}", journal.display());
        let text = std::fs::read_to_string(journal).expect("journal reads");
        assert!(
            text.lines().count() > 0,
            "tenant {} journal is empty",
            t.tenant
        );
        let metrics = journal.with_file_name(format!("tenant-{:04}.metrics.json", t.tenant));
        assert!(metrics.is_file(), "missing metrics {}", metrics.display());
    }

    // Per-tenant fault seeds differ, so the tenants are not byte-clones of
    // each other; per-tenant journals are still deterministic per seed.
    let a = std::fs::read_to_string(report.per_tenant[0].journal_path.as_ref().unwrap()).unwrap();
    assert!(a.contains("\"type\""), "journal is JSONL events");

    // The farm writes its own lifecycle journal next to the tenant sinks.
    let farm_journal =
        std::fs::read_to_string(scratch.0.join("farm.journal.jsonl")).expect("farm journal");
    assert!(farm_journal.contains("\"type\":\"FarmStarted\""));
    assert!(farm_journal.contains("\"type\":\"FarmFinished\""));
    assert!(farm_journal.contains("\"tenants\":100"));
    assert!(farm_journal.contains("\"tenants_completed\":100"));

    // Sink-writer backpressure instrumentation: the farm accounted bytes
    // and wall time for every tenant's journal/metrics files.
    assert!(report.journal_bytes_written > 0);
    assert!(report.journal_write_seconds > 0.0);
}

#[test]
fn tenants_are_deterministic_per_seed_across_farm_runs() {
    let scratch_a = ScratchDir::new("range_farm_replay_a");
    let scratch_b = ScratchDir::new("range_farm_replay_b");
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");
    let config = FarmConfig {
        tenants: 4,
        sim_seconds: 1,
        base_fault_seed: 11,
        ..FarmConfig::default()
    };

    let first = run_farm(
        model.clone(),
        &FarmConfig {
            out_dir: Some(scratch_a.0.clone()),
            ..config.clone()
        },
    );
    let second = run_farm(
        model,
        &FarmConfig {
            out_dir: Some(scratch_b.0.clone()),
            ..config
        },
    );

    assert_eq!(first.tenants_failed, 0);
    assert_eq!(second.tenants_failed, 0);
    for (a, b) in first.per_tenant.iter().zip(&second.per_tenant) {
        assert_eq!(a.tenant, b.tenant);
        assert_eq!(a.steps, b.steps, "tenant {} step counts replay", a.tenant);
        let ja = std::fs::read_to_string(a.journal_path.as_ref().unwrap()).unwrap();
        let jb = std::fs::read_to_string(b.journal_path.as_ref().unwrap()).unwrap();
        assert_eq!(
            strip_wall_clock(&ja),
            strip_wall_clock(&jb),
            "tenant {} journal replays byte-identically",
            a.tenant
        );
    }
}

#[test]
fn step_budget_overruns_halt_a_tenant_instead_of_stalling_the_farm() {
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");
    let config = FarmConfig {
        tenants: 2,
        sim_seconds: 2,
        // An impossible budget: every step overruns immediately.
        step_budget_ms: Some(0),
        max_overruns: 3,
        ..FarmConfig::default()
    };

    let report = run_farm(model, &config);

    assert_eq!(report.tenants_failed, 0, "halting is not failure");
    assert_eq!(report.tenants_halted, 2, "both tenants hit the zero budget");
    assert!(report.budget_overruns > 0);
    for t in &report.per_tenant {
        assert!(t.halted, "tenant {} should have halted", t.tenant);
        assert!(
            t.steps <= 3 + 1,
            "tenant {} stopped promptly after max_overruns: {} steps",
            t.tenant,
            t.steps
        );
    }
}

/// Drops the one wall-clock field in the journal (`SolveCompleted.seconds`)
/// so two replays of the same simulation compare byte-identically.
fn strip_wall_clock(journal: &str) -> String {
    journal
        .lines()
        .map(|line| match line.find(",\"seconds\":") {
            Some(start) => {
                let end = line[start..].find('}').map_or(line.len(), |j| start + j);
                format!("{}{}\n", &line[..start], &line[end..])
            }
            None => format!("{line}\n"),
        })
        .collect()
}
