//! Multi-substation generation: SED-driven consolidation, WAN abstraction,
//! cross-substation energization, and inter-substation protection (PDIF over
//! R-SV, CILO over R-GOOSE).

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{CompiledModel, CyberRange, IedConfig, SgmlBundle};
use sg_cyber_range::ied::{BreakerMap, IedSpec, MeasurementMap, ProtectionSpec, RsvSpec};
use sg_cyber_range::kvstore::{Keys, Value};
use sg_cyber_range::models::{multisub_bundle, MultiSubParams};
use sg_cyber_range::net::SimDuration;

fn small_params() -> MultiSubParams {
    MultiSubParams {
        substations: 3,
        total_ieds: 9,
        interval_ms: 100,
    }
}

#[test]
fn consolidated_model_energizes_all_substations() {
    let bundle = multisub_bundle(&small_params());
    let range =
        CyberRange::instantiate(CompiledModel::shared(&bundle).expect("multisub bundle compiles"))
            .expect("multisub bundle compiles");
    // One slack (S1 GRID) energizes the whole chain through the SED ties.
    assert_eq!(range.power.ext_grid.len(), 1);
    for (i, bus) in range.power.bus.iter().enumerate() {
        assert!(
            range.last_result.bus[i].energized,
            "bus {} must be energized through the tie chain",
            bus.name
        );
    }
    // WAN switch joins the three station buses.
    assert!(range.plan().switches.iter().any(|s| s.is_wan));
    assert_eq!(range.plan().switches.len(), 4);
    // 9 IEDs + 1 SCADA.
    assert_eq!(range.plan().hosts.len(), 10);
    assert_eq!(range.ieds.len(), 9);
}

#[test]
fn tie_outage_darkens_downstream_substations() {
    let bundle = multisub_bundle(&small_params());
    let mut range = CyberRange::instantiate(CompiledModel::shared(&bundle).expect("compiles"))
        .expect("compiles");
    range.run_for(SimDuration::from_secs(1));

    // Cut the S2–S3 tie: S3 must go dark, S1/S2 stay up.
    let tie = range.power.line_by_name("S2/TIE23").expect("tie exists");
    range.power.line[tie.index()].in_service = false;
    range.run_for(SimDuration::from_secs(1));

    let s1_bus = range.power.bus_by_name("S1/MV/Main/CNMAIN").unwrap();
    let s3_bus = range.power.bus_by_name("S3/MV/Main/CNMAIN").unwrap();
    assert!(range.last_result.bus[s1_bus.index()].energized);
    assert!(!range.last_result.bus[s3_bus.index()].energized);

    // S3's IEDs observe dead feeders through their measurements.
    let s3ied = &range.ieds["S3IED1"];
    let p = s3ied
        .model
        .read("S3IED1LD0/MMXU1$MX$TotW$mag$f")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(p.abs() < 1e-9, "S3 feeder power must read zero, got {p}");
}

#[test]
fn scada_polls_ieds_across_the_wan() {
    let bundle = multisub_bundle(&small_params());
    let mut range = CyberRange::instantiate(CompiledModel::shared(&bundle).expect("compiles"))
        .expect("compiles");
    range.run_for(SimDuration::from_secs(3));
    let scada = range.scada.as_ref().unwrap();
    // One tag per substation's first IED, all polled across the WAN switch.
    for s in 0..3 {
        let tag = format!("S{}IED1_P", s + 1);
        let value = scada.tag_value(&tag);
        assert!(
            value.is_some_and(|v| v.abs() > 1e-9),
            "tag {tag} = {value:?}"
        );
    }
}

/// Builds a 2-substation bundle where the tie line is protected by PDIF:
/// S2IED1 streams its local tie current to S1IED1 over R-SV; S1IED1 compares
/// and trips its breaker on divergence.
fn pdif_bundle() -> SgmlBundle {
    let params = MultiSubParams {
        substations: 2,
        total_ieds: 2,
        interval_ms: 100,
    };
    let mut bundle = multisub_bundle(&params);

    // Rewrite the IED config: give S1IED1 a PDIF element fed by R-SV.
    let mut config = IedConfig::parse(bundle.ied_config.as_ref().unwrap()).unwrap();
    let s1_tie_key = "meas/S1/branch/TIE12/i_ka".to_string();
    let s2_ct_key = "meas/S2/ct/TIE12/i_ka".to_string();

    {
        let s1 = config.ieds.iter_mut().find(|s| s.name == "S1IED1").unwrap();
        s1.protections.push(ProtectionSpec::Pdif {
            ln: "PDIF1".into(),
            local_current_key: s1_tie_key.clone(),
            threshold: 0.001,
            delay_ms: 100,
            breaker: "CB1".into(),
        });
        s1.rsv = Some(RsvSpec {
            sv_id: "S1IED1-SV".into(),
            current_key: s1_tie_key.clone(),
            peers: vec!["10.2.0.10".parse().unwrap()],
            subscribe_sv_id: Some("S2IED1-SV".into()),
        });
        s1.measurements.push(MeasurementMap {
            item: "MMXU2$MX$A$phsA$cVal$mag$f".into(),
            kv_key: s1_tie_key.clone(),
        });
    }
    {
        let s2 = config.ieds.iter_mut().find(|s| s.name == "S2IED1").unwrap();
        s2.rsv = Some(RsvSpec {
            sv_id: "S2IED1-SV".into(),
            current_key: s2_ct_key.clone(),
            peers: vec!["10.1.0.10".parse().unwrap()],
            subscribe_sv_id: None,
        });
    }
    // PDIF must be declared in the ICD to be enabled.
    bundle.icds = bundle
        .icds
        .iter()
        .map(|icd| {
            if icd.contains("S1IED1") {
                sg_cyber_range::models::assets::icd_for(
                    "S1IED1",
                    &["LLN0", "LPHD", "MMXU", "XCBR", "CSWI", "PTOC", "PDIF"],
                )
            } else {
                icd.clone()
            }
        })
        .collect();
    bundle.ied_config = Some(config.to_xml());
    bundle
}

#[test]
fn pdif_over_rsv_trips_on_current_divergence() {
    let mut range = CyberRange::instantiate(
        CompiledModel::shared(&pdif_bundle()).expect("pdif bundle compiles"),
    )
    .expect("pdif bundle compiles");
    // S2's "CT" on the tie initially agrees with S1's measurement: keep it
    // synced by copying the power-flow value for a while.
    for _ in 0..20 {
        let tie_i = range
            .store
            .get_float("meas/S1/branch/TIE12/i_ka")
            .unwrap_or(0.0);
        range
            .store
            .set("meas/S2/ct/TIE12/i_ka", Value::Float(tie_i));
        range.run_for(SimDuration::from_millis(100));
    }
    assert_eq!(
        range.ieds["S1IED1"].trip_count(),
        0,
        "healthy line: no trip"
    );

    // Internal fault: S2's end stops seeing the through-current.
    for _ in 0..15 {
        range
            .store
            .set("meas/S2/ct/TIE12/i_ka", Value::Float(0.0001));
        range.run_for(SimDuration::from_millis(100));
    }
    assert!(
        range.ieds["S1IED1"].trip_count() >= 1,
        "PDIF must trip on differential; events: {:?}",
        range.ieds["S1IED1"].events()
    );
}

#[test]
fn paper_profile_dimensions() {
    // The 5-substation / 104-IED configuration generates (without running).
    let bundle = multisub_bundle(&MultiSubParams::paper_profile());
    assert_eq!(bundle.ssds.len(), 5);
    assert_eq!(bundle.icds.len(), 104);
    assert_eq!(bundle.seds.len(), 4);
    let range =
        CyberRange::instantiate(CompiledModel::shared(&bundle).expect("paper profile compiles"))
            .expect("paper profile compiles");
    assert_eq!(range.ieds.len(), 104);
    assert_eq!(range.plan().hosts.len(), 105); // + SCADA
                                               // Physical model scale: 104 feeders + 5 main buses…
    assert_eq!(range.power.bus.len(), 104 * 2 + 5);
    assert_eq!(range.power.line.len(), 104 + 4);
    assert_eq!(range.power.load.len(), 104);
}

/// A breaker-map spec sanity check shared with the generator.
#[test]
fn generator_breaker_maps_match_keymap() {
    let bundle = multisub_bundle(&small_params());
    let config = IedConfig::parse(bundle.ied_config.as_ref().unwrap()).unwrap();
    for spec in &config.ieds {
        for b in &spec.breakers {
            assert_eq!(b.state_key, Keys::breaker_state(&spec.substation, &b.name));
            assert_eq!(b.cmd_key, Keys::breaker_cmd(&spec.substation, &b.name));
        }
    }
    // And the spec type stays constructible by hand (API stability).
    let _ = IedSpec::new("X", "S9");
    let _ = BreakerMap {
        name: "CBX".into(),
        xcbr: "XCBR1".into(),
        cswi: "CSWI1".into(),
        state_key: Keys::breaker_state("S9", "CBX"),
        cmd_key: Keys::breaker_cmd("S9", "CBX"),
        interlocked: false,
    };
}
