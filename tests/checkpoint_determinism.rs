//! Mid-run checkpoint/restore end-to-end: pausing a range at an arbitrary
//! step and resuming it from the serialized checkpoint is invisible — the
//! resumed range's journal is byte-identical to one that never paused — and
//! the typed error surface (version mismatch, model mismatch, decode
//! failures) rejects everything else up front.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::core::{
    Checkpoint, CheckpointError, CompiledModel, RangeBuilder, CHECKPOINT_VERSION,
};
use sg_cyber_range::models::{epic_bundle, multisub_bundle, MultiSubParams};
use sg_cyber_range::net::SimDuration;
use sg_cyber_range::obs::Telemetry;

/// Drops the one wall-clock field in the journal (`SolveCompleted.seconds`)
/// so two replays of the same simulation compare byte-identically.
fn strip_wall_clock(journal: &str) -> String {
    journal
        .lines()
        .map(|line| match line.find(",\"seconds\":") {
            Some(start) => {
                let end = line[start..].find('}').map_or(line.len(), |j| start + j);
                format!("{}{}\n", &line[..start], &line[end..])
            }
            None => format!("{line}\n"),
        })
        .collect()
}

#[test]
fn resume_then_step_is_byte_identical_to_never_pausing() {
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");

    // The reference: one uninterrupted four-second run.
    let reference_telemetry = Telemetry::new();
    let mut reference = RangeBuilder::from_model(model.clone())
        .telemetry(reference_telemetry.clone())
        .fault_seed(11)
        .build()
        .expect("reference instantiates");
    reference.run_for(SimDuration::from_secs(4));
    let total_steps = reference.steps_total();
    assert!(total_steps > 0);

    // The paused run: identical settings, stopped halfway, checkpointed,
    // serialized through JSON, resumed into a *fresh* telemetry handle,
    // then driven to the same step count.
    let paused_telemetry = Telemetry::new();
    let mut paused = RangeBuilder::from_model(model.clone())
        .telemetry(paused_telemetry.clone())
        .fault_seed(11)
        .build()
        .expect("paused range instantiates");
    paused.run_for(SimDuration::from_secs(2));
    let mid_steps = paused.steps_total();
    assert!(mid_steps > 0 && mid_steps < total_steps);

    let checkpoint = paused.checkpoint();
    assert_eq!(checkpoint.steps(), mid_steps);
    assert_eq!(checkpoint.sim_time_ns(), paused.now().as_nanos());
    drop(paused);

    // JSON round-trip is lossless: re-encoding the decoded checkpoint
    // reproduces the original document byte-for-byte.
    let encoded = checkpoint.to_json();
    let decoded = Checkpoint::from_json(&encoded).expect("checkpoint JSON decodes");
    assert_eq!(decoded.to_json(), encoded, "round-trip must be lossless");

    let resumed_telemetry = Telemetry::new();
    let mut resumed = decoded
        .resume(model.clone(), resumed_telemetry.clone())
        .expect("resume replays and verifies against the recorded digests");
    assert_eq!(resumed.steps_total(), mid_steps, "resume lands mid-run");
    while resumed.steps_total() < total_steps {
        resumed.step();
    }

    assert_eq!(
        strip_wall_clock(&reference_telemetry.journal_jsonl()),
        strip_wall_clock(&resumed_telemetry.journal_jsonl()),
        "a pause/checkpoint/resume cycle must be invisible in the journal \
         (modulo wall-clock solve time)"
    );
}

#[test]
fn version_mismatch_is_a_typed_error() {
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");
    let mut range = RangeBuilder::from_model(model.clone())
        .build()
        .expect("range instantiates");
    range.run_for(SimDuration::from_secs(1));
    let encoded = range.checkpoint().to_json();

    // Tamper only with the format version (the `"format"` prefix keeps the
    // replacement from touching `store_version`).
    let tampered = encoded.replace(
        "\"format\":\"sgcr-checkpoint\",\"version\":1,",
        "\"format\":\"sgcr-checkpoint\",\"version\":99,",
    );
    assert_ne!(tampered, encoded, "tamper must hit the version field");
    let decoded = Checkpoint::from_json(&tampered).expect("decode does not enforce the version");
    match decoded.resume(model, Telemetry::new()).map(|_| ()) {
        Err(CheckpointError::VersionMismatch { found, expected }) => {
            assert_eq!(found, 99);
            assert_eq!(expected, CHECKPOINT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn resuming_against_a_different_model_is_rejected() {
    let model = CompiledModel::shared(&epic_bundle()).expect("EPIC bundle must compile");
    let mut range = RangeBuilder::from_model(model)
        .build()
        .expect("range instantiates");
    range.run_for(SimDuration::from_secs(1));
    let checkpoint = range.checkpoint();

    let other_bundle = multisub_bundle(&MultiSubParams {
        substations: 2,
        total_ieds: 4,
        interval_ms: 100,
    });
    let other_model = CompiledModel::shared(&other_bundle).expect("multisub bundle compiles");
    match checkpoint.resume(other_model, Telemetry::new()).map(|_| ()) {
        Err(CheckpointError::ModelMismatch { found, expected }) => {
            assert_ne!(found, expected, "fingerprints must differ");
        }
        other => panic!("expected ModelMismatch, got {other:?}"),
    }
}

#[test]
fn malformed_checkpoint_documents_fail_to_decode() {
    for bad in [
        "",
        "not json",
        "{}",
        "{\"format\":\"something-else\",\"version\":1}",
        "[1,2,3]",
    ] {
        match Checkpoint::from_json(bad) {
            Err(CheckpointError::Decode { .. }) => {}
            other => panic!("{bad:?} must fail to decode, got {other:?}"),
        }
    }
}
