//! The `sgml_processor run --trace/--spans` surface: exports the EPIC bundle
//! to disk, co-simulates it through the real binary, and structurally
//! validates the Chrome trace-event JSON and the span log — resolvable
//! parents, no dangling trace IDs, monotonic timestamps within each track.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/example code may panic

use sg_cyber_range::models::epic_bundle;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::Command;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sgcr-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Extracts the integer value of `"key":N` from a flat JSON line, or `None`
/// when the key is absent or its value is not a number (e.g. `null`).
fn json_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the (possibly fractional) value of `"key":N` from a flat JSON
/// line.
fn json_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[test]
fn cli_exports_valid_trace_and_span_files() {
    let dir = temp_dir("trace-export");
    let bundle_dir = dir.join("bundle");
    epic_bundle()
        .write_to_dir(&bundle_dir)
        .expect("write EPIC bundle");
    let trace_path = dir.join("trace.json");
    let spans_path = dir.join("spans.jsonl");
    let metrics_path = dir.join("metrics.json");

    let output = Command::new(env!("CARGO_BIN_EXE_sgml_processor"))
        .args([
            "run",
            bundle_dir.to_str().unwrap(),
            "--seconds",
            "2",
            "--trace",
            trace_path.to_str().unwrap(),
            "--spans",
            spans_path.to_str().unwrap(),
            "--metrics",
            metrics_path.to_str().unwrap(),
        ])
        .output()
        .expect("run sgml_processor");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // --- Span log: one JSON object per line, resolvable causal links. ---
    let spans = std::fs::read_to_string(&spans_path).expect("spans file written");
    let lines: Vec<&str> = spans.lines().collect();
    assert!(lines.len() > 100, "a 2 s run produces many spans");
    let mut trace_of_span: HashMap<u64, u64> = HashMap::new();
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        let span_id = json_u64(line, "span_id").expect("span_id present");
        let trace_id = json_u64(line, "trace_id").expect("trace_id present");
        let start = json_u64(line, "start_ns").expect("start_ns present");
        let end = json_u64(line, "end_ns").expect("end_ns present");
        assert!(end >= start, "span interval must not be inverted: {line}");
        trace_of_span.insert(span_id, trace_id);
    }
    let mut roots = 0usize;
    for line in &lines {
        let span_id = json_u64(line, "span_id").unwrap();
        let trace_id = json_u64(line, "trace_id").unwrap();
        match json_u64(line, "parent_span_id") {
            None => {
                assert!(line.contains("\"parent_span_id\":null"), "line: {line}");
                roots += 1;
            }
            Some(parent) => {
                // Every parent reference resolves to a recorded span of the
                // same trace — no dangling IDs anywhere in the file.
                let parent_trace = *trace_of_span
                    .get(&parent)
                    .unwrap_or_else(|| panic!("span {span_id} has dangling parent {parent}"));
                assert_eq!(
                    parent_trace, trace_id,
                    "span {span_id} and parent {parent} must share a trace"
                );
            }
        }
    }
    assert!(roots > 0, "at least one trace root (the step spans)");

    // --- Chrome trace: track metadata + complete events, monotonic ts. ---
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let trace = trace.trim();
    assert!(trace.starts_with('[') && trace.ends_with(']'));
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    for plane in ["range", "power", "net", "control", "scada"] {
        assert!(
            trace.contains(&format!("\"name\":\"{plane}\"")),
            "plane track {plane} declared"
        );
    }
    let mut events = 0usize;
    let mut last_ts: HashMap<u64, f64> = HashMap::new();
    for line in trace.lines() {
        let line = line.trim_start_matches('[').trim_end_matches(']');
        if line.contains("\"ph\":\"M\"") {
            assert!(
                line.contains("\"process_name\"") || line.contains("\"thread_name\""),
                "metadata event: {line}"
            );
            continue;
        }
        if !line.contains("\"ph\":\"X\"") {
            continue;
        }
        events += 1;
        let tid = json_u64(line, "tid").expect("complete events carry a tid");
        let ts = json_f64(line, "ts").expect("complete events carry a ts");
        assert!(json_f64(line, "dur").expect("dur present") >= 0.0);
        assert!(json_u64(line, "trace_id").is_some(), "IDs ride in args");
        assert!(json_u64(line, "span_id").is_some());
        if let Some(prev) = last_ts.insert(tid, ts) {
            assert!(
                ts >= prev,
                "timestamps must be monotonic within track {tid}: {prev} then {ts}"
            );
        }
    }
    assert_eq!(events, lines.len(), "every span becomes one complete event");

    // --- Metrics snapshot surfaces the span-buffer drop counter. ---
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    assert!(metrics.contains("\"spans_dropped\": 0"), "{metrics}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_without_trace_flags_writes_no_trace_files() {
    let dir = temp_dir("trace-off");
    let bundle_dir = dir.join("bundle");
    epic_bundle()
        .write_to_dir(&bundle_dir)
        .expect("write EPIC bundle");
    let metrics_path = dir.join("metrics.json");

    let output = Command::new(env!("CARGO_BIN_EXE_sgml_processor"))
        .args([
            "run",
            bundle_dir.to_str().unwrap(),
            "--seconds",
            "1",
            "--metrics",
            metrics_path.to_str().unwrap(),
        ])
        .output()
        .expect("run sgml_processor");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // Telemetry without tracing: the snapshot still reports the (zero) span
    // drop counter, and no trace artifacts appear.
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    assert!(metrics.contains("\"spans_dropped\": 0"), "{metrics}");
    assert!(!dir.join("trace.json").exists());
    assert!(!dir.join("spans.jsonl").exists());

    let _ = std::fs::remove_dir_all(&dir);
}
