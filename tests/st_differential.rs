//! Differential soundness over the shipped EPIC model set: the semantic
//! checker accepts every EPIC control program, and — the property the
//! checker's Error severity encodes — none of those programs raises a
//! runtime fault across a full scored exercise run.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test code may panic

use sg_cyber_range::models::epic::epic_plc_config;
use sg_cyber_range::models::epic_bundle;
use sg_cyber_range::scenario::{run_exercise, Scenario};
use sgcr_core::{CompiledModel, CyberRange, PlcLogic};
use sgcr_plc::{check_program, parse_plcopen, parse_program, CheckSeverity};
use std::collections::BTreeSet;

#[test]
fn checker_accepts_every_epic_program() {
    let config = epic_plc_config();
    assert!(!config.plcs.is_empty());
    for plc in &config.plcs {
        let program = match &plc.logic {
            PlcLogic::StructuredText(st) => parse_program(st.as_str()).expect("EPIC ST parses"),
            PlcLogic::PlcOpenXml(xml) => parse_plcopen(xml.as_str()).expect("EPIC PLCopen parses"),
        };
        // Variables fed from outside the program each scan: MMS reads,
        // GOOSE subscriptions, and located I/O restored from the image.
        let mut external: BTreeSet<String> = BTreeSet::new();
        external.extend(plc.reads.iter().map(|r| r.variable.clone()));
        external.extend(plc.gooses.iter().map(|g| g.variable.clone()));
        external.extend(
            program
                .vars
                .iter()
                .filter(|v| v.location.is_some())
                .map(|v| v.name.clone()),
        );
        let errors: Vec<_> = check_program(&program, &external)
            .into_iter()
            .filter(|f| f.severity == CheckSeverity::Error)
            .collect();
        assert!(
            errors.is_empty(),
            "checker rejected EPIC PLC {}: {errors:#?}",
            plc.name
        );
    }
}

#[test]
fn epic_exercise_run_raises_no_plc_fault() {
    let bundle = epic_bundle();
    let scenario = Scenario::parse(&bundle.scenarios[0]).unwrap();
    let mut range = CyberRange::instantiate(CompiledModel::shared(&bundle).expect("EPIC compiles"))
        .expect("EPIC compiles");
    run_exercise(&mut range, &scenario).expect("exercise runs");
    for (name, handle) in &range.plcs {
        let status = handle.lock();
        assert!(
            status.fault.is_none(),
            "PLC {name} faulted during the exercise: {:?}",
            status.fault
        );
        assert!(status.scans > 0, "PLC {name} never scanned");
    }
}
