//! Time-series simulation: load profiles and disturbance scenarios.
//!
//! The SG-ML *Power System Extra Config XML* "specifies the amount of load and
//! circuit breaker status in a time series for each component in the
//! simulation model. The power system simulator in the cyber range reads
//! these parameters at each step of the simulation." This module is that
//! execution engine: a [`SimulationSchedule`] applies profile points and
//! scenario events to a [`PowerNetwork`] at each step.

use crate::network::PowerNetwork;
use serde::{Deserialize, Serialize};

/// The element a profile drives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProfileTarget {
    /// Scale a load's power by the profile value.
    LoadScaling(String),
    /// Scale a static generator's output by the profile value.
    SgenScaling(String),
    /// Set a generator's active power (MW) to the profile value.
    GenSetpoint(String),
}

/// A piecewise-constant time profile: at `t >= time_ms` the value applies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// What the profile drives.
    pub target: ProfileTarget,
    /// `(time_ms, value)` points sorted by time.
    pub points: Vec<(u64, f64)>,
}

impl Profile {
    /// The value in effect at time `t_ms` (last point at or before `t_ms`),
    /// or `None` before the first point.
    pub fn value_at(&self, t_ms: u64) -> Option<f64> {
        self.points
            .iter()
            .take_while(|(t, _)| *t <= t_ms)
            .last()
            .map(|(_, v)| *v)
    }
}

/// A one-shot disturbance applied at a point in time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioAction {
    /// Open a named switch (circuit breaker).
    OpenSwitch(String),
    /// Close a named switch.
    CloseSwitch(String),
    /// Take a named line out of service (line fault / loss).
    LineOutage(String),
    /// Return a named line to service.
    LineRestore(String),
    /// Take a named generator out of service (generator loss).
    GenLoss(String),
    /// Return a named generator to service.
    GenRestore(String),
    /// Set a named load's active power demand (MW).
    SetLoadP(String, f64),
}

/// A scheduled scenario event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// Simulation time at which the action fires, in milliseconds.
    pub at_ms: u64,
    /// What happens.
    pub action: ScenarioAction,
}

/// The full schedule driving a time-series simulation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SimulationSchedule {
    /// Continuous profiles.
    pub profiles: Vec<Profile>,
    /// One-shot events, sorted by `at_ms`.
    pub events: Vec<ScenarioEvent>,
}

impl SimulationSchedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies every profile value and every event in `(prev_ms, now_ms]`
    /// to the network. Call once per simulation step with advancing times.
    ///
    /// Returns the names of elements touched (for logging/diagnostics).
    pub fn apply(&self, net: &mut PowerNetwork, prev_ms: u64, now_ms: u64) -> Vec<String> {
        let mut touched = Vec::new();
        for profile in &self.profiles {
            let Some(value) = profile.value_at(now_ms) else {
                continue;
            };
            match &profile.target {
                ProfileTarget::LoadScaling(name) => {
                    if let Some(id) = net.load_by_name(name) {
                        if (net.load[id.index()].scaling - value).abs() > f64::EPSILON {
                            net.load[id.index()].scaling = value;
                            touched.push(format!("load {name} scaling={value}"));
                        }
                    }
                }
                ProfileTarget::SgenScaling(name) => {
                    if let Some(id) = net.sgen_by_name(name) {
                        if (net.sgen[id.index()].scaling - value).abs() > f64::EPSILON {
                            net.sgen[id.index()].scaling = value;
                            touched.push(format!("sgen {name} scaling={value}"));
                        }
                    }
                }
                ProfileTarget::GenSetpoint(name) => {
                    if let Some(id) = net.gen_by_name(name) {
                        if (net.gen[id.index()].p_mw - value).abs() > f64::EPSILON {
                            net.gen[id.index()].p_mw = value;
                            touched.push(format!("gen {name} p_mw={value}"));
                        }
                    }
                }
            }
        }
        for event in &self.events {
            if event.at_ms <= prev_ms || event.at_ms > now_ms {
                continue;
            }
            match &event.action {
                ScenarioAction::OpenSwitch(name) => {
                    if net.set_switch(name, false) {
                        touched.push(format!("switch {name} opened"));
                    }
                }
                ScenarioAction::CloseSwitch(name) => {
                    if net.set_switch(name, true) {
                        touched.push(format!("switch {name} closed"));
                    }
                }
                ScenarioAction::LineOutage(name) => {
                    if let Some(id) = net.line_by_name(name) {
                        net.line[id.index()].in_service = false;
                        touched.push(format!("line {name} outage"));
                    }
                }
                ScenarioAction::LineRestore(name) => {
                    if let Some(id) = net.line_by_name(name) {
                        net.line[id.index()].in_service = true;
                        touched.push(format!("line {name} restored"));
                    }
                }
                ScenarioAction::GenLoss(name) => {
                    if let Some(id) = net.gen_by_name(name) {
                        net.gen[id.index()].in_service = false;
                        touched.push(format!("gen {name} lost"));
                    } else if let Some(id) = net.sgen_by_name(name) {
                        net.sgen[id.index()].in_service = false;
                        touched.push(format!("sgen {name} lost"));
                    }
                }
                ScenarioAction::GenRestore(name) => {
                    if let Some(id) = net.gen_by_name(name) {
                        net.gen[id.index()].in_service = true;
                        touched.push(format!("gen {name} restored"));
                    } else if let Some(id) = net.sgen_by_name(name) {
                        net.sgen[id.index()].in_service = true;
                        touched.push(format!("sgen {name} restored"));
                    }
                }
                ScenarioAction::SetLoadP(name, p_mw) => {
                    if let Some(id) = net.load_by_name(name) {
                        net.load[id.index()].p_mw = *p_mw;
                        touched.push(format!("load {name} p_mw={p_mw}"));
                    }
                }
            }
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve;

    fn demo_net() -> PowerNetwork {
        let mut net = PowerNetwork::new("ts");
        let b1 = net.add_bus("b1", 110.0);
        let b2 = net.add_bus("b2", 110.0);
        net.add_ext_grid("grid", b1, 1.0, 0.0);
        net.add_line("l1", b1, b2, 10.0, 0.06, 0.12, 0.0, 1.0);
        net.add_load("city", b2, 20.0, 5.0);
        net
    }

    #[test]
    fn profile_value_lookup() {
        let p = Profile {
            target: ProfileTarget::LoadScaling("city".into()),
            points: vec![(0, 1.0), (1000, 1.5), (2000, 0.5)],
        };
        assert_eq!(p.value_at(0), Some(1.0));
        assert_eq!(p.value_at(999), Some(1.0));
        assert_eq!(p.value_at(1000), Some(1.5));
        assert_eq!(p.value_at(5000), Some(0.5));
        let empty_before = Profile {
            target: ProfileTarget::LoadScaling("city".into()),
            points: vec![(100, 2.0)],
        };
        assert_eq!(empty_before.value_at(50), None);
    }

    #[test]
    fn load_profile_drives_solution() {
        let mut net = demo_net();
        let schedule = SimulationSchedule {
            profiles: vec![Profile {
                target: ProfileTarget::LoadScaling("city".into()),
                points: vec![(0, 1.0), (1000, 2.0)],
            }],
            events: vec![],
        };
        schedule.apply(&mut net, 0, 100);
        let light = solve(&net).unwrap().total_ext_grid_p_mw();
        schedule.apply(&mut net, 100, 1100);
        let heavy = solve(&net).unwrap().total_ext_grid_p_mw();
        assert!(heavy > light * 1.8);
    }

    #[test]
    fn events_fire_once_in_window() {
        let mut net = demo_net();
        let schedule = SimulationSchedule {
            profiles: vec![],
            events: vec![ScenarioEvent {
                at_ms: 500,
                action: ScenarioAction::LineOutage("l1".into()),
            }],
        };
        assert!(schedule.apply(&mut net, 0, 400).is_empty());
        let touched = schedule.apply(&mut net, 400, 600);
        assert_eq!(touched.len(), 1);
        assert!(!net.line[0].in_service);
        // Window strictly after the event: nothing more fires.
        assert!(schedule.apply(&mut net, 600, 1000).is_empty());
    }

    #[test]
    fn generator_loss_event() {
        let mut net = demo_net();
        let b2 = net.bus_by_name("b2").unwrap();
        net.add_sgen("pv", b2, 8.0, 0.0);
        let before = solve(&net).unwrap().total_ext_grid_p_mw();
        let schedule = SimulationSchedule {
            profiles: vec![],
            events: vec![ScenarioEvent {
                at_ms: 100,
                action: ScenarioAction::GenLoss("pv".into()),
            }],
        };
        schedule.apply(&mut net, 0, 200);
        let after = solve(&net).unwrap().total_ext_grid_p_mw();
        assert!(after > before + 7.0, "grid picks up the lost PV output");
    }

    #[test]
    fn breaker_event_deenergizes() {
        let mut net = demo_net();
        let b1 = net.bus_by_name("b1").unwrap();
        net.add_switch(
            "cb1",
            b1,
            crate::network::SwitchTarget::Line(crate::network::LineId(0)),
            true,
        );
        let schedule = SimulationSchedule {
            profiles: vec![],
            events: vec![ScenarioEvent {
                at_ms: 300,
                action: ScenarioAction::OpenSwitch("cb1".into()),
            }],
        };
        schedule.apply(&mut net, 200, 400);
        let res = solve(&net).unwrap();
        assert!(!res.bus[1].energized);
    }
}
