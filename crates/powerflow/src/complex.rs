//! Minimal complex arithmetic for admittance-matrix power-flow math.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use sgcr_powerflow::Complex;
///
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((z * z.conj()).re, 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Creates a complex number from polar form (magnitude, angle in radians).
    pub fn from_polar(magnitude: f64, angle: f64) -> Complex {
        Complex {
            re: magnitude * angle.cos(),
            im: magnitude * angle.sin(),
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude (cheaper than `abs` when comparing).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Angle in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self` is zero.
    pub fn recip(self) -> Complex {
        let d = self.norm_sqr();
        debug_assert!(d > 0.0, "reciprocal of zero complex number");
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Whether both components are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    // Division via the reciprocal is the standard complex formulation.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert!(close(a / b * b, a));
    }

    #[test]
    fn polar() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(close(z, Complex::new(0.0, 2.0)));
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((z.abs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reciprocal_identity() {
        let z = Complex::new(2.0, -3.0);
        assert!(close(z * z.recip(), Complex::ONE));
    }

    #[test]
    fn conjugate_properties() {
        let z = Complex::new(1.5, -0.5);
        assert_eq!(z.conj().conj(), z);
        assert!((z * z.conj()).im.abs() < 1e-15);
    }
}
