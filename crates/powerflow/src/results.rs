//! Power-flow result tables, mirroring the element tables of
//! [`PowerNetwork`](crate::PowerNetwork).

use serde::{Deserialize, Serialize};

/// Result for one bus.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BusResult {
    /// Voltage magnitude in per-unit (0.0 when de-energized).
    pub vm_pu: f64,
    /// Voltage angle in degrees.
    pub va_degree: f64,
    /// Net active power injection in MW (generation positive).
    pub p_mw: f64,
    /// Net reactive power injection in Mvar.
    pub q_mvar: f64,
    /// Whether the bus belongs to an energized island.
    pub energized: bool,
}

/// Result for one branch (line or transformer).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BranchResult {
    /// Active power entering at the from/HV side in MW.
    pub p_from_mw: f64,
    /// Reactive power entering at the from/HV side in Mvar.
    pub q_from_mvar: f64,
    /// Active power entering at the to/LV side in MW.
    pub p_to_mw: f64,
    /// Reactive power entering at the to/LV side in Mvar.
    pub q_to_mvar: f64,
    /// Active power losses in MW.
    pub pl_mw: f64,
    /// Current at the from side in kA.
    pub i_from_ka: f64,
    /// Current at the to side in kA.
    pub i_to_ka: f64,
    /// Loading relative to the thermal limit, in percent (lines only).
    pub loading_percent: f64,
    /// Whether the branch carried power in this solution.
    pub in_service: bool,
}

/// Result for one external grid: the power it supplies.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExtGridResult {
    /// Active power supplied in MW.
    pub p_mw: f64,
    /// Reactive power supplied in Mvar.
    pub q_mvar: f64,
}

/// Result for one generator.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GenResult {
    /// Active power dispatched in MW (may differ from set-point for slack).
    pub p_mw: f64,
    /// Reactive power produced in Mvar.
    pub q_mvar: f64,
    /// Voltage magnitude at the terminal in per-unit.
    pub vm_pu: f64,
}

/// The complete solution of one power-flow run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerFlowResult {
    /// Per-bus results, indexed like the bus table.
    pub bus: Vec<BusResult>,
    /// Per-line results, indexed like the line table.
    pub line: Vec<BranchResult>,
    /// Per-transformer results, indexed like the trafo table.
    pub trafo: Vec<BranchResult>,
    /// Per-external-grid results.
    pub ext_grid: Vec<ExtGridResult>,
    /// Per-generator results.
    pub gen: Vec<GenResult>,
    /// Newton–Raphson iterations taken (maximum across islands).
    pub iterations: usize,
    /// Total active losses in MW.
    pub total_losses_mw: f64,
}

impl PowerFlowResult {
    /// Total active power supplied by all external grids, in MW.
    pub fn total_ext_grid_p_mw(&self) -> f64 {
        self.ext_grid.iter().map(|e| e.p_mw).sum()
    }

    /// The highest line loading in percent, with its line index.
    pub fn max_line_loading(&self) -> Option<(usize, f64)> {
        self.line
            .iter()
            .enumerate()
            .filter(|(_, l)| l.in_service)
            .map(|(i, l)| (i, l.loading_percent))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}
