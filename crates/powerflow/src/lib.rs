#![warn(missing_docs)]

//! # sgcr-powerflow
//!
//! Steady-state AC power-flow simulation for the smart grid cyber range —
//! the Rust substitute for the Pandapower simulator used by the SG-ML paper.
//!
//! The cyber range couples an emulated cyber network (IEDs, PLCs, SCADA) to a
//! physical power model. Exactly as in the paper, the physical side is a
//! *snapshot* solver re-run periodically (default every 100 ms): a
//! [`PowerNetwork`] is mutated by breaker commands and load profiles, then
//! [`solve`] produces bus voltages and branch flows that virtual IEDs sample
//! as measurements.
//!
//! The element model follows pandapower's tables (`bus`, `line`, `trafo`,
//! `load`, `sgen`, `gen`, `ext_grid`, `shunt`, `switch`) with the same
//! parameter names and units, so power models compiled from IEC 61850 SSD
//! files are directly comparable.
//!
//! # Examples
//!
//! ```
//! use sgcr_powerflow::PowerNetwork;
//!
//! let mut net = PowerNetwork::new("substation");
//! let hv = net.add_bus("hv", 110.0);
//! let lv = net.add_bus("lv", 20.0);
//! net.add_ext_grid("grid", hv, 1.0, 0.0);
//! net.add_trafo("t1", hv, lv, 25.0, 110.0, 20.0, 12.0, 0.6);
//! net.add_load("feeder", lv, 10.0, 3.0);
//!
//! let result = sgcr_powerflow::solve(&net)?;
//! assert!(result.bus[lv.index()].vm_pu > 0.9);
//! # Ok::<(), sgcr_powerflow::PowerFlowError>(())
//! ```

mod complex;
mod error;
mod linalg;
mod network;
mod results;
mod solver;
mod timeseries;
mod topology;

pub use complex::Complex;
pub use error::PowerFlowError;
pub use linalg::{solve as solve_linear, Lu, Matrix, SingularMatrix};
pub use network::{
    Bus, BusId, ExtGrid, ExtGridId, Gen, GenId, Line, LineId, Load, LoadId, PowerNetwork, Sgen,
    SgenId, Shunt, ShuntId, Switch, SwitchId, SwitchTarget, Trafo, TrafoId,
};
pub use results::{BranchResult, BusResult, ExtGridResult, GenResult, PowerFlowResult};
pub use solver::{solve, solve_telemetered, solve_traced, solve_with, SolveOptions};
pub use timeseries::{Profile, ProfileTarget, ScenarioAction, ScenarioEvent, SimulationSchedule};
pub use topology::{Island, SlackSource, Topology};
