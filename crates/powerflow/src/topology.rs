//! Switch topology processing and island detection.
//!
//! Before the solver runs, the network's switch states are folded into an
//! *electrical* view: closed bus-bus switches merge buses (busbar sections),
//! open element switches take their line/transformer out of service, and the
//! resulting graph is split into islands. Each island is energized if it
//! contains a slack source (external grid, or a generator promoted to slack).

use crate::network::{BusId, ExtGridId, GenId, LineId, PowerNetwork, SwitchTarget, TrafoId};
use std::collections::HashMap;

/// Disjoint-set over bus indices.
#[derive(Debug, Clone)]
pub(crate) struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    pub(crate) fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller index wins as representative.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// The slack source chosen for an island.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlackSource {
    /// An in-service external grid.
    ExtGrid(ExtGridId),
    /// A generator promoted to slack because the island has no external grid.
    Gen(GenId),
}

/// A connected electrical island.
#[derive(Debug, Clone)]
pub struct Island {
    /// Representative bus indices (post-merge) belonging to this island.
    pub nodes: Vec<usize>,
    /// The slack source, if the island is energized.
    pub slack: Option<SlackSource>,
}

impl Island {
    /// Whether the island has a reference source and will be solved.
    pub fn is_energized(&self) -> bool {
        self.slack.is_some()
    }
}

/// The electrical view of a network after switch processing.
#[derive(Debug, Clone)]
pub struct Topology {
    /// For each original bus index, the representative node index it merged
    /// into (representatives map to themselves). Out-of-service buses keep a
    /// representative but belong to no island.
    pub bus_to_node: Vec<usize>,
    /// Lines that are electrically connected (in service + switches closed).
    pub active_lines: Vec<LineId>,
    /// Transformers that are electrically connected.
    pub active_trafos: Vec<TrafoId>,
    /// Electrical islands over representative nodes.
    pub islands: Vec<Island>,
}

impl Topology {
    /// Builds the electrical topology of `net` from its switch states.
    pub fn build(net: &PowerNetwork) -> Topology {
        let n = net.bus.len();
        let mut uf = UnionFind::new(n);

        // 1. Closed bus-bus switches merge buses.
        for sw in &net.switch {
            if let SwitchTarget::Bus(other) = sw.target {
                if sw.closed
                    && net.bus[sw.bus.index()].in_service
                    && net.bus[other.index()].in_service
                {
                    uf.union(sw.bus.index(), other.index());
                }
            }
        }

        // 2. Element switches: any open switch on a line/trafo disconnects it.
        let mut line_open = vec![false; net.line.len()];
        let mut trafo_open = vec![false; net.trafo.len()];
        for sw in &net.switch {
            match sw.target {
                SwitchTarget::Line(l) if !sw.closed => line_open[l.index()] = true,
                SwitchTarget::Trafo(t) if !sw.closed => trafo_open[t.index()] = true,
                _ => {}
            }
        }

        let bus_in = |b: BusId| net.bus[b.index()].in_service;

        let active_lines: Vec<LineId> = net
            .line
            .iter()
            .enumerate()
            .filter(|(i, l)| {
                l.in_service && !line_open[*i] && bus_in(l.from_bus) && bus_in(l.to_bus)
            })
            .map(|(i, _)| LineId(i))
            .collect();
        let active_trafos: Vec<TrafoId> = net
            .trafo
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                t.in_service && !trafo_open[*i] && bus_in(t.hv_bus) && bus_in(t.lv_bus)
            })
            .map(|(i, _)| TrafoId(i))
            .collect();

        let bus_to_node: Vec<usize> = (0..n).map(|b| uf.find(b)).collect();

        // 3. Connected components over representative nodes via active branches.
        let mut adjacency: HashMap<usize, Vec<usize>> = HashMap::new();
        for (b, bus) in net.bus.iter().enumerate() {
            if bus.in_service {
                adjacency.entry(bus_to_node[b]).or_default();
            }
        }
        let connect = |a: usize, b: usize, adjacency: &mut HashMap<usize, Vec<usize>>| {
            adjacency.entry(a).or_default().push(b);
            adjacency.entry(b).or_default().push(a);
        };
        for &lid in &active_lines {
            let l = &net.line[lid.index()];
            connect(
                bus_to_node[l.from_bus.index()],
                bus_to_node[l.to_bus.index()],
                &mut adjacency,
            );
        }
        for &tid in &active_trafos {
            let t = &net.trafo[tid.index()];
            connect(
                bus_to_node[t.hv_bus.index()],
                bus_to_node[t.lv_bus.index()],
                &mut adjacency,
            );
        }

        let mut node_island: HashMap<usize, usize> = HashMap::new();
        let mut islands: Vec<Island> = Vec::new();
        let mut roots: Vec<usize> = adjacency.keys().copied().collect();
        roots.sort_unstable();
        for &root in &roots {
            if node_island.contains_key(&root) {
                continue;
            }
            let island_index = islands.len();
            let mut stack = vec![root];
            let mut nodes = Vec::new();
            node_island.insert(root, island_index);
            while let Some(node) = stack.pop() {
                nodes.push(node);
                if let Some(neighbors) = adjacency.get(&node) {
                    for &next in neighbors {
                        if let std::collections::hash_map::Entry::Vacant(e) =
                            node_island.entry(next)
                        {
                            e.insert(island_index);
                            stack.push(next);
                        }
                    }
                }
            }
            nodes.sort_unstable();
            islands.push(Island { nodes, slack: None });
        }

        // 4. Assign a slack source per island: prefer ext_grid, else promote
        //    the first in-service generator.
        for (i, eg) in net.ext_grid.iter().enumerate() {
            if !eg.in_service || !bus_in(eg.bus) {
                continue;
            }
            let node = bus_to_node[eg.bus.index()];
            if let Some(&island) = node_island.get(&node) {
                if islands[island].slack.is_none() {
                    islands[island].slack = Some(SlackSource::ExtGrid(ExtGridId(i)));
                }
            }
        }
        for (i, g) in net.gen.iter().enumerate() {
            if !g.in_service || !bus_in(g.bus) {
                continue;
            }
            let node = bus_to_node[g.bus.index()];
            if let Some(&island) = node_island.get(&node) {
                if islands[island].slack.is_none() {
                    islands[island].slack = Some(SlackSource::Gen(GenId(i)));
                }
            }
        }

        Topology {
            bus_to_node,
            active_lines,
            active_trafos,
            islands,
        }
    }

    /// The island index containing the representative node, if any.
    pub fn island_of_node(&self, node: usize) -> Option<usize> {
        self.islands
            .iter()
            .position(|isl| isl.nodes.binary_search(&node).is_ok())
    }

    /// The island index containing a bus.
    pub fn island_of_bus(&self, bus: BusId) -> Option<usize> {
        self.island_of_node(self.bus_to_node[bus.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{PowerNetwork, SwitchTarget};

    fn two_bus_net() -> PowerNetwork {
        let mut net = PowerNetwork::new("t");
        let b1 = net.add_bus("b1", 110.0);
        let b2 = net.add_bus("b2", 110.0);
        net.add_ext_grid("slack", b1, 1.0, 0.0);
        net.add_line("l1", b1, b2, 5.0, 0.06, 0.12, 0.0, 0.5);
        net
    }

    #[test]
    fn single_island_energized() {
        let net = two_bus_net();
        let topo = Topology::build(&net);
        assert_eq!(topo.islands.len(), 1);
        assert!(topo.islands[0].is_energized());
        assert_eq!(topo.active_lines.len(), 1);
    }

    #[test]
    fn open_line_switch_splits_island() {
        let mut net = two_bus_net();
        let b1 = net.bus_by_name("b1").unwrap();
        net.add_switch("cb1", b1, SwitchTarget::Line(LineId(0)), false);
        let topo = Topology::build(&net);
        assert_eq!(topo.islands.len(), 2);
        assert!(topo.active_lines.is_empty());
        let energized = topo.islands.iter().filter(|i| i.is_energized()).count();
        assert_eq!(energized, 1, "only the slack island stays energized");
    }

    #[test]
    fn bus_bus_switch_merges() {
        let mut net = PowerNetwork::new("t");
        let b1 = net.add_bus("b1", 20.0);
        let b2 = net.add_bus("b2", 20.0);
        net.add_ext_grid("slack", b1, 1.0, 0.0);
        net.add_switch("coupler", b1, SwitchTarget::Bus(b2), true);
        let topo = Topology::build(&net);
        assert_eq!(topo.bus_to_node[b1.index()], topo.bus_to_node[b2.index()]);
        assert_eq!(topo.islands.len(), 1);
    }

    #[test]
    fn open_bus_bus_switch_separates() {
        let mut net = PowerNetwork::new("t");
        let b1 = net.add_bus("b1", 20.0);
        let b2 = net.add_bus("b2", 20.0);
        net.add_ext_grid("slack", b1, 1.0, 0.0);
        net.add_switch("coupler", b1, SwitchTarget::Bus(b2), false);
        let topo = Topology::build(&net);
        assert_ne!(topo.bus_to_node[b1.index()], topo.bus_to_node[b2.index()]);
        assert_eq!(topo.islands.len(), 2);
    }

    #[test]
    fn gen_promoted_to_slack_in_separated_island() {
        let mut net = two_bus_net();
        let b2 = net.bus_by_name("b2").unwrap();
        net.add_gen("g1", b2, 5.0, 1.02);
        net.line[0].in_service = false;
        let topo = Topology::build(&net);
        assert_eq!(topo.islands.len(), 2);
        assert!(topo.islands.iter().all(|i| i.is_energized()));
        let b2_island = topo.island_of_bus(b2).unwrap();
        assert!(matches!(
            topo.islands[b2_island].slack,
            Some(SlackSource::Gen(_))
        ));
    }

    #[test]
    fn out_of_service_bus_excluded() {
        let mut net = two_bus_net();
        net.bus[1].in_service = false;
        let topo = Topology::build(&net);
        assert!(topo.active_lines.is_empty());
        assert_eq!(topo.islands.len(), 1);
    }
}
