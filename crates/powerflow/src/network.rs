//! The power network element model (Pandapower-style element tables).
//!
//! A [`PowerNetwork`] is a collection of buses and the elements attached to
//! them. Parameter names and units deliberately mirror pandapower's so that
//! models generated from IEC 61850 SSD files read the same in both systems:
//! `vn_kv`, `r_ohm_per_km`, `sn_mva`, `vk_percent`, `p_mw`, …

use serde::{Deserialize, Serialize};

macro_rules! element_id {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        pub struct $name(pub usize);

        impl $name {
            /// The raw table index.
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}({})", stringify!($name), self.0)
            }
        }
    };
}

element_id!(
    /// Index into the bus table.
    BusId
);
element_id!(
    /// Index into the line table.
    LineId
);
element_id!(
    /// Index into the transformer table.
    TrafoId
);
element_id!(
    /// Index into the load table.
    LoadId
);
element_id!(
    /// Index into the static-generator table.
    SgenId
);
element_id!(
    /// Index into the (voltage-controlled) generator table.
    GenId
);
element_id!(
    /// Index into the external-grid table.
    ExtGridId
);
element_id!(
    /// Index into the shunt table.
    ShuntId
);
element_id!(
    /// Index into the switch table.
    SwitchId
);

/// A network bus (node) at a nominal voltage level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bus {
    /// Human-readable name (unique within a network by convention).
    pub name: String,
    /// Nominal voltage in kV.
    pub vn_kv: f64,
    /// Whether the bus participates in the calculation.
    pub in_service: bool,
}

/// An overhead line or cable (pi-model).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Line {
    /// Human-readable name.
    pub name: String,
    /// From-side bus.
    pub from_bus: BusId,
    /// To-side bus.
    pub to_bus: BusId,
    /// Length in km.
    pub length_km: f64,
    /// Series resistance in ohm per km.
    pub r_ohm_per_km: f64,
    /// Series reactance in ohm per km.
    pub x_ohm_per_km: f64,
    /// Shunt capacitance in nF per km.
    pub c_nf_per_km: f64,
    /// Thermal current limit in kA.
    pub max_i_ka: f64,
    /// Whether the line is energized.
    pub in_service: bool,
}

/// A two-winding transformer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trafo {
    /// Human-readable name.
    pub name: String,
    /// High-voltage side bus.
    pub hv_bus: BusId,
    /// Low-voltage side bus.
    pub lv_bus: BusId,
    /// Rated apparent power in MVA.
    pub sn_mva: f64,
    /// Rated HV voltage in kV.
    pub vn_hv_kv: f64,
    /// Rated LV voltage in kV.
    pub vn_lv_kv: f64,
    /// Short-circuit voltage in percent.
    pub vk_percent: f64,
    /// Real part of the short-circuit voltage in percent.
    pub vkr_percent: f64,
    /// Tap position (integer steps, 0 = neutral).
    pub tap_pos: i32,
    /// Voltage change per tap step in percent.
    pub tap_step_percent: f64,
    /// Whether the transformer is energized.
    pub in_service: bool,
}

/// A PQ load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Load {
    /// Human-readable name.
    pub name: String,
    /// Bus the load is connected to.
    pub bus: BusId,
    /// Active power demand in MW.
    pub p_mw: f64,
    /// Reactive power demand in Mvar.
    pub q_mvar: f64,
    /// Scaling factor applied to both powers (load profiles write here).
    pub scaling: f64,
    /// Whether the load draws power.
    pub in_service: bool,
}

/// A static generator (PQ injection: PV panels, batteries, wind).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgen {
    /// Human-readable name.
    pub name: String,
    /// Bus the generator is connected to.
    pub bus: BusId,
    /// Active power injection in MW.
    pub p_mw: f64,
    /// Reactive power injection in Mvar.
    pub q_mvar: f64,
    /// Scaling factor (generation profiles write here).
    pub scaling: f64,
    /// Whether the generator injects power.
    pub in_service: bool,
}

/// A voltage-controlled (PV) generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gen {
    /// Human-readable name.
    pub name: String,
    /// Bus the generator is connected to.
    pub bus: BusId,
    /// Active power set-point in MW.
    pub p_mw: f64,
    /// Voltage set-point in per-unit.
    pub vm_pu: f64,
    /// Whether the generator is online.
    pub in_service: bool,
}

/// An external grid connection (slack bus).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtGrid {
    /// Human-readable name.
    pub name: String,
    /// Bus the grid connects at.
    pub bus: BusId,
    /// Voltage magnitude set-point in per-unit.
    pub vm_pu: f64,
    /// Voltage angle set-point in degrees.
    pub va_degree: f64,
    /// Whether the connection is active.
    pub in_service: bool,
}

/// A shunt element (capacitor bank / reactor), powers at 1.0 pu voltage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Shunt {
    /// Human-readable name.
    pub name: String,
    /// Bus the shunt is connected to.
    pub bus: BusId,
    /// Active power at v=1 pu in MW (losses).
    pub p_mw: f64,
    /// Reactive power at v=1 pu in Mvar (positive = inductive).
    pub q_mvar: f64,
    /// Whether the shunt is connected.
    pub in_service: bool,
}

/// What a switch connects the bus to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchTarget {
    /// Bus-to-bus coupler / busbar section switch.
    Bus(BusId),
    /// Bus-to-line breaker (disconnects the line when open).
    Line(LineId),
    /// Bus-to-transformer breaker.
    Trafo(TrafoId),
}

/// A switch or circuit breaker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Switch {
    /// Human-readable name (circuit breakers referenced by SG-ML use this).
    pub name: String,
    /// Bus side of the switch.
    pub bus: BusId,
    /// What the switch connects the bus to.
    pub target: SwitchTarget,
    /// Whether the switch is closed (conducting).
    pub closed: bool,
}

/// A complete power network: element tables plus the MVA base.
///
/// # Examples
///
/// ```
/// use sgcr_powerflow::PowerNetwork;
///
/// let mut net = PowerNetwork::new("demo");
/// let b1 = net.add_bus("hv", 110.0);
/// let b2 = net.add_bus("lv", 110.0);
/// net.add_ext_grid("grid", b1, 1.0, 0.0);
/// net.add_line("l1", b1, b2, 10.0, 0.06, 0.12, 300.0, 0.5);
/// net.add_load("city", b2, 20.0, 5.0);
/// let result = sgcr_powerflow::solve(&net)?;
/// assert!(result.bus[b2.index()].vm_pu < 1.0);
/// # Ok::<(), sgcr_powerflow::PowerFlowError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerNetwork {
    /// Network name (substation or system identifier).
    pub name: String,
    /// System MVA base for the per-unit conversion.
    pub sn_mva_base: f64,
    /// Nominal system frequency in Hz.
    pub f_hz: f64,
    /// Bus table.
    pub bus: Vec<Bus>,
    /// Line table.
    pub line: Vec<Line>,
    /// Transformer table.
    pub trafo: Vec<Trafo>,
    /// Load table.
    pub load: Vec<Load>,
    /// Static generator table.
    pub sgen: Vec<Sgen>,
    /// Generator table.
    pub gen: Vec<Gen>,
    /// External grid table.
    pub ext_grid: Vec<ExtGrid>,
    /// Shunt table.
    pub shunt: Vec<Shunt>,
    /// Switch table.
    pub switch: Vec<Switch>,
}

impl PowerNetwork {
    /// Creates an empty network with a 100 MVA base at 50 Hz.
    pub fn new(name: &str) -> PowerNetwork {
        PowerNetwork {
            name: name.to_string(),
            sn_mva_base: 100.0,
            f_hz: 50.0,
            bus: Vec::new(),
            line: Vec::new(),
            trafo: Vec::new(),
            load: Vec::new(),
            sgen: Vec::new(),
            gen: Vec::new(),
            ext_grid: Vec::new(),
            shunt: Vec::new(),
            switch: Vec::new(),
        }
    }

    /// Adds a bus and returns its id.
    pub fn add_bus(&mut self, name: &str, vn_kv: f64) -> BusId {
        self.bus.push(Bus {
            name: name.to_string(),
            vn_kv,
            in_service: true,
        });
        BusId(self.bus.len() - 1)
    }

    /// Adds a line and returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn add_line(
        &mut self,
        name: &str,
        from_bus: BusId,
        to_bus: BusId,
        length_km: f64,
        r_ohm_per_km: f64,
        x_ohm_per_km: f64,
        c_nf_per_km: f64,
        max_i_ka: f64,
    ) -> LineId {
        self.line.push(Line {
            name: name.to_string(),
            from_bus,
            to_bus,
            length_km,
            r_ohm_per_km,
            x_ohm_per_km,
            c_nf_per_km,
            max_i_ka,
            in_service: true,
        });
        LineId(self.line.len() - 1)
    }

    /// Adds a transformer (neutral tap) and returns its id.
    #[allow(clippy::too_many_arguments)]
    pub fn add_trafo(
        &mut self,
        name: &str,
        hv_bus: BusId,
        lv_bus: BusId,
        sn_mva: f64,
        vn_hv_kv: f64,
        vn_lv_kv: f64,
        vk_percent: f64,
        vkr_percent: f64,
    ) -> TrafoId {
        self.trafo.push(Trafo {
            name: name.to_string(),
            hv_bus,
            lv_bus,
            sn_mva,
            vn_hv_kv,
            vn_lv_kv,
            vk_percent,
            vkr_percent,
            tap_pos: 0,
            tap_step_percent: 0.0,
            in_service: true,
        });
        TrafoId(self.trafo.len() - 1)
    }

    /// Adds a PQ load and returns its id.
    pub fn add_load(&mut self, name: &str, bus: BusId, p_mw: f64, q_mvar: f64) -> LoadId {
        self.load.push(Load {
            name: name.to_string(),
            bus,
            p_mw,
            q_mvar,
            scaling: 1.0,
            in_service: true,
        });
        LoadId(self.load.len() - 1)
    }

    /// Adds a static (PQ) generator and returns its id.
    pub fn add_sgen(&mut self, name: &str, bus: BusId, p_mw: f64, q_mvar: f64) -> SgenId {
        self.sgen.push(Sgen {
            name: name.to_string(),
            bus,
            p_mw,
            q_mvar,
            scaling: 1.0,
            in_service: true,
        });
        SgenId(self.sgen.len() - 1)
    }

    /// Adds a PV generator and returns its id.
    pub fn add_gen(&mut self, name: &str, bus: BusId, p_mw: f64, vm_pu: f64) -> GenId {
        self.gen.push(Gen {
            name: name.to_string(),
            bus,
            p_mw,
            vm_pu,
            in_service: true,
        });
        GenId(self.gen.len() - 1)
    }

    /// Adds an external grid (slack) and returns its id.
    pub fn add_ext_grid(
        &mut self,
        name: &str,
        bus: BusId,
        vm_pu: f64,
        va_degree: f64,
    ) -> ExtGridId {
        self.ext_grid.push(ExtGrid {
            name: name.to_string(),
            bus,
            vm_pu,
            va_degree,
            in_service: true,
        });
        ExtGridId(self.ext_grid.len() - 1)
    }

    /// Adds a shunt and returns its id.
    pub fn add_shunt(&mut self, name: &str, bus: BusId, p_mw: f64, q_mvar: f64) -> ShuntId {
        self.shunt.push(Shunt {
            name: name.to_string(),
            bus,
            p_mw,
            q_mvar,
            in_service: true,
        });
        ShuntId(self.shunt.len() - 1)
    }

    /// Adds a switch and returns its id.
    pub fn add_switch(
        &mut self,
        name: &str,
        bus: BusId,
        target: SwitchTarget,
        closed: bool,
    ) -> SwitchId {
        self.switch.push(Switch {
            name: name.to_string(),
            bus,
            target,
            closed,
        });
        SwitchId(self.switch.len() - 1)
    }

    /// Finds a bus id by name.
    pub fn bus_by_name(&self, name: &str) -> Option<BusId> {
        self.bus.iter().position(|b| b.name == name).map(BusId)
    }

    /// Finds a line id by name.
    pub fn line_by_name(&self, name: &str) -> Option<LineId> {
        self.line.iter().position(|l| l.name == name).map(LineId)
    }

    /// Finds a switch id by name.
    pub fn switch_by_name(&self, name: &str) -> Option<SwitchId> {
        self.switch
            .iter()
            .position(|s| s.name == name)
            .map(SwitchId)
    }

    /// Finds a load id by name.
    pub fn load_by_name(&self, name: &str) -> Option<LoadId> {
        self.load.iter().position(|l| l.name == name).map(LoadId)
    }

    /// Finds a generator id by name.
    pub fn gen_by_name(&self, name: &str) -> Option<GenId> {
        self.gen.iter().position(|g| g.name == name).map(GenId)
    }

    /// Finds a static generator id by name.
    pub fn sgen_by_name(&self, name: &str) -> Option<SgenId> {
        self.sgen.iter().position(|s| s.name == name).map(SgenId)
    }

    /// Finds a transformer id by name.
    pub fn trafo_by_name(&self, name: &str) -> Option<TrafoId> {
        self.trafo.iter().position(|t| t.name == name).map(TrafoId)
    }

    /// Opens or closes a named switch. Returns `false` if no such switch.
    pub fn set_switch(&mut self, name: &str, closed: bool) -> bool {
        match self.switch_by_name(name) {
            Some(id) => {
                self.switch[id.index()].closed = closed;
                true
            }
            None => false,
        }
    }

    /// Total connected in-service load, after scaling, in MW.
    pub fn total_load_mw(&self) -> f64 {
        self.load
            .iter()
            .filter(|l| l.in_service)
            .map(|l| l.p_mw * l.scaling)
            .sum()
    }

    /// A short structural summary (used by the Figure 5 regeneration binary).
    pub fn summary(&self) -> String {
        format!(
            "{}: {} buses, {} lines, {} trafos, {} loads, {} sgens, {} gens, {} ext_grids, {} switches",
            self.name,
            self.bus.len(),
            self.line.len(),
            self.trafo.len(),
            self.load.len(),
            self.sgen.len(),
            self.gen.len(),
            self.ext_grid.len(),
            self.switch.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let mut net = PowerNetwork::new("t");
        let b1 = net.add_bus("b1", 110.0);
        let b2 = net.add_bus("b2", 20.0);
        let t = net.add_trafo("t1", b1, b2, 40.0, 110.0, 20.0, 10.0, 0.5);
        let l = net.add_load("ld", b2, 10.0, 2.0);
        assert_eq!(net.bus_by_name("b2"), Some(b2));
        assert_eq!(net.trafo_by_name("t1"), Some(t));
        assert_eq!(net.load_by_name("ld"), Some(l));
        assert_eq!(net.bus_by_name("zz"), None);
        assert_eq!(net.total_load_mw(), 10.0);
    }

    #[test]
    fn switch_toggling() {
        let mut net = PowerNetwork::new("t");
        let b1 = net.add_bus("b1", 20.0);
        let b2 = net.add_bus("b2", 20.0);
        net.add_switch("cb1", b1, SwitchTarget::Bus(b2), true);
        assert!(net.set_switch("cb1", false));
        assert!(!net.switch[0].closed);
        assert!(!net.set_switch("nope", true));
    }

    #[test]
    fn scaling_affects_total_load() {
        let mut net = PowerNetwork::new("t");
        let b = net.add_bus("b", 20.0);
        let l = net.add_load("ld", b, 10.0, 0.0);
        net.load[l.index()].scaling = 0.5;
        assert_eq!(net.total_load_mw(), 5.0);
        net.load[l.index()].in_service = false;
        assert_eq!(net.total_load_mw(), 0.0);
    }
}
