#![allow(clippy::needless_range_loop)] // index loops mirror the textbook algorithms

//! Dense real linear algebra: matrix storage and LU factorization with
//! partial pivoting, sized for the Jacobians of substation-scale networks.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of order `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            out[i] = row.iter().zip(v).map(|(a, b)| a * b).sum();
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

/// Error returned when a linear system cannot be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SingularMatrix {
    /// Pivot column at which factorization broke down.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at pivot column {}", self.column)
    }
}

impl std::error::Error for SingularMatrix {}

/// An LU factorization (with partial pivoting) of a square matrix.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    pivots: Vec<usize>,
}

impl Lu {
    /// Factorizes `a` in place (a copy is taken).
    ///
    /// # Errors
    ///
    /// Returns [`SingularMatrix`] if a pivot column has no usable pivot.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factorize(a: &Matrix) -> Result<Lu, SingularMatrix> {
        assert_eq!(a.rows, a.cols, "LU factorization requires a square matrix");
        let n = a.rows;
        let mut lu = a.clone();
        let mut pivots = vec![0usize; n];

        for k in 0..n {
            // Partial pivoting: largest |value| in column k at/below diagonal.
            let mut max_val = 0.0;
            let mut max_row = k;
            for i in k..n {
                let v = lu[(i, k)].abs();
                if v > max_val {
                    max_val = v;
                    max_row = i;
                }
            }
            if max_val < 1e-13 {
                return Err(SingularMatrix { column: k });
            }
            pivots[k] = max_row;
            if max_row != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(max_row, c)];
                    lu[(max_row, c)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for i in k + 1..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in k + 1..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Lu { lu, pivots })
    }

    /// Solves `A x = b` for `x` using the stored factorization.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the matrix order.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows;
        assert_eq!(b.len(), n, "dimension mismatch");
        let mut x = b.to_vec();
        // Apply row permutations.
        for k in 0..n {
            x.swap(k, self.pivots[k]);
        }
        // Forward substitution (L has implicit unit diagonal).
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        // Back substitution.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in i + 1..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        x
    }
}

/// Convenience: factorize-and-solve in one call.
///
/// # Errors
///
/// Returns [`SingularMatrix`] when `a` cannot be factorized.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SingularMatrix> {
    Ok(Lu::factorize(a)?.solve(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_small_system() {
        // 2x + y = 5 ; x - y = 1  =>  x = 2, y = 1
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 2.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = -1.0;
        let x = solve(&a, &[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 0.0;
        a[(0, 1)] = 1.0;
        a[(1, 0)] = 1.0;
        a[(1, 1)] = 0.0;
        let x = solve(&a, &[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 4.0;
        assert!(solve(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn identity_solution() {
        let a = Matrix::identity(5);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(solve(&a, &b).unwrap(), b.to_vec());
    }

    #[test]
    fn residual_small_for_random_like_matrix() {
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        // Deterministic, diagonally-dominant pseudo-random matrix.
        let mut seed = 42u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = solve(&a, &b).unwrap();
        let r = a.mul_vec(&x);
        for i in 0..n {
            assert!((r[i] - b[i]).abs() < 1e-9, "residual too large at {i}");
        }
    }

    #[test]
    fn mul_vec_matches_manual() {
        let mut a = Matrix::zeros(2, 3);
        a[(0, 0)] = 1.0;
        a[(0, 1)] = 2.0;
        a[(0, 2)] = 3.0;
        a[(1, 0)] = 4.0;
        a[(1, 1)] = 5.0;
        a[(1, 2)] = 6.0;
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }
}
