//! Newton–Raphson AC power flow over the processed topology.

use crate::complex::Complex;
use crate::error::PowerFlowError;
use crate::linalg::{Lu, Matrix};
use crate::network::PowerNetwork;
use crate::results::{BranchResult, BusResult, ExtGridResult, GenResult, PowerFlowResult};
use crate::topology::{SlackSource, Topology};
use std::collections::HashMap;

/// Solver options.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveOptions {
    /// Convergence tolerance on the largest power mismatch, in per-unit.
    pub tolerance: f64,
    /// Maximum Newton–Raphson iterations per island.
    pub max_iterations: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tolerance: 1e-8,
            max_iterations: 30,
        }
    }
}

/// Solves the AC power flow with default options.
///
/// # Errors
///
/// Returns [`PowerFlowError`] if an energized island fails to converge or its
/// Jacobian is singular. De-energized islands are reported with zero voltage,
/// not as errors.
pub fn solve(net: &PowerNetwork) -> Result<PowerFlowResult, PowerFlowError> {
    solve_with(net, &SolveOptions::default())
}

/// Solves the AC power flow with explicit [`SolveOptions`].
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with(
    net: &PowerNetwork,
    options: &SolveOptions,
) -> Result<PowerFlowResult, PowerFlowError> {
    validate(net)?;
    let topo = Topology::build(net);
    let state = solve_state(net, &topo, options)?;
    Ok(extract_results(net, &topo, &state))
}

/// Solves the AC power flow and records the outcome into `telemetry`.
///
/// On top of [`solve_with`], this observes the wall-clock solve time in the
/// `powerflow.solve_seconds` histogram, the Newton–Raphson iteration count in
/// `powerflow.nr_iterations`, counts failures in
/// `powerflow.convergence_failures`, and journals a
/// [`SolveCompleted`](sgcr_obs::Event::SolveCompleted) or
/// [`SolveFailed`](sgcr_obs::Event::SolveFailed) event stamped with the
/// simulation time `t_ns`. With disabled telemetry this is exactly
/// [`solve_with`] — not even the timer is started.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_telemetered(
    net: &PowerNetwork,
    options: &SolveOptions,
    telemetry: &sgcr_obs::Telemetry,
    t_ns: u64,
) -> Result<PowerFlowResult, PowerFlowError> {
    solve_traced(net, options, telemetry, t_ns, None).0
}

/// Solves the AC power flow, records telemetry, and opens a `power.solve`
/// span parented to `parent` when tracing is enabled.
///
/// The span covers the simulated instant `t_ns` (zero duration: the solve is
/// instantaneous in simulation time) and carries the iteration count and
/// convergence status as attributes. The returned context identifies the
/// solve span so downstream actions (IED measurement sampling) can be
/// parented to it; it is `None` when tracing is off.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_traced(
    net: &PowerNetwork,
    options: &SolveOptions,
    telemetry: &sgcr_obs::Telemetry,
    t_ns: u64,
    parent: Option<sgcr_obs::TraceCtx>,
) -> (
    Result<PowerFlowResult, PowerFlowError>,
    Option<sgcr_obs::TraceCtx>,
) {
    if !telemetry.is_enabled() {
        return (solve_with(net, options), None);
    }
    let tracer = telemetry.tracer();
    let mut span = tracer.open("power.solve", sgcr_obs::Plane::Power, parent, t_ns);
    let ctx = span.ctx();
    let start = std::time::Instant::now();
    let result = solve_with(net, options);
    let seconds = start.elapsed().as_secs_f64();
    telemetry.counter("powerflow.solves").inc();
    telemetry
        .histogram(
            "powerflow.solve_seconds",
            &sgcr_obs::buckets::LATENCY_SECONDS,
        )
        .observe(seconds);
    match &result {
        Ok(r) => {
            telemetry
                .histogram("powerflow.nr_iterations", &sgcr_obs::buckets::ITERATIONS)
                .observe(r.iterations as f64);
            let iters = r.iterations as u64;
            telemetry.record(t_ns, || sgcr_obs::Event::SolveCompleted { iters, seconds });
            if span.is_recording() {
                span.attr("iterations", iters.to_string());
                span.attr("converged", "true");
            }
        }
        Err(e) => {
            telemetry.counter("powerflow.convergence_failures").inc();
            telemetry.record(t_ns, || sgcr_obs::Event::SolveFailed {
                detail: e.to_string(),
            });
            if span.is_recording() {
                span.attr("converged", "false");
            }
        }
    }
    span.end(t_ns);
    (result, ctx)
}

/// Per-node complex voltages keyed by representative node index.
struct SolvedState {
    voltage: HashMap<usize, Complex>,
    iterations: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum NodeKind {
    Slack,
    Pv,
    Pq,
}

fn validate(net: &PowerNetwork) -> Result<(), PowerFlowError> {
    let nb = net.bus.len();
    let check = |b: usize, what: &str, name: &str| {
        if b >= nb {
            Err(PowerFlowError::InvalidReference {
                element: format!("{what} {name:?}"),
            })
        } else {
            Ok(())
        }
    };
    for l in &net.line {
        check(l.from_bus.index(), "line", &l.name)?;
        check(l.to_bus.index(), "line", &l.name)?;
        if l.length_km <= 0.0 {
            return Err(PowerFlowError::InvalidParameter {
                detail: format!("line {:?} has non-positive length", l.name),
            });
        }
    }
    for t in &net.trafo {
        check(t.hv_bus.index(), "trafo", &t.name)?;
        check(t.lv_bus.index(), "trafo", &t.name)?;
        if t.sn_mva <= 0.0 || t.vk_percent <= 0.0 {
            return Err(PowerFlowError::InvalidParameter {
                detail: format!("trafo {:?} has non-positive rating", t.name),
            });
        }
        if t.vkr_percent > t.vk_percent {
            return Err(PowerFlowError::InvalidParameter {
                detail: format!("trafo {:?} has vkr_percent > vk_percent", t.name),
            });
        }
    }
    for l in &net.load {
        check(l.bus.index(), "load", &l.name)?;
    }
    for s in &net.sgen {
        check(s.bus.index(), "sgen", &s.name)?;
    }
    for g in &net.gen {
        check(g.bus.index(), "gen", &g.name)?;
    }
    for e in &net.ext_grid {
        check(e.bus.index(), "ext_grid", &e.name)?;
    }
    for s in &net.shunt {
        check(s.bus.index(), "shunt", &s.name)?;
    }
    Ok(())
}

/// Branch admittance data in per-unit, for Ybus assembly and flow extraction.
struct BranchPu {
    from_node: usize,
    to_node: usize,
    /// Series admittance.
    ys: Complex,
    /// Total charging susceptance (split half per end). Lines only.
    b_charge: f64,
    /// Off-nominal tap ratio on the from (HV) side. 1.0 for lines.
    tap: f64,
}

fn line_pu(net: &PowerNetwork, lid: usize, topo: &Topology) -> BranchPu {
    let l = &net.line[lid];
    let vn_kv = net.bus[l.from_bus.index()].vn_kv;
    let z_base = vn_kv * vn_kv / net.sn_mva_base;
    let r = l.r_ohm_per_km * l.length_km / z_base;
    let x = l.x_ohm_per_km * l.length_km / z_base;
    let b_siemens = 2.0 * std::f64::consts::PI * net.f_hz * l.c_nf_per_km * 1e-9 * l.length_km;
    let b_charge = b_siemens * z_base;
    BranchPu {
        from_node: topo.bus_to_node[l.from_bus.index()],
        to_node: topo.bus_to_node[l.to_bus.index()],
        ys: Complex::new(r, x).recip(),
        b_charge,
        tap: 1.0,
    }
}

fn trafo_pu(net: &PowerNetwork, tid: usize, topo: &Topology) -> BranchPu {
    let t = &net.trafo[tid];
    // Impedance in per-unit on the system base, referred to the LV side.
    let z = t.vk_percent / 100.0 * net.sn_mva_base / t.sn_mva;
    let r = t.vkr_percent / 100.0 * net.sn_mva_base / t.sn_mva;
    let x = (z * z - r * r).max(0.0).sqrt();
    // Off-nominal ratio: rated voltages vs connected-bus nominals, plus tap.
    let vn_hv_bus = net.bus[t.hv_bus.index()].vn_kv;
    let vn_lv_bus = net.bus[t.lv_bus.index()].vn_kv;
    let ratio_nominal = (t.vn_hv_kv / vn_hv_bus) / (t.vn_lv_kv / vn_lv_bus);
    let tap = ratio_nominal * (1.0 + f64::from(t.tap_pos) * t.tap_step_percent / 100.0);
    BranchPu {
        from_node: topo.bus_to_node[t.hv_bus.index()],
        to_node: topo.bus_to_node[t.lv_bus.index()],
        ys: Complex::new(r, x).recip(),
        b_charge: 0.0,
        tap,
    }
}

fn solve_state(
    net: &PowerNetwork,
    topo: &Topology,
    options: &SolveOptions,
) -> Result<SolvedState, PowerFlowError> {
    let s_base = net.sn_mva_base;
    let mut voltage: HashMap<usize, Complex> = HashMap::new();
    let mut iterations_max = 0usize;

    // Precompute per-unit branches once.
    let line_branches: Vec<BranchPu> = topo
        .active_lines
        .iter()
        .map(|l| line_pu(net, l.index(), topo))
        .collect();
    let trafo_branches: Vec<BranchPu> = topo
        .active_trafos
        .iter()
        .map(|t| trafo_pu(net, t.index(), topo))
        .collect();

    for (island_index, island) in topo.islands.iter().enumerate() {
        let Some(slack) = island.slack else {
            // De-energized: zero voltage for all nodes of the island.
            for &node in &island.nodes {
                voltage.insert(node, Complex::ZERO);
            }
            continue;
        };
        let n = island.nodes.len();
        let local: HashMap<usize, usize> = island
            .nodes
            .iter()
            .enumerate()
            .map(|(i, &node)| (node, i))
            .collect();

        // --- Ybus assembly -------------------------------------------------
        let mut y = vec![Complex::ZERO; n * n];
        let add = |i: usize, j: usize, v: Complex, y: &mut Vec<Complex>| {
            y[i * n + j] += v;
        };
        for b in line_branches.iter().chain(trafo_branches.iter()) {
            let (Some(&i), Some(&j)) = (local.get(&b.from_node), local.get(&b.to_node)) else {
                continue;
            };
            let t = b.tap;
            let half_charge = Complex::new(0.0, b.b_charge / 2.0);
            add(i, i, b.ys / (t * t) + half_charge, &mut y);
            add(j, j, b.ys + half_charge, &mut y);
            add(i, j, -(b.ys / t), &mut y);
            add(j, i, -(b.ys / t), &mut y);
        }
        for sh in net.shunt.iter() {
            if !sh.in_service || !net.bus[sh.bus.index()].in_service {
                continue;
            }
            let node = topo.bus_to_node[sh.bus.index()];
            if let Some(&i) = local.get(&node) {
                add(
                    i,
                    i,
                    Complex::new(sh.p_mw / s_base, -sh.q_mvar / s_base),
                    &mut y,
                );
            }
        }

        // --- Specified injections and node kinds ---------------------------
        let mut p_spec = vec![0.0f64; n];
        let mut q_spec = vec![0.0f64; n];
        let mut kind = vec![NodeKind::Pq; n];
        let mut v_set = vec![1.0f64; n];
        let mut theta_set = vec![0.0f64; n];

        for l in net.load.iter().filter(|l| l.in_service) {
            if !net.bus[l.bus.index()].in_service {
                continue;
            }
            if let Some(&i) = local.get(&topo.bus_to_node[l.bus.index()]) {
                p_spec[i] -= l.p_mw * l.scaling / s_base;
                q_spec[i] -= l.q_mvar * l.scaling / s_base;
            }
        }
        for s in net.sgen.iter().filter(|s| s.in_service) {
            if !net.bus[s.bus.index()].in_service {
                continue;
            }
            if let Some(&i) = local.get(&topo.bus_to_node[s.bus.index()]) {
                p_spec[i] += s.p_mw * s.scaling / s_base;
                q_spec[i] += s.q_mvar * s.scaling / s_base;
            }
        }
        for g in net.gen.iter().filter(|g| g.in_service) {
            if !net.bus[g.bus.index()].in_service {
                continue;
            }
            if let Some(&i) = local.get(&topo.bus_to_node[g.bus.index()]) {
                p_spec[i] += g.p_mw / s_base;
                if kind[i] == NodeKind::Pq {
                    kind[i] = NodeKind::Pv;
                }
                v_set[i] = g.vm_pu;
            }
        }

        let slack_node = match slack {
            SlackSource::ExtGrid(eid) => {
                let eg = &net.ext_grid[eid.index()];
                let node = topo.bus_to_node[eg.bus.index()];
                let i = local[&node];
                v_set[i] = eg.vm_pu;
                theta_set[i] = eg.va_degree.to_radians();
                i
            }
            SlackSource::Gen(gid) => {
                let g = &net.gen[gid.index()];
                let node = topo.bus_to_node[g.bus.index()];
                let i = local[&node];
                v_set[i] = g.vm_pu;
                theta_set[i] = 0.0;
                i
            }
        };
        kind[slack_node] = NodeKind::Slack;

        // --- Newton–Raphson -------------------------------------------------
        let mut vm: Vec<f64> = (0..n).map(|i| v_set[i]).collect();
        let mut va: Vec<f64> = (0..n).map(|i| theta_set[i]).collect();
        // Flat start for PQ nodes.
        for i in 0..n {
            if kind[i] == NodeKind::Pq {
                vm[i] = 1.0;
                va[i] = theta_set[slack_node];
            }
        }

        let g = |i: usize, j: usize| y[i * n + j].re;
        let b = |i: usize, j: usize| y[i * n + j].im;

        // Unknown ordering: angles for non-slack nodes, then magnitudes for PQ.
        let angle_nodes: Vec<usize> = (0..n).filter(|&i| kind[i] != NodeKind::Slack).collect();
        let mag_nodes: Vec<usize> = (0..n).filter(|&i| kind[i] == NodeKind::Pq).collect();
        let unknowns = angle_nodes.len() + mag_nodes.len();

        let mut converged = unknowns == 0;
        let mut iterations = 0usize;
        let mut max_mismatch = 0.0f64;
        while !converged && iterations < options.max_iterations {
            iterations += 1;
            // Calculated injections.
            let mut p_calc = vec![0.0f64; n];
            let mut q_calc = vec![0.0f64; n];
            for i in 0..n {
                for j in 0..n {
                    let th = va[i] - va[j];
                    let (s, c) = th.sin_cos();
                    p_calc[i] += vm[i] * vm[j] * (g(i, j) * c + b(i, j) * s);
                    q_calc[i] += vm[i] * vm[j] * (g(i, j) * s - b(i, j) * c);
                }
            }
            // Mismatch vector.
            let mut f = vec![0.0f64; unknowns];
            for (r, &i) in angle_nodes.iter().enumerate() {
                f[r] = p_spec[i] - p_calc[i];
            }
            for (r, &i) in mag_nodes.iter().enumerate() {
                f[angle_nodes.len() + r] = q_spec[i] - q_calc[i];
            }
            max_mismatch = f.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            // A non-finite mismatch (NaN injections, runaway divergence) must
            // never count as converged: `f64::max` ignores NaN operands, so an
            // all-NaN mismatch vector would otherwise fold to 0.0.
            if !f.iter().all(|v| v.is_finite()) {
                max_mismatch = f64::INFINITY;
                break;
            }
            if max_mismatch < options.tolerance {
                converged = true;
                break;
            }

            // Jacobian.
            let mut jac = Matrix::zeros(unknowns, unknowns);
            for (r, &i) in angle_nodes.iter().enumerate() {
                // dP/dtheta
                for (c, &j) in angle_nodes.iter().enumerate() {
                    jac[(r, c)] = if i == j {
                        -q_calc[i] - b(i, i) * vm[i] * vm[i]
                    } else {
                        let th = va[i] - va[j];
                        vm[i] * vm[j] * (g(i, j) * th.sin() - b(i, j) * th.cos())
                    };
                }
                // dP/dV
                for (c, &j) in mag_nodes.iter().enumerate() {
                    jac[(r, angle_nodes.len() + c)] = if i == j {
                        p_calc[i] / vm[i] + g(i, i) * vm[i]
                    } else {
                        let th = va[i] - va[j];
                        vm[i] * (g(i, j) * th.cos() + b(i, j) * th.sin())
                    };
                }
            }
            for (r, &i) in mag_nodes.iter().enumerate() {
                // dQ/dtheta
                for (c, &j) in angle_nodes.iter().enumerate() {
                    jac[(angle_nodes.len() + r, c)] = if i == j {
                        p_calc[i] - g(i, i) * vm[i] * vm[i]
                    } else {
                        let th = va[i] - va[j];
                        -vm[i] * vm[j] * (g(i, j) * th.cos() + b(i, j) * th.sin())
                    };
                }
                // dQ/dV
                for (c, &j) in mag_nodes.iter().enumerate() {
                    jac[(angle_nodes.len() + r, angle_nodes.len() + c)] = if i == j {
                        q_calc[i] / vm[i] - b(i, i) * vm[i]
                    } else {
                        let th = va[i] - va[j];
                        vm[i] * (g(i, j) * th.sin() - b(i, j) * th.cos())
                    };
                }
            }

            let lu = Lu::factorize(&jac).map_err(|_| PowerFlowError::SingularJacobian {
                island: island_index,
            })?;
            let dx = lu.solve(&f);
            for (r, &i) in angle_nodes.iter().enumerate() {
                va[i] += dx[r];
            }
            for (r, &i) in mag_nodes.iter().enumerate() {
                vm[i] += dx[angle_nodes.len() + r];
            }
        }

        if !converged {
            return Err(PowerFlowError::DidNotConverge {
                iterations,
                max_mismatch,
            });
        }
        iterations_max = iterations_max.max(iterations);
        for (&node, &i) in &local {
            voltage.insert(node, Complex::from_polar(vm[i], va[i]));
        }
    }

    Ok(SolvedState {
        voltage,
        iterations: iterations_max,
    })
}

fn extract_results(net: &PowerNetwork, topo: &Topology, state: &SolvedState) -> PowerFlowResult {
    let s_base = net.sn_mva_base;
    let v_of = |node: usize| state.voltage.get(&node).copied().unwrap_or(Complex::ZERO);

    let mut result = PowerFlowResult {
        bus: vec![BusResult::default(); net.bus.len()],
        line: vec![BranchResult::default(); net.line.len()],
        trafo: vec![BranchResult::default(); net.trafo.len()],
        ext_grid: vec![ExtGridResult::default(); net.ext_grid.len()],
        gen: vec![GenResult::default(); net.gen.len()],
        iterations: state.iterations,
        total_losses_mw: 0.0,
    };

    for (bi, bus) in net.bus.iter().enumerate() {
        let v = v_of(topo.bus_to_node[bi]);
        result.bus[bi] = BusResult {
            vm_pu: v.abs(),
            va_degree: v.arg().to_degrees(),
            p_mw: 0.0,
            q_mvar: 0.0,
            energized: bus.in_service && v.abs() > 1e-6,
        };
    }

    // Branch flows. Net injection accumulators per node for bus p/q reporting.
    let mut node_p: HashMap<usize, f64> = HashMap::new();
    let mut node_q: HashMap<usize, f64> = HashMap::new();

    let mut branch_flow = |bpu: &BranchPu, vn_from_kv: f64, vn_to_kv: f64| -> BranchResult {
        let vf = v_of(bpu.from_node);
        let vt = v_of(bpu.to_node);
        if vf.abs() < 1e-9 || vt.abs() < 1e-9 {
            return BranchResult::default();
        }
        let t = bpu.tap;
        let half_charge = Complex::new(0.0, bpu.b_charge / 2.0);
        // Current leaving the from bus into the branch (pi model with tap).
        let i_from = (vf / t - vt) * (bpu.ys / t) + vf * half_charge;
        let i_to = (vt - vf / t) * bpu.ys + vt * half_charge;
        let s_from = vf * i_from.conj() * s_base;
        let s_to = vt * i_to.conj() * s_base;
        let i_base_from = s_base / (3f64.sqrt() * vn_from_kv);
        let i_base_to = s_base / (3f64.sqrt() * vn_to_kv);
        let pl = s_from.re + s_to.re;
        *node_p.entry(bpu.from_node).or_default() += s_from.re;
        *node_q.entry(bpu.from_node).or_default() += s_from.im;
        *node_p.entry(bpu.to_node).or_default() += s_to.re;
        *node_q.entry(bpu.to_node).or_default() += s_to.im;
        BranchResult {
            p_from_mw: s_from.re,
            q_from_mvar: s_from.im,
            p_to_mw: s_to.re,
            q_to_mvar: s_to.im,
            pl_mw: pl,
            i_from_ka: i_from.abs() * i_base_from,
            i_to_ka: i_to.abs() * i_base_to,
            loading_percent: 0.0,
            in_service: true,
        }
    };

    for &lid in &topo.active_lines {
        let l = &net.line[lid.index()];
        let bpu = line_pu(net, lid.index(), topo);
        let vn_from = net.bus[l.from_bus.index()].vn_kv;
        let vn_to = net.bus[l.to_bus.index()].vn_kv;
        let mut br = branch_flow(&bpu, vn_from, vn_to);
        if l.max_i_ka > 0.0 {
            br.loading_percent = br.i_from_ka.max(br.i_to_ka) / l.max_i_ka * 100.0;
        }
        result.total_losses_mw += br.pl_mw;
        result.line[lid.index()] = br;
    }
    for &tid in &topo.active_trafos {
        let t = &net.trafo[tid.index()];
        let bpu = trafo_pu(net, tid.index(), topo);
        let vn_hv = net.bus[t.hv_bus.index()].vn_kv;
        let vn_lv = net.bus[t.lv_bus.index()].vn_kv;
        let mut br = branch_flow(&bpu, vn_hv, vn_lv);
        // Transformer loading against its MVA rating.
        let s_mva = br.p_from_mw.hypot(br.q_from_mvar);
        if t.sn_mva > 0.0 {
            br.loading_percent = s_mva / t.sn_mva * 100.0;
        }
        result.total_losses_mw += br.pl_mw;
        result.trafo[tid.index()] = br;
    }

    // Shunt power consumption contributes to node injections.
    for sh in net.shunt.iter().filter(|s| s.in_service) {
        let node = topo.bus_to_node[sh.bus.index()];
        let v = v_of(node);
        let v2 = v.norm_sqr();
        *node_p.entry(node).or_default() += sh.p_mw * v2;
        *node_q.entry(node).or_default() += sh.q_mvar * v2;
    }

    // Bus net injection: sum of powers flowing out into branches/shunts.
    for (bi, _) in net.bus.iter().enumerate() {
        let node = topo.bus_to_node[bi];
        // Report the node totals only on the representative bus to avoid
        // double counting across merged buses.
        if node == bi {
            result.bus[bi].p_mw = node_p.get(&node).copied().unwrap_or(0.0);
            result.bus[bi].q_mvar = node_q.get(&node).copied().unwrap_or(0.0);
        }
    }

    // Slack / PV source powers: balance at their nodes.
    let mut slack_gens: Vec<usize> = Vec::new();
    for island in topo.islands.iter() {
        match island.slack {
            Some(SlackSource::ExtGrid(eid)) => {
                let eg = &net.ext_grid[eid.index()];
                let node = topo.bus_to_node[eg.bus.index()];
                let (p, q) = node_balance(net, topo, node, &node_p, &node_q);
                result.ext_grid[eid.index()] = ExtGridResult { p_mw: p, q_mvar: q };
            }
            Some(SlackSource::Gen(gid)) => {
                let g = &net.gen[gid.index()];
                let node = topo.bus_to_node[g.bus.index()];
                let (p, q) = node_balance(net, topo, node, &node_p, &node_q);
                result.gen[gid.index()] = GenResult {
                    p_mw: p,
                    q_mvar: q,
                    vm_pu: v_of(node).abs(),
                };
                slack_gens.push(gid.index());
            }
            None => {}
        }
    }
    // PV generator reactive power: Q needed to hold the set-point.
    for (gi, g) in net.gen.iter().enumerate() {
        if !g.in_service || slack_gens.contains(&gi) {
            continue;
        }
        let node = topo.bus_to_node[g.bus.index()];
        let (_, q) = node_balance(net, topo, node, &node_p, &node_q);
        result.gen[gi] = GenResult {
            p_mw: g.p_mw,
            q_mvar: q,
            vm_pu: v_of(node).abs(),
        };
    }

    result
}

/// Power that must be injected at `node` by its voltage-controlling source:
/// branch outflow at the node plus local load minus local non-slack injection.
fn node_balance(
    net: &PowerNetwork,
    topo: &Topology,
    node: usize,
    node_p: &HashMap<usize, f64>,
    node_q: &HashMap<usize, f64>,
) -> (f64, f64) {
    let mut p = node_p.get(&node).copied().unwrap_or(0.0);
    let mut q = node_q.get(&node).copied().unwrap_or(0.0);
    for l in net.load.iter().filter(|l| l.in_service) {
        if topo.bus_to_node[l.bus.index()] == node {
            p += l.p_mw * l.scaling;
            q += l.q_mvar * l.scaling;
        }
    }
    for s in net.sgen.iter().filter(|s| s.in_service) {
        if topo.bus_to_node[s.bus.index()] == node {
            p -= s.p_mw * s.scaling;
            q -= s.q_mvar * s.scaling;
        }
    }
    (p, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::SwitchTarget;

    /// Two-bus network with a known analytic solution region.
    fn two_bus() -> PowerNetwork {
        let mut net = PowerNetwork::new("two-bus");
        let b1 = net.add_bus("b1", 110.0);
        let b2 = net.add_bus("b2", 110.0);
        net.add_ext_grid("grid", b1, 1.0, 0.0);
        net.add_line("l1", b1, b2, 10.0, 0.06, 0.12, 0.0, 1.0);
        net.add_load("load", b2, 30.0, 10.0);
        net
    }

    #[test]
    fn two_bus_converges_and_balances() {
        let net = two_bus();
        let res = solve(&net).unwrap();
        assert!(res.iterations <= 10);
        // Voltage drops below the slack under load.
        assert!(res.bus[1].vm_pu < 1.0);
        assert!(res.bus[1].vm_pu > 0.9);
        // Slack supplies load + losses.
        let supplied = res.total_ext_grid_p_mw();
        assert!(supplied > 30.0);
        assert!((supplied - 30.0 - res.total_losses_mw).abs() < 1e-6);
    }

    #[test]
    fn no_load_means_flat_voltage() {
        let mut net = two_bus();
        net.load[0].in_service = false;
        let res = solve(&net).unwrap();
        assert!((res.bus[1].vm_pu - 1.0).abs() < 1e-9);
        assert!(res.total_losses_mw.abs() < 1e-9);
    }

    #[test]
    fn nan_load_is_nonconvergence_not_success() {
        let mut net = two_bus();
        net.load[0].p_mw = f64::NAN;
        // NaN poisons the mismatch vector; `f64::max` would silently fold it
        // to 0.0 and report a NaN voltage profile as converged.
        match solve(&net) {
            Err(PowerFlowError::DidNotConverge { max_mismatch, .. }) => {
                assert!(!max_mismatch.is_finite());
            }
            other => panic!("expected DidNotConverge, got {other:?}"),
        }
    }

    #[test]
    fn heavier_load_lower_voltage() {
        let mut net = two_bus();
        let res1 = solve(&net).unwrap();
        net.load[0].p_mw = 60.0;
        let res2 = solve(&net).unwrap();
        assert!(res2.bus[1].vm_pu < res1.bus[1].vm_pu);
        assert!(res2.line[0].loading_percent > res1.line[0].loading_percent);
    }

    #[test]
    fn open_breaker_deenergizes_load_bus() {
        let mut net = two_bus();
        let b1 = net.bus_by_name("b1").unwrap();
        net.add_switch(
            "cb",
            b1,
            SwitchTarget::Line(crate::network::LineId(0)),
            true,
        );
        let res = solve(&net).unwrap();
        assert!(res.bus[1].energized);
        net.set_switch("cb", false);
        let res = solve(&net).unwrap();
        assert!(!res.bus[1].energized);
        assert_eq!(res.bus[1].vm_pu, 0.0);
        assert!(!res.line[0].in_service);
        assert!(res.total_ext_grid_p_mw().abs() < 1e-9);
    }

    #[test]
    fn pv_generator_holds_voltage() {
        let mut net = two_bus();
        let b2 = net.bus_by_name("b2").unwrap();
        net.add_gen("g1", b2, 10.0, 1.02);
        let res = solve(&net).unwrap();
        assert!((res.bus[1].vm_pu - 1.02).abs() < 1e-6);
        // Generator absorbs/produces Q to hold the set-point.
        assert!(res.gen[0].q_mvar.abs() > 0.0);
    }

    #[test]
    fn trafo_network_converges() {
        let mut net = PowerNetwork::new("hv-lv");
        let hv = net.add_bus("hv", 110.0);
        let lv = net.add_bus("lv", 20.0);
        net.add_ext_grid("grid", hv, 1.0, 0.0);
        net.add_trafo("t1", hv, lv, 25.0, 110.0, 20.0, 12.0, 0.6);
        net.add_load("load", lv, 15.0, 5.0);
        let res = solve(&net).unwrap();
        assert!(res.bus[1].vm_pu < 1.0 && res.bus[1].vm_pu > 0.85);
        assert!(res.trafo[0].loading_percent > 50.0);
        assert!(res.trafo[0].pl_mw > 0.0);
    }

    #[test]
    fn sgen_reduces_grid_supply() {
        let mut net = two_bus();
        let b2 = net.bus_by_name("b2").unwrap();
        let base = solve(&net).unwrap().total_ext_grid_p_mw();
        net.add_sgen("pv", b2, 10.0, 0.0);
        let with_pv = solve(&net).unwrap().total_ext_grid_p_mw();
        assert!(with_pv < base - 9.0, "PV injection offsets grid supply");
    }

    #[test]
    fn shunt_consumes_reactive_power() {
        let mut net = two_bus();
        let b2 = net.bus_by_name("b2").unwrap();
        let base_q = solve(&net).unwrap().ext_grid[0].q_mvar;
        net.add_shunt("reactor", b2, 0.0, 5.0);
        let with_shunt_q = solve(&net).unwrap().ext_grid[0].q_mvar;
        assert!(with_shunt_q > base_q + 3.0);
    }

    #[test]
    fn meshed_network_converges() {
        // Triangle grid with two loads.
        let mut net = PowerNetwork::new("mesh");
        let b1 = net.add_bus("b1", 110.0);
        let b2 = net.add_bus("b2", 110.0);
        let b3 = net.add_bus("b3", 110.0);
        net.add_ext_grid("grid", b1, 1.01, 0.0);
        net.add_line("l12", b1, b2, 15.0, 0.06, 0.12, 250.0, 0.6);
        net.add_line("l23", b2, b3, 10.0, 0.06, 0.12, 250.0, 0.6);
        net.add_line("l13", b1, b3, 20.0, 0.06, 0.12, 250.0, 0.6);
        net.add_load("ld2", b2, 25.0, 8.0);
        net.add_load("ld3", b3, 15.0, 4.0);
        let res = solve(&net).unwrap();
        assert!(res.iterations < 10);
        let supplied = res.total_ext_grid_p_mw();
        assert!((supplied - 40.0 - res.total_losses_mw).abs() < 1e-6);
        // Kirchhoff check at b2: line flows into b2 equal load.
        let into_b2 = -res.line[0].p_to_mw - res.line[1].p_from_mw;
        assert!((into_b2 - 25.0).abs() < 1e-6);
    }

    #[test]
    fn invalid_reference_rejected() {
        let mut net = PowerNetwork::new("bad");
        let b1 = net.add_bus("b1", 110.0);
        net.add_ext_grid("grid", b1, 1.0, 0.0);
        net.add_load("ld", crate::network::BusId(7), 1.0, 0.0);
        assert!(matches!(
            solve(&net),
            Err(PowerFlowError::InvalidReference { .. })
        ));
    }

    #[test]
    fn overload_does_not_converge_or_collapses() {
        let mut net = two_bus();
        net.load[0].p_mw = 5000.0; // far beyond the line's transfer capacity
        match solve(&net) {
            Err(PowerFlowError::DidNotConverge { .. }) => {}
            Ok(res) => {
                assert!(res.bus[1].vm_pu < 0.5, "voltage collapse expected");
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
}
