//! Error type for power-flow calculations.

use std::fmt;

/// An error produced while solving a power flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerFlowError {
    /// Newton–Raphson did not converge within the iteration limit.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Largest remaining power mismatch in per-unit.
        max_mismatch: f64,
    },
    /// The Jacobian was singular (typically an unsolvable island).
    SingularJacobian {
        /// Island index (by topology order) that failed.
        island: usize,
    },
    /// An element references a bus index that does not exist.
    InvalidReference {
        /// Description of the offending element.
        element: String,
    },
    /// An element has a parameter that makes the model ill-defined.
    InvalidParameter {
        /// Description of the offending element and parameter.
        detail: String,
    },
}

impl fmt::Display for PowerFlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerFlowError::DidNotConverge {
                iterations,
                max_mismatch,
            } => write!(
                f,
                "power flow did not converge after {iterations} iterations (max mismatch {max_mismatch:.3e} pu)"
            ),
            PowerFlowError::SingularJacobian { island } => {
                write!(f, "singular jacobian while solving island {island}")
            }
            PowerFlowError::InvalidReference { element } => {
                write!(f, "invalid bus reference on {element}")
            }
            PowerFlowError::InvalidParameter { detail } => {
                write!(f, "invalid parameter: {detail}")
            }
        }
    }
}

impl std::error::Error for PowerFlowError {}
