//! Property tests on power-flow physics invariants: for any solvable radial
//! feeder, power balances, losses are non-negative, and voltages lie below
//! the slack set-point.

use proptest::prelude::*;
use sgcr_powerflow::{solve, PowerFlowError, PowerNetwork};

/// A radial feeder: slack — line — bus — line — bus … with a load per bus.
fn radial_feeder(n_buses: usize, loads_mw: &[f64], line_km: f64, vm_slack: f64) -> PowerNetwork {
    let mut net = PowerNetwork::new("prop-feeder");
    let mut prev = net.add_bus("b0", 110.0);
    net.add_ext_grid("grid", prev, vm_slack, 0.0);
    for i in 1..=n_buses {
        let bus = net.add_bus(&format!("b{i}"), 110.0);
        net.add_line(
            &format!("l{i}"),
            prev,
            bus,
            line_km,
            0.06,
            0.12,
            // No shunt charging: keeps the voltage profile strictly
            // monotone (the Ferranti effect would otherwise raise lightly
            // loaded bus voltages and break the monotonicity property).
            0.0,
            1.0,
        );
        net.add_load(
            &format!("ld{i}"),
            bus,
            loads_mw[i - 1],
            loads_mw[i - 1] * 0.3,
        );
        prev = bus;
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn radial_feeder_invariants(
        n in 1usize..8,
        load in 0.1f64..8.0,
        km in 0.5f64..20.0,
        vm in 0.98f64..1.05,
    ) {
        let loads: Vec<f64> = vec![load; n];
        let net = radial_feeder(n, &loads, km, vm);
        let res = match solve(&net) {
            Ok(r) => r,
            // Extreme combinations may be infeasible; that is a valid outcome.
            Err(PowerFlowError::DidNotConverge { .. }) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error: {e}"))),
        };

        let total_load: f64 = loads.iter().sum();
        let supplied = res.total_ext_grid_p_mw();

        // 1. Losses are non-negative and slack covers load + losses.
        prop_assert!(res.total_losses_mw >= -1e-9, "negative losses");
        prop_assert!((supplied - total_load - res.total_losses_mw).abs() < 1e-6,
            "power balance violated: supplied={supplied}, load={total_load}, losses={}",
            res.total_losses_mw);

        // 2. Voltage profile decreases monotonically along a uniform feeder.
        for i in 1..=n {
            prop_assert!(res.bus[i].vm_pu <= res.bus[i-1].vm_pu + 1e-9,
                "voltage must not rise along a loaded radial feeder");
        }

        // 3. Slack holds its set-point.
        prop_assert!((res.bus[0].vm_pu - vm).abs() < 1e-9);

        // 4. Line flow decreases downstream (each bus consumes some power).
        for i in 1..n {
            prop_assert!(res.line[i].p_from_mw < res.line[i-1].p_from_mw + 1e-9);
        }
    }

    #[test]
    fn scaling_load_scales_supply(
        load in 1.0f64..10.0,
        scale in 0.1f64..2.0,
    ) {
        let mut net = radial_feeder(2, &[load, load], 5.0, 1.0);
        let base = solve(&net).unwrap().total_ext_grid_p_mw();
        for l in net.load.iter_mut() {
            l.scaling = scale;
        }
        let scaled = solve(&net).unwrap().total_ext_grid_p_mw();
        // Supply scales in the same direction as the load (superlinearly in
        // losses, so only check direction + rough magnitude).
        if scale > 1.0 {
            prop_assert!(scaled > base);
        } else if scale < 1.0 {
            prop_assert!(scaled < base);
        }
        prop_assert!(scaled > 2.0 * load * scale * 0.99);
    }

    #[test]
    fn disconnected_tail_is_deenergized(
        n in 2usize..6,
        cut in 1usize..5,
    ) {
        let cut = cut.min(n);
        let loads: Vec<f64> = vec![1.0; n];
        let mut net = radial_feeder(n, &loads, 5.0, 1.0);
        // Cut line `cut` (1-based in construction order).
        let id = net.line_by_name(&format!("l{cut}")).unwrap();
        net.line[id.index()].in_service = false;
        let res = solve(&net).unwrap();
        for i in 0..n + 1 {
            if i < cut {
                prop_assert!(res.bus[i].energized, "bus {i} upstream of cut must stay energized");
            } else {
                prop_assert!(!res.bus[i].energized, "bus {i} downstream of cut must be dark");
            }
        }
        // Supply equals the energized load (plus losses).
        let energized_load = (cut - 1) as f64;
        let supplied = res.total_ext_grid_p_mw();
        prop_assert!((supplied - energized_load - res.total_losses_mw).abs() < 1e-6);
    }
}
