//! # sgcr-bench
//!
//! The experiment harness regenerating every table and figure of the SG-ML
//! paper, plus criterion micro-benchmarks of the substrates. Each artifact
//! has a dedicated binary (see DESIGN.md's per-experiment index):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `table1_scl_roles` | Table I — SCL file types and their roles |
//! | `table2_protection` | Table II — protection functions on the virtual IED |
//! | `fig2_pipeline` | Figures 2–3 — SG-ML Processor pipeline, stage by stage |
//! | `fig4_cyber_topology` | Figure 4 — generated cyber network topology (EPIC) |
//! | `fig5_power_topology` | Figure 5 — generated power system topology (EPIC) |
//! | `fig6_mitm` | Figure 6 — MITM manipulation of a measurement |
//! | `cs1_fci` | §IV-B — false command injection case study |
//! | `s1_scalability` | §IV-A — substation/IED scaling vs the 100 ms budget |
//! | `s2_latency` | §III-C — physical-change→SCADA-visible latency |

/// Renders an ASCII table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| -> String {
        let mut out = String::from("|");
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(&format!(" {:<width$} |", cell, width = widths[i]));
        }
        out
    };
    let separator: String = {
        let mut out = String::from("+");
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out
    };
    let mut out = String::new();
    out.push_str(&separator);
    out.push('\n');
    out.push_str(&line(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    out.push_str(&separator);
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out.push_str(&separator);
    out
}

/// Formats seconds as milliseconds with two decimals.
pub fn ms(seconds: f64) -> String {
    format!("{:.2}", seconds * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        assert!(table.contains("| name        | value |"));
        assert!(table.contains("| longer-name | 22    |"));
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(0.01234), "12.34");
    }
}
