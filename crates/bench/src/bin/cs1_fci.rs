//! Regenerates **case study 1 (§IV-B)**: false command injection — a
//! standard-compliant MMS client on a compromised node opens a breaker; the
//! power flow reacts within one simulation interval.

use sgcr_attack::{FciAttackApp, FciPlan};
use sgcr_bench::render_table;
use sgcr_core::{CompiledModel, CyberRange};
use sgcr_models::epic_bundle;
use sgcr_net::{Ipv4Addr, SimDuration};

fn main() {
    println!("== Case study 1: false command injection (paper SIV-B) ==\n");
    let mut range =
        CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).expect("EPIC compiles"))
            .expect("EPIC compiles");
    range.add_host("malware-host", Ipv4Addr::new(10, 0, 1, 66), "GenBus");
    let victim = range.plan().host_ip("GIED1").unwrap();
    let (attack, report) = FciAttackApp::new(FciPlan {
        victim,
        item: "GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal".into(),
        value: false,
        at_ms: 2_000,
        interrogate: true,
    });
    range.attach_app("malware-host", Box::new(attack));

    let mut rows = Vec::new();
    for second in 1..=5u64 {
        range.run_for(SimDuration::from_secs(1));
        let cb = range.power.switch_by_name("EPIC/CB_GEN").unwrap();
        rows.push(vec![
            format!("{second}"),
            format!("{:+.5}", range.last_result.line[0].p_from_mw),
            format!("{}", range.power.switch[cb.index()].closed),
            format!("{:?}", range.scada.as_ref().unwrap().tag_value("CB_GEN_fb")),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "t [s]",
                "LGen P [MW]",
                "CB_GEN closed (truth)",
                "CB_GEN feedback at HMI"
            ],
            &rows
        )
    );

    let report = report.lock().clone();
    println!(
        "\nattacker: interrogation items={}, command accepted={:?} at t={:?} ms",
        report.discovered_items.len(),
        report.command_accepted,
        report.completed_at_ms
    );
    println!("victim's sequence of events:");
    for event in range.ieds["GIED1"].events() {
        println!(
            "  [{:>6} ms] {:?} {}",
            event.time_ms, event.kind, event.detail
        );
    }
    println!("\nexpected shape: command fires at t=2 s; feeder power collapses to 0 and the");
    println!("breaker opens within one 100 ms power-flow interval of the injection.");
}
