//! Regenerates the **§IV-A scalability claim**: *"a commodity desktop PC …
//! can host a 5-substation model including 104 virtual IEDs with 100 ms
//! power flow simulation interval"*.
//!
//! Sweeps the substation count (the paper's row is the 5-substation /
//! 104-IED configuration) and reports generation time, per-step wall time,
//! and the real-time factor against the 100 ms budget. Run with
//! `--release`; debug-build numbers are not meaningful.

use sgcr_bench::{ms, render_table};
use sgcr_core::{CompiledModel, CyberRange};
use sgcr_models::{multisub_bundle, MultiSubParams};
use sgcr_net::SimDuration;

fn main() {
    println!(
        "== S1: scalability sweep (paper SIV-A claim: 5 substations / 104 IEDs @ 100 ms) ==\n"
    );
    let sim_seconds = 3u64;
    let mut rows = Vec::new();

    // IED counts scale ~21 per substation so the 5-substation row lands on
    // the paper's 104.
    for substations in [1usize, 2, 3, 5, 8] {
        let total_ieds = if substations == 5 {
            104
        } else {
            substations * 21
        };
        let params = MultiSubParams {
            substations,
            total_ieds,
            interval_ms: 100,
        };
        eprintln!("generating {substations} substations / {total_ieds} IEDs…");
        let gen_start = std::time::Instant::now();
        let bundle = multisub_bundle(&params);
        let mut range = match CompiledModel::shared(&bundle).and_then(CyberRange::instantiate) {
            Ok(r) => r,
            Err(e) => {
                rows.push(vec![
                    substations.to_string(),
                    total_ieds.to_string(),
                    format!("generation failed: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
        };
        let gen_seconds = gen_start.elapsed().as_secs_f64();

        let wall_start = std::time::Instant::now();
        range.run_for(SimDuration::from_secs(sim_seconds));
        let wall = wall_start.elapsed().as_secs_f64();
        let steps = range.step_stats().len();
        let mean_step = wall / steps.max(1) as f64;
        let max_step = range
            .step_stats()
            .map(|s| s.total_seconds)
            .fold(0.0f64, f64::max);
        let real_time_factor = sim_seconds as f64 / wall;
        rows.push(vec![
            substations.to_string(),
            total_ieds.to_string(),
            format!("{:.2} s", gen_seconds),
            format!("{} / {}", ms(mean_step), ms(max_step)),
            format!("{real_time_factor:.1}x"),
            if real_time_factor >= 1.0 { "YES" } else { "no" }.to_string(),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "substations",
                "virtual IEDs",
                "generation",
                "step mean/max [ms]",
                "real-time factor",
                "meets 100 ms budget",
            ],
            &rows
        )
    );
    println!("\npaper's row: 5 substations / 104 IEDs must meet the 100 ms budget (factor >= 1).");
}
