//! Regenerates **Figure 6**: "MITM Attack on a Power Grid Measurement" —
//! the true measurement vs what the SCADA HMI displays before, during, and
//! after an ARP-spoofing MITM that rewrites MMS floats in flight.

use sgcr_attack::{MitmApp, MitmPlan, Transform};
use sgcr_bench::render_table;
use sgcr_core::{CompiledModel, CyberRange};
use sgcr_models::epic_bundle;
use sgcr_net::{Ipv4Addr, SimDuration};

fn main() {
    println!("== Figure 6: MITM attack on a power grid measurement ==\n");
    let mut range =
        CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).expect("EPIC compiles"))
            .expect("EPIC compiles");

    range.add_host("mitm-box", Ipv4Addr::new(10, 0, 5, 66), "ControlBus");
    let scada_ip = range.plan().host_ip("SCADA").unwrap();
    let tied1_ip = range.plan().host_ip("TIED1").unwrap();
    let (mitm, handle) = MitmApp::new(MitmPlan {
        victim_a: scada_ip,
        victim_b: tied1_ip,
        start_ms: 4_000,
        stop_ms: 10_000,
        transform: Transform::ScaleMmsFloats(10.0),
    });
    range.attach_app("mitm-box", Box::new(mitm));
    println!("victims: SCADA ({scada_ip}) <-> TIED1 ({tied1_ip}); window 4-10 s; transform x10\n");

    let scada = range.scada.as_ref().unwrap().clone();
    let mut rows = Vec::new();
    for second in 1..=14u64 {
        range.run_for(SimDuration::from_secs(1));
        let truth = range
            .store
            .get_float("meas/EPIC/branch/LMicro/p_mw")
            .unwrap_or(0.0);
        let shown = scada
            .tag_value("MicroFeeder_MW")
            .map(|v| format!("{v:+.5}"))
            .unwrap_or_else(|| "-".into());
        let phase = match second {
            0..=3 => "pre-attack",
            4..=9 => "ATTACK",
            _ => "repaired",
        };
        rows.push(vec![
            format!("{second}"),
            format!("{truth:+.5}"),
            shown,
            phase.into(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "t [s]",
                "true MicroFeeder P [MW]",
                "SCADA-displayed [MW]",
                "phase"
            ],
            &rows
        )
    );
    let report = handle.lock().clone();
    println!(
        "\nattacker: position={}, forwarded={}, modified={}, dropped={}",
        report.position_established, report.forwarded, report.modified, report.dropped
    );
    println!("expected shape: displayed == true before 4 s, == 10 x true during, == true after.");
}
