//! Regenerates **Figure 4**: the cyber network topology generated from the
//! EPIC SCD — host/switch table plus a Graphviz dot rendering (the paper
//! rendered the same structure with ONOS).

use sgcr_bench::render_table;
use sgcr_core::compile_network;
use sgcr_models::epic;
use sgcr_scl::parse_scd;

fn main() {
    println!("== Figure 4: generated cyber network topology (EPIC model) ==\n");
    let scd = parse_scd(&epic::epic_scd()).expect("EPIC SCD parses");
    let plan = compile_network(&scd);

    let mut rows = Vec::new();
    for sw in &plan.switches {
        rows.push(vec![
            sw.name.clone(),
            "switch".into(),
            if sw.is_wan {
                "WAN backbone (paper: single-switch abstraction)"
            } else {
                "station bus segment"
            }
            .into(),
            String::new(),
        ]);
    }
    for host in &plan.hosts {
        rows.push(vec![
            host.name.clone(),
            "host".into(),
            format!("on {}", host.switch),
            format!(
                "{} / {}",
                host.ip,
                host.mac
                    .map(|m| m.to_string())
                    .unwrap_or_else(|| "auto".into())
            ),
        ]);
    }
    println!(
        "{}",
        render_table(&["node", "kind", "placement", "IP / MAC (from SCD)"], &rows)
    );

    println!("\nGraphviz rendering (pipe into `dot -Tpng`):\n");
    println!("{}", plan.to_dot());
}
