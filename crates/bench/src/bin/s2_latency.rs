//! Regenerates the **§III-C timing argument**: the power flow is a snapshot
//! solver stepped every 100 ms, while "SCADA HMI and PLCs are collecting
//! data usually with second-level granularity", so the discrete physical
//! update "is still acceptable in practice".
//!
//! Measures the end-to-end latency from a physical change (a load step
//! applied to the power model) to the moment the change is visible at the
//! SCADA HMI, through two paths: direct MMS polling and the PLC-mediated
//! Modbus path.

use sgcr_bench::render_table;
use sgcr_core::{CompiledModel, CyberRange};
use sgcr_models::epic_bundle;
use sgcr_net::SimDuration;

fn main() {
    println!("== S2: physical-change -> SCADA-visible latency ==\n");
    let trials = 10usize;
    let mut direct_ms: Vec<u64> = Vec::new();
    let mut plc_ms: Vec<u64> = Vec::new();

    for trial in 0..trials {
        let mut range =
            CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).expect("EPIC compiles"))
                .expect("EPIC compiles");
        range.run_for(SimDuration::from_secs(3));
        let scada = range.scada.as_ref().unwrap().clone();

        let micro_before = scada.tag_value("MicroFeeder_MW").unwrap_or(0.0);
        let gen_before = scada.tag_value("GenFeeder_kW").unwrap_or(0.0);

        // Physical change: the micro-grid load steps up (varies per trial
        // for de-synchronized sampling phases).
        let t_change = range.now().as_millis();
        let load = range.power.load_by_name("EPIC/MicroLoad").unwrap();
        range.power.load[load.index()].p_mw = 0.012 + 0.001 * trial as f64;

        let mut seen_direct: Option<u64> = None;
        let mut seen_plc: Option<u64> = None;
        for _ in 0..80 {
            range.run_for(SimDuration::from_millis(50));
            let now = range.now().as_millis();
            if seen_direct.is_none() {
                let v = scada.tag_value("MicroFeeder_MW").unwrap_or(micro_before);
                if (v - micro_before).abs() > 1e-4 {
                    seen_direct = Some(now - t_change);
                }
            }
            if seen_plc.is_none() {
                let v = scada.tag_value("GenFeeder_kW").unwrap_or(gen_before);
                if (v - gen_before).abs() > 0.5 {
                    seen_plc = Some(now - t_change);
                }
            }
            if seen_direct.is_some() && seen_plc.is_some() {
                break;
            }
        }
        if let Some(latency) = seen_direct {
            direct_ms.push(latency);
        }
        if let Some(latency) = seen_plc {
            plc_ms.push(latency);
        }
    }

    let stats = |v: &[u64]| -> (String, String, String) {
        if v.is_empty() {
            return ("-".into(), "-".into(), "-".into());
        }
        let mut sorted = v.to_vec();
        sorted.sort_unstable();
        let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
        (
            format!("{mean:.0}"),
            sorted[sorted.len() / 2].to_string(),
            sorted[sorted.len() - 1].to_string(),
        )
    };
    let (d_mean, d_med, d_max) = stats(&direct_ms);
    let (p_mean, p_med, p_max) = stats(&plc_ms);
    println!(
        "{}",
        render_table(
            &["path", "samples", "mean [ms]", "median [ms]", "max [ms]"],
            &[
                vec![
                    "power flow -> IED -> MMS poll -> HMI (1 s poll)".into(),
                    direct_ms.len().to_string(),
                    d_mean,
                    d_med,
                    d_max,
                ],
                vec![
                    "power flow -> IED -> CPLC scan -> Modbus poll -> HMI (0.5 s poll)".into(),
                    plc_ms.len().to_string(),
                    p_mean,
                    p_med,
                    p_max,
                ],
            ]
        )
    );
    println!("\nexpected shape: latency is dominated by the polling cadence (0.5-1 s),");
    println!("not the 100 ms power-flow interval - the paper's SIII-C argument that the");
    println!("discrete physical update is acceptable for second-level SCADA collection.");
}
