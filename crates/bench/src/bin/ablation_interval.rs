//! Ablation of the paper's key design parameter: the **power-flow step
//! interval** (§III-C: Pandapower is re-run "periodically (e.g., every
//! 100ms)", and "the time granularity and real-timeness of this degree are
//! still acceptable in practice").
//!
//! Sweeps the interval and measures (a) protection-trip latency after a
//! fault — physical fidelity — and (b) per-step and per-simulated-second
//! compute cost — the scalability budget. The trade-off curve justifies the
//! paper's 100 ms choice.

use sgcr_bench::render_table;
use sgcr_core::{CompiledModel, CyberRange, PowerExtraConfig};
use sgcr_models::epic_bundle;
use sgcr_net::SimDuration;

fn main() {
    println!("== Ablation: power-flow step interval vs fidelity and cost ==\n");
    let mut rows = Vec::new();
    for interval_ms in [20u64, 50, 100, 200, 500, 1000] {
        let mut bundle = epic_bundle();
        let mut extra = PowerExtraConfig::parse(bundle.power_extra.as_ref().unwrap()).unwrap();
        extra.interval_ms = interval_ms;
        bundle.power_extra = Some(extra.to_xml());
        let mut range = CyberRange::instantiate(CompiledModel::shared(&bundle).expect("compiles"))
            .expect("compiles");
        range.run_for(SimDuration::from_secs(1));

        // Fault: overload the smart-home feeder; TIED2's PTOC (200 ms
        // definite time) must clear it.
        let fault_at = range.now().as_millis();
        let load = range.power.load_by_name("EPIC/Load1").unwrap();
        range.power.load[load.index()].p_mw = 0.2;

        let wall = std::time::Instant::now();
        let mut trip_latency_ms: Option<u64> = None;
        for _ in 0..(5000 / interval_ms.max(1)).max(10) {
            range.step();
            if trip_latency_ms.is_none() && range.ieds["TIED2"].trip_count() > 0 {
                let trip_time = range.ieds["TIED2"]
                    .events_of(sgcr_ied::IedEventKind::ProtectionTrip)[0]
                    .time_ms;
                trip_latency_ms = Some(trip_time - fault_at);
            }
        }
        let wall = wall.elapsed().as_secs_f64();
        let steps = range.step_stats().len();
        let sim_seconds = range.now().as_secs_f64() - 1.0;
        rows.push(vec![
            interval_ms.to_string(),
            trip_latency_ms
                .map(|l| l.to_string())
                .unwrap_or_else(|| "no trip".into()),
            format!("{:.2}", wall / steps as f64 * 1e3),
            format!("{:.1}", wall / sim_seconds * 1e3),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "interval [ms]",
                "fault->trip latency [ms]",
                "wall per step [ms]",
                "wall per simulated second [ms]",
            ],
            &rows
        )
    );
    println!("\nexpected shape: trip latency ~= relay delay (200 ms) + O(interval) sampling");
    println!("quantization, so fidelity degrades with coarse intervals while compute cost");
    println!("per simulated second falls; 100 ms sits at the knee - the paper's choice.");
}
