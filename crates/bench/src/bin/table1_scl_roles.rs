//! Regenerates **Table I**: the four SCL file types and their roles —
//! demonstrated by parsing one file of each kind from the generated models
//! and printing what the toolchain extracts from it.

use sgcr_bench::render_table;
use sgcr_models::{epic, multisub, MultiSubParams};
use sgcr_scl::{parse_icd, parse_scd, parse_sed, parse_ssd};

fn main() {
    println!("== Table I: SCL file types consumed by the SG-ML Processor ==\n");

    // SSD: substation structure / single-line diagram.
    let ssd = parse_ssd(&epic::epic_ssd()).expect("EPIC SSD parses");
    let substation = &ssd.substations[0];
    let equipment: usize = substation
        .voltage_levels
        .iter()
        .flat_map(|vl| vl.bays.iter())
        .map(|b| b.equipment.len())
        .sum();
    let ssd_extract = format!(
        "{} voltage levels, {} bays, {} equipment, {} connectivity nodes",
        substation.voltage_levels.len(),
        substation
            .voltage_levels
            .iter()
            .map(|v| v.bays.len())
            .sum::<usize>(),
        equipment,
        ssd.connectivity_node_paths().len()
    );

    // SCD: complete configuration incl. communication.
    let scd = parse_scd(&epic::epic_scd()).expect("EPIC SCD parses");
    let comm = scd.communication.as_ref().expect("has communication");
    let scd_extract = format!(
        "{} subnetworks, {} connected APs (IP/MAC), {} IED descriptions",
        comm.subnetworks.len(),
        comm.subnetworks
            .iter()
            .map(|s| s.connected_aps.len())
            .sum::<usize>(),
        scd.ieds.len()
    );

    // ICD: one IED's capabilities.
    let icds = epic::epic_icds();
    let icd = parse_icd(&icds[0]).expect("GIED1 ICD parses");
    let ied = icd.ieds.first().expect("one IED");
    let icd_extract = format!("IED {:?}: LN classes {:?}", ied.name, ied.ln_classes());

    // SED: inter-substation connectivity (from the multi-substation model).
    let bundle = multisub::multisub_bundle(&MultiSubParams {
        substations: 2,
        total_ieds: 2,
        interval_ms: 100,
    });
    let sed = parse_sed(&bundle.seds[0]).expect("SED parses");
    let tie = &sed.inter_substation_lines[0];
    let sed_extract = format!(
        "tie {:?}: {} <-> {} ({} km), protection IEDs {:?}",
        tie.name,
        tie.from_substation,
        tie.to_substation,
        tie.params.length_km.unwrap_or(0.0),
        tie.protection_ieds
    );

    let rows = vec![
        vec![
            "SSD".into(),
            "substation structure: single-line diagram, voltage/bay levels".into(),
            "power system simulation model".into(),
            ssd_extract,
        ],
        vec![
            "SCD".into(),
            "complete substation configuration incl. communication section".into(),
            "cyber network emulation model".into(),
            scd_extract,
        ],
        vec![
            "ICD".into(),
            "IED capabilities: logical nodes and data types".into(),
            "virtual IED feature enablement".into(),
            icd_extract,
        ],
        vec![
            "SED".into(),
            "electrical + communication ties between substations".into(),
            "multi-substation consolidation".into(),
            sed_extract,
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "file",
                "contents (paper Table I)",
                "used to generate",
                "extracted from the EPIC / multisub models"
            ],
            &rows
        )
    );
}
