//! Regenerates **Figure 5**: the power system topology generated from the
//! EPIC SSD, plus a solved base-case power flow (the paper shows the same
//! model loaded into Pandapower).

use sgcr_bench::render_table;
use sgcr_core::compile_power;
use sgcr_models::epic;
use sgcr_powerflow::solve;
use sgcr_scl::parse_ssd;

fn main() {
    println!("== Figure 5: generated power system topology (EPIC model) ==\n");
    let ssd = parse_ssd(&epic::epic_ssd()).expect("EPIC SSD parses");
    let compilation = compile_power(&ssd);
    let net = &compilation.network;

    let mut rows = Vec::new();
    for bus in &net.bus {
        rows.push(vec![
            "bus".into(),
            bus.name.clone(),
            format!("{} kV", bus.vn_kv),
        ]);
    }
    for line in &net.line {
        rows.push(vec![
            "line".into(),
            line.name.clone(),
            format!(
                "{} km, {}+j{} ohm/km, limit {} kA",
                line.length_km, line.r_ohm_per_km, line.x_ohm_per_km, line.max_i_ka
            ),
        ]);
    }
    for switch in &net.switch {
        rows.push(vec![
            "breaker".into(),
            switch.name.clone(),
            format!("normally {}", if switch.closed { "closed" } else { "open" }),
        ]);
    }
    for gen in &net.gen {
        rows.push(vec![
            "gen".into(),
            gen.name.clone(),
            format!("{} MW @ {} pu", gen.p_mw, gen.vm_pu),
        ]);
    }
    for sgen in &net.sgen {
        rows.push(vec![
            "sgen".into(),
            sgen.name.clone(),
            format!("{} MW (PV/battery)", sgen.p_mw),
        ]);
    }
    for load in &net.load {
        rows.push(vec![
            "load".into(),
            load.name.clone(),
            format!("{} MW / {} Mvar", load.p_mw, load.q_mvar),
        ]);
    }
    println!(
        "{}",
        render_table(&["element", "name", "parameters"], &rows)
    );

    println!("\nbase-case power flow:");
    let result = solve(net).expect("base case solves");
    let mut rows = Vec::new();
    for (i, bus) in net.bus.iter().enumerate() {
        rows.push(vec![
            bus.name.clone(),
            format!("{:.4}", result.bus[i].vm_pu),
            format!("{:+.3}", result.bus[i].va_degree),
        ]);
    }
    println!("{}", render_table(&["bus", "V [pu]", "angle [deg]"], &rows));
    let mut rows = Vec::new();
    for (i, line) in net.line.iter().enumerate() {
        let r = &result.line[i];
        rows.push(vec![
            line.name.clone(),
            format!("{:+.4}", r.p_from_mw),
            format!("{:+.4}", r.q_from_mvar),
            format!("{:.4}", r.i_from_ka),
            format!("{:.1}%", r.loading_percent),
        ]);
    }
    println!(
        "{}",
        render_table(&["line", "P [MW]", "Q [Mvar]", "I [kA]", "loading"], &rows)
    );
    println!(
        "\nconverged in {} NR iterations, total losses {:.5} MW",
        result.iterations, result.total_losses_mw
    );
    if !compilation.diagnostics.is_empty() {
        println!("\ncompilation diagnostics:");
        for d in &compilation.diagnostics {
            println!("  {d}");
        }
    }
}
