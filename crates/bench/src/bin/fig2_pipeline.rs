//! Regenerates **Figures 2 and 3**: the SG-ML Processor pipeline, executed
//! stage by stage over the EPIC model set with per-stage summaries —
//! mirroring the flowchart modules of Figure 3.

use sgcr_core::{
    compile_network, compile_power, CompiledModel, CyberRange, IedConfig, PowerExtraConfig,
};
use sgcr_models::epic_bundle;
use sgcr_net::SimDuration;
use sgcr_scl::{consolidate_scd, consolidate_ssd, parse_icd, parse_scd, parse_ssd};

fn main() {
    println!("== Figures 2-3: the SG-ML Processor pipeline over the EPIC model set ==\n");
    let bundle = epic_bundle();

    println!("[inputs]   (Figure 2, left)");
    println!(
        "  {} SSD, {} SCD, {} ICD, {} SED",
        bundle.ssds.len(),
        bundle.scds.len(),
        bundle.icds.len(),
        bundle.seds.len()
    );
    println!(
        "  + IED Config XML, SCADA Config XML, PLC Config XML, Power System Extra Config XML\n"
    );

    println!("[stage 1]  parse SCL files");
    let ssds: Vec<_> = bundle
        .ssds
        .iter()
        .map(|t| parse_ssd(t).expect("ssd"))
        .collect();
    let scds: Vec<_> = bundle
        .scds
        .iter()
        .map(|t| parse_scd(t).expect("scd"))
        .collect();
    let icds: Vec<_> = bundle
        .icds
        .iter()
        .map(|t| parse_icd(t).expect("icd"))
        .collect();
    println!(
        "  parsed {} SSD, {} SCD, {} ICD documents\n",
        ssds.len(),
        scds.len(),
        icds.len()
    );

    println!("[stage 2]  combine SSD/SCD files using SED connectivity (Fig. 3: 'combine')");
    let consolidated_ssd = consolidate_ssd(&ssds, &[]).expect("consolidate ssd");
    let consolidated_scd = consolidate_scd(&scds).expect("consolidate scd");
    println!(
        "  consolidated SSD: {} substation(s); consolidated SCD: {} subnetworks\n",
        consolidated_ssd.substations.len(),
        consolidated_scd
            .communication
            .as_ref()
            .unwrap()
            .subnetworks
            .len()
    );

    println!("[stage 3]  generate the power system simulation model (Fig. 3: 'SSD -> Pandapower')");
    let power = compile_power(&consolidated_ssd);
    println!("  {}\n", power.network.summary());

    println!("[stage 4]  generate the cyber network emulation model (Fig. 3: 'SCD -> Mininet')");
    let plan = compile_network(&consolidated_scd);
    println!(
        "  {} switches ({} WAN), {} hosts\n",
        plan.switches.len(),
        plan.switches.iter().filter(|s| s.is_wan).count(),
        plan.hosts.len()
    );

    println!("[stage 5]  instantiate virtual IEDs from ICD + IED Config XML");
    let ied_config = IedConfig::parse(bundle.ied_config.as_ref().unwrap()).expect("ied config");
    for spec in &ied_config.ieds {
        let protections: Vec<&str> = spec.protections.iter().map(|p| p.ln_class()).collect();
        println!(
            "  {:6} breakers={} measurements={} protections={:?} goose={}",
            spec.name,
            spec.breakers.len(),
            spec.measurements.len(),
            protections,
            spec.goose.is_some()
        );
    }

    println!("\n[stage 6]  virtual PLC (OpenPLC61850 role) + SCADA (ScadaBR role) configuration");
    let extra = PowerExtraConfig::parse(bundle.power_extra.as_ref().unwrap()).expect("extra");
    println!(
        "  CPLC program from PLC Config XML; SCADA translated to ScadaBR JSON; interval {} ms, {} profiles\n",
        extra.interval_ms,
        extra.schedule.profiles.len()
    );

    println!("[output]   operational cyber range (Figure 2, right)");
    let start = std::time::Instant::now();
    let mut range = CyberRange::instantiate(CompiledModel::shared(&bundle).expect("generate"))
        .expect("generate");
    println!(
        "  generated in {:.1} ms: {}",
        start.elapsed().as_secs_f64() * 1e3,
        range.summary()
    );

    range.run_for(SimDuration::from_secs(2));
    println!(
        "  after 2 s of co-simulation: SCADA polled {} rounds, {} power-flow steps, {} solve errors",
        range.scada.as_ref().unwrap().polls_completed(),
        range.step_stats().len(),
        range.solve_errors().len()
    );
}
