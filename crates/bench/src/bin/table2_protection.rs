//! Regenerates **Table II**: the protection functions on the virtual IED
//! (PTOC, PTOV, PTUV, PDIF, CILO), each driven across its threshold inside
//! a live cyber range and reported with its observed behaviour.

use sgcr_bench::render_table;
use sgcr_core::{CompiledModel, CyberRange, IedConfig, SgmlBundle};
use sgcr_ied::{IedEventKind, MeasurementMap, ProtectionSpec, RsvSpec};
use sgcr_kvstore::Value;
use sgcr_models::{epic_bundle, multisub_bundle, MultiSubParams};
use sgcr_net::SimDuration;

fn epic() -> CyberRange {
    CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).expect("EPIC compiles"))
        .expect("EPIC compiles")
}

/// PTOC: overload the smart-home feeder.
fn run_ptoc() -> (String, String) {
    let mut range = epic();
    range.run_for(SimDuration::from_secs(1));
    let nominal = range
        .store
        .get_float("meas/EPIC/branch/LHome/i_ka")
        .unwrap();
    let load = range.power.load_by_name("EPIC/Load1").unwrap();
    range.power.load[load.index()].p_mw = 0.2;
    range.run_for(SimDuration::from_secs(3));
    let trips = range.ieds["TIED2"].trip_count();
    (
        format!(
            "threshold 0.120 kA (~{:.0}x nominal {:.4} kA)",
            0.12 / nominal,
            nominal
        ),
        format!(
            "{} trip(s); CB_HOME open: {}",
            trips,
            !range.power.switch[range.power.switch_by_name("EPIC/CB_HOME").unwrap().index()].closed
        ),
    )
}

/// PTOV: force the generator set-points high.
fn run_ptov() -> (String, String) {
    let mut range = epic();
    range.run_for(SimDuration::from_secs(1));
    for gen in range.power.gen.iter_mut() {
        gen.vm_pu = 1.15;
    }
    range.run_for(SimDuration::from_secs(2));
    (
        "threshold 1.10 pu".into(),
        format!("{} trip(s) on GIED2", range.ieds["GIED2"].trip_count()),
    )
}

/// PTUV: depress the source voltage.
fn run_ptuv() -> (String, String) {
    let mut range = epic();
    range.run_for(SimDuration::from_secs(1));
    for gen in range.power.gen.iter_mut() {
        gen.vm_pu = 0.86;
    }
    range.run_for(SimDuration::from_secs(2));
    (
        "threshold 0.88 pu".into(),
        format!("{} trip(s) on MIED1", range.ieds["MIED1"].trip_count()),
    )
}

/// PDIF: two-substation tie with an R-SV remote feed; inject divergence.
fn run_pdif() -> (String, String) {
    let mut bundle: SgmlBundle = multisub_bundle(&MultiSubParams {
        substations: 2,
        total_ieds: 2,
        interval_ms: 100,
    });
    let mut config = IedConfig::parse(bundle.ied_config.as_ref().unwrap()).unwrap();
    let tie_key = "meas/S1/branch/TIE12/i_ka".to_string();
    let ct_key = "meas/S2/ct/TIE12/i_ka".to_string();
    {
        let s1 = config.ieds.iter_mut().find(|s| s.name == "S1IED1").unwrap();
        s1.protections.push(ProtectionSpec::Pdif {
            ln: "PDIF1".into(),
            local_current_key: tie_key.clone(),
            threshold: 0.001,
            delay_ms: 100,
            breaker: "CB1".into(),
        });
        s1.rsv = Some(RsvSpec {
            sv_id: "S1IED1-SV".into(),
            current_key: tie_key.clone(),
            peers: vec!["10.2.0.10".parse().unwrap()],
            subscribe_sv_id: Some("S2IED1-SV".into()),
        });
        s1.measurements.push(MeasurementMap {
            item: "MMXU2$MX$A$phsA$cVal$mag$f".into(),
            kv_key: tie_key.clone(),
        });
    }
    {
        let s2 = config.ieds.iter_mut().find(|s| s.name == "S2IED1").unwrap();
        s2.rsv = Some(RsvSpec {
            sv_id: "S2IED1-SV".into(),
            current_key: ct_key.clone(),
            peers: vec!["10.1.0.10".parse().unwrap()],
            subscribe_sv_id: None,
        });
    }
    bundle.icds = bundle
        .icds
        .iter()
        .map(|icd| {
            if icd.contains("S1IED1") {
                sgcr_models::assets::icd_for(
                    "S1IED1",
                    &["LLN0", "LPHD", "MMXU", "XCBR", "CSWI", "PTOC", "PDIF"],
                )
            } else {
                icd.clone()
            }
        })
        .collect();
    bundle.ied_config = Some(config.to_xml());
    let mut range =
        CyberRange::instantiate(CompiledModel::shared(&bundle).expect("pdif bundle compiles"))
            .expect("pdif bundle compiles");
    for _ in 0..10 {
        let tie_i = range.store.get_float(&tie_key).unwrap_or(0.0);
        range.store.set(&ct_key, Value::Float(tie_i));
        range.run_for(SimDuration::from_millis(100));
    }
    let healthy = range.ieds["S1IED1"].trip_count();
    for _ in 0..15 {
        range.store.set(&ct_key, Value::Float(0.0001));
        range.run_for(SimDuration::from_millis(100));
    }
    (
        "threshold 0.001 kA differential (remote current via R-SV)".into(),
        format!(
            "healthy: {} trips; after divergence: {} trip(s)",
            healthy,
            range.ieds["S1IED1"].trip_count()
        ),
    )
}

/// CILO: close command against an open monitored breaker.
fn run_cilo() -> (String, String) {
    let mut range = epic();
    range
        .store
        .set("cmd/EPIC/cb/CB_HOME/close", Value::Bool(false));
    range.run_for(SimDuration::from_secs(2));
    let blocked = range.ieds["SIED1"]
        .model
        .read("SIED1LD0/CILO1$ST$EnaCls$stVal");
    range
        .store
        .set("cmd/EPIC/cb/CB_HOME/close", Value::Bool(true));
    range.run_for(SimDuration::from_secs(3));
    let permitted = range.ieds["SIED1"]
        .model
        .read("SIED1LD0/CILO1$ST$EnaCls$stVal");
    let rejections = range.ieds["SIED1"]
        .events_of(IedEventKind::ControlRejected)
        .len();
    (
        "monitored: EPIC/CB_HOME via GOOSE (TIED2's gcb01)".into(),
        format!(
            "EnaCls open={:?} closed={:?}; {} rejection(s) logged",
            blocked.and_then(|v| v.as_bool()),
            permitted.and_then(|v| v.as_bool()),
            rejections
        ),
    )
}

fn main() {
    println!("== Table II: protection functions on the virtual IED ==\n");
    let mut rows = Vec::new();
    type Case = (&'static str, &'static str, fn() -> (String, String));
    let cases: [Case; 5] = [
        (
            "PTOC",
            "opens CB when current exceeds the threshold",
            run_ptoc,
        ),
        (
            "PTOV",
            "opens CB when bus voltage exceeds the threshold",
            run_ptov,
        ),
        (
            "PTUV",
            "opens CB when bus voltage drops below the threshold",
            run_ptuv,
        ),
        (
            "PDIF",
            "opens CB when local/remote currents diverge",
            run_pdif,
        ),
        (
            "CILO",
            "prevents closing a CB while a monitored CB is open",
            run_cilo,
        ),
    ];
    for (ln, description, run) in cases {
        eprintln!("running {ln}…");
        let (threshold, observed) = run();
        rows.push(vec![ln.into(), description.into(), threshold, observed]);
    }
    println!(
        "{}",
        render_table(
            &[
                "LN (Table II)",
                "description",
                "threshold from IED Config XML",
                "observed in the live range"
            ],
            &rows
        )
    );
}
