//! Micro-benchmarks of the protocol codecs: MMS, GOOSE, Modbus — the
//! per-message costs behind every virtual-device interaction.

use criterion::{criterion_group, criterion_main, Criterion};
use sgcr_iec61850::{DataValue, GoosePdu, MmsPdu, MmsRequest, MmsResponse};
use sgcr_modbus::{decode_request, encode_request, Request};

fn sample_goose() -> GoosePdu {
    GoosePdu {
        gocb_ref: "GIED1LD0/LLN0$GO$gcb01".into(),
        time_allowed_to_live_ms: 2000,
        dat_set: "GIED1LD0/LLN0$DSGoose".into(),
        go_id: "GIED1".into(),
        t: 123_456_789_000,
        st_num: 7,
        sq_num: 3,
        simulation: false,
        conf_rev: 1,
        nds_com: false,
        all_data: vec![
            DataValue::Bool(true),
            DataValue::Bool(false),
            DataValue::dbpos_on(),
            DataValue::Float(1.25),
        ],
    }
}

fn bench_codecs(c: &mut Criterion) {
    c.bench_function("goose_encode", |b| {
        let pdu = sample_goose();
        b.iter(|| pdu.encode(0x3001));
    });
    c.bench_function("goose_decode", |b| {
        let wire = sample_goose().encode(0x3001);
        b.iter(|| GoosePdu::decode(&wire).expect("decodes"));
    });

    let read = MmsPdu::ConfirmedRequest {
        invoke_id: 42,
        request: MmsRequest::Read {
            items: vec![
                "GIED1LD0/MMXU1$MX$TotW$mag$f".into(),
                "GIED1LD0/XCBR1$ST$Pos$stVal".into(),
                "GIED1LD0/PTOC1$ST$Op$general".into(),
            ],
        },
    };
    c.bench_function("mms_read_request_encode", |b| {
        b.iter(|| read.encode());
    });
    let response = MmsPdu::ConfirmedResponse {
        invoke_id: 42,
        response: MmsResponse::Read {
            results: vec![
                Ok(DataValue::Float(12.5)),
                Ok(DataValue::dbpos_on()),
                Ok(DataValue::Bool(false)),
            ],
        },
    };
    let wire = response.encode();
    c.bench_function("mms_read_response_decode", |b| {
        b.iter(|| MmsPdu::decode(&wire).expect("decodes"));
    });

    let request = Request::ReadInputRegisters {
        address: 0,
        count: 16,
    };
    c.bench_function("modbus_request_roundtrip", |b| {
        b.iter(|| {
            let wire = encode_request(&request);
            decode_request(&wire).expect("decodes")
        });
    });
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
