//! Micro-benchmarks of the XML/SCL substrate: parsing the EPIC SCD and SSD
//! and consolidating the paper-scale multi-substation model — the
//! "compilation front-end" cost of the SG-ML Processor.

use criterion::{criterion_group, criterion_main, Criterion};
use sgcr_models::{epic, multisub_bundle, MultiSubParams};
use sgcr_scl::{consolidate_ssd, parse_scd, parse_sed, parse_ssd};
use sgcr_xml::Document;

fn bench_xml(c: &mut Criterion) {
    let ssd = epic::epic_ssd();
    let scd = epic::epic_scd();

    c.bench_function("xml_parse_epic_scd", |b| {
        b.iter(|| Document::parse(&scd).expect("well-formed"));
    });
    c.bench_function("scl_parse_epic_ssd", |b| {
        b.iter(|| parse_ssd(&ssd).expect("valid SSD"));
    });
    c.bench_function("scl_parse_epic_scd", |b| {
        b.iter(|| parse_scd(&scd).expect("valid SCD"));
    });

    let bundle = multisub_bundle(&MultiSubParams::paper_profile());
    let ssds: Vec<_> = bundle
        .ssds
        .iter()
        .map(|t| parse_ssd(t).expect("valid"))
        .collect();
    let seds: Vec<_> = bundle
        .seds
        .iter()
        .map(|t| parse_sed(t).expect("valid"))
        .collect();
    c.bench_function("scl_consolidate_5_substations", |b| {
        b.iter(|| consolidate_ssd(&ssds, &seds).expect("consolidates"));
    });
}

criterion_group!(benches, bench_xml);
criterion_main!(benches);
