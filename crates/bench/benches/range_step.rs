//! Macro-benchmarks of the generated cyber range: generation time and
//! per-step cost for the EPIC model and the paper's 5-substation / 104-IED
//! configuration — the numbers behind the S1 scalability table.

use criterion::{criterion_group, criterion_main, Criterion};
use sgcr_core::{CompiledModel, CyberRange};
use sgcr_models::{epic_bundle, multisub_bundle, MultiSubParams};
use sgcr_net::SimDuration;

fn bench_range(c: &mut Criterion) {
    c.bench_function("generate_epic_range", |b| {
        let bundle = epic_bundle();
        b.iter(|| {
            CyberRange::instantiate(CompiledModel::shared(&bundle).expect("compiles"))
                .expect("compiles")
        });
    });

    c.bench_function("epic_step_100ms", |b| {
        let mut range =
            CyberRange::instantiate(CompiledModel::shared(&epic_bundle()).expect("compiles"))
                .expect("compiles");
        range.run_for(SimDuration::from_secs(1));
        b.iter(|| range.step());
    });

    c.bench_function("multisub_5x104_step_100ms", |b| {
        let params = MultiSubParams::paper_profile();
        let mut range = CyberRange::instantiate(
            CompiledModel::shared(&multisub_bundle(&params)).expect("paper profile compiles"),
        )
        .expect("paper profile compiles");
        range.run_for(SimDuration::from_secs(1));
        b.iter(|| range.step());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_range
}
criterion_main!(benches);
