//! Micro-benchmarks of the network emulator: event throughput for UDP
//! exchanges and TCP streams — the cyber-side cost of each co-simulation
//! step.

use criterion::{criterion_group, criterion_main, Criterion};
use sgcr_net::{ConnId, HostCtx, Ipv4Addr, LinkSpec, Network, SimDuration, SimTime, SocketApp};

/// Sends a burst of UDP datagrams every 10 ms.
struct UdpTalker {
    peer: Ipv4Addr,
}

impl SocketApp for UdpTalker {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.bind_udp(9000);
        ctx.set_timer(SimDuration::from_millis(10), 1);
    }
    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, _token: u64) {
        for _ in 0..10 {
            ctx.send_udp(self.peer, 9000, 9000, b"measurement-sample-payload");
        }
        ctx.set_timer(SimDuration::from_millis(10), 1);
    }
}

struct UdpSink;
impl SocketApp for UdpSink {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.bind_udp(9000);
    }
}

/// Pumps a TCP stream: client sends 1 KiB every 5 ms, server echoes.
struct TcpPump {
    server: Ipv4Addr,
    conn: Option<ConnId>,
}
impl SocketApp for TcpPump {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.conn = Some(ctx.tcp_connect(self.server, 5000));
    }
    fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
        ctx.tcp_send(conn, &[0xabu8; 1024]);
        ctx.set_timer(SimDuration::from_millis(5), 1);
    }
    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, _token: u64) {
        if let Some(conn) = self.conn {
            ctx.tcp_send(conn, &[0xabu8; 1024]);
            ctx.set_timer(SimDuration::from_millis(5), 1);
        }
    }
}
struct TcpEcho;
impl SocketApp for TcpEcho {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.tcp_listen(5000);
    }
    fn on_tcp_data(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, data: &[u8]) {
        ctx.tcp_send(conn, data);
    }
}

fn bench_emulator(c: &mut Criterion) {
    c.bench_function("emulate_1s_udp_2hosts", |b| {
        b.iter(|| {
            let mut net = Network::new();
            let sw = net.add_switch("sw");
            let a = net.add_host("a", Ipv4Addr::new(10, 0, 0, 1));
            let z = net.add_host("z", Ipv4Addr::new(10, 0, 0, 2));
            net.connect(a, sw, LinkSpec::default());
            net.connect(z, sw, LinkSpec::default());
            net.attach_app(
                a,
                Box::new(UdpTalker {
                    peer: Ipv4Addr::new(10, 0, 0, 2),
                }),
            );
            net.attach_app(z, Box::new(UdpSink));
            net.run_until(SimTime::from_secs(1));
        });
    });

    c.bench_function("emulate_1s_tcp_stream", |b| {
        b.iter(|| {
            let mut net = Network::new();
            let sw = net.add_switch("sw");
            let a = net.add_host("a", Ipv4Addr::new(10, 0, 0, 1));
            let z = net.add_host("z", Ipv4Addr::new(10, 0, 0, 2));
            net.connect(a, sw, LinkSpec::default());
            net.connect(z, sw, LinkSpec::default());
            net.attach_app(z, Box::new(TcpEcho));
            net.attach_app(
                a,
                Box::new(TcpPump {
                    server: Ipv4Addr::new(10, 0, 0, 2),
                    conn: None,
                }),
            );
            net.run_until(SimTime::from_secs(1));
        });
    });

    c.bench_function("emulate_1s_udp_20hosts_star", |b| {
        b.iter(|| {
            let mut net = Network::new();
            let sw = net.add_switch("sw");
            let mut peers = Vec::new();
            for i in 0..20u8 {
                let h = net.add_host(&format!("h{i}"), Ipv4Addr::new(10, 0, 0, i + 1));
                net.connect(h, sw, LinkSpec::default());
                peers.push(h);
            }
            for (i, &h) in peers.iter().enumerate() {
                let peer = Ipv4Addr::new(10, 0, 0, ((i + 1) % 20 + 1) as u8);
                net.attach_app(h, Box::new(UdpTalker { peer }));
            }
            net.run_until(SimTime::from_secs(1));
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_emulator
}
criterion_main!(benches);
