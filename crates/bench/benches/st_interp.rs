//! Micro-benchmarks of the Structured Text interpreter: parse cost and
//! per-scan execution cost of a CPLC-like mediation program.

use criterion::{criterion_group, criterion_main, Criterion};
use sgcr_plc::{parse_program, Interpreter, StValue};

const CPLC_LIKE: &str = r#"
PROGRAM cplc
VAR
    p1 : REAL; p2 : REAL; p3 : REAL;
    v1 : REAL; v2 : REAL;
    cb1 : BOOL; cb2 : BOOL;
    total AT %QW0 : INT;
    alarm AT %QX0.0 : BOOL;
    t1 : TON;
    i : INT;
    acc : REAL;
END_VAR
acc := 0.0;
FOR i := 1 TO 10 DO
    acc := acc + p1 * 0.1 + p2 * 0.2 + p3 * 0.3;
END_FOR;
total := TO_INT(acc * 100.0);
t1(IN := v1 < 0.9 OR v2 < 0.9, PT := T#500ms);
alarm := t1.Q AND (cb1 OR cb2);
IF alarm THEN
    total := -1;
END_IF;
END_PROGRAM
"#;

fn bench_st(c: &mut Criterion) {
    c.bench_function("st_parse_cplc_program", |b| {
        b.iter(|| parse_program(CPLC_LIKE).expect("parses"));
    });

    c.bench_function("st_scan_cplc_program", |b| {
        let program = parse_program(CPLC_LIKE).expect("parses");
        let mut interp = Interpreter::new(program).expect("instantiates");
        interp.set("p1", StValue::Real(10.0));
        interp.set("p2", StValue::Real(20.0));
        interp.set("p3", StValue::Real(30.0));
        interp.set("v1", StValue::Real(1.0));
        interp.set("v2", StValue::Real(0.95));
        interp.set("cb1", StValue::Bool(true));
        interp.set("cb2", StValue::Bool(false));
        let mut t = 0u64;
        b.iter(|| {
            t += 100_000_000;
            interp.scan(t).expect("scans");
        });
    });
}

criterion_group!(benches, bench_st);
criterion_main!(benches);
