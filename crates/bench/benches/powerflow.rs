//! Micro-benchmarks of the power-flow substrate: Newton–Raphson solve time
//! vs network size — the cost that bounds the 100 ms step budget of the
//! paper's scalability claim (S1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgcr_powerflow::{solve, PowerNetwork};

/// A radial feeder network with `n` load buses.
fn feeder(n: usize) -> PowerNetwork {
    let mut net = PowerNetwork::new("bench");
    let mut prev = net.add_bus("b0", 110.0);
    net.add_ext_grid("grid", prev, 1.0, 0.0);
    for i in 1..=n {
        let bus = net.add_bus(&format!("b{i}"), 110.0);
        net.add_line(&format!("l{i}"), prev, bus, 2.0, 0.06, 0.12, 0.0, 1.0);
        net.add_load(&format!("ld{i}"), bus, 0.8, 0.2);
        prev = bus;
    }
    net
}

/// The multi-substation shape of the S1 experiment: star feeders per
/// substation, substations chained.
fn multisub_shape(substations: usize, feeders_per_sub: usize) -> PowerNetwork {
    let mut net = PowerNetwork::new("bench-multisub");
    let mut prev_main = None;
    for s in 0..substations {
        let main = net.add_bus(&format!("s{s}main"), 22.0);
        if s == 0 {
            net.add_ext_grid("grid", main, 1.0, 0.0);
        }
        if let Some(prev) = prev_main {
            net.add_line(&format!("tie{s}"), prev, main, 5.0, 0.08, 0.25, 0.0, 0.8);
        }
        for f in 0..feeders_per_sub {
            let bus = net.add_bus(&format!("s{s}f{f}"), 22.0);
            net.add_line(&format!("s{s}lf{f}"), main, bus, 1.0, 0.15, 0.12, 0.0, 0.3);
            net.add_load(&format!("s{s}ld{f}"), bus, 0.1, 0.02);
        }
        prev_main = Some(main);
    }
    net
}

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("nr_solve_radial");
    for n in [5usize, 20, 50, 100] {
        let net = feeder(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &net, |b, net| {
            b.iter(|| solve(net).expect("converges"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("nr_solve_multisub");
    // The paper's S1 configuration is 5 substations x ~21 feeders.
    for (subs, feeders) in [(1usize, 21usize), (3, 21), (5, 21), (8, 21)] {
        let net = multisub_shape(subs, feeders);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{subs}x{feeders}")),
            &net,
            |b, net| {
                b.iter(|| solve(net).expect("converges"));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_solve
}
criterion_main!(benches);
