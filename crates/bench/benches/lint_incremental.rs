//! Micro-benchmarks of the lint layer on the EPIC model set: the full
//! (non-incremental) roster, a cold incremental-engine run populating the
//! on-disk query cache, and a warm run answering every query from it.
//! Recorded numbers are snapshotted in `BENCH_lint.json` at the repo root.

use criterion::{criterion_group, criterion_main, Criterion};
use sgcr_lint::source::LoadedBundle;
use sgcr_lint::{engine, lint_bundle};
use sgcr_models::epic_bundle;
use std::path::PathBuf;

/// Writes the EPIC bundle to a scratch dir once; returns (bundle_dir, cache_dir).
fn epic_dirs() -> (PathBuf, PathBuf) {
    let scratch = std::env::temp_dir().join(format!("sgcr-bench-lint-{}", std::process::id()));
    let bundle_dir = scratch.join("bundle");
    let cache_dir = scratch.join("cache");
    let _ = std::fs::remove_dir_all(&scratch);
    epic_bundle()
        .write_to_dir(&bundle_dir)
        .expect("EPIC bundle writes");
    (bundle_dir, cache_dir)
}

fn bench_lint(c: &mut Criterion) {
    let (bundle_dir, cache_dir) = epic_dirs();

    c.bench_function("lint_full_epic_bundle", |b| {
        b.iter(|| {
            let bundle = LoadedBundle::from_dir(&bundle_dir).expect("loads");
            criterion::black_box(lint_bundle(&bundle))
        });
    });

    c.bench_function("lint_incremental_cold_epic", |b| {
        b.iter(|| {
            // Cold every iteration: drop the cache first.
            let _ = std::fs::remove_dir_all(&cache_dir);
            criterion::black_box(
                engine::lint_dir_incremental(&bundle_dir, &cache_dir).expect("lints"),
            )
        });
    });

    // Populate once, then measure the all-reused path.
    let _ = std::fs::remove_dir_all(&cache_dir);
    engine::lint_dir_incremental(&bundle_dir, &cache_dir).expect("warms the cache");
    c.bench_function("lint_incremental_warm_epic", |b| {
        b.iter(|| {
            let outcome = engine::lint_dir_incremental(&bundle_dir, &cache_dir).expect("lints");
            assert_eq!(outcome.stats.recomputed, 0, "cache must stay warm");
            criterion::black_box(outcome)
        });
    });

    let _ = std::fs::remove_dir_all(bundle_dir.parent().expect("scratch dir"));
}

criterion_group!(benches, bench_lint);
criterion_main!(benches);
