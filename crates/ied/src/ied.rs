//! The virtual IED application: process sampling, protection, GOOSE/R-SV
//! exchange, and an MMS server — one `SocketApp` per emulated IED host.

use crate::protection::{
    DifferentialRelay, Interlock, OvercurrentCurve, OvercurrentRelay, RelayEvent, VoltageRelay,
};
use crate::spec::{GooseEntry, IedSpec, ProtectionSpec};
use parking_lot::Mutex;
use sgcr_faults::{DegradationSignal, SensorFault};
use sgcr_iec61850::{
    ControlDecision, DataModel, DataValue, GooseConfig, GoosePublisher, GooseSubscriber, MmsServer,
    MmsServerApp, SessionPacket, SessionPayloadType, SessionReceiver, SessionSender, SharedModel,
    SvPublisher, SvSubscriber, RGOOSE_PORT,
};
use sgcr_kvstore::{ProcessStore, Value};
use sgcr_net::{
    ethertype, AppPlane, ConnId, EthernetFrame, HostCtx, Ipv4Addr, MacAddr, SimTime, SocketApp,
};
use sgcr_obs::{Counter, Event as ObsEvent, Plane, Telemetry, TimeNs, TraceCtx};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const TOKEN_SAMPLE: u64 = 1;
const TOKEN_GOOSE: u64 = 2;

/// Kinds of events recorded by a virtual IED.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IedEventKind {
    /// A protection element picked up (started timing).
    ProtectionPickup,
    /// A protection element operated and tripped its breaker.
    ProtectionTrip,
    /// A protection element dropped out before operating.
    ProtectionDropout,
    /// An MMS control was executed.
    ControlExecuted,
    /// An MMS control was rejected (interlock).
    ControlRejected,
}

/// One event in the IED's sequence-of-events record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IedEvent {
    /// Simulation time in milliseconds.
    pub time_ms: u64,
    /// Event kind.
    pub kind: IedEventKind,
    /// Human-readable detail (LN, breaker, value).
    pub detail: String,
}

/// The live state of one injected sensor fault.
#[derive(Debug, Clone, Copy)]
struct SensorOverride {
    fault: SensorFault,
    /// Simulation time (ms) the fault engaged; drift accrues from here.
    engaged_ms: u64,
    /// For [`SensorFault::Stuck`]: the value captured at the first faulted
    /// sample, repeated forever after.
    held: Option<f64>,
}

/// Observable handle to a running virtual IED (shared with the experiment
/// harness and SCADA-side assertions).
#[derive(Clone)]
pub struct IedHandle {
    /// The IED's live data model.
    pub model: SharedModel,
    events: Arc<Mutex<Vec<IedEvent>>>,
    sensor_faults: Arc<Mutex<HashMap<String, SensorOverride>>>,
    degradation: DegradationSignal,
}

impl IedHandle {
    /// Snapshot of the sequence-of-events record.
    pub fn events(&self) -> Vec<IedEvent> {
        self.events.lock().clone()
    }

    /// Injects a sensor fault on the process value stored under `key` (the
    /// measurement's process-store key). The fault engages at the next
    /// sample; the IED itself cannot tell — a stuck transducer reports
    /// quality `good` — which is exactly what makes the fault dangerous.
    pub fn set_sensor_fault(&self, key: &str, fault: SensorFault, now_ms: u64) {
        self.sensor_faults.lock().insert(
            key.to_string(),
            SensorOverride {
                fault,
                engaged_ms: now_ms,
                held: None,
            },
        );
    }

    /// Removes a sensor fault; returns `false` if none was set on `key`.
    pub fn clear_sensor_fault(&self, key: &str) -> bool {
        self.sensor_faults.lock().remove(key).is_some()
    }

    /// The degradation signal this IED watches: raising it flips the
    /// quality of every published measurement to `invalid` at the next
    /// sample. The range shares one logical signal across the planes.
    pub fn degradation(&self) -> DegradationSignal {
        self.degradation.clone()
    }

    /// Number of protection trips recorded.
    pub fn trip_count(&self) -> usize {
        self.events
            .lock()
            .iter()
            .filter(|e| e.kind == IedEventKind::ProtectionTrip)
            .count()
    }

    /// Events of a given kind.
    pub fn events_of(&self, kind: IedEventKind) -> Vec<IedEvent> {
        self.events
            .lock()
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }
}

enum ProtectionRuntime {
    Ptoc {
        ln: String,
        key: String,
        relay: OvercurrentRelay,
        breaker: String,
    },
    Voltage {
        ln: String,
        key: String,
        relay: VoltageRelay,
        breaker: String,
    },
    Pdif {
        ln: String,
        key: String,
        relay: DifferentialRelay,
        breaker: String,
    },
    Cilo {
        ln: String,
        breaker: String,
        interlock: Interlock,
        /// monitored refs: (reference, gocb_ref, dataset_index)
        monitored: Vec<(String, String, usize)>,
    },
}

/// The virtual IED application.
///
/// Built from an [`IedSpec`]; construct with [`VirtualIedApp::new`] and
/// attach to an emulated host. The returned [`IedHandle`] exposes the live
/// data model and the sequence-of-events record.
pub struct VirtualIedApp {
    spec: IedSpec,
    store: ProcessStore,
    mms: MmsServerApp,
    model: SharedModel,
    protections: Vec<ProtectionRuntime>,
    goose_pub: Option<GoosePublisher>,
    goose_subs: Vec<GooseSubscriber>,
    rsv_pub: Option<SvPublisher>,
    rsv_sub: Option<SvSubscriber>,
    session_tx: SessionSender,
    session_rx: HashMap<Ipv4Addr, SessionReceiver>,
    events: Arc<Mutex<Vec<IedEvent>>>,
    /// Close-permit per interlocked breaker, shared with the control handler.
    permits: Arc<Mutex<HashMap<String, bool>>>,
    now_ms: Arc<AtomicU64>,
    sensor_faults: Arc<Mutex<HashMap<String, SensorOverride>>>,
    degradation: DegradationSignal,
    /// Whether the model's quality items currently read `invalid`; writes
    /// happen only on transition so the healthy path stays free.
    q_invalid: bool,
    /// GOOSE subscriptions whose TAL has already been journaled as expired.
    tal_expired: HashSet<String>,
    telemetry: Telemetry,
    trips_counter: Counter,
    goose_counter: Counter,
    /// Causal parent for the next GOOSE publication: the trip (or sample)
    /// span that changed the dataset. Retransmissions keep chaining to it.
    goose_cause: Option<TraceCtx>,
}

impl VirtualIedApp {
    /// Builds the application and its data model from a resolved spec, with
    /// telemetry disabled.
    pub fn new(spec: IedSpec, store: ProcessStore) -> (VirtualIedApp, IedHandle) {
        VirtualIedApp::with_telemetry(spec, store, Telemetry::disabled())
    }

    /// Builds the application with a telemetry handle. Trips, controls, and
    /// GOOSE publications feed the `ied.*` counters and journal
    /// [`ProtectionTrip`](sgcr_obs::Event::ProtectionTrip),
    /// [`ControlExecuted`](sgcr_obs::Event::ControlExecuted),
    /// [`ControlRejected`](sgcr_obs::Event::ControlRejected), and
    /// [`GooseSent`](sgcr_obs::Event::GooseSent) events tagged with this
    /// IED's name.
    pub fn with_telemetry(
        spec: IedSpec,
        store: ProcessStore,
        telemetry: Telemetry,
    ) -> (VirtualIedApp, IedHandle) {
        let model = SharedModel::new(build_model(&spec));
        let events: Arc<Mutex<Vec<IedEvent>>> = Arc::default();
        let permits: Arc<Mutex<HashMap<String, bool>>> = Arc::default();
        let now_ms = Arc::new(AtomicU64::new(0));

        let mut server = MmsServer::new(model.clone());
        server.identity = (
            "sgcr".to_string(),
            "virtual-ied".to_string(),
            spec.name.clone(),
        );
        // Control handler: map Oper writes onto breaker commands, gated by
        // the interlock permits maintained by the protection scan.
        {
            let store = store.clone();
            let events = events.clone();
            let permits = permits.clone();
            let now_ms = now_ms.clone();
            let breakers = spec.breakers.clone();
            let substation = spec.substation.clone();
            let obs = telemetry.clone();
            let controls_counter = telemetry.counter("ied.controls");
            let ied_name = spec.name.clone();
            server.set_control_handler(Box::new(move |object_ref, value| {
                let Some(close) = value.as_bool() else {
                    return ControlDecision::Reject;
                };
                let Some(breaker) = breakers
                    .iter()
                    .find(|b| object_ref.ln == b.cswi || object_ref.ln == b.xcbr)
                else {
                    return ControlDecision::Reject;
                };
                let time_ms = now_ms.load(Ordering::Relaxed);
                if close && breaker.interlocked {
                    let permitted = permits.lock().get(&breaker.name).copied().unwrap_or(false);
                    if !permitted {
                        let detail = format!(
                            "close {} blocked by interlock (substation {substation})",
                            breaker.name
                        );
                        events.lock().push(IedEvent {
                            time_ms,
                            kind: IedEventKind::ControlRejected,
                            detail: detail.clone(),
                        });
                        obs.record(TimeNs::from_millis(time_ms), || ObsEvent::ControlRejected {
                            ied: ied_name.clone(),
                            detail,
                        });
                        return ControlDecision::Reject;
                    }
                }
                store.set(&breaker.cmd_key, Value::Bool(close));
                controls_counter.inc();
                let detail = format!("{} {}", if close { "close" } else { "open" }, breaker.name);
                events.lock().push(IedEvent {
                    time_ms,
                    kind: IedEventKind::ControlExecuted,
                    detail: detail.clone(),
                });
                obs.record(TimeNs::from_millis(time_ms), || ObsEvent::ControlExecuted {
                    ied: ied_name.clone(),
                    detail,
                });
                ControlDecision::Accept
            }));
        }

        let protections = spec
            .protections
            .iter()
            .map(|p| match p {
                ProtectionSpec::Ptoc {
                    ln,
                    measurement_key,
                    pickup,
                    delay_ms,
                    breaker,
                } => ProtectionRuntime::Ptoc {
                    ln: ln.clone(),
                    key: measurement_key.clone(),
                    relay: OvercurrentRelay::new(
                        *pickup,
                        OvercurrentCurve::DefiniteTime {
                            delay: sgcr_net::SimDuration::from_millis(*delay_ms),
                        },
                    ),
                    breaker: breaker.clone(),
                },
                ProtectionSpec::Ptov {
                    ln,
                    voltage_key,
                    threshold_pu,
                    delay_ms,
                    breaker,
                } => ProtectionRuntime::Voltage {
                    ln: ln.clone(),
                    key: voltage_key.clone(),
                    relay: VoltageRelay::over(
                        *threshold_pu,
                        sgcr_net::SimDuration::from_millis(*delay_ms),
                    ),
                    breaker: breaker.clone(),
                },
                ProtectionSpec::Ptuv {
                    ln,
                    voltage_key,
                    threshold_pu,
                    delay_ms,
                    breaker,
                } => ProtectionRuntime::Voltage {
                    ln: ln.clone(),
                    key: voltage_key.clone(),
                    relay: VoltageRelay::under(
                        *threshold_pu,
                        sgcr_net::SimDuration::from_millis(*delay_ms),
                    ),
                    breaker: breaker.clone(),
                },
                ProtectionSpec::Pdif {
                    ln,
                    local_current_key,
                    threshold,
                    delay_ms,
                    breaker,
                } => ProtectionRuntime::Pdif {
                    ln: ln.clone(),
                    key: local_current_key.clone(),
                    relay: DifferentialRelay::new(
                        *threshold,
                        sgcr_net::SimDuration::from_millis(*delay_ms),
                    ),
                    breaker: breaker.clone(),
                },
                ProtectionSpec::Cilo {
                    ln,
                    breaker,
                    monitored,
                } => ProtectionRuntime::Cilo {
                    ln: ln.clone(),
                    breaker: breaker.clone(),
                    interlock: Interlock::new(
                        monitored.iter().map(|m| m.reference.clone()).collect(),
                    ),
                    monitored: monitored
                        .iter()
                        .map(|m| (m.reference.clone(), m.gocb_ref.clone(), m.dataset_index))
                        .collect(),
                },
            })
            .collect::<Vec<_>>();

        // Subscribe to every distinct gocbRef the interlocks reference.
        let mut sub_refs: Vec<String> = protections
            .iter()
            .filter_map(|p| match p {
                ProtectionRuntime::Cilo { monitored, .. } => {
                    Some(monitored.iter().map(|(_, g, _)| g.clone()))
                }
                _ => None,
            })
            .flatten()
            .collect();
        sub_refs.sort();
        sub_refs.dedup();
        let goose_subs = sub_refs.iter().map(|g| GooseSubscriber::new(g)).collect();

        let goose_pub = spec.goose.as_ref().map(|g| {
            GoosePublisher::new(
                GooseConfig::new(&g.gocb_ref, &g.dataset, &g.gocb_ref, g.appid),
                vec![DataValue::Bool(false); g.entries.len()],
            )
        });

        let rsv_pub = spec
            .rsv
            .as_ref()
            .map(|r| SvPublisher::new(&r.sv_id, 0x4000, spec.sample_period));
        let rsv_sub = spec
            .rsv
            .as_ref()
            .and_then(|r| r.subscribe_sv_id.as_ref())
            .map(|id| SvSubscriber::new(id));

        let sensor_faults: Arc<Mutex<HashMap<String, SensorOverride>>> = Arc::default();
        let degradation = DegradationSignal::new();
        let app = VirtualIedApp {
            spec,
            store,
            mms: MmsServerApp::new(server),
            model: model.clone(),
            protections,
            goose_pub,
            goose_subs,
            rsv_pub,
            rsv_sub,
            session_tx: SessionSender::new(),
            session_rx: HashMap::new(),
            events: events.clone(),
            permits,
            now_ms,
            sensor_faults: sensor_faults.clone(),
            degradation: degradation.clone(),
            q_invalid: false,
            tal_expired: HashSet::new(),
            trips_counter: telemetry.counter("ied.protection_trips"),
            goose_counter: telemetry.counter("ied.goose_sent"),
            telemetry,
            goose_cause: None,
        };
        (
            app,
            IedHandle {
                model,
                events,
                sensor_faults,
                degradation,
            },
        )
    }

    /// Applies any injected sensor fault to a process value. Stuck sensors
    /// capture-and-hold the first faulted reading; drifting sensors walk
    /// away from truth at their configured rate. Protection elements read
    /// through this too — a faulted transducer blinds the relay exactly as
    /// it would in the field.
    fn faulted_value(&self, key: &str, raw: f64, now_ms: u64) -> f64 {
        apply_sensor_fault(&self.sensor_faults, key, raw, now_ms)
    }

    fn record(&self, now: SimTime, kind: IedEventKind, detail: String) {
        self.events.lock().push(IedEvent {
            time_ms: now.as_millis(),
            kind,
            detail,
        });
    }

    fn trip_breaker(
        &mut self,
        ctx: &mut HostCtx<'_>,
        ln: &str,
        breaker_name: &str,
        parent: Option<TraceCtx>,
    ) -> Option<TraceCtx> {
        let now = ctx.now();
        let breaker = self.spec.breaker(breaker_name).cloned()?;
        let mut span = ctx.tracer().open("ied.trip", Plane::Control, parent, now);
        if span.is_recording() {
            span.attr("ied", self.spec.name.as_str());
            span.attr("ln", ln);
            span.attr("breaker", breaker_name);
        }
        let trip_ctx = span.ctx();
        self.store.set(&breaker.cmd_key, Value::Bool(false));
        let op_item = self.spec.item(&format!("{ln}$ST$Op$general"));
        self.model.write(&op_item, DataValue::Bool(true));
        self.record(
            now,
            IedEventKind::ProtectionTrip,
            format!("{ln} tripped {breaker_name}"),
        );
        self.trips_counter.inc();
        self.telemetry
            .record(now.as_nanos(), || ObsEvent::ProtectionTrip {
                ied: self.spec.name.clone(),
                detail: format!("{ln} tripped {breaker_name}"),
            });
        // Spontaneous reporting: push an InformationReport to every
        // associated MMS client (SCADA/PLC learn of the trip immediately,
        // without waiting for their next interrogation cycle).
        let report = sgcr_iec61850::MmsPdu::InformationReport {
            report_name: self.spec.item("LLN0$BR$brcb01"),
            entries: vec![
                (op_item, DataValue::Bool(true)),
                (
                    self.spec.item(&format!("{}$ST$Pos$stVal", breaker.xcbr)),
                    DataValue::dbpos_off(),
                ),
            ],
        };
        let wire = sgcr_iec61850::tpkt_frame(&report.encode());
        // Spontaneous reports are caused by the trip: frames they generate
        // chain to the trip span, not to the enclosing sample.
        if trip_ctx.is_some() {
            ctx.set_trace_parent(trip_ctx);
        }
        for conn in self.mms.connections() {
            ctx.tcp_send(conn, &wire);
        }
        span.end(now);
        trip_ctx
    }

    fn sample(&mut self, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        self.now_ms.store(now.as_millis(), Ordering::Relaxed);

        // The sample reads process values produced by the most recent
        // power-flow solve: parent it to that solve's span so protection
        // operations triggered by the sampled values join the solve's trace.
        let tracer = ctx.tracer();
        let mut sample_span = tracer.open(
            "ied.sample",
            Plane::Control,
            tracer.provenance("power.solve"),
            now,
        );
        if sample_span.is_recording() {
            sample_span.attr("ied", self.spec.name.as_str());
        }
        let sample_ctx = sample_span.ctx();
        if sample_ctx.is_some() {
            // Frames emitted while sampling (R-SV, spontaneous reports, …)
            // default to the sample as their causal parent.
            ctx.set_trace_parent(sample_ctx);
        }

        // 0. GOOSE supervision: when a monitored stream's TTL expires, its
        //    interlock inputs degrade to Unknown (fail-safe close blocking),
        //    exactly as a real CILO loses its GOOSE-supervised permissives.
        let expired: Vec<String> = self
            .goose_subs
            .iter()
            .filter(|s| s.is_expired(now))
            .map(|s| s.gocb_ref.clone())
            .collect();
        if !expired.is_empty() {
            for gocb in &expired {
                if self.tal_expired.insert(gocb.clone()) {
                    self.telemetry
                        .record(now.as_nanos(), || ObsEvent::GooseExpired {
                            ied: self.spec.name.clone(),
                            publisher: gocb.clone(),
                        });
                }
            }
            for p in &mut self.protections {
                if let ProtectionRuntime::Cilo {
                    interlock,
                    monitored,
                    ..
                } = p
                {
                    for (reference, gocb_ref, _) in monitored.iter() {
                        if expired.contains(gocb_ref) {
                            interlock.set_unknown(reference);
                        }
                    }
                }
            }
        }
        if !self.tal_expired.is_empty() {
            // A publisher that resumed is no longer expired; forget it so a
            // later outage journals again.
            self.tal_expired.retain(|g| expired.contains(g));
        }

        // 1. Measurements: process store → data model, through any injected
        //    sensor faults.
        let now_ms = now.as_millis();
        for m in &self.spec.measurements {
            if let Some(v) = self.store.get_float(&m.kv_key) {
                let v = self.faulted_value(&m.kv_key, v, now_ms);
                let item = self.spec.item(&m.item);
                self.model.write(&item, DataValue::Float(v as f32));
            }
        }
        // Quality follows the range-wide degradation signal: while the
        // power plane holds its last-good solution, every published
        // measurement carries quality `invalid`. Written on transition only
        // so healthy samples do no extra work.
        let degraded = self.degradation.is_degraded();
        if degraded != self.q_invalid {
            self.q_invalid = degraded;
            let q = if degraded { "invalid" } else { "good" };
            for m in &self.spec.measurements {
                let q_item = self.spec.item(&quality_item(&m.item));
                self.model.write(&q_item, DataValue::Str(q.to_string()));
            }
        }
        // 2. Breaker positions.
        for b in &self.spec.breakers {
            let closed = self.store.get_bool(&b.state_key).unwrap_or(false);
            let pos = if closed {
                DataValue::dbpos_on()
            } else {
                DataValue::dbpos_off()
            };
            let xcbr_item = self.spec.item(&format!("{}$ST$Pos$stVal", b.xcbr));
            let cswi_item = self.spec.item(&format!("{}$ST$Pos$stVal", b.cswi));
            self.model.write(&xcbr_item, pos.clone());
            self.model.write(&cswi_item, pos);
        }

        // 3. Protection scan.
        let mut trips: Vec<(String, String)> = Vec::new();
        for p in &mut self.protections {
            match p {
                ProtectionRuntime::Ptoc {
                    ln,
                    key,
                    relay,
                    breaker,
                } => {
                    if let Some(value) = self.store.get_float(key) {
                        let value = apply_sensor_fault(&self.sensor_faults, key, value, now_ms);
                        match relay.step(now, value.abs()) {
                            Some(RelayEvent::Operate) => trips.push((ln.clone(), breaker.clone())),
                            Some(RelayEvent::Pickup) => self.events.lock().push(IedEvent {
                                time_ms: now.as_millis(),
                                kind: IedEventKind::ProtectionPickup,
                                detail: format!("{ln} pickup at {value:.3}"),
                            }),
                            Some(RelayEvent::Dropout) => self.events.lock().push(IedEvent {
                                time_ms: now.as_millis(),
                                kind: IedEventKind::ProtectionDropout,
                                detail: format!("{ln} dropout"),
                            }),
                            None => {}
                        }
                    }
                }
                ProtectionRuntime::Voltage {
                    ln,
                    key,
                    relay,
                    breaker,
                } => {
                    if let Some(value) = self.store.get_float(key) {
                        let value = apply_sensor_fault(&self.sensor_faults, key, value, now_ms);
                        match relay.step(now, value) {
                            Some(RelayEvent::Operate) => trips.push((ln.clone(), breaker.clone())),
                            Some(RelayEvent::Pickup) => self.events.lock().push(IedEvent {
                                time_ms: now.as_millis(),
                                kind: IedEventKind::ProtectionPickup,
                                detail: format!("{ln} pickup at {value:.3} pu"),
                            }),
                            Some(RelayEvent::Dropout) => self.events.lock().push(IedEvent {
                                time_ms: now.as_millis(),
                                kind: IedEventKind::ProtectionDropout,
                                detail: format!("{ln} dropout"),
                            }),
                            None => {}
                        }
                    }
                }
                ProtectionRuntime::Pdif {
                    ln,
                    key,
                    relay,
                    breaker,
                } => {
                    if let Some(value) = self.store.get_float(key) {
                        let value = apply_sensor_fault(&self.sensor_faults, key, value, now_ms);
                        match relay.step(now, value) {
                            Some(RelayEvent::Operate) => trips.push((ln.clone(), breaker.clone())),
                            Some(RelayEvent::Pickup) => self.events.lock().push(IedEvent {
                                time_ms: now.as_millis(),
                                kind: IedEventKind::ProtectionPickup,
                                detail: format!("{ln} differential pickup"),
                            }),
                            _ => {}
                        }
                    }
                }
                ProtectionRuntime::Cilo {
                    ln,
                    breaker,
                    interlock,
                    ..
                } => {
                    let permitted = interlock.close_permitted();
                    self.permits.lock().insert(breaker.clone(), permitted);
                    let ena_item = self.spec.item(&format!("{ln}$ST$EnaCls$stVal"));
                    self.model.write(&ena_item, DataValue::Bool(permitted));
                }
            }
        }
        let mut goose_cause = sample_ctx;
        for (ln, breaker) in trips {
            if let Some(trip_ctx) = self.trip_breaker(ctx, &ln, &breaker, sample_ctx) {
                goose_cause = Some(trip_ctx);
            }
        }

        // 4. GOOSE publication (update dataset; emit immediately on change).
        if let Some(goose_spec) = self.spec.goose.clone() {
            let values: Vec<DataValue> = goose_spec
                .entries
                .iter()
                .map(|e| match e {
                    GooseEntry::BreakerState(name) => {
                        let closed = self
                            .spec
                            .breaker(name)
                            .and_then(|b| self.store.get_bool(&b.state_key))
                            .unwrap_or(false);
                        DataValue::Bool(closed)
                    }
                    GooseEntry::ProtectionOp(ln) => {
                        let operated = self.protections.iter().any(|p| match p {
                            ProtectionRuntime::Ptoc { ln: l, relay, .. } => {
                                l == ln && relay.has_operated()
                            }
                            ProtectionRuntime::Voltage { ln: l, relay, .. } => {
                                l == ln && relay.has_operated()
                            }
                            ProtectionRuntime::Pdif { ln: l, relay, .. } => {
                                l == ln && relay.has_operated()
                            }
                            ProtectionRuntime::Cilo { .. } => false,
                        });
                        DataValue::Bool(operated)
                    }
                })
                .collect();
            if let Some(publisher) = &mut self.goose_pub {
                if publisher.update(now, values) {
                    // The dataset changed this sample: the publication (and
                    // its retransmissions) are caused by the trip if one
                    // occurred, else by the sample itself.
                    self.goose_cause = goose_cause;
                    self.emit_goose(ctx);
                }
            }
        }

        // 5. R-SV publication.
        if let Some(rsv) = self.spec.rsv.clone() {
            let current = self.store.get_float(&rsv.current_key).unwrap_or(0.0) as f32;
            if let Some(publisher) = &mut self.rsv_pub {
                let frame = publisher.emit(now, ctx.mac(), vec![current]);
                let packet = self
                    .session_tx
                    .wrap(SessionPayloadType::Sv, frame.payload.to_vec());
                for peer in &rsv.peers {
                    ctx.send_udp(*peer, RGOOSE_PORT, RGOOSE_PORT, &packet.encode());
                }
            }
        }

        sample_span.end(now);
        ctx.set_timer(self.spec.sample_period, TOKEN_SAMPLE);
    }

    fn emit_goose(&mut self, ctx: &mut HostCtx<'_>) {
        let now = ctx.now();
        let mac = ctx.mac();
        let mut span = ctx
            .tracer()
            .open("ied.goose_pub", Plane::Control, self.goose_cause, now);
        let Some(publisher) = &mut self.goose_pub else {
            return;
        };
        if span.is_recording() {
            span.attr("ied", self.spec.name.as_str());
            span.attr("gocb", publisher.config.gocb_ref.as_str());
        }
        let pub_ctx = span.ctx();
        if pub_ctx.is_some() {
            // The multicast frame (and its R-GOOSE copies) chain to this
            // publication span as they traverse the network.
            ctx.set_trace_parent(pub_ctx);
        }
        let (frame, wait) = publisher.emit(now, mac);
        // R-GOOSE to inter-substation peers.
        if let Some(goose_spec) = &self.spec.goose {
            if !goose_spec.rgoose_peers.is_empty() {
                let packet = self
                    .session_tx
                    .wrap(SessionPayloadType::Goose, frame.payload.to_vec());
                let wire = packet.encode();
                for peer in goose_spec.rgoose_peers.clone() {
                    ctx.send_udp(peer, RGOOSE_PORT, RGOOSE_PORT, &wire);
                }
            }
        }
        self.goose_counter.inc();
        self.telemetry
            .record(now.as_nanos(), || ObsEvent::GooseSent {
                ied: self.spec.name.clone(),
            });
        ctx.send_frame(frame);
        span.end(now);
        ctx.set_timer(wait, TOKEN_GOOSE);
    }

    fn handle_goose_payload(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) {
        let now = ctx.now();
        for sub in &mut self.goose_subs {
            if sub.process(now, frame).is_some() {
                let gocb = sub.gocb_ref.clone();
                let data = sub.data.clone();
                let mut span =
                    ctx.tracer()
                        .open("ied.goose_rx", Plane::Control, ctx.trace_parent(), now);
                if span.is_recording() {
                    span.attr("ied", self.spec.name.as_str());
                    span.attr("gocb", gocb.as_str());
                }
                span.end(now);
                for p in &mut self.protections {
                    if let ProtectionRuntime::Cilo {
                        interlock,
                        monitored,
                        ..
                    } = p
                    {
                        for (reference, gocb_ref, index) in monitored.iter() {
                            if *gocb_ref != gocb {
                                continue;
                            }
                            let closed = data.get(*index).and_then(|v| match v {
                                DataValue::Bool(b) => Some(*b),
                                other => other.as_dbpos(),
                            });
                            if let Some(closed) = closed {
                                interlock.update(reference, closed);
                            }
                        }
                    }
                }
            }
        }
    }
}

impl SocketApp for VirtualIedApp {
    fn plane(&self) -> AppPlane {
        AppPlane::Ied
    }

    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.mms.on_start(ctx);
        ctx.bind_udp(RGOOSE_PORT);
        ctx.set_timer(self.spec.sample_period, TOKEN_SAMPLE);
        if self.goose_pub.is_some() {
            self.emit_goose(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        match token {
            TOKEN_SAMPLE => self.sample(ctx),
            TOKEN_GOOSE => self.emit_goose(ctx),
            _ => {}
        }
    }

    fn on_tcp_accepted(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, peer: (Ipv4Addr, u16)) {
        self.mms.on_tcp_accepted(ctx, conn, peer);
    }

    fn on_tcp_data(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, data: &[u8]) {
        self.mms.on_tcp_data(ctx, conn, data);
    }

    fn on_tcp_closed(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
        self.mms.on_tcp_closed(ctx, conn);
    }

    fn on_raw_frame(&mut self, ctx: &mut HostCtx<'_>, frame: &EthernetFrame) {
        if frame.ethertype == ethertype::GOOSE {
            self.handle_goose_payload(ctx, frame);
        }
    }

    fn on_udp(&mut self, ctx: &mut HostCtx<'_>, src: (Ipv4Addr, u16), dst_port: u16, data: &[u8]) {
        if dst_port != RGOOSE_PORT {
            return;
        }
        let Some(packet) = SessionPacket::decode(data) else {
            return;
        };
        let now = ctx.now();
        let receiver = self.session_rx.entry(src.0).or_default();
        if receiver.accept(now, &packet).is_none() {
            return;
        }
        match packet.payload_type {
            SessionPayloadType::Goose => {
                // Re-frame so the L2 subscriber machinery can process it.
                let frame = EthernetFrame::new(
                    MacAddr::goose_multicast(0),
                    MacAddr::ZERO,
                    ethertype::GOOSE,
                    packet.payload.clone(),
                );
                self.handle_goose_payload(ctx, &frame);
            }
            SessionPayloadType::Sv => {
                let frame = EthernetFrame::new(
                    MacAddr::sv_multicast(0),
                    MacAddr::ZERO,
                    ethertype::SV,
                    packet.payload.clone(),
                );
                if let Some(sub) = &mut self.rsv_sub {
                    if sub.process(now, &frame) {
                        let remote = sub.samples.first().copied().unwrap_or(0.0) as f64;
                        for p in &mut self.protections {
                            if let ProtectionRuntime::Pdif { relay, .. } = p {
                                relay.update_remote(now, remote);
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Derives the IEC 61850 quality item for a measurement item: `q` sits
/// beside the value container (`A$phsA$cVal$mag$f` → `A$phsA$q`,
/// `TotW$mag$f` → `TotW$q`), never below the value leaf — the data model is
/// a tree and a leaf cannot grow children.
pub fn quality_item(item: &str) -> String {
    for suffix in ["$cVal$mag$f", "$mag$f"] {
        if let Some(prefix) = item.strip_suffix(suffix) {
            return format!("{prefix}$q");
        }
    }
    match item.rfind('$') {
        Some(i) => format!("{}$q", &item[..i]),
        None => format!("{item}$q"),
    }
}

/// The fault-application arithmetic behind [`VirtualIedApp`]'s sampling and
/// protection reads; free-standing so the protection scan can call it while
/// the runtime list is mutably borrowed.
fn apply_sensor_fault(
    faults: &Mutex<HashMap<String, SensorOverride>>,
    key: &str,
    raw: f64,
    now_ms: u64,
) -> f64 {
    let mut faults = faults.lock();
    let Some(state) = faults.get_mut(key) else {
        return raw;
    };
    match state.fault {
        SensorFault::Stuck => *state.held.get_or_insert(raw),
        SensorFault::Drift { per_sec } => {
            raw + per_sec * now_ms.saturating_sub(state.engaged_ms) as f64 / 1000.0
        }
    }
}

/// Builds the IEC 61850 data model implied by a spec: LLN0/LPHD plus the
/// LNs for measurements, breakers, and protection functions.
pub fn build_model(spec: &IedSpec) -> DataModel {
    let mut model = DataModel::new(&spec.name);
    let item = |rel: &str| format!("{}/{}", spec.ld, rel);
    model.insert(&item("LLN0$ST$Beh$stVal"), DataValue::Int(1));
    model.insert(&item("LPHD1$ST$PhyHealth$stVal"), DataValue::Int(1));
    model.insert(
        &item("LPHD1$DC$PhyNam$vendor"),
        DataValue::Str("sgcr".to_string()),
    );
    for m in &spec.measurements {
        model.insert(&item(&m.item), DataValue::Float(0.0));
        // IEC 61850 quality companion: `good` until the degradation signal
        // (power-plane hold-last-good) flips it to `invalid`.
        model.insert(
            &item(&quality_item(&m.item)),
            DataValue::Str("good".to_string()),
        );
    }
    for b in &spec.breakers {
        model.insert(
            &item(&format!("{}$ST$Pos$stVal", b.xcbr)),
            DataValue::dbpos_off(),
        );
        model.insert(
            &item(&format!("{}$CO$Pos$Oper$ctlVal", b.xcbr)),
            DataValue::Bool(false),
        );
        model.insert(
            &item(&format!("{}$ST$Pos$stVal", b.cswi)),
            DataValue::dbpos_off(),
        );
        model.insert(
            &item(&format!("{}$CO$Pos$Oper$ctlVal", b.cswi)),
            DataValue::Bool(false),
        );
    }
    for p in &spec.protections {
        let ln = p.ln();
        match p {
            ProtectionSpec::Cilo { .. } => {
                model.insert(
                    &item(&format!("{ln}$ST$EnaCls$stVal")),
                    DataValue::Bool(false),
                );
                model.insert(
                    &item(&format!("{ln}$ST$EnaOpn$stVal")),
                    DataValue::Bool(true),
                );
            }
            _ => {
                model.insert(
                    &item(&format!("{ln}$ST$Str$general")),
                    DataValue::Bool(false),
                );
                model.insert(
                    &item(&format!("{ln}$ST$Op$general")),
                    DataValue::Bool(false),
                );
                let threshold = match p {
                    ProtectionSpec::Ptoc { pickup, .. } => *pickup,
                    ProtectionSpec::Ptov { threshold_pu, .. }
                    | ProtectionSpec::Ptuv { threshold_pu, .. } => *threshold_pu,
                    ProtectionSpec::Pdif { threshold, .. } => *threshold,
                    ProtectionSpec::Cilo { .. } => unreachable!(),
                };
                model.insert(
                    &item(&format!("{ln}$SP$StrVal$setMag$f")),
                    DataValue::Float(threshold as f32),
                );
            }
        }
    }
    model
}
