//! The resolved configuration of one virtual IED.
//!
//! An [`IedSpec`] is what the SG-ML processor produces for each IED after
//! combining its ICD (which logical nodes exist → which features to enable)
//! with the supplementary *IED Config XML* (protection thresholds and the
//! cyber↔physical mapping that the paper notes are absent from SCL files).

use sgcr_net::{Ipv4Addr, SimDuration};

/// Maps one process measurement to a data-model item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasurementMap {
    /// Process-store key (e.g. `meas/S1/branch/l1/p_mw`).
    pub kv_key: String,
    /// Model item relative to the IED's LD (e.g. `MMXU1$MX$TotW$mag$f`).
    pub item: String,
}

/// Maps one controllable breaker to its LNs and process keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerMap {
    /// Power-model breaker (switch) name, e.g. `CB1`.
    pub name: String,
    /// The XCBR logical node name, e.g. `XCBR1`.
    pub xcbr: String,
    /// The CSWI logical node name, e.g. `CSWI1`.
    pub cswi: String,
    /// Process key holding the breaker position feedback.
    pub state_key: String,
    /// Process key accepting close (true) / open (false) commands.
    pub cmd_key: String,
    /// Whether CILO interlocking gates close commands on this breaker.
    pub interlocked: bool,
}

/// A protection function instance on the IED (paper Table II).
#[derive(Debug, Clone, PartialEq)]
pub enum ProtectionSpec {
    /// Time over-current.
    Ptoc {
        /// LN name (`PTOC1`).
        ln: String,
        /// Process key of the measured current (kA).
        measurement_key: String,
        /// Pickup threshold (kA).
        pickup: f64,
        /// Definite-time delay in ms.
        delay_ms: u64,
        /// Breaker (by [`BreakerMap::name`]) to trip.
        breaker: String,
    },
    /// Over-voltage.
    Ptov {
        /// LN name (`PTOV1`).
        ln: String,
        /// Process key of the bus voltage (pu).
        voltage_key: String,
        /// Upper threshold (pu).
        threshold_pu: f64,
        /// Definite-time delay in ms.
        delay_ms: u64,
        /// Breaker to trip.
        breaker: String,
    },
    /// Under-voltage.
    Ptuv {
        /// LN name (`PTUV1`).
        ln: String,
        /// Process key of the bus voltage (pu).
        voltage_key: String,
        /// Lower threshold (pu).
        threshold_pu: f64,
        /// Definite-time delay in ms.
        delay_ms: u64,
        /// Breaker to trip.
        breaker: String,
    },
    /// Differential across substations (remote current via R-SV).
    Pdif {
        /// LN name (`PDIF1`).
        ln: String,
        /// Process key of the local current (kA).
        local_current_key: String,
        /// Differential threshold (kA).
        threshold: f64,
        /// Definite-time delay in ms.
        delay_ms: u64,
        /// Breaker to trip.
        breaker: String,
    },
    /// Interlocking of a breaker on remote breaker states.
    Cilo {
        /// LN name (`CILO1`).
        ln: String,
        /// Breaker whose close commands are gated.
        breaker: String,
        /// Remote breakers whose state is monitored.
        monitored: Vec<MonitoredBreaker>,
    },
}

impl ProtectionSpec {
    /// The logical node name of this function.
    pub fn ln(&self) -> &str {
        match self {
            ProtectionSpec::Ptoc { ln, .. }
            | ProtectionSpec::Ptov { ln, .. }
            | ProtectionSpec::Ptuv { ln, .. }
            | ProtectionSpec::Pdif { ln, .. }
            | ProtectionSpec::Cilo { ln, .. } => ln,
        }
    }

    /// The LN class (`PTOC`, `PTOV`, …).
    pub fn ln_class(&self) -> &'static str {
        match self {
            ProtectionSpec::Ptoc { .. } => "PTOC",
            ProtectionSpec::Ptov { .. } => "PTOV",
            ProtectionSpec::Ptuv { .. } => "PTUV",
            ProtectionSpec::Pdif { .. } => "PDIF",
            ProtectionSpec::Cilo { .. } => "CILO",
        }
    }
}

/// A remote breaker monitored by CILO, received over (R-)GOOSE.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitoredBreaker {
    /// Stable reference used in interlock conditions (`S2/CB1`).
    pub reference: String,
    /// The gocbRef of the GOOSE stream carrying the state.
    pub gocb_ref: String,
    /// Index of the state entry within the stream's dataset.
    pub dataset_index: usize,
}

/// One dataset entry of the IED's own GOOSE publication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GooseEntry {
    /// Publish a breaker's position (closed = true).
    BreakerState(String),
    /// Publish a protection LN's operate flag.
    ProtectionOp(String),
}

/// GOOSE publication settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GooseSpec {
    /// APPID (multicast MAC selector).
    pub appid: u16,
    /// Control block reference.
    pub gocb_ref: String,
    /// Dataset reference.
    pub dataset: String,
    /// Dataset entries, in order.
    pub entries: Vec<GooseEntry>,
    /// Publish over R-GOOSE (UDP) to these peers as well (inter-substation).
    pub rgoose_peers: Vec<Ipv4Addr>,
}

/// R-SV publication/subscription settings (for PDIF).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RsvSpec {
    /// Our stream id.
    pub sv_id: String,
    /// Process key of the current we stream.
    pub current_key: String,
    /// Peers to send to (UDP unicast).
    pub peers: Vec<Ipv4Addr>,
    /// Remote stream id feeding our PDIF element.
    pub subscribe_sv_id: Option<String>,
}

/// The complete resolved configuration of one virtual IED.
#[derive(Debug, Clone, PartialEq)]
pub struct IedSpec {
    /// IED name (`GIED1`).
    pub name: String,
    /// Logical device name (`GIED1LD0`).
    pub ld: String,
    /// Substation scope for process keys.
    pub substation: String,
    /// Process sampling / protection scan period.
    pub sample_period: SimDuration,
    /// Measurement mappings.
    pub measurements: Vec<MeasurementMap>,
    /// Controllable breakers.
    pub breakers: Vec<BreakerMap>,
    /// Protection functions.
    pub protections: Vec<ProtectionSpec>,
    /// GOOSE publication (if the ICD declares a GSE control block).
    pub goose: Option<GooseSpec>,
    /// R-SV settings (if PDIF is enabled).
    pub rsv: Option<RsvSpec>,
}

impl IedSpec {
    /// A minimal spec with the standard 100 ms sampling period.
    pub fn new(name: &str, substation: &str) -> IedSpec {
        IedSpec {
            name: name.to_string(),
            ld: format!("{name}LD0"),
            substation: substation.to_string(),
            sample_period: SimDuration::from_millis(100),
            measurements: Vec::new(),
            breakers: Vec::new(),
            protections: Vec::new(),
            goose: None,
            rsv: None,
        }
    }

    /// Absolute item id within this IED's LD (`<ld>/<relative>`).
    pub fn item(&self, relative: &str) -> String {
        format!("{}/{}", self.ld, relative)
    }

    /// Finds a breaker mapping by name.
    pub fn breaker(&self, name: &str) -> Option<&BreakerMap> {
        self.breakers.iter().find(|b| b.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_helpers() {
        let mut spec = IedSpec::new("GIED1", "S1");
        assert_eq!(spec.ld, "GIED1LD0");
        assert_eq!(
            spec.item("XCBR1$ST$Pos$stVal"),
            "GIED1LD0/XCBR1$ST$Pos$stVal"
        );
        spec.breakers.push(BreakerMap {
            name: "CB1".into(),
            xcbr: "XCBR1".into(),
            cswi: "CSWI1".into(),
            state_key: "meas/S1/cb/CB1/closed".into(),
            cmd_key: "cmd/S1/cb/CB1/close".into(),
            interlocked: false,
        });
        assert!(spec.breaker("CB1").is_some());
        assert!(spec.breaker("CB9").is_none());
    }

    #[test]
    fn protection_classes() {
        let p = ProtectionSpec::Ptoc {
            ln: "PTOC1".into(),
            measurement_key: "k".into(),
            pickup: 1.0,
            delay_ms: 100,
            breaker: "CB1".into(),
        };
        assert_eq!(p.ln_class(), "PTOC");
        assert_eq!(p.ln(), "PTOC1");
    }
}
