#![warn(missing_docs)]

//! # sgcr-ied
//!
//! The virtual IED of the smart grid cyber range.
//!
//! Mirroring the paper's §III-B "Virtual IED Configuration": each virtual
//! IED speaks IEC 61850 (MMS server towards SCADA/PLC, GOOSE between IEDs,
//! R-GOOSE/R-SV across substations), implements the protection functions of
//! Table II — PTOC, PTOV, PTUV, PDIF, and CILO — and couples to the power
//! simulation through the key-value process cache, reading measurements and
//! writing breaker commands.
//!
//! The feature set of one IED is an [`IedSpec`], produced by the SG-ML
//! processor from the IED's ICD file (which LN classes exist) plus the IED
//! Config XML (thresholds and cyber↔physical mapping). [`VirtualIedApp`]
//! executes the spec on an emulated host.
//!
//! # Examples
//!
//! ```
//! use sgcr_ied::{IedSpec, VirtualIedApp, MeasurementMap};
//! use sgcr_kvstore::ProcessStore;
//!
//! let mut spec = IedSpec::new("GIED1", "S1");
//! spec.measurements.push(MeasurementMap {
//!     kv_key: "meas/S1/branch/l1/p_mw".into(),
//!     item: "MMXU1$MX$TotW$mag$f".into(),
//! });
//! let store = ProcessStore::new();
//! let (_app, handle) = VirtualIedApp::new(spec, store);
//! assert!(handle.model.read("GIED1LD0/MMXU1$MX$TotW$mag$f").is_some());
//! ```

mod ied;
mod protection;
mod spec;

pub use ied::{build_model, quality_item, IedEvent, IedEventKind, IedHandle, VirtualIedApp};
pub use protection::{
    DifferentialRelay, Interlock, MonitoredState, OvercurrentCurve, OvercurrentRelay, RelayEvent,
    VoltageMode, VoltageRelay,
};
pub use spec::{
    BreakerMap, GooseEntry, GooseSpec, IedSpec, MeasurementMap, MonitoredBreaker, ProtectionSpec,
    RsvSpec,
};
