//! Protection functions of the virtual IED — the paper's Table II:
//! PTOC (time over-current), PTOV (over-voltage), PTUV (under-voltage),
//! PDIF (differential), and CILO (interlocking).
//!
//! Each function is a pure, deterministic state machine stepped with
//! simulated time and the latest measurement; the IED runtime wires inputs
//! from the process store / SV streams and routes trips to breakers.

use sgcr_net::{SimDuration, SimTime};

/// What a protection step concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayEvent {
    /// The measured quantity crossed the threshold; timing started.
    Pickup,
    /// The function operated: trip the breaker.
    Operate,
    /// The quantity returned to normal before operating.
    Dropout,
}

/// Time-delay characteristic of an over-current element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OvercurrentCurve {
    /// Operate after a fixed delay above pickup.
    DefiniteTime {
        /// The fixed delay.
        delay: SimDuration,
    },
    /// IEC standard-inverse IDMT: `t = tms * 0.14 / ((I/Is)^0.02 - 1)`.
    StandardInverse {
        /// Time-multiplier setting.
        tms: f64,
    },
}

/// PTOC — time over-current protection.
///
/// Per Table II: *"Opens a circuit breaker when the amount of power flow
/// exceeds the threshold"*, with the threshold ("generally 3 to 4 times the
/// nominal current") supplied by the IED Config XML.
#[derive(Debug, Clone)]
pub struct OvercurrentRelay {
    /// Pickup threshold (same unit as the measurement, typically kA).
    pub pickup: f64,
    /// Delay characteristic.
    pub curve: OvercurrentCurve,
    picked_up_at: Option<SimTime>,
    operated: bool,
}

impl OvercurrentRelay {
    /// Creates a relay from its settings.
    pub fn new(pickup: f64, curve: OvercurrentCurve) -> OvercurrentRelay {
        OvercurrentRelay {
            pickup,
            curve,
            picked_up_at: None,
            operated: false,
        }
    }

    /// Whether the relay has operated (latched until [`Self::reset`]).
    pub fn has_operated(&self) -> bool {
        self.operated
    }

    /// Whether the relay is currently timing.
    pub fn is_picked_up(&self) -> bool {
        self.picked_up_at.is_some()
    }

    /// Clears the latched operate state (lockout reset).
    pub fn reset(&mut self) {
        self.operated = false;
        self.picked_up_at = None;
    }

    fn operate_delay(&self, current: f64) -> SimDuration {
        match self.curve {
            OvercurrentCurve::DefiniteTime { delay } => delay,
            OvercurrentCurve::StandardInverse { tms } => {
                let ratio = (current / self.pickup).max(1.0 + 1e-9);
                let secs = tms * 0.14 / (ratio.powf(0.02) - 1.0);
                SimDuration::from_nanos((secs.clamp(0.01, 600.0) * 1e9) as u64)
            }
        }
    }

    /// Steps the relay with the latest current measurement.
    pub fn step(&mut self, now: SimTime, current: f64) -> Option<RelayEvent> {
        if self.operated {
            return None;
        }
        if current > self.pickup {
            match self.picked_up_at {
                None => {
                    self.picked_up_at = Some(now);
                    // Instantaneous check (zero-delay definite time).
                    if now.saturating_sub(now) >= self.operate_delay(current)
                        && self.operate_delay(current) == SimDuration::ZERO
                    {
                        self.operated = true;
                        return Some(RelayEvent::Operate);
                    }
                    Some(RelayEvent::Pickup)
                }
                Some(start) => {
                    if now.saturating_sub(start) >= self.operate_delay(current) {
                        self.operated = true;
                        Some(RelayEvent::Operate)
                    } else {
                        None
                    }
                }
            }
        } else if self.picked_up_at.take().is_some() {
            Some(RelayEvent::Dropout)
        } else {
            None
        }
    }
}

/// Direction of a voltage element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoltageMode {
    /// PTOV: operate when voltage exceeds the threshold.
    Over,
    /// PTUV: operate when voltage falls below the threshold.
    Under,
}

/// PTOV / PTUV — over-/under-voltage protection with definite time delay
/// and hysteresis (dropout ratio).
#[derive(Debug, Clone)]
pub struct VoltageRelay {
    /// Operating mode.
    pub mode: VoltageMode,
    /// Threshold in per-unit.
    pub threshold_pu: f64,
    /// Definite time delay.
    pub delay: SimDuration,
    /// Dropout hysteresis ratio (e.g. 0.98 for over-voltage).
    pub dropout_ratio: f64,
    picked_up_at: Option<SimTime>,
    operated: bool,
}

impl VoltageRelay {
    /// Creates an over-voltage (PTOV) element.
    pub fn over(threshold_pu: f64, delay: SimDuration) -> VoltageRelay {
        VoltageRelay {
            mode: VoltageMode::Over,
            threshold_pu,
            delay,
            dropout_ratio: 0.98,
            picked_up_at: None,
            operated: false,
        }
    }

    /// Creates an under-voltage (PTUV) element.
    pub fn under(threshold_pu: f64, delay: SimDuration) -> VoltageRelay {
        VoltageRelay {
            mode: VoltageMode::Under,
            threshold_pu,
            delay,
            dropout_ratio: 1.02,
            picked_up_at: None,
            operated: false,
        }
    }

    /// Whether the relay has operated (latched).
    pub fn has_operated(&self) -> bool {
        self.operated
    }

    /// Clears the latched operate state.
    pub fn reset(&mut self) {
        self.operated = false;
        self.picked_up_at = None;
    }

    fn violated(&self, vm_pu: f64) -> bool {
        match self.mode {
            VoltageMode::Over => vm_pu > self.threshold_pu,
            VoltageMode::Under => vm_pu < self.threshold_pu,
        }
    }

    fn recovered(&self, vm_pu: f64) -> bool {
        match self.mode {
            VoltageMode::Over => vm_pu < self.threshold_pu * self.dropout_ratio,
            VoltageMode::Under => vm_pu > self.threshold_pu * self.dropout_ratio,
        }
    }

    /// Steps the relay with the latest bus voltage (per-unit).
    ///
    /// A PTUV element ignores a de-energized bus (vm ≈ 0): tripping an
    /// already-dead feeder is suppressed, as real undervoltage elements are
    /// blocked by a minimum-voltage release.
    pub fn step(&mut self, now: SimTime, vm_pu: f64) -> Option<RelayEvent> {
        if self.operated {
            return None;
        }
        if self.mode == VoltageMode::Under && vm_pu < 0.05 {
            // Dead bus: block (minimum voltage release).
            if self.picked_up_at.take().is_some() {
                return Some(RelayEvent::Dropout);
            }
            return None;
        }
        if self.violated(vm_pu) {
            match self.picked_up_at {
                None => {
                    self.picked_up_at = Some(now);
                    if self.delay == SimDuration::ZERO {
                        self.operated = true;
                        return Some(RelayEvent::Operate);
                    }
                    Some(RelayEvent::Pickup)
                }
                Some(start) => {
                    if now.saturating_sub(start) >= self.delay {
                        self.operated = true;
                        Some(RelayEvent::Operate)
                    } else {
                        None
                    }
                }
            }
        } else if self.recovered(vm_pu) && self.picked_up_at.take().is_some() {
            Some(RelayEvent::Dropout)
        } else {
            None
        }
    }
}

/// PDIF — differential protection across two measurement points (the paper
/// uses it between two substations, comparing local and remote currents via
/// R-SV).
#[derive(Debug, Clone)]
pub struct DifferentialRelay {
    /// Operate threshold on `|I_local − I_remote|`.
    pub threshold: f64,
    /// Definite time delay (usually very short).
    pub delay: SimDuration,
    /// Remote data timeout: without fresh remote data the element blocks.
    pub remote_timeout: SimDuration,
    picked_up_at: Option<SimTime>,
    operated: bool,
    last_remote: Option<(SimTime, f64)>,
}

impl DifferentialRelay {
    /// Creates a differential element.
    pub fn new(threshold: f64, delay: SimDuration) -> DifferentialRelay {
        DifferentialRelay {
            threshold,
            delay,
            remote_timeout: SimDuration::from_millis(1000),
            picked_up_at: None,
            operated: false,
            last_remote: None,
        }
    }

    /// Whether the relay has operated (latched).
    pub fn has_operated(&self) -> bool {
        self.operated
    }

    /// Clears the latched operate state.
    pub fn reset(&mut self) {
        self.operated = false;
        self.picked_up_at = None;
    }

    /// Feeds a remote current sample (from the R-SV subscriber).
    pub fn update_remote(&mut self, now: SimTime, current: f64) {
        self.last_remote = Some((now, current));
    }

    /// The current differential value, if remote data is fresh.
    pub fn differential(&self, now: SimTime, local: f64) -> Option<f64> {
        let (t, remote) = self.last_remote?;
        if now.saturating_sub(t) > self.remote_timeout {
            return None;
        }
        Some((local - remote).abs())
    }

    /// Steps the relay with the latest local current.
    pub fn step(&mut self, now: SimTime, local: f64) -> Option<RelayEvent> {
        if self.operated {
            return None;
        }
        let Some(diff) = self.differential(now, local) else {
            // Blocked: no fresh remote data.
            if self.picked_up_at.take().is_some() {
                return Some(RelayEvent::Dropout);
            }
            return None;
        };
        if diff > self.threshold {
            match self.picked_up_at {
                None => {
                    self.picked_up_at = Some(now);
                    if self.delay == SimDuration::ZERO {
                        self.operated = true;
                        return Some(RelayEvent::Operate);
                    }
                    Some(RelayEvent::Pickup)
                }
                Some(start) => {
                    if now.saturating_sub(start) >= self.delay {
                        self.operated = true;
                        Some(RelayEvent::Operate)
                    } else {
                        None
                    }
                }
            }
        } else if self.picked_up_at.take().is_some() {
            Some(RelayEvent::Dropout)
        } else {
            None
        }
    }
}

/// The last known state of a monitored breaker (via GOOSE/R-GOOSE).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitoredState {
    /// No status received yet.
    Unknown,
    /// Breaker reported open.
    Open,
    /// Breaker reported closed.
    Closed,
}

/// CILO — interlocking. Per Table II: *"Prevents a circuit breaker to be
/// closed when a certain circuit breaker is open."*
#[derive(Debug, Clone)]
pub struct Interlock {
    /// Names (references) of the monitored breakers.
    pub monitored: Vec<String>,
    states: Vec<MonitoredState>,
    /// Whether an unknown state permits closing (default: no — fail-safe).
    pub permit_on_unknown: bool,
}

impl Interlock {
    /// Creates an interlock over the given monitored breaker references.
    pub fn new(monitored: Vec<String>) -> Interlock {
        let states = vec![MonitoredState::Unknown; monitored.len()];
        Interlock {
            monitored,
            states,
            permit_on_unknown: false,
        }
    }

    /// Updates the state of a monitored breaker by reference.
    pub fn update(&mut self, reference: &str, closed: bool) {
        if let Some(i) = self.monitored.iter().position(|m| m == reference) {
            self.states[i] = if closed {
                MonitoredState::Closed
            } else {
                MonitoredState::Open
            };
        }
    }

    /// Downgrades a monitored breaker to `Unknown` — used by GOOSE TTL
    /// supervision when the publishing stream goes silent (fail-safe:
    /// unknown blocks closing unless `permit_on_unknown`).
    pub fn set_unknown(&mut self, reference: &str) {
        if let Some(i) = self.monitored.iter().position(|m| m == reference) {
            self.states[i] = MonitoredState::Unknown;
        }
    }

    /// The recorded state of a monitored breaker.
    pub fn state_of(&self, reference: &str) -> MonitoredState {
        self.monitored
            .iter()
            .position(|m| m == reference)
            .map(|i| self.states[i])
            .unwrap_or(MonitoredState::Unknown)
    }

    /// Whether a *close* command is permitted right now (`EnaCls`).
    pub fn close_permitted(&self) -> bool {
        self.states.iter().all(|s| match s {
            MonitoredState::Closed => true,
            MonitoredState::Open => false,
            MonitoredState::Unknown => self.permit_on_unknown,
        })
    }

    /// Opening is always permitted (`EnaOpn` is unconditional here).
    pub fn open_permitted(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn ptoc_definite_time_sequence() {
        let mut relay = OvercurrentRelay::new(
            3.0,
            OvercurrentCurve::DefiniteTime {
                delay: SimDuration::from_millis(200),
            },
        );
        assert_eq!(relay.step(ms(0), 1.0), None);
        assert_eq!(relay.step(ms(100), 4.0), Some(RelayEvent::Pickup));
        assert_eq!(relay.step(ms(200), 4.0), None);
        assert_eq!(relay.step(ms(300), 4.0), Some(RelayEvent::Operate));
        assert!(relay.has_operated());
        // Latched: no further events.
        assert_eq!(relay.step(ms(400), 9.0), None);
        relay.reset();
        assert!(!relay.has_operated());
    }

    #[test]
    fn ptoc_dropout_before_operate() {
        let mut relay = OvercurrentRelay::new(
            3.0,
            OvercurrentCurve::DefiniteTime {
                delay: SimDuration::from_millis(500),
            },
        );
        assert_eq!(relay.step(ms(0), 5.0), Some(RelayEvent::Pickup));
        assert_eq!(relay.step(ms(100), 1.0), Some(RelayEvent::Dropout));
        assert_eq!(relay.step(ms(700), 1.0), None);
        assert!(!relay.has_operated());
    }

    #[test]
    fn ptoc_idmt_faster_for_larger_current() {
        let delay_at = |current: f64| {
            let mut relay =
                OvercurrentRelay::new(1.0, OvercurrentCurve::StandardInverse { tms: 0.1 });
            relay.step(ms(0), current);
            // Advance until operate.
            let mut t = 0;
            loop {
                t += 10;
                if relay.step(ms(t), current) == Some(RelayEvent::Operate) {
                    return t;
                }
                assert!(t < 700_000, "relay never operated for I={current}");
            }
        };
        let slow = delay_at(1.5);
        let fast = delay_at(6.0);
        assert!(
            fast < slow,
            "IDMT must operate faster at higher current ({fast} !< {slow})"
        );
    }

    #[test]
    fn ptov_over_voltage() {
        let mut relay = VoltageRelay::over(1.1, SimDuration::from_millis(100));
        assert_eq!(relay.step(ms(0), 1.0), None);
        assert_eq!(relay.step(ms(10), 1.15), Some(RelayEvent::Pickup));
        assert_eq!(relay.step(ms(120), 1.15), Some(RelayEvent::Operate));
    }

    #[test]
    fn ptuv_under_voltage_with_dead_bus_block() {
        let mut relay = VoltageRelay::under(0.9, SimDuration::from_millis(100));
        // Dead bus: blocked, no trip.
        assert_eq!(relay.step(ms(0), 0.0), None);
        assert_eq!(relay.step(ms(200), 0.01), None);
        // Live but low: picks up and operates.
        assert_eq!(relay.step(ms(300), 0.85), Some(RelayEvent::Pickup));
        assert_eq!(relay.step(ms(450), 0.85), Some(RelayEvent::Operate));
    }

    #[test]
    fn voltage_hysteresis() {
        let mut relay = VoltageRelay::over(1.1, SimDuration::from_millis(500));
        assert_eq!(relay.step(ms(0), 1.12), Some(RelayEvent::Pickup));
        // Just below threshold but above dropout level: stays picked up.
        assert_eq!(relay.step(ms(100), 1.095), None);
        assert!(relay.picked_up_at.is_some());
        // Below dropout level: drops out.
        assert_eq!(relay.step(ms(200), 1.0), Some(RelayEvent::Dropout));
    }

    #[test]
    fn pdif_trips_on_differential() {
        let mut relay = DifferentialRelay::new(0.2, SimDuration::from_millis(50));
        // No remote data: blocked.
        assert_eq!(relay.step(ms(0), 1.0), None);
        relay.update_remote(ms(10), 1.0);
        assert_eq!(relay.step(ms(20), 1.05), None); // diff 0.05 < 0.2
        relay.update_remote(ms(30), 0.3);
        assert_eq!(relay.step(ms(40), 1.0), Some(RelayEvent::Pickup)); // diff 0.7
        assert_eq!(relay.step(ms(100), 1.0), Some(RelayEvent::Operate));
    }

    #[test]
    fn pdif_blocks_on_stale_remote() {
        let mut relay = DifferentialRelay::new(0.2, SimDuration::ZERO);
        relay.update_remote(ms(0), 0.0);
        // Fresh: would trip instantly.
        // Stale (beyond 1000 ms): blocked instead.
        assert_eq!(relay.step(SimTime::from_millis(1500), 5.0), None);
        assert!(!relay.has_operated());
    }

    #[test]
    fn cilo_blocks_close_when_monitored_open() {
        let mut interlock = Interlock::new(vec!["S2/CB1".into()]);
        // Unknown: fail-safe block.
        assert!(!interlock.close_permitted());
        interlock.update("S2/CB1", true);
        assert!(interlock.close_permitted());
        interlock.update("S2/CB1", false);
        assert!(!interlock.close_permitted());
        assert!(interlock.open_permitted());
        assert_eq!(interlock.state_of("S2/CB1"), MonitoredState::Open);
        assert_eq!(interlock.state_of("other"), MonitoredState::Unknown);
    }

    #[test]
    fn cilo_permit_on_unknown_option() {
        let mut interlock = Interlock::new(vec!["X".into()]);
        interlock.permit_on_unknown = true;
        assert!(interlock.close_permitted());
    }
}
