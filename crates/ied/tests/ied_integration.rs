//! Integration tests: virtual IEDs on an emulated network, coupled to the
//! process store — protection trips, MMS control, GOOSE exchange, interlocks.

use parking_lot::Mutex;
use sgcr_iec61850::{DataValue, MmsClient, MmsPdu, MmsRequest, MmsResponse, MMS_PORT};
use sgcr_ied::{
    BreakerMap, GooseEntry, GooseSpec, IedEventKind, IedSpec, MeasurementMap, MonitoredBreaker,
    ProtectionSpec, VirtualIedApp,
};
use sgcr_kvstore::{ProcessStore, Value};
use sgcr_net::{ConnId, HostCtx, Ipv4Addr, LinkSpec, Network, SimTime, SocketApp};
use std::sync::Arc;

fn base_spec() -> IedSpec {
    let mut spec = IedSpec::new("GIED1", "S1");
    spec.measurements.push(MeasurementMap {
        kv_key: "meas/S1/branch/l1/i_ka".into(),
        item: "MMXU1$MX$A$phsA$cVal$mag$f".into(),
    });
    spec.breakers.push(BreakerMap {
        name: "CB1".into(),
        xcbr: "XCBR1".into(),
        cswi: "CSWI1".into(),
        state_key: "meas/S1/cb/CB1/closed".into(),
        cmd_key: "cmd/S1/cb/CB1/close".into(),
        interlocked: false,
    });
    spec
}

fn one_ied_net(spec: IedSpec, store: ProcessStore) -> (Network, sgcr_ied::IedHandle) {
    let mut net = Network::new();
    let sw = net.add_switch("sw");
    let ied = net.add_host("ied", Ipv4Addr::new(10, 0, 0, 1));
    net.connect(ied, sw, LinkSpec::default());
    let (app, handle) = VirtualIedApp::new(spec, store);
    net.attach_app(ied, Box::new(app));
    (net, handle)
}

#[test]
fn measurements_flow_into_model() {
    let store = ProcessStore::new();
    store.set("meas/S1/branch/l1/i_ka", Value::Float(0.42));
    let (mut net, handle) = one_ied_net(base_spec(), store);
    net.run_until(SimTime::from_millis(250));
    let v = handle
        .model
        .read("GIED1LD0/MMXU1$MX$A$phsA$cVal$mag$f")
        .unwrap();
    assert_eq!(v, DataValue::Float(0.42));
}

#[test]
fn breaker_state_reflected_as_dbpos() {
    let store = ProcessStore::new();
    store.set("meas/S1/cb/CB1/closed", Value::Bool(true));
    let (mut net, handle) = one_ied_net(base_spec(), store.clone());
    net.run_until(SimTime::from_millis(250));
    let v = handle.model.read("GIED1LD0/XCBR1$ST$Pos$stVal").unwrap();
    assert_eq!(v.as_dbpos(), Some(true));
    store.set("meas/S1/cb/CB1/closed", Value::Bool(false));
    net.run_until(SimTime::from_millis(500));
    let v = handle.model.read("GIED1LD0/XCBR1$ST$Pos$stVal").unwrap();
    assert_eq!(v.as_dbpos(), Some(false));
}

#[test]
fn ptoc_trips_breaker_via_process_store() {
    let mut spec = base_spec();
    spec.protections.push(ProtectionSpec::Ptoc {
        ln: "PTOC1".into(),
        measurement_key: "meas/S1/branch/l1/i_ka".into(),
        pickup: 1.0,
        delay_ms: 200,
        breaker: "CB1".into(),
    });
    let store = ProcessStore::new();
    store.set("meas/S1/branch/l1/i_ka", Value::Float(0.5));
    store.set("meas/S1/cb/CB1/closed", Value::Bool(true));
    let (mut net, handle) = one_ied_net(spec, store.clone());

    net.run_until(SimTime::from_millis(300));
    assert_eq!(handle.trip_count(), 0);

    // Fault: current jumps above pickup.
    store.set("meas/S1/branch/l1/i_ka", Value::Float(3.5));
    net.run_until(SimTime::from_millis(900));

    assert_eq!(handle.trip_count(), 1, "PTOC must trip exactly once");
    // The trip wrote an open command for the power side to pick up.
    assert_eq!(store.get_bool("cmd/S1/cb/CB1/close"), Some(false));
    // Op flag raised in the model.
    assert_eq!(
        handle.model.read("GIED1LD0/PTOC1$ST$Op$general"),
        Some(DataValue::Bool(true))
    );
    // Pickup event precedes the trip.
    let pickups = handle.events_of(IedEventKind::ProtectionPickup);
    assert!(!pickups.is_empty());
}

#[test]
fn ptov_and_ptuv_trip_on_voltage_violations() {
    for (threshold, voltage, protection_is_over) in [(1.1, 1.2, true), (0.9, 0.7, false)] {
        let mut spec = base_spec();
        let protection = if protection_is_over {
            ProtectionSpec::Ptov {
                ln: "PTOV1".into(),
                voltage_key: "meas/S1/bus/b1/vm_pu".into(),
                threshold_pu: threshold,
                delay_ms: 100,
                breaker: "CB1".into(),
            }
        } else {
            ProtectionSpec::Ptuv {
                ln: "PTUV1".into(),
                voltage_key: "meas/S1/bus/b1/vm_pu".into(),
                threshold_pu: threshold,
                delay_ms: 100,
                breaker: "CB1".into(),
            }
        };
        spec.protections.push(protection);
        let store = ProcessStore::new();
        store.set("meas/S1/bus/b1/vm_pu", Value::Float(1.0));
        store.set("meas/S1/cb/CB1/closed", Value::Bool(true));
        let (mut net, handle) = one_ied_net(spec, store.clone());
        net.run_until(SimTime::from_millis(300));
        assert_eq!(handle.trip_count(), 0);
        store.set("meas/S1/bus/b1/vm_pu", Value::Float(voltage));
        net.run_until(SimTime::from_millis(800));
        assert_eq!(
            handle.trip_count(),
            1,
            "threshold {threshold} voltage {voltage}"
        );
    }
}

/// An MMS operator client that issues one control after connecting.
struct ControlClient {
    server: Ipv4Addr,
    item: String,
    value: bool,
    client: MmsClient,
    result: Arc<Mutex<Option<Result<(), String>>>>,
}

impl SocketApp for ControlClient {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.tcp_connect(self.server, MMS_PORT);
    }
    fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
        let init = self.client.initiate();
        ctx.tcp_send(conn, &init);
        let (_, wire) = self.client.request(MmsRequest::Write {
            items: vec![self.item.clone()],
            values: vec![DataValue::Bool(self.value)],
        });
        ctx.tcp_send(conn, &wire);
    }
    fn on_tcp_data(&mut self, _ctx: &mut HostCtx<'_>, _conn: ConnId, data: &[u8]) {
        for pdu in self.client.feed(data) {
            if let MmsPdu::ConfirmedResponse {
                response: MmsResponse::Write { results },
                ..
            } = pdu
            {
                *self.result.lock() = Some(results[0].map_err(|e| format!("{e:?}")));
            }
        }
    }
}

#[test]
fn mms_control_opens_breaker() {
    let store = ProcessStore::new();
    store.set("meas/S1/cb/CB1/closed", Value::Bool(true));
    let mut net = Network::new();
    let sw = net.add_switch("sw");
    let ied = net.add_host("ied", Ipv4Addr::new(10, 0, 0, 1));
    let operator = net.add_host("op", Ipv4Addr::new(10, 0, 0, 2));
    net.connect(ied, sw, LinkSpec::default());
    net.connect(operator, sw, LinkSpec::default());
    let (app, handle) = VirtualIedApp::new(base_spec(), store.clone());
    net.attach_app(ied, Box::new(app));
    let result = Arc::new(Mutex::new(None));
    net.attach_app(
        operator,
        Box::new(ControlClient {
            server: Ipv4Addr::new(10, 0, 0, 1),
            item: "GIED1LD0/CSWI1$CO$Pos$Oper$ctlVal".into(),
            value: false, // open command
            client: MmsClient::new(),
            result: result.clone(),
        }),
    );
    net.run_until(SimTime::from_millis(500));
    assert_eq!(*result.lock(), Some(Ok(())));
    assert_eq!(store.get_bool("cmd/S1/cb/CB1/close"), Some(false));
    let executed = handle.events_of(IedEventKind::ControlExecuted);
    assert_eq!(executed.len(), 1);
    assert!(executed[0].detail.contains("open CB1"));
}

#[test]
fn goose_interlock_blocks_close_until_peer_closed() {
    // IED A publishes CB-A state over GOOSE; IED B's CILO monitors it and
    // gates closing CB-B.
    let store = ProcessStore::new();
    store.set("meas/S1/cb/CBA/closed", Value::Bool(false));
    store.set("meas/S1/cb/CBB/closed", Value::Bool(false));

    let mut spec_a = IedSpec::new("IEDA", "S1");
    spec_a.breakers.push(BreakerMap {
        name: "CBA".into(),
        xcbr: "XCBR1".into(),
        cswi: "CSWI1".into(),
        state_key: "meas/S1/cb/CBA/closed".into(),
        cmd_key: "cmd/S1/cb/CBA/close".into(),
        interlocked: false,
    });
    spec_a.goose = Some(GooseSpec {
        appid: 0x3001,
        gocb_ref: "IEDALD0/LLN0$GO$gcb01".into(),
        dataset: "IEDALD0/LLN0$DS1".into(),
        entries: vec![GooseEntry::BreakerState("CBA".into())],
        rgoose_peers: vec![],
    });

    let mut spec_b = IedSpec::new("IEDB", "S1");
    spec_b.breakers.push(BreakerMap {
        name: "CBB".into(),
        xcbr: "XCBR1".into(),
        cswi: "CSWI1".into(),
        state_key: "meas/S1/cb/CBB/closed".into(),
        cmd_key: "cmd/S1/cb/CBB/close".into(),
        interlocked: true,
    });
    spec_b.protections.push(ProtectionSpec::Cilo {
        ln: "CILO1".into(),
        breaker: "CBB".into(),
        monitored: vec![MonitoredBreaker {
            reference: "S1/CBA".into(),
            gocb_ref: "IEDALD0/LLN0$GO$gcb01".into(),
            dataset_index: 0,
        }],
    });

    let mut net = Network::new();
    let sw = net.add_switch("sw");
    let host_a = net.add_host("ieda", Ipv4Addr::new(10, 0, 0, 1));
    let host_b = net.add_host("iedb", Ipv4Addr::new(10, 0, 0, 2));
    let operator = net.add_host("op", Ipv4Addr::new(10, 0, 0, 3));
    for h in [host_a, host_b, operator] {
        net.connect(h, sw, LinkSpec::default());
    }
    let (app_a, _handle_a) = VirtualIedApp::new(spec_a, store.clone());
    let (app_b, handle_b) = VirtualIedApp::new(spec_b, store.clone());
    net.attach_app(host_a, Box::new(app_a));
    net.attach_app(host_b, Box::new(app_b));

    // Phase 1: CBA open → close command on CBB must be rejected.
    let result = Arc::new(Mutex::new(None));
    net.attach_app(
        operator,
        Box::new(ControlClient {
            server: Ipv4Addr::new(10, 0, 0, 2),
            item: "IEDBLD0/CSWI1$CO$Pos$Oper$ctlVal".into(),
            value: true,
            client: MmsClient::new(),
            result: result.clone(),
        }),
    );
    net.run_until(SimTime::from_millis(1000));
    assert!(
        matches!(*result.lock(), Some(Err(_))),
        "close must be interlock-blocked"
    );
    assert_eq!(handle_b.events_of(IedEventKind::ControlRejected).len(), 1);
    assert_eq!(store.get_bool("cmd/S1/cb/CBB/close"), None);
    // EnaCls mirrors the interlock in the model.
    assert_eq!(
        handle_b.model.read("IEDBLD0/CILO1$ST$EnaCls$stVal"),
        Some(DataValue::Bool(false))
    );

    // Phase 2: close CBA; GOOSE propagates; now the interlock permits.
    store.set("meas/S1/cb/CBA/closed", Value::Bool(true));
    net.run_until(SimTime::from_millis(2500));
    assert_eq!(
        handle_b.model.read("IEDBLD0/CILO1$ST$EnaCls$stVal"),
        Some(DataValue::Bool(true))
    );
}

#[test]
fn goose_ttl_expiry_degrades_interlock_to_unknown() {
    // IED A publishes CB-A state; IED B's CILO depends on it. When A's host
    // link dies, the GOOSE stream stops and B must fail safe (block close).
    let store = ProcessStore::new();
    store.set("meas/S1/cb/CBA/closed", Value::Bool(true));
    store.set("meas/S1/cb/CBB/closed", Value::Bool(false));

    let mut spec_a = IedSpec::new("IEDA", "S1");
    spec_a.breakers.push(BreakerMap {
        name: "CBA".into(),
        xcbr: "XCBR1".into(),
        cswi: "CSWI1".into(),
        state_key: "meas/S1/cb/CBA/closed".into(),
        cmd_key: "cmd/S1/cb/CBA/close".into(),
        interlocked: false,
    });
    spec_a.goose = Some(GooseSpec {
        appid: 0x3001,
        gocb_ref: "IEDALD0/LLN0$GO$gcb01".into(),
        dataset: "IEDALD0/LLN0$DS1".into(),
        entries: vec![GooseEntry::BreakerState("CBA".into())],
        rgoose_peers: vec![],
    });

    let mut spec_b = IedSpec::new("IEDB", "S1");
    spec_b.breakers.push(BreakerMap {
        name: "CBB".into(),
        xcbr: "XCBR1".into(),
        cswi: "CSWI1".into(),
        state_key: "meas/S1/cb/CBB/closed".into(),
        cmd_key: "cmd/S1/cb/CBB/close".into(),
        interlocked: true,
    });
    spec_b.protections.push(ProtectionSpec::Cilo {
        ln: "CILO1".into(),
        breaker: "CBB".into(),
        monitored: vec![MonitoredBreaker {
            reference: "S1/CBA".into(),
            gocb_ref: "IEDALD0/LLN0$GO$gcb01".into(),
            dataset_index: 0,
        }],
    });

    let mut net = Network::new();
    let sw = net.add_switch("sw");
    let host_a = net.add_host("ieda", Ipv4Addr::new(10, 0, 0, 1));
    let host_b = net.add_host("iedb", Ipv4Addr::new(10, 0, 0, 2));
    net.connect(host_a, sw, LinkSpec::default());
    net.connect(host_b, sw, LinkSpec::default());
    let (app_a, _) = VirtualIedApp::new(spec_a, store.clone());
    let (app_b, handle_b) = VirtualIedApp::new(spec_b, store.clone());
    net.attach_app(host_a, Box::new(app_a));
    net.attach_app(host_b, Box::new(app_b));

    // Healthy: CBA closed and published → close permitted.
    net.run_until(SimTime::from_millis(1500));
    assert_eq!(
        handle_b.model.read("IEDBLD0/CILO1$ST$EnaCls$stVal"),
        Some(DataValue::Bool(true))
    );

    // Kill the publisher's link: GOOSE stream goes silent.
    net.set_link_state(host_a, sw, false);
    // TTL is 2x the current retransmission interval (heartbeat 1 s → 2 s);
    // expiry trips at 2x TTL. Run well past that.
    net.run_until(SimTime::from_secs(10));
    assert_eq!(
        handle_b.model.read("IEDBLD0/CILO1$ST$EnaCls$stVal"),
        Some(DataValue::Bool(false)),
        "close permission must fail safe after GOOSE supervision timeout"
    );

    // Publisher returns: permission recovers.
    net.set_link_state(host_a, sw, true);
    net.run_until(SimTime::from_secs(14));
    assert_eq!(
        handle_b.model.read("IEDBLD0/CILO1$ST$EnaCls$stVal"),
        Some(DataValue::Bool(true)),
        "permission restored once the stream resumes"
    );
}

#[test]
fn stuck_sensor_holds_first_faulted_value() {
    let store = ProcessStore::new();
    store.set("meas/S1/branch/l1/i_ka", Value::Float(0.42));
    let (mut net, handle) = one_ied_net(base_spec(), store.clone());
    net.run_until(SimTime::from_millis(250));
    handle.set_sensor_fault(
        "meas/S1/branch/l1/i_ka",
        sgcr_faults::SensorFault::Stuck,
        250,
    );
    // One faulted sample captures 0.42; the later process change is unseen.
    net.run_until(SimTime::from_millis(400));
    store.set("meas/S1/branch/l1/i_ka", Value::Float(0.9));
    net.run_until(SimTime::from_millis(600));
    let v = handle
        .model
        .read("GIED1LD0/MMXU1$MX$A$phsA$cVal$mag$f")
        .unwrap();
    assert_eq!(v, DataValue::Float(0.42), "stuck sensor must hold");
    assert!(handle.clear_sensor_fault("meas/S1/branch/l1/i_ka"));
    net.run_until(SimTime::from_millis(900));
    let v = handle
        .model
        .read("GIED1LD0/MMXU1$MX$A$phsA$cVal$mag$f")
        .unwrap();
    assert_eq!(v, DataValue::Float(0.9), "cleared fault must track again");
}

#[test]
fn drifting_sensor_walks_away_from_truth() {
    let store = ProcessStore::new();
    store.set("meas/S1/branch/l1/i_ka", Value::Float(1.0));
    let (mut net, handle) = one_ied_net(base_spec(), store);
    handle.set_sensor_fault(
        "meas/S1/branch/l1/i_ka",
        sgcr_faults::SensorFault::Drift { per_sec: 0.5 },
        0,
    );
    net.run_until(SimTime::from_secs(2));
    let v = handle
        .model
        .read("GIED1LD0/MMXU1$MX$A$phsA$cVal$mag$f")
        .unwrap();
    let DataValue::Float(f) = v else {
        panic!("expected float, got {v:?}");
    };
    assert!(
        (1.8..=2.2).contains(&f),
        "after 2 s at +0.5/s the reading should be near 2.0, got {f}"
    );
}

#[test]
fn degradation_signal_flips_measurement_quality() {
    let store = ProcessStore::new();
    store.set("meas/S1/branch/l1/i_ka", Value::Float(0.42));
    let (mut net, handle) = one_ied_net(base_spec(), store);
    net.run_until(SimTime::from_millis(250));
    assert_eq!(
        handle.model.read("GIED1LD0/MMXU1$MX$A$phsA$q"),
        Some(DataValue::Str("good".into()))
    );
    handle.degradation().set(true);
    net.run_until(SimTime::from_millis(500));
    assert_eq!(
        handle.model.read("GIED1LD0/MMXU1$MX$A$phsA$q"),
        Some(DataValue::Str("invalid".into())),
        "held measurements must be flagged invalid"
    );
    handle.degradation().set(false);
    net.run_until(SimTime::from_millis(750));
    assert_eq!(
        handle.model.read("GIED1LD0/MMXU1$MX$A$phsA$q"),
        Some(DataValue::Str("good".into())),
        "recovery must restore good quality"
    );
}
