//! `sgcr-faults` — deterministic fault-injection primitives for the cyber
//! range.
//!
//! Everything here is *data and arithmetic*: the crate defines what a fault
//! looks like ([`LinkFault`], [`SensorFault`]), the seeded PRNG that decides
//! when a probabilistic fault fires ([`FaultRng`]), and the cross-plane
//! degradation flag ([`DegradationSignal`]) that lets the power plane tell
//! the IED and SCADA planes that held-last-good measurements are no longer
//! trustworthy. The *mechanics* of applying a fault (dropping a frame,
//! skipping a sensor write, flipping a quality bit) live in the plane that
//! owns the behaviour — `sgcr-net`, `sgcr-ied`, `sgcr-scada`, `sgcr-core` —
//! which keeps this crate dependency-free and usable from any of them.
//!
//! # Determinism
//!
//! All randomness flows from one [`FaultRng`] seeded explicitly (scenario
//! XML `faultSeed=`, `--fault-seed`, or [`FaultRng::new`] in tests). The
//! generator is a SplitMix64: tiny, full-period, and — crucially — a pure
//! function of its seed, so two runs of the same scenario with the same seed
//! draw identical decision streams and replay byte-identical journals.
//! Nothing in this crate reads a clock or OS entropy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A deterministic SplitMix64 pseudo-random generator for fault decisions.
///
/// SplitMix64 passes BigCrush, needs eight bytes of state, and is a pure
/// function of its seed — exactly the properties a replayable fault plane
/// needs. It is *not* cryptographic and must never be used for anything
/// security-sensitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl Default for FaultRng {
    /// Seed 0 — the stream used when no seed was configured explicitly.
    fn default() -> FaultRng {
        FaultRng::new(0)
    }
}

impl FaultRng {
    /// Creates a generator from an explicit seed. Equal seeds yield equal
    /// decision streams forever.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed }
    }

    /// The generator's current internal state. Together with the SplitMix64
    /// recurrence this fully determines every future draw, so equal states
    /// are the replay-safe notion of "same position in the decision stream"
    /// a mid-run checkpoint needs to verify.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Bernoulli trial: true with probability `p`.
    ///
    /// `p <= 0` returns false and `p >= 1` returns true *without consuming a
    /// draw*, so disabled fault dimensions leave the decision stream exactly
    /// as it was.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Uniform integer in `[0, bound)`; returns 0 without drawing when
    /// `bound` is 0 or 1.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound <= 1 {
            0
        } else {
            // Multiply-shift bounded mapping (Lemire) — bias is negligible
            // at simulation scales and it stays branch-free.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

/// A per-link impairment profile. All dimensions default to "off"; a profile
/// where every dimension is off ([`LinkFault::is_noop`]) behaves exactly
/// like no profile at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// Probability in `[0, 1]` that a frame is silently lost.
    pub loss: f64,
    /// Probability in `[0, 1]` that a frame is bit-corrupted in flight. The
    /// Ethernet FCS catches the damage, so a corrupted frame is rejected
    /// (dropped) rather than delivered mangled.
    pub corrupt: f64,
    /// Probability in `[0, 1]` that a frame is delivered twice.
    pub duplicate: f64,
    /// Maximum extra per-frame delay, drawn uniformly from `[0, jitter_ns]`.
    /// Jitter larger than the inter-frame gap reorders frames naturally.
    pub jitter_ns: u64,
    /// Flapping period: the link administratively drops for
    /// [`LinkFault::flap_down_ns`] at the start of every `flap_period_ns`
    /// window. 0 disables flapping.
    pub flap_period_ns: u64,
    /// How long the link stays down inside each flap period.
    pub flap_down_ns: u64,
}

impl Default for LinkFault {
    fn default() -> LinkFault {
        LinkFault {
            loss: 0.0,
            corrupt: 0.0,
            duplicate: 0.0,
            jitter_ns: 0,
            flap_period_ns: 0,
            flap_down_ns: 0,
        }
    }
}

impl LinkFault {
    /// True when every dimension is off — installing such a profile is
    /// equivalent to clearing the fault.
    pub fn is_noop(&self) -> bool {
        self.loss <= 0.0
            && self.corrupt <= 0.0
            && self.duplicate <= 0.0
            && self.jitter_ns == 0
            && (self.flap_period_ns == 0 || self.flap_down_ns == 0)
    }

    /// True when the flap schedule has the link down at simulation time
    /// `t_ns`. Purely arithmetic so replays agree without bookkeeping.
    pub fn flapped_down(&self, t_ns: u64) -> bool {
        self.flap_period_ns > 0
            && self.flap_down_ns > 0
            && t_ns % self.flap_period_ns < self.flap_down_ns
    }

    /// One-line human description for journals and stage details.
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        if self.loss > 0.0 {
            parts.push(format!("loss={:.0}%", self.loss * 100.0));
        }
        if self.corrupt > 0.0 {
            parts.push(format!("corrupt={:.0}%", self.corrupt * 100.0));
        }
        if self.duplicate > 0.0 {
            parts.push(format!("duplicate={:.0}%", self.duplicate * 100.0));
        }
        if self.jitter_ns > 0 {
            parts.push(format!("jitter<={}ms", self.jitter_ns / 1_000_000));
        }
        if self.flap_period_ns > 0 && self.flap_down_ns > 0 {
            parts.push(format!(
                "flap={}ms/{}ms",
                self.flap_down_ns / 1_000_000,
                self.flap_period_ns / 1_000_000
            ));
        }
        if parts.is_empty() {
            String::from("clear")
        } else {
            parts.join(" ")
        }
    }
}

/// A fault on one sampled value inside an IED.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// The sensor repeats its last sampled value forever.
    Stuck,
    /// The sensor output drifts away from truth at a fixed rate
    /// (engineering units per simulated second).
    Drift {
        /// Drift rate in engineering units per second; may be negative.
        per_sec: f64,
    },
}

impl SensorFault {
    /// One-line human description for journals and stage details.
    pub fn summary(&self) -> String {
        match self {
            SensorFault::Stuck => String::from("stuck"),
            SensorFault::Drift { per_sec } => format!("drift {per_sec:+}/s"),
        }
    }
}

/// A shared, lock-free flag the power plane raises while it is holding the
/// last-good solution (solver non-convergence). IEDs consult it to stamp
/// published measurements with quality `invalid`; SCADA consults it to
/// degrade incoming tag quality. Cloning shares the underlying flag.
#[derive(Debug, Clone, Default)]
pub struct DegradationSignal {
    degraded: Arc<AtomicBool>,
}

impl DegradationSignal {
    /// Creates a healthy (not degraded) signal.
    pub fn new() -> DegradationSignal {
        DegradationSignal::default()
    }

    /// Raises or clears the degradation flag. Returns the previous state so
    /// callers can journal only the transition.
    pub fn set(&self, degraded: bool) -> bool {
        self.degraded.swap(degraded, Ordering::Relaxed)
    }

    /// True while the power plane is serving held (stale) measurements.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = FaultRng::new(1);
        let mut b = FaultRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn splitmix_reference_values() {
        // First three outputs of SplitMix64 seeded with 1234567, per the
        // published reference implementation.
        let mut rng = FaultRng::new(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
        assert_eq!(rng.next_u64(), 9817491932198370423);
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = FaultRng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_edges_do_not_consume_draws() {
        let mut a = FaultRng::new(9);
        let mut b = FaultRng::new(9);
        assert!(!a.chance(0.0));
        assert!(a.chance(1.0));
        assert!(!a.chance(-0.5));
        assert!(a.chance(1.5));
        // `a` drew nothing, so the streams still agree.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = FaultRng::new(11);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn below_is_bounded() {
        let mut rng = FaultRng::new(13);
        assert_eq!(rng.below(0), 0);
        assert_eq!(rng.below(1), 0);
        for _ in 0..10_000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn link_fault_noop_and_flap_window() {
        assert!(LinkFault::default().is_noop());
        let fault = LinkFault {
            flap_period_ns: 1_000,
            flap_down_ns: 250,
            ..LinkFault::default()
        };
        assert!(!fault.is_noop());
        assert!(fault.flapped_down(0));
        assert!(fault.flapped_down(249));
        assert!(!fault.flapped_down(250));
        assert!(!fault.flapped_down(999));
        assert!(fault.flapped_down(1_000));
    }

    #[test]
    fn summaries_are_stable() {
        let fault = LinkFault {
            loss: 0.25,
            jitter_ns: 5_000_000,
            ..LinkFault::default()
        };
        assert_eq!(fault.summary(), "loss=25% jitter<=5ms");
        assert_eq!(LinkFault::default().summary(), "clear");
        assert_eq!(SensorFault::Stuck.summary(), "stuck");
        assert_eq!(
            SensorFault::Drift { per_sec: -1.5 }.summary(),
            "drift -1.5/s"
        );
    }

    #[test]
    fn degradation_signal_is_shared_and_reports_transition() {
        let signal = DegradationSignal::new();
        let clone = signal.clone();
        assert!(!signal.is_degraded());
        assert!(!signal.set(true), "previous state was healthy");
        assert!(clone.is_degraded());
        assert!(clone.set(true), "already degraded");
        assert!(signal.set(false));
        assert!(!clone.is_degraded());
    }
}
