//! Canonical key construction for the cyber range process cache.
//!
//! The SG-ML *IED Config XML* maps IEC 61850 data objects to power-simulation
//! outputs; both sides must agree on key names. [`Keys`] is that contract.

/// Builders for the canonical key namespace shared by the power-flow stepper
/// (writer of `meas/*`, reader of `cmd/*`) and the virtual devices (readers
/// of `meas/*`, writers of `cmd/*`).
///
/// # Examples
///
/// ```
/// use sgcr_kvstore::Keys;
///
/// assert_eq!(Keys::bus_voltage("S1", "bus3"), "meas/S1/bus/bus3/vm_pu");
/// assert_eq!(Keys::breaker_cmd("S1", "cb2"), "cmd/S1/cb/cb2/close");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Keys;

impl Keys {
    /// Bus voltage magnitude in per-unit: `meas/<sub>/bus/<bus>/vm_pu`.
    pub fn bus_voltage(substation: &str, bus: &str) -> String {
        format!("meas/{substation}/bus/{bus}/vm_pu")
    }

    /// Bus voltage angle in degrees: `meas/<sub>/bus/<bus>/va_deg`.
    pub fn bus_angle(substation: &str, bus: &str) -> String {
        format!("meas/{substation}/bus/{bus}/va_deg")
    }

    /// Active power through a branch (MW), from-side:
    /// `meas/<sub>/branch/<branch>/p_mw`.
    pub fn branch_p(substation: &str, branch: &str) -> String {
        format!("meas/{substation}/branch/{branch}/p_mw")
    }

    /// Reactive power through a branch (Mvar): `meas/<sub>/branch/<branch>/q_mvar`.
    pub fn branch_q(substation: &str, branch: &str) -> String {
        format!("meas/{substation}/branch/{branch}/q_mvar")
    }

    /// Current through a branch (kA): `meas/<sub>/branch/<branch>/i_ka`.
    pub fn branch_i(substation: &str, branch: &str) -> String {
        format!("meas/{substation}/branch/{branch}/i_ka")
    }

    /// Branch loading percentage: `meas/<sub>/branch/<branch>/loading`.
    pub fn branch_loading(substation: &str, branch: &str) -> String {
        format!("meas/{substation}/branch/{branch}/loading")
    }

    /// Breaker position feedback (true = closed):
    /// `meas/<sub>/cb/<cb>/closed`.
    pub fn breaker_state(substation: &str, breaker: &str) -> String {
        format!("meas/{substation}/cb/{breaker}/closed")
    }

    /// Breaker command (true = close, false = open):
    /// `cmd/<sub>/cb/<cb>/close`.
    pub fn breaker_cmd(substation: &str, breaker: &str) -> String {
        format!("cmd/{substation}/cb/{breaker}/close")
    }

    /// Load set-point command (MW): `cmd/<sub>/load/<load>/p_mw`.
    pub fn load_cmd(substation: &str, load: &str) -> String {
        format!("cmd/{substation}/load/{load}/p_mw")
    }

    /// Generator set-point command (MW): `cmd/<sub>/gen/<gen>/p_mw`.
    pub fn gen_cmd(substation: &str, gen: &str) -> String {
        format!("cmd/{substation}/gen/{gen}/p_mw")
    }

    /// Grid frequency (Hz), system-wide: `meas/<sub>/freq_hz`.
    pub fn frequency(substation: &str) -> String {
        format!("meas/{substation}/freq_hz")
    }

    /// Simulation step counter: `sim/step`.
    pub fn sim_step() -> String {
        "sim/step".to_string()
    }

    /// Splits a key into its `/`-separated segments.
    pub fn segments(key: &str) -> Vec<&str> {
        key.split('/').collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_shapes() {
        assert_eq!(Keys::bus_voltage("S1", "b1"), "meas/S1/bus/b1/vm_pu");
        assert_eq!(Keys::bus_angle("S1", "b1"), "meas/S1/bus/b1/va_deg");
        assert_eq!(Keys::branch_p("S1", "l1"), "meas/S1/branch/l1/p_mw");
        assert_eq!(Keys::breaker_state("S1", "cb1"), "meas/S1/cb/cb1/closed");
        assert_eq!(Keys::breaker_cmd("S1", "cb1"), "cmd/S1/cb/cb1/close");
        assert_eq!(Keys::sim_step(), "sim/step");
    }

    #[test]
    fn segments_split() {
        let key = Keys::branch_q("S2", "line7");
        assert_eq!(
            Keys::segments(&key),
            vec!["meas", "S2", "branch", "line7", "q_mvar"]
        );
    }
}
