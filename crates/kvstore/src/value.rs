//! The dynamically-typed values stored in the process cache.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A value in the process cache.
///
/// Measurements from the power-flow simulator are [`Value::Float`]s, breaker
/// positions and commands are [`Value::Bool`]s, counters and enumerations are
/// [`Value::Int`]s, and free-form identifiers are [`Value::Str`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Boolean (breaker position, command flag, alarm state).
    Bool(bool),
    /// Signed integer (counters, enumerated states, tap positions).
    Int(i64),
    /// Floating-point measurement (MW, Mvar, kV, kA, Hz, per-unit).
    Float(f64),
    /// String (identifiers, free-form status).
    Str(String),
}

impl Value {
    /// Returns the boolean if this is a `Bool`, else `None`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if this is an `Int`, else `None`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns a float for `Float` or (lossily) `Int`, else `None`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string if this is a `Str`, else `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Str("x".into()).as_float(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5f64), Value::Float(2.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Float(0.5).to_string(), "0.5");
        assert_eq!(Value::Bool(false).to_string(), "false");
    }
}
