#![warn(missing_docs)]

//! # sgcr-kvstore
//!
//! The process cache that couples the cyber side (virtual IEDs, PLCs, SCADA)
//! of the cyber range with the physical side (the power-flow simulator).
//!
//! The SG-ML paper connects virtual IEDs to the power system simulator through
//! a MySQL database used as *"a cache storing a set of key-value pairs, for
//! reading power grid measurements (voltages, power flow, etc.) and executing
//! control (e.g., opening/closing circuit breakers)"*. This crate reproduces
//! those semantics in-process: a concurrent, versioned key-value store.
//!
//! Every write bumps a global version counter, so deterministic simulation
//! components can poll [`ProcessStore::changes_since`] instead of relying on
//! wall-clock notification timing.
//!
//! # Examples
//!
//! ```
//! use sgcr_kvstore::{ProcessStore, Value};
//!
//! let store = ProcessStore::new();
//! store.set("meas/S1/line1/p_mw", Value::Float(12.5));
//! assert_eq!(store.get("meas/S1/line1/p_mw"), Some(Value::Float(12.5)));
//!
//! let v0 = store.version();
//! store.set("cmd/S1/cb1/open", Value::Bool(true));
//! let changed = store.changes_since(v0);
//! assert_eq!(changed.len(), 1);
//! assert_eq!(changed[0].key, "cmd/S1/cb1/open");
//! ```

mod keys;
mod store;
mod value;

pub use keys::Keys;
pub use store::{Change, Entry, ProcessStore};
pub use value::Value;
