//! The concurrent, versioned process store.

use crate::value::Value;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A stored entry: the value plus the global version at which it was written.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Current value.
    pub value: Value,
    /// Global store version assigned to the write that produced this value.
    pub version: u64,
}

/// A change record returned by [`ProcessStore::changes_since`].
#[derive(Debug, Clone, PartialEq)]
pub struct Change {
    /// Key that changed.
    pub key: String,
    /// Value after the change.
    pub value: Value,
    /// Version assigned to the change.
    pub version: u64,
}

/// Concurrent key-value cache coupling cyber emulation and power simulation.
///
/// Cloning is cheap: clones share the same underlying map (the store is the
/// single "database host" of the cyber range; every virtual device holds a
/// handle to it, exactly as every virtual IED in the paper connects to the
/// single MySQL instance).
#[derive(Debug, Clone, Default)]
pub struct ProcessStore {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: RwLock<HashMap<String, Entry>>,
    version: AtomicU64,
}

impl ProcessStore {
    /// Creates an empty store at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current global version (total number of writes so far).
    pub fn version(&self) -> u64 {
        self.inner.version.load(Ordering::SeqCst)
    }

    /// Reads the current value for `key`.
    pub fn get(&self, key: &str) -> Option<Value> {
        self.inner.map.read().get(key).map(|e| e.value.clone())
    }

    /// Reads the full entry (value + version) for `key`.
    pub fn entry(&self, key: &str) -> Option<Entry> {
        self.inner.map.read().get(key).cloned()
    }

    /// Convenience: reads a float (accepting `Int` as float).
    pub fn get_float(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(|v| v.as_float())
    }

    /// Convenience: reads a boolean.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(|v| v.as_bool())
    }

    /// Writes `value` under `key`, returning the version assigned.
    pub fn set(&self, key: &str, value: impl Into<Value>) -> u64 {
        let value = value.into();
        let mut map = self.inner.map.write();
        let version = self.inner.version.fetch_add(1, Ordering::SeqCst) + 1;
        map.insert(key.to_string(), Entry { value, version });
        version
    }

    /// Writes `value` only if the current value equals `expected`
    /// (or if `expected` is `None` and the key is absent).
    ///
    /// Returns `Ok(version)` on success and `Err(current)` with the value
    /// actually present otherwise.
    pub fn compare_and_set(
        &self,
        key: &str,
        expected: Option<&Value>,
        value: impl Into<Value>,
    ) -> Result<u64, Option<Value>> {
        let mut map = self.inner.map.write();
        let current = map.get(key).map(|e| e.value.clone());
        if current.as_ref() != expected {
            return Err(current);
        }
        let version = self.inner.version.fetch_add(1, Ordering::SeqCst) + 1;
        map.insert(
            key.to_string(),
            Entry {
                value: value.into(),
                version,
            },
        );
        Ok(version)
    }

    /// Removes `key`, returning the previous value if present.
    pub fn remove(&self, key: &str) -> Option<Value> {
        self.inner.map.write().remove(key).map(|e| e.value)
    }

    /// All keys currently present, sorted.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self.inner.map.read().keys().cloned().collect();
        keys.sort();
        keys
    }

    /// All keys beginning with `prefix`, sorted.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        let mut keys: Vec<String> = self
            .inner
            .map
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        keys.sort();
        keys
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.inner.map.read().len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.inner.map.read().is_empty()
    }

    /// Entries written after global version `since`, sorted by version.
    ///
    /// This is the deterministic change-feed used by simulation components in
    /// place of asynchronous notifications.
    pub fn changes_since(&self, since: u64) -> Vec<Change> {
        let map = self.inner.map.read();
        let mut changes: Vec<Change> = map
            .iter()
            .filter(|(_, e)| e.version > since)
            .map(|(k, e)| Change {
                key: k.clone(),
                value: e.value.clone(),
                version: e.version,
            })
            .collect();
        changes.sort_by_key(|c| c.version);
        changes
    }

    /// A point-in-time copy of every entry *with* its write version, sorted
    /// by key — the store's contribution to a mid-run checkpoint. Unlike
    /// [`snapshot`](ProcessStore::snapshot), the per-entry versions are
    /// preserved so two deterministic runs can be compared write-for-write,
    /// not just value-for-value.
    pub fn dump(&self) -> Vec<(String, Entry)> {
        let map = self.inner.map.read();
        let mut dump: Vec<(String, Entry)> =
            map.iter().map(|(k, e)| (k.clone(), e.clone())).collect();
        dump.sort_by(|a, b| a.0.cmp(&b.0));
        dump
    }

    /// A point-in-time copy of the whole store, sorted by key.
    pub fn snapshot(&self) -> Vec<(String, Value)> {
        let map = self.inner.map.read();
        let mut snap: Vec<(String, Value)> = map
            .iter()
            .map(|(k, e)| (k.clone(), e.value.clone()))
            .collect();
        snap.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn set_get_remove() {
        let s = ProcessStore::new();
        assert_eq!(s.get("x"), None);
        s.set("x", 1.5f64);
        assert_eq!(s.get_float("x"), Some(1.5));
        assert_eq!(s.remove("x"), Some(Value::Float(1.5)));
        assert_eq!(s.get("x"), None);
    }

    #[test]
    fn versions_monotonic() {
        let s = ProcessStore::new();
        let v1 = s.set("a", 1i64);
        let v2 = s.set("b", 2i64);
        let v3 = s.set("a", 3i64);
        assert!(v1 < v2 && v2 < v3);
        assert_eq!(s.version(), v3);
        assert_eq!(s.entry("a").unwrap().version, v3);
    }

    #[test]
    fn changes_since_reports_only_new() {
        let s = ProcessStore::new();
        s.set("a", 1i64);
        let mark = s.version();
        s.set("b", 2i64);
        s.set("a", 3i64);
        let changes = s.changes_since(mark);
        assert_eq!(changes.len(), 2);
        // Sorted by version: b then a.
        assert_eq!(changes[0].key, "b");
        assert_eq!(changes[1].key, "a");
        assert!(s.changes_since(s.version()).is_empty());
    }

    #[test]
    fn compare_and_set_semantics() {
        let s = ProcessStore::new();
        assert!(s.compare_and_set("k", None, 1i64).is_ok());
        let cur = Value::Int(1);
        assert!(s.compare_and_set("k", Some(&cur), 2i64).is_ok());
        // Stale expectation fails and reports the actual value.
        let err = s.compare_and_set("k", Some(&cur), 3i64).unwrap_err();
        assert_eq!(err, Some(Value::Int(2)));
    }

    #[test]
    fn prefix_queries() {
        let s = ProcessStore::new();
        s.set("meas/S1/l1/p", 1.0f64);
        s.set("meas/S1/l2/p", 2.0f64);
        s.set("cmd/S1/cb1", true);
        assert_eq!(s.keys_with_prefix("meas/").len(), 2);
        assert_eq!(s.keys_with_prefix("cmd/").len(), 1);
        assert_eq!(s.keys().len(), 3);
    }

    #[test]
    fn shared_between_clones() {
        let s = ProcessStore::new();
        let s2 = s.clone();
        s.set("x", 42i64);
        assert_eq!(s2.get("x"), Some(Value::Int(42)));
    }

    #[test]
    fn concurrent_writers_unique_versions() {
        let s = ProcessStore::new();
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = s.clone();
            handles.push(thread::spawn(move || {
                let mut versions = Vec::new();
                for i in 0..100 {
                    versions.push(s.set(&format!("k{t}"), i as i64));
                }
                versions
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("writer thread"))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 800, "every write got a unique version");
        assert_eq!(s.version(), 800);
    }
}
