//! Property tests on the process store: version monotonicity and
//! change-feed completeness under arbitrary operation sequences.

use proptest::prelude::*;
use sgcr_kvstore::{ProcessStore, Value};

#[derive(Debug, Clone)]
enum Op {
    Set(u8, i64),
    Remove(u8),
    Mark,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| Op::Set(k % 16, v)),
        any::<u8>().prop_map(|k| Op::Remove(k % 16)),
        Just(Op::Mark),
    ]
}

proptest! {
    #[test]
    fn change_feed_is_complete_and_ordered(ops in proptest::collection::vec(op_strategy(), 0..100)) {
        let store = ProcessStore::new();
        let mut marks: Vec<u64> = vec![0];
        for op in &ops {
            match op {
                Op::Set(k, v) => {
                    let version = store.set(&format!("k{k}"), Value::Int(*v));
                    prop_assert_eq!(version, store.version());
                }
                Op::Remove(k) => {
                    store.remove(&format!("k{k}"));
                }
                Op::Mark => {
                    marks.push(store.version());
                }
            }
        }
        // Versions in the change feed are strictly increasing and all
        // greater than the cursor.
        for &mark in &marks {
            let changes = store.changes_since(mark);
            let mut last = mark;
            for change in &changes {
                prop_assert!(change.version > last);
                last = change.version;
                // The reported value matches the live value (unless since
                // removed).
                if let Some(live) = store.get(&change.key) {
                    prop_assert_eq!(&live, &change.value);
                }
            }
        }
        // A cursor at the current version sees nothing.
        prop_assert!(store.changes_since(store.version()).is_empty());
    }

    #[test]
    fn snapshot_matches_gets(keys in proptest::collection::vec((any::<u8>(), any::<i64>()), 0..40)) {
        let store = ProcessStore::new();
        for (k, v) in &keys {
            store.set(&format!("k{}", k % 8), Value::Int(*v));
        }
        for (key, value) in store.snapshot() {
            prop_assert_eq!(store.get(&key), Some(value));
        }
        prop_assert_eq!(store.snapshot().len(), store.len());
    }
}
