//! Edge-case tests for SCL parsing: namespaces, voltage multipliers,
//! degenerate structures, and diagnostics.

use sgcr_scl::{parse_scl, parse_ssd, Diagnostic, SclError, Severity};

#[test]
fn namespaced_scl_parses_like_plain() {
    // Some tools emit prefixed SCL; local-name matching must handle it.
    let text = r#"<scl:SCL xmlns:scl="http://www.iec.ch/61850/2003/SCL">
      <scl:Header id="ns-test"/>
      <scl:Substation name="S1">
        <scl:VoltageLevel name="VL1">
          <scl:Voltage multiplier="k">66</scl:Voltage>
          <scl:Bay name="B1">
            <scl:ConnectivityNode name="CN1" pathName="S1/VL1/B1/CN1"/>
          </scl:Bay>
        </scl:VoltageLevel>
      </scl:Substation>
    </scl:SCL>"#;
    let doc = parse_ssd(text).expect("prefixed SCL parses");
    assert_eq!(doc.header.id, "ns-test");
    assert_eq!(doc.substations[0].voltage_levels[0].voltage_kv, 66.0);
}

#[test]
fn voltage_multipliers() {
    for (multiplier, value, expected_kv) in
        [("k", "110", 110.0), ("M", "1.1", 1100.0), ("", "400", 0.4)]
    {
        let text = format!(
            r#"<SCL><Header id="v"/><Substation name="S">
              <VoltageLevel name="VL"><Voltage multiplier="{multiplier}">{value}</Voltage></VoltageLevel>
            </Substation></SCL>"#
        );
        let doc = parse_ssd(&text).expect("parses");
        assert_eq!(
            doc.substations[0].voltage_levels[0].voltage_kv, expected_kv,
            "multiplier {multiplier:?}"
        );
    }
}

#[test]
fn missing_voltage_defaults_with_warning_not_error() {
    let text = r#"<SCL><Header id="v"/><Substation name="S">
        <VoltageLevel name="VL"/></Substation></SCL>"#;
    let doc = parse_ssd(text).expect("still parses");
    assert_eq!(doc.substations[0].voltage_levels[0].voltage_kv, 20.0);
}

#[test]
fn unnamed_substation_is_an_error() {
    let text = r#"<SCL><Header id="x"/><Substation/></SCL>"#;
    match parse_scl(text) {
        Err(SclError::Invalid { diagnostics }) => {
            assert!(diagnostics
                .iter()
                .any(|d: &Diagnostic| d.severity == Severity::Error
                    && d.message.contains("without a name")));
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn connectivity_node_path_defaults_when_missing() {
    let text = r#"<SCL><Header id="x"/><Substation name="S1">
      <VoltageLevel name="VL1"><Voltage>20</Voltage>
        <Bay name="B1"><ConnectivityNode name="CN1"/></Bay>
      </VoltageLevel></Substation></SCL>"#;
    let doc = parse_ssd(text).unwrap();
    assert_eq!(
        doc.connectivity_node_paths(),
        vec!["S1/VL1/B1/CN1".to_string()]
    );
}

#[test]
fn ln0_and_prefixed_lns_are_captured() {
    let text = r#"<SCL><Header id="x"/>
      <IED name="X"><AccessPoint name="AP1"><Server>
        <LDevice inst="LD0">
          <LN0 lnClass="LLN0" inst="" lnType="T0"/>
          <LN prefix="Q1" lnClass="XCBR" inst="2" lnType="T1"/>
        </LDevice>
      </Server></AccessPoint></IED></SCL>"#;
    let doc = parse_scl(text).unwrap();
    let ied = doc.ied("X").unwrap();
    assert!(ied.has_ln_class("LLN0"));
    let lns = &ied.access_points[0].ldevices[0].lns;
    assert_eq!(lns[1].name(), "Q1XCBR2");
}

#[test]
fn gse_hex_fields_parse() {
    let text = r#"<SCL><Header id="x"/>
      <Substation name="S"><VoltageLevel name="V"><Voltage>20</Voltage></VoltageLevel></Substation>
      <Communication><SubNetwork name="N">
        <ConnectedAP iedName="I" apName="A">
          <Address><P type="IP">10.0.0.1</P><P type="IP-SUBNET">255.0.0.0</P></Address>
          <GSE ldInst="LD0" cbName="g">
            <Address><P type="MAC-Address">01-0C-CD-01-0A-FF</P>
            <P type="APPID">3FFF</P><P type="VLAN-ID">0FA</P></Address>
          </GSE>
        </ConnectedAP>
      </SubNetwork></Communication>
      <IED name="I"><AccessPoint name="A"><Server><LDevice inst="LD0"/></Server></AccessPoint></IED>
    </SCL>"#;
    let doc = sgcr_scl::parse_scd(text).unwrap();
    let gse = &doc.communication.as_ref().unwrap().subnetworks[0].connected_aps[0].gse[0];
    assert_eq!(gse.appid, 0x3fff);
    assert_eq!(gse.vlan_id, 0x0fa);
}

#[test]
fn writer_escapes_hostile_names() {
    // Element names come from models; attribute *values* may hold anything.
    let mut doc = sgcr_scl::SclDocument::default();
    doc.header.id = r#"<evil> & "quoted""#.to_string();
    let text = sgcr_scl::write_scl(&doc);
    let reparsed = parse_scl(&text).expect("escaped output reparses");
    assert_eq!(reparsed.header.id, doc.header.id);
}
