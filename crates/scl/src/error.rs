//! Errors and diagnostics for SCL processing.
//!
//! Every finding carries a stable `SGxxxx` code (catalogued in [`crate::codes`]
//! and `docs/diagnostics.md`), a severity, a human-readable message, a context
//! string (element path or file role), and — when the finding is anchored to a
//! location in a source file — a [`Span`].

use crate::types::SclFileKind;
use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note.
    Info,
    /// Suspicious but processable.
    Warning,
    /// The document cannot be used.
    Error,
}

impl Severity {
    /// Lower-case label used in rendered output (`error`, `warning`, `info`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// A source location a diagnostic is anchored to: file name plus 1-based
/// line and column of the offending element's `<`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Span {
    /// File the finding is in (bundle-relative name or file role).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(file: impl Into<String>, line: u32, column: u32) -> Span {
        Span {
            file: file.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.column)
    }
}

/// One finding produced while parsing or validating an SCL document or an
/// SG-ML bundle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`SG0101`, …); see [`crate::codes`].
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Context (element path or name).
    pub context: String,
    /// Source location, when the finding is anchored to one.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// Creates a diagnostic with an explicit severity.
    pub fn new(
        code: &'static str,
        severity: Severity,
        message: impl Into<String>,
        context: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            context: context.into(),
            span: None,
        }
    }

    /// Creates an error diagnostic.
    pub fn error(
        code: &'static str,
        message: impl Into<String>,
        context: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic::new(code, Severity::Error, message, context)
    }

    /// Creates a warning diagnostic.
    pub fn warning(
        code: &'static str,
        message: impl Into<String>,
        context: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic::new(code, Severity::Warning, message, context)
    }

    /// Creates an info diagnostic.
    pub fn info(
        code: &'static str,
        message: impl Into<String>,
        context: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic::new(code, Severity::Info, message, context)
    }

    /// Attaches a source span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attaches a span when a position is known, leaves the diagnostic
    /// untouched otherwise.
    #[must_use]
    pub fn with_pos(self, file: &str, pos: Option<crate::types::SourcePos>) -> Diagnostic {
        match pos {
            Some(p) if p.is_known() => self.with_span(Span::new(file, p.line, p.column)),
            _ => self,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} ({})",
            self.severity.label(),
            self.code,
            self.message,
            self.context
        )?;
        if let Some(span) = &self.span {
            write!(f, " at {span}")?;
        }
        Ok(())
    }
}

/// An error produced while parsing an SCL file.
#[derive(Debug, Clone, PartialEq)]
pub enum SclError {
    /// The underlying bytes are not well-formed XML.
    Xml(String),
    /// The XML is not an SCL document at all.
    NotScl {
        /// Root element name found.
        root: String,
    },
    /// The document is SCL but lacks sections required for its kind.
    MissingSection {
        /// The file kind being parsed.
        kind: SclFileKind,
        /// Which section is missing.
        section: &'static str,
    },
    /// Structural errors were found (details in the diagnostics).
    Invalid {
        /// The findings, at least one of `Severity::Error`.
        diagnostics: Vec<Diagnostic>,
    },
}

impl fmt::Display for SclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SclError::Xml(msg) => write!(f, "not well-formed XML: {msg}"),
            SclError::NotScl { root } => {
                write!(f, "root element is <{root}>, expected <SCL>")
            }
            SclError::MissingSection { kind, section } => {
                write!(f, "{kind} file is missing its required <{section}> section")
            }
            SclError::Invalid { diagnostics } => {
                write!(f, "invalid SCL document:")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SclError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_and_span() {
        let d = Diagnostic::error("SG0201", "duplicate IP 10.0.1.5", "SubNetwork StationBus")
            .with_span(Span::new("sub1.scd.xml", 14, 7));
        assert_eq!(
            d.to_string(),
            "error[SG0201]: duplicate IP 10.0.1.5 (SubNetwork StationBus) at sub1.scd.xml:14:7"
        );
    }

    #[test]
    fn display_without_span() {
        let d = Diagnostic::warning("SG0101", "msg", "ctx");
        assert_eq!(d.to_string(), "warning[SG0101]: msg (ctx)");
    }
}
