//! Errors and diagnostics for SCL processing.

use crate::types::SclFileKind;
use std::fmt;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note.
    Info,
    /// Suspicious but processable.
    Warning,
    /// The document cannot be used.
    Error,
}

/// One finding produced while parsing or validating an SCL document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Context (element path or name).
    pub context: String,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, context: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            context: context.into(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, context: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            context: context.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{sev}: {} ({})", self.message, self.context)
    }
}

/// An error produced while parsing an SCL file.
#[derive(Debug, Clone, PartialEq)]
pub enum SclError {
    /// The underlying bytes are not well-formed XML.
    Xml(String),
    /// The XML is not an SCL document at all.
    NotScl {
        /// Root element name found.
        root: String,
    },
    /// The document is SCL but lacks sections required for its kind.
    MissingSection {
        /// The file kind being parsed.
        kind: SclFileKind,
        /// Which section is missing.
        section: &'static str,
    },
    /// Structural errors were found (details in the diagnostics).
    Invalid {
        /// The findings, at least one of `Severity::Error`.
        diagnostics: Vec<Diagnostic>,
    },
}

impl fmt::Display for SclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SclError::Xml(msg) => write!(f, "not well-formed XML: {msg}"),
            SclError::NotScl { root } => {
                write!(f, "root element is <{root}>, expected <SCL>")
            }
            SclError::MissingSection { kind, section } => {
                write!(f, "{kind} file is missing its required <{section}> section")
            }
            SclError::Invalid { diagnostics } => {
                write!(f, "invalid SCL document:")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for SclError {}
