//! Serializes a typed [`SclDocument`] back to SCL XML. Used by the model
//! generators (EPIC, synthetic multi-substation) so the whole SG-ML pipeline
//! runs from real files on disk.

use crate::types::*;
use sgcr_xml::{Document, NodeId};

/// Writes the document as SCL XML text.
pub fn write_scl(doc: &SclDocument) -> String {
    let mut xml = Document::new("SCL");
    let root = xml.root_id();
    xml.set_attr(root, "xmlns", "http://www.iec.ch/61850/2003/SCL");
    xml.set_attr(root, "version", "2007");

    let header = xml.add_element(root, "Header");
    xml.set_attr(header, "id", &doc.header.id);
    if !doc.header.version.is_empty() {
        xml.set_attr(header, "version", &doc.header.version);
    }
    if !doc.header.revision.is_empty() {
        xml.set_attr(header, "revision", &doc.header.revision);
    }

    for tie in &doc.inter_substation_lines {
        write_tie_line(&mut xml, root, tie);
    }

    for substation in &doc.substations {
        write_substation(&mut xml, root, substation);
    }

    if let Some(comm) = &doc.communication {
        write_communication(&mut xml, root, comm);
    }

    for ied in &doc.ieds {
        write_ied(&mut xml, root, ied);
    }

    if !doc.templates.lnode_types.is_empty() {
        let templates = xml.add_element(root, "DataTypeTemplates");
        for lt in &doc.templates.lnode_types {
            let el = xml.add_element(templates, "LNodeType");
            xml.set_attr(el, "id", &lt.id);
            xml.set_attr(el, "lnClass", &lt.ln_class);
            for do_name in &lt.dos {
                let d = xml.add_element(el, "DO");
                xml.set_attr(d, "name", do_name);
                xml.set_attr(d, "type", do_name);
            }
        }
    }

    xml.to_xml()
}

fn write_params(xml: &mut Document, parent: NodeId, params: &ElectricalParams) {
    let fields: [(&str, Option<f64>); 11] = [
        ("p_mw", params.p_mw),
        ("q_mvar", params.q_mvar),
        ("vm_pu", params.vm_pu),
        ("length_km", params.length_km),
        ("r_ohm_per_km", params.r_ohm_per_km),
        ("x_ohm_per_km", params.x_ohm_per_km),
        ("c_nf_per_km", params.c_nf_per_km),
        ("max_i_ka", params.max_i_ka),
        ("sn_mva", params.sn_mva),
        ("vk_percent", params.vk_percent),
        ("vkr_percent", params.vkr_percent),
    ];
    if fields.iter().all(|(_, v)| v.is_none()) {
        return;
    }
    let private = xml.add_element(parent, "Private");
    xml.set_attr(private, "type", "sgcr:ElectricalParams");
    for (name, value) in fields {
        if let Some(v) = value {
            xml.set_attr(private, name, &format!("{v}"));
        }
    }
}

fn write_terminal(xml: &mut Document, parent: NodeId, terminal: &Terminal) {
    let t = xml.add_element(parent, "Terminal");
    xml.set_attr(t, "name", &terminal.name);
    xml.set_attr(t, "connectivityNode", &terminal.connectivity_node);
}

fn write_substation(xml: &mut Document, root: NodeId, substation: &Substation) {
    let s = xml.add_element(root, "Substation");
    xml.set_attr(s, "name", &substation.name);
    for transformer in &substation.transformers {
        let t = xml.add_element(s, "PowerTransformer");
        xml.set_attr(t, "name", &transformer.name);
        xml.set_attr(t, "type", "PTR");
        for winding in &transformer.windings {
            let w = xml.add_element(t, "TransformerWinding");
            xml.set_attr(w, "name", &winding.name);
            xml.set_attr(w, "sgcr:ratedKV", &format!("{}", winding.rated_kv));
            write_terminal(xml, w, &winding.terminal);
        }
        write_params(xml, t, &transformer.params);
    }
    for vl in &substation.voltage_levels {
        let v = xml.add_element(s, "VoltageLevel");
        xml.set_attr(v, "name", &vl.name);
        let voltage = xml.add_element(v, "Voltage");
        xml.set_attr(voltage, "multiplier", "k");
        xml.set_attr(voltage, "unit", "V");
        xml.add_text(voltage, &format!("{}", vl.voltage_kv));
        for bay in &vl.bays {
            let b = xml.add_element(v, "Bay");
            xml.set_attr(b, "name", &bay.name);
            for cn in &bay.connectivity_nodes {
                let c = xml.add_element(b, "ConnectivityNode");
                xml.set_attr(c, "name", &cn.name);
                xml.set_attr(c, "pathName", &cn.path_name);
            }
            for eq in &bay.equipment {
                let e = xml.add_element(b, "ConductingEquipment");
                xml.set_attr(e, "name", &eq.name);
                xml.set_attr(e, "type", &eq.type_code);
                if eq.normally_open {
                    xml.set_attr(e, "sgcr:normallyOpen", "true");
                }
                for terminal in &eq.terminals {
                    write_terminal(xml, e, terminal);
                }
                write_params(xml, e, &eq.params);
            }
            for lnode in &bay.lnodes {
                let l = xml.add_element(b, "LNode");
                xml.set_attr(l, "iedName", &lnode.ied_name);
                xml.set_attr(l, "lnClass", &lnode.ln_class);
                xml.set_attr(l, "lnInst", &lnode.ln_inst);
                xml.set_attr(l, "ldInst", &lnode.ld_inst);
            }
        }
    }
}

fn write_communication(xml: &mut Document, root: NodeId, comm: &Communication) {
    let c = xml.add_element(root, "Communication");
    for sn in &comm.subnetworks {
        let s = xml.add_element(c, "SubNetwork");
        xml.set_attr(s, "name", &sn.name);
        if !sn.net_type.is_empty() {
            xml.set_attr(s, "type", &sn.net_type);
        }
        for ap in &sn.connected_aps {
            let a = xml.add_element(s, "ConnectedAP");
            xml.set_attr(a, "iedName", &ap.ied_name);
            xml.set_attr(a, "apName", &ap.ap_name);
            let address = xml.add_element(a, "Address");
            let ip = xml.add_element(address, "P");
            xml.set_attr(ip, "type", "IP");
            xml.add_text(ip, &ap.ip);
            let subnet = xml.add_element(address, "P");
            xml.set_attr(subnet, "type", "IP-SUBNET");
            xml.add_text(subnet, &ap.ip_subnet);
            if let Some(mac) = &ap.mac {
                let m = xml.add_element(address, "P");
                xml.set_attr(m, "type", "MAC-Address");
                xml.add_text(m, mac);
            }
            for gse in &ap.gse {
                let g = xml.add_element(a, "GSE");
                xml.set_attr(g, "ldInst", &gse.ld_inst);
                xml.set_attr(g, "cbName", &gse.cb_name);
                let gaddr = xml.add_element(g, "Address");
                let m = xml.add_element(gaddr, "P");
                xml.set_attr(m, "type", "MAC-Address");
                xml.add_text(m, &gse.mac);
                let appid = xml.add_element(gaddr, "P");
                xml.set_attr(appid, "type", "APPID");
                xml.add_text(appid, &format!("{:04X}", gse.appid));
                let vlan = xml.add_element(gaddr, "P");
                xml.set_attr(vlan, "type", "VLAN-ID");
                xml.add_text(vlan, &format!("{:03X}", gse.vlan_id));
            }
        }
    }
}

fn write_ied(xml: &mut Document, root: NodeId, ied: &Ied) {
    let i = xml.add_element(root, "IED");
    xml.set_attr(i, "name", &ied.name);
    if !ied.manufacturer.is_empty() {
        xml.set_attr(i, "manufacturer", &ied.manufacturer);
    }
    if !ied.ied_type.is_empty() {
        xml.set_attr(i, "type", &ied.ied_type);
    }
    for ap in &ied.access_points {
        let a = xml.add_element(i, "AccessPoint");
        xml.set_attr(a, "name", &ap.name);
        let server = xml.add_element(a, "Server");
        for ld in &ap.ldevices {
            let l = xml.add_element(server, "LDevice");
            xml.set_attr(l, "inst", &ld.inst);
            for ln in &ld.lns {
                if ln.ln_class == "LLN0" {
                    let n = xml.add_element(l, "LN0");
                    xml.set_attr(n, "lnClass", "LLN0");
                    xml.set_attr(n, "inst", "");
                    xml.set_attr(n, "lnType", &ln.ln_type);
                } else {
                    let n = xml.add_element(l, "LN");
                    if !ln.prefix.is_empty() {
                        xml.set_attr(n, "prefix", &ln.prefix);
                    }
                    xml.set_attr(n, "lnClass", &ln.ln_class);
                    xml.set_attr(n, "inst", &ln.inst);
                    xml.set_attr(n, "lnType", &ln.ln_type);
                }
            }
        }
    }
}

fn write_tie_line(xml: &mut Document, root: NodeId, tie: &InterSubstationLine) {
    let private = xml.add_element(root, "Private");
    xml.set_attr(private, "type", "sgcr:InterSubstationLine");
    let line = xml.add_element(private, "Line");
    xml.set_attr(line, "name", &tie.name);
    xml.set_attr(line, "fromSubstation", &tie.from_substation);
    xml.set_attr(line, "fromNode", &tie.from_node);
    xml.set_attr(line, "toSubstation", &tie.to_substation);
    xml.set_attr(line, "toNode", &tie.to_node);
    write_params(xml, line, &tie.params);
    for ied in &tie.protection_ieds {
        let p = xml.add_element(line, "ProtectionIED");
        xml.set_attr(p, "name", ied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_scl, parse_sed};

    fn sample_doc() -> SclDocument {
        SclDocument {
            header: Header {
                id: "roundtrip".into(),
                version: "1".into(),
                revision: "B".into(),
            },
            substations: vec![Substation {
                pos: SourcePos::default(),
                name: "S1".into(),
                voltage_levels: vec![VoltageLevel {
                    name: "VL1".into(),
                    voltage_kv: 110.0,
                    bays: vec![Bay {
                        name: "B1".into(),
                        connectivity_nodes: vec![ConnectivityNode {
                            pos: SourcePos::default(),
                            name: "CN1".into(),
                            path_name: "S1/VL1/B1/CN1".into(),
                        }],
                        equipment: vec![ConductingEquipment {
                            pos: SourcePos::default(),
                            name: "CB1".into(),
                            eq_type: EquipmentType::CircuitBreaker,
                            type_code: "CBR".into(),
                            terminals: vec![Terminal {
                                name: "T1".into(),
                                connectivity_node: "S1/VL1/B1/CN1".into(),
                            }],
                            params: ElectricalParams {
                                p_mw: Some(5.0),
                                ..ElectricalParams::default()
                            },
                            normally_open: true,
                        }],
                        lnodes: vec![LNodeRef {
                            pos: SourcePos::default(),
                            ied_name: "IED1".into(),
                            ln_class: "XCBR".into(),
                            ln_inst: "1".into(),
                            ld_inst: "LD0".into(),
                        }],
                    }],
                }],
                transformers: vec![],
            }],
            communication: Some(Communication {
                subnetworks: vec![SubNetwork {
                    pos: SourcePos::default(),
                    name: "bus1".into(),
                    net_type: "8-MMS".into(),
                    connected_aps: vec![ConnectedAp {
                        pos: SourcePos::default(),
                        ied_name: "IED1".into(),
                        ap_name: "AP1".into(),
                        ip: "10.0.0.1".into(),
                        ip_subnet: "255.255.255.0".into(),
                        mac: Some("02-00-00-00-00-01".into()),
                        gse: vec![GseAddress {
                            ld_inst: "LD0".into(),
                            cb_name: "gcb01".into(),
                            mac: "01-0C-CD-01-00-01".into(),
                            appid: 0x3001,
                            vlan_id: 5,
                        }],
                    }],
                }],
            }),
            ieds: vec![Ied {
                pos: SourcePos::default(),
                name: "IED1".into(),
                manufacturer: "sgcr".into(),
                ied_type: "virtual".into(),
                access_points: vec![AccessPoint {
                    name: "AP1".into(),
                    ldevices: vec![LDevice {
                        inst: "LD0".into(),
                        lns: vec![
                            Ln {
                                prefix: String::new(),
                                ln_class: "LLN0".into(),
                                inst: String::new(),
                                ln_type: "LLN0_T".into(),
                            },
                            Ln {
                                prefix: String::new(),
                                ln_class: "XCBR".into(),
                                inst: "1".into(),
                                ln_type: "XCBR_T".into(),
                            },
                        ],
                    }],
                }],
            }],
            templates: DataTypeTemplates {
                lnode_types: vec![LNodeType {
                    id: "XCBR_T".into(),
                    ln_class: "XCBR".into(),
                    dos: vec!["Pos".into()],
                }],
            },
            inter_substation_lines: vec![],
        }
    }

    #[test]
    fn write_parse_roundtrip() {
        let doc = sample_doc();
        let text = write_scl(&doc);
        let reparsed = parse_scl(&text).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn tie_lines_roundtrip() {
        let doc = SclDocument {
            header: Header {
                id: "sed".into(),
                ..Header::default()
            },
            inter_substation_lines: vec![InterSubstationLine {
                pos: SourcePos::default(),
                name: "tie12".into(),
                from_substation: "S1".into(),
                from_node: "S1/VL1/B1/CN1".into(),
                to_substation: "S2".into(),
                to_node: "S2/VL1/B1/CN1".into(),
                params: ElectricalParams {
                    length_km: Some(30.0),
                    r_ohm_per_km: Some(0.06),
                    x_ohm_per_km: Some(0.3),
                    ..ElectricalParams::default()
                },
                protection_ieds: vec!["P1".into(), "P2".into()],
            }],
            ..SclDocument::default()
        };
        let text = write_scl(&doc);
        let reparsed = parse_sed(&text).unwrap();
        assert_eq!(reparsed.inter_substation_lines, doc.inter_substation_lines);
    }
}
