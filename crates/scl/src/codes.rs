//! Registry of stable diagnostic codes.
//!
//! Every [`crate::Diagnostic`] carries one of the `SGxxxx` codes declared
//! here. Codes are grouped by family:
//!
//! | Family | Area |
//! |--------|------|
//! | `SG00xx` | intra-file SCL structure (parse-time) |
//! | `SG01xx` | cross-file references |
//! | `SG02xx` | network addressing |
//! | `SG03xx` | power topology |
//! | `SG04xx` | protection sanity |
//! | `SG05xx` | bundle hygiene |
//! | `SG5xxx` | exercise scenarios |
//! | `SG6xxx` | ST control-logic semantics and cross-plane bindings |
//!
//! The human-facing catalogue (meaning, trigger, fix) lives in
//! `docs/diagnostics.md`; this module is the machine-readable source of truth
//! the renderer and tests use.

/// One entry of the diagnostic-code registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeInfo {
    /// The stable code, e.g. `"SG0101"`.
    pub code: &'static str,
    /// One-line summary of what the code flags.
    pub summary: &'static str,
}

macro_rules! codes {
    ($($(#[$doc:meta])* $name:ident = ($code:literal, $summary:literal);)+) => {
        $(
            $(#[$doc])*
            pub const $name: &str = $code;
        )+

        /// Every registered diagnostic code with its one-line summary.
        pub const REGISTRY: &[CodeInfo] = &[
            $(CodeInfo { code: $code, summary: $summary },)+
        ];
    };
}

codes! {
    // --- SG00xx: intra-file SCL structure --------------------------------
    /// SCL document lacks the mandatory `<Header>` element.
    MISSING_HEADER = ("SG0001", "SCL document has no <Header> element");
    /// A named element (Substation, IED, …) carries no `name` attribute.
    UNNAMED_ELEMENT = ("SG0002", "element is missing its required name attribute");
    /// An attribute or text value failed to parse (number, hex, …).
    UNPARSABLE_VALUE = ("SG0003", "attribute or text value could not be parsed");
    /// `<Voltage>` uses an unknown unit multiplier.
    UNKNOWN_MULTIPLIER = ("SG0004", "Voltage element uses an unknown unit multiplier");
    /// Conducting equipment declares no `<Terminal>` children.
    EQUIPMENT_NO_TERMINAL = ("SG0005", "conducting equipment has no Terminal");
    /// A transformer winding declares no `<Terminal>`.
    WINDING_NO_TERMINAL = ("SG0006", "transformer winding has no Terminal");
    /// A power transformer has an unsupported winding count.
    WINDING_COUNT = ("SG0007", "power transformer has an unsupported winding count");
    /// An inter-substation tie lacks its substation/node references.
    TIE_MISSING_REFS = ("SG0008", "inter-substation line is missing its endpoint references");
    /// A document lacks a section its role requires.
    MISSING_SECTION = ("SG0009", "document lacks a section its role requires");
    /// A file is not well-formed XML / not parsable at all.
    PARSE_FAILED = ("SG0010", "file could not be parsed");

    // --- SG01xx: cross-file references -----------------------------------
    /// A `<ConnectedAP>` names an IED with no `<IED>` declaration.
    CONNECTED_AP_UNDECLARED_IED =
        ("SG0101", "ConnectedAP references an IED that is not declared in any SCD");
    /// An `<IED>` declaration has no `<ConnectedAP>` (no network presence).
    IED_NO_CONNECTED_AP = ("SG0102", "IED is declared but has no ConnectedAP");
    /// An `<LNode>` in the single-line diagram names an unknown IED.
    LNODE_UNKNOWN_IED = ("SG0103", "LNode references an IED unknown to the bundle");
    /// A SED tie references a substation no SSD declares.
    SED_UNKNOWN_SUBSTATION = ("SG0104", "SED tie references an undeclared substation");
    /// A SED tie references a connectivity node absent from its substation.
    SED_UNKNOWN_NODE = ("SG0105", "SED tie references an unknown connectivity node");
    /// A SED protection IED is unknown to the bundle.
    SED_UNKNOWN_PROTECTION_IED = ("SG0106", "SED tie names an unknown protection IED");
    /// A supplementary config (IED/PLC/SCADA) names an unknown host.
    CONFIG_UNKNOWN_HOST = ("SG0107", "supplementary config references an unknown host");
    /// A PLC read/write binding targets an unknown MMS server or item.
    PLC_BINDING_UNRESOLVED = ("SG0108", "PLC binding targets an unknown server");
    /// The SCADA host named in the bundle is absent from the SCDs.
    SCADA_UNKNOWN_HOST = ("SG0109", "SCADA host is absent from the SCDs");
    /// A `<Terminal>` references a connectivity node that does not exist.
    TERMINAL_UNKNOWN_NODE = ("SG0110", "Terminal references an unknown connectivity node");

    // --- SG02xx: network addressing ---------------------------------------
    /// Two access points share one IP address.
    DUPLICATE_IP = ("SG0201", "two access points share one IP address");
    /// Two access points share one MAC address.
    DUPLICATE_MAC = ("SG0202", "two access points share one MAC address");
    /// An IP address failed to parse.
    INVALID_IP = ("SG0203", "IP address could not be parsed");
    /// A MAC address failed to parse.
    INVALID_MAC = ("SG0204", "MAC address could not be parsed");
    /// A host's IP is outside its subnetwork's dominant subnet.
    SUBNET_MISMATCH = ("SG0205", "host IP is outside its subnetwork's subnet");
    /// Two hosts/IEDs share one name.
    DUPLICATE_HOST = ("SG0206", "two hosts or IEDs share one name");
    /// Two GOOSE control blocks share one APPID on one subnetwork.
    DUPLICATE_APPID = ("SG0207", "two GOOSE control blocks share one APPID");

    // --- SG03xx: power topology -------------------------------------------
    /// A bus has no connected element at all.
    ISOLATED_BUS = ("SG0301", "bus has no connected element");
    /// An electrical island contains no ext-grid/slack source.
    ISLAND_NO_SLACK = ("SG0302", "electrical island has no slack source");
    /// Normally-open switch states leave a load unsupplied.
    SWITCH_ISOLATES_LOAD = ("SG0303", "switch states isolate a load from every source");
    /// Two connectivity nodes resolve to one path.
    DUPLICATE_NODE_PATH = ("SG0304", "duplicate connectivity node path");
    /// Equipment has no power-flow mapping (ignored by the solver).
    NO_POWER_MAPPING = ("SG0305", "equipment type has no power-flow mapping");
    /// Equipment has the wrong number of terminals for its mapping.
    WRONG_TERMINAL_COUNT = ("SG0306", "equipment has the wrong number of terminals");

    // --- SG04xx: protection sanity ----------------------------------------
    /// A protection function has no breaker mapped to trip.
    PROTECTION_NO_BREAKER = ("SG0401", "protection function has no breaker to trip");
    /// A protection function trips a breaker the model does not define.
    PROTECTION_UNDEFINED_BREAKER =
        ("SG0402", "protection function trips an undefined breaker");
    /// A protection threshold is non-positive.
    PROTECTION_BAD_THRESHOLD = ("SG0403", "protection threshold is not positive");
    /// A configured IED feature lacks the logical node its ICD must declare.
    FEATURE_NO_LN = ("SG0404", "configured feature lacks its logical node in the ICD");

    // --- SG05xx: bundle hygiene --------------------------------------------
    /// An ICD describes an IED no SCD instantiates.
    ORPHAN_ICD = ("SG0501", "ICD describes an IED that no SCD instantiates");
    /// A model file contributes nothing to the bundle.
    UNUSED_FILE = ("SG0502", "model file contributes nothing to the bundle");
    /// Two SSDs declare one substation name.
    DUPLICATE_SUBSTATION = ("SG0504", "two SSDs declare the same substation");

    // --- SG5xxx: exercise scenarios ----------------------------------------
    /// A scenario stage or objective targets a host/IED/switch/line/point
    /// that the bundle does not define.
    SCENARIO_UNKNOWN_TARGET = ("SG5001", "scenario references a target the bundle does not define");
    /// A `after=` dependency names a stage id the scenario never defines
    /// (or the stage depends on itself).
    SCENARIO_UNDEFINED_STAGE = ("SG5002", "scenario dependency references an undefined stage id");
    /// An objective deadline or window can never be met (zero/negative).
    SCENARIO_BAD_DEADLINE = ("SG5003", "scenario objective has a zero or negative deadline");
    /// Two stages or objectives share one id.
    SCENARIO_DUPLICATE_ID = ("SG5004", "two scenario stages or objectives share one id");
    /// A fault stage (`linkFault`, `crash`) names a host or link endpoint
    /// the bundle does not define.
    SCENARIO_UNKNOWN_FAULT_TARGET =
        ("SG5005", "fault stage references a host or link endpoint the bundle does not define");
    /// A `sensor` fault stage names an IED the bundle does not define.
    SCENARIO_UNKNOWN_FAULT_IED = ("SG5006", "sensor fault stage references an undefined IED");
    /// A `linkFault` probability (loss/corrupt/duplicate) is outside [0, 1].
    SCENARIO_BAD_FAULT_PROBABILITY =
        ("SG5007", "link fault probability is outside the [0, 1] range");

    // --- SG6xxx: ST control-logic semantics --------------------------------
    /// The PLC's Structured Text (or PLCopen XML) body does not parse.
    ST_PARSE_FAILED = ("SG6000", "PLC control logic does not parse");
    /// An operand or assignment uses an incompatible type.
    ST_TYPE_MISMATCH = ("SG6001", "ST expression mixes incompatible types");
    /// An expression reads a variable nothing declares, binds, or assigns.
    ST_UNKNOWN_VARIABLE = ("SG6002", "ST reads a variable that is never declared or bound");
    /// A function/FB call is malformed (unknown callee, wrong arity,
    /// unknown parameter or output).
    ST_BAD_FB_CALL = ("SG6003", "ST function or function-block call is malformed");
    /// A declared variable is read but never assigned or bound, so it
    /// forever holds its type default.
    ST_READ_BEFORE_WRITE = ("SG6010", "ST variable is read but never assigned");
    /// A value is overwritten before anything reads it.
    ST_DEAD_STORE = ("SG6011", "ST assignment is overwritten before it is read");
    /// A statement can never execute (constant condition, or it follows
    /// EXIT/RETURN or a loop that never exits).
    ST_UNREACHABLE = ("SG6012", "ST statement is unreachable");
    /// Division or modulo by a literal zero — faults on every scan.
    ST_DIVISION_BY_ZERO = ("SG6013", "ST divides by a literal zero");
    /// A PLC read/write/GOOSE binding names an ST variable the program
    /// never declares.
    PLC_BINDING_UNDECLARED =
        ("SG6020", "PLC binding references a variable the program never declares");
    /// A SCADA tag polls a PLC output register/coil that no located
    /// variable drives.
    SCADA_TAG_UNDRIVEN = ("SG6021", "SCADA tag is bound to a PLC output nothing drives");

    // --- SG7xxx: autonomous adversary plane --------------------------------
    /// An `<Adversary goal=…>` attribute does not follow the
    /// `kind:target` grammar (`breakerOpen:`, `breakerClosed:`,
    /// `scadaAlarm:`).
    ADVERSARY_BAD_GOAL = ("SG7001", "adversary goal does not parse");
    /// The goal names a breaker or SCADA point absent from the derived
    /// attack graph.
    ADVERSARY_UNKNOWN_TARGET =
        ("SG7002", "adversary goal names a target the attack graph does not contain");
    /// The target exists but no attack-primitive path in the derived
    /// graph reaches it.
    ADVERSARY_UNREACHABLE_GOAL =
        ("SG7003", "adversary goal is unreachable with the available attack primitives");
    /// Every path to the goal needs more actions than `budget=` allows.
    ADVERSARY_BUDGET_TOO_SMALL =
        ("SG7004", "adversary budget is too small for any path to the goal");
    /// The scenario mixes `<Adversary>` with a manual cyber stage against
    /// the same victim the planned campaign attacks — the two will race.
    ADVERSARY_CONFLICTING_STAGE =
        ("SG7005", "manual cyber stage targets the same victim as the planned adversary campaign");
}

/// Looks a code up in the registry.
pub fn lookup(code: &str) -> Option<CodeInfo> {
    REGISTRY.iter().copied().find(|c| c.code == code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_sorted_and_unique() {
        for pair in REGISTRY.windows(2) {
            assert!(
                pair[0].code < pair[1].code,
                "registry out of order: {} before {}",
                pair[0].code,
                pair[1].code
            );
        }
    }

    #[test]
    fn codes_are_well_formed() {
        for info in REGISTRY {
            assert_eq!(info.code.len(), 6, "{}", info.code);
            assert!(info.code.starts_with("SG"), "{}", info.code);
            assert!(
                info.code[2..].bytes().all(|b| b.is_ascii_digit()),
                "{}",
                info.code
            );
            assert!(!info.summary.is_empty());
        }
    }

    #[test]
    fn lookup_finds_known_codes() {
        assert_eq!(lookup("SG0201").map(|c| c.code), Some("SG0201"));
        assert!(lookup("SG9999").is_none());
    }
}
