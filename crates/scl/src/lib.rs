#![warn(missing_docs)]

//! # sgcr-scl
//!
//! IEC 61850 SCL (System Configuration description Language) for the SG-ML
//! toolchain: a typed model, parsers for the four file kinds the paper's
//! Table I describes, a writer, and the SED-driven consolidation step.
//!
//! | File | Role (paper Table I) | Entry point |
//! |------|----------------------|-------------|
//! | SSD  | substation single-line diagram, voltage/bay levels | [`parse_ssd`] |
//! | SCD  | complete substation configuration incl. communication | [`parse_scd`] |
//! | ICD  | one IED's capabilities (logical nodes, data types) | [`parse_icd`] |
//! | SED  | electrical + communication ties between substations | [`parse_sed`] |
//!
//! Real SSD files carry no electrical impedances; this toolchain keeps the
//! SG-ML supplements inline as SCL `Private type="sgcr:…"` extensions (the
//! standard's extension mechanism), so a single file set fully describes a
//! runnable model.
//!
//! # Examples
//!
//! ```
//! use sgcr_scl::{parse_ssd, write_scl};
//!
//! let text = r#"<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
//!   <Header id="demo"/>
//!   <Substation name="S1">
//!     <VoltageLevel name="VL1"><Voltage multiplier="k">110</Voltage></VoltageLevel>
//!   </Substation>
//! </SCL>"#;
//! let doc = parse_ssd(text)?;
//! assert_eq!(doc.substations[0].voltage_levels[0].voltage_kv, 110.0);
//! let _regenerated = write_scl(&doc);
//! # Ok::<(), sgcr_scl::SclError>(())
//! ```

pub mod codes;
mod consolidate;
mod error;
mod parse;
mod types;
mod write;

pub use consolidate::{consolidate_scd, consolidate_ssd, station_buses};
pub use error::{Diagnostic, SclError, Severity, Span};
pub use parse::{parse_icd, parse_scd, parse_scl, parse_scl_lenient, parse_sed, parse_ssd};
pub use types::*;
pub use write::write_scl;
