//! SED-driven consolidation of multi-substation models.
//!
//! Per the paper (§III-B): *"Our toolchain first combines multiple SSD files
//! into a consolidated SSD file based on the connectivity derived from SED
//! files. Then the consolidated SSD file is processed using the same tool to
//! generate a multi-substation power grid physical model."* Likewise,
//! *"to produce multi-substation cyber network model, we need to combine
//! multiple SCD files … WAN … is abstracted as a single switch connected to
//! all substations."*

use crate::codes;
use crate::error::{Diagnostic, SclError, Severity};
use crate::types::{Communication, SclDocument, SubNetwork};

/// Combines per-substation SSDs with SEDs into one consolidated SSD-style
/// document: all substations plus the inter-substation tie lines.
///
/// # Errors
///
/// Returns [`SclError::Invalid`] when an SED references a substation or
/// connectivity node that no SSD provides.
pub fn consolidate_ssd(
    ssds: &[SclDocument],
    seds: &[SclDocument],
) -> Result<SclDocument, SclError> {
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut combined = SclDocument {
        header: crate::types::Header {
            id: "consolidated-ssd".to_string(),
            version: "1".to_string(),
            revision: String::new(),
        },
        ..SclDocument::default()
    };

    for ssd in ssds {
        for substation in &ssd.substations {
            if combined.substation(&substation.name).is_some() {
                diagnostics.push(Diagnostic::error(
                    codes::DUPLICATE_SUBSTATION,
                    format!(
                        "duplicate substation {:?} across SSD files",
                        substation.name
                    ),
                    "consolidate",
                ));
                continue;
            }
            combined.substations.push(substation.clone());
        }
    }

    let all_nodes: Vec<String> = combined.connectivity_node_paths();
    for sed in seds {
        for tie in &sed.inter_substation_lines {
            for (substation, node) in [
                (&tie.from_substation, &tie.from_node),
                (&tie.to_substation, &tie.to_node),
            ] {
                if combined.substation(substation).is_none() {
                    diagnostics.push(Diagnostic::error(
                        codes::SED_UNKNOWN_SUBSTATION,
                        format!(
                            "SED tie {:?} references unknown substation {substation:?}",
                            tie.name
                        ),
                        "consolidate",
                    ));
                } else if !all_nodes.contains(node) {
                    diagnostics.push(Diagnostic::error(
                        codes::SED_UNKNOWN_NODE,
                        format!(
                            "SED tie {:?} references unknown connectivity node {node:?}",
                            tie.name
                        ),
                        "consolidate",
                    ));
                }
            }
            combined.inter_substation_lines.push(tie.clone());
        }
    }

    if diagnostics.iter().any(|d| d.severity == Severity::Error) {
        return Err(SclError::Invalid { diagnostics });
    }
    Ok(combined)
}

/// Combines per-substation SCDs into one consolidated SCD-style document.
/// Each substation's subnetworks are kept (renamed with the substation
/// prefix when names collide); the IED lists are concatenated.
///
/// The WAN joining the substations is *not* represented here — exactly as in
/// the paper, the network compiler abstracts it as one switch connecting
/// every substation's station bus.
///
/// # Errors
///
/// Returns [`SclError::Invalid`] when IED names or IP addresses collide
/// across substations.
pub fn consolidate_scd(scds: &[SclDocument]) -> Result<SclDocument, SclError> {
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut combined = SclDocument {
        header: crate::types::Header {
            id: "consolidated-scd".to_string(),
            version: "1".to_string(),
            revision: String::new(),
        },
        communication: Some(Communication::default()),
        ..SclDocument::default()
    };

    let mut seen_ips: Vec<(String, String)> = Vec::new();
    for scd in scds {
        for substation in &scd.substations {
            combined.substations.push(substation.clone());
        }
        for ied in &scd.ieds {
            if combined.ied(&ied.name).is_some() {
                diagnostics.push(Diagnostic::error(
                    codes::DUPLICATE_HOST,
                    format!("duplicate IED name {:?} across SCD files", ied.name),
                    "consolidate",
                ));
                continue;
            }
            combined.ieds.push(ied.clone());
        }
        combined
            .templates
            .lnode_types
            .extend(scd.templates.lnode_types.iter().cloned());
        if let Some(comm) = &scd.communication {
            let target = combined
                .communication
                .get_or_insert_with(Communication::default);
            for sn in &comm.subnetworks {
                let mut sn = sn.clone();
                if target
                    .subnetworks
                    .iter()
                    .any(|existing| existing.name == sn.name)
                {
                    let prefix = scd
                        .substations
                        .first()
                        .map(|s| s.name.clone())
                        .unwrap_or_else(|| format!("scd{}", target.subnetworks.len()));
                    sn.name = format!("{prefix}_{}", sn.name);
                }
                for ap in &sn.connected_aps {
                    if let Some((other, _)) = seen_ips.iter().find(|(_, ip)| *ip == ap.ip) {
                        diagnostics.push(Diagnostic::error(
                            codes::DUPLICATE_IP,
                            format!(
                                "IP address {} assigned to both {:?} and {:?}",
                                ap.ip, other, ap.ied_name
                            ),
                            "consolidate",
                        ));
                    } else {
                        seen_ips.push((ap.ied_name.clone(), ap.ip.clone()));
                    }
                }
                target.subnetworks.push(sn);
            }
        }
    }
    combined
        .templates
        .lnode_types
        .sort_by(|a, b| a.id.cmp(&b.id));
    combined.templates.lnode_types.dedup();

    if diagnostics.iter().any(|d| d.severity == Severity::Error) {
        return Err(SclError::Invalid { diagnostics });
    }
    Ok(combined)
}

/// The subnetworks of a consolidated SCD grouped for WAN attachment:
/// `(subnetwork name, ied names)` — one station bus per substation, all to
/// be hung off the single WAN switch by the network compiler.
pub fn station_buses(doc: &SclDocument) -> Vec<(String, Vec<String>)> {
    doc.communication
        .as_ref()
        .map(|c| {
            c.subnetworks
                .iter()
                .map(|sn: &SubNetwork| {
                    (
                        sn.name.clone(),
                        sn.connected_aps
                            .iter()
                            .map(|ap| ap.ied_name.clone())
                            .collect(),
                    )
                })
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::*;

    fn ssd_with(name: &str) -> SclDocument {
        SclDocument {
            substations: vec![Substation {
                name: name.to_string(),
                voltage_levels: vec![VoltageLevel {
                    name: "VL1".into(),
                    voltage_kv: 110.0,
                    bays: vec![Bay {
                        name: "B1".into(),
                        connectivity_nodes: vec![ConnectivityNode {
                            name: "CN1".into(),
                            path_name: format!("{name}/VL1/B1/CN1"),
                            ..ConnectivityNode::default()
                        }],
                        ..Bay::default()
                    }],
                }],
                transformers: vec![],
                ..Substation::default()
            }],
            ..SclDocument::default()
        }
    }

    fn sed_between(a: &str, b: &str) -> SclDocument {
        SclDocument {
            inter_substation_lines: vec![InterSubstationLine {
                name: format!("tie-{a}-{b}"),
                from_substation: a.to_string(),
                from_node: format!("{a}/VL1/B1/CN1"),
                to_substation: b.to_string(),
                to_node: format!("{b}/VL1/B1/CN1"),
                ..InterSubstationLine::default()
            }],
            ..SclDocument::default()
        }
    }

    fn scd_with(substation: &str, ied: &str, ip: &str) -> SclDocument {
        SclDocument {
            substations: vec![Substation {
                name: substation.to_string(),
                ..Substation::default()
            }],
            communication: Some(Communication {
                subnetworks: vec![SubNetwork {
                    name: "StationBus".into(),
                    net_type: "8-MMS".into(),
                    connected_aps: vec![ConnectedAp {
                        ied_name: ied.to_string(),
                        ap_name: "AP1".into(),
                        ip: ip.to_string(),
                        ip_subnet: "255.255.0.0".into(),
                        ..ConnectedAp::default()
                    }],
                    ..SubNetwork::default()
                }],
            }),
            ieds: vec![Ied {
                name: ied.to_string(),
                ..Ied::default()
            }],
            ..SclDocument::default()
        }
    }

    #[test]
    fn ssd_consolidation_combines_substations_and_ties() {
        let combined = consolidate_ssd(
            &[ssd_with("S1"), ssd_with("S2")],
            &[sed_between("S1", "S2")],
        )
        .unwrap();
        assert_eq!(combined.substations.len(), 2);
        assert_eq!(combined.inter_substation_lines.len(), 1);
    }

    #[test]
    fn ssd_consolidation_rejects_unknown_references() {
        let err = consolidate_ssd(&[ssd_with("S1")], &[sed_between("S1", "S9")]).unwrap_err();
        assert!(matches!(err, SclError::Invalid { .. }));
        let err = consolidate_ssd(&[ssd_with("S1"), ssd_with("S1")], &[]).unwrap_err();
        assert!(matches!(err, SclError::Invalid { .. }));
    }

    #[test]
    fn scd_consolidation_merges_and_renames_subnetworks() {
        let combined = consolidate_scd(&[
            scd_with("S1", "S1IED1", "10.0.1.1"),
            scd_with("S2", "S2IED1", "10.0.2.1"),
        ])
        .unwrap();
        assert_eq!(combined.ieds.len(), 2);
        let comm = combined.communication.unwrap();
        assert_eq!(comm.subnetworks.len(), 2);
        assert_eq!(comm.subnetworks[0].name, "StationBus");
        assert_eq!(comm.subnetworks[1].name, "S2_StationBus");
    }

    #[test]
    fn scd_consolidation_rejects_collisions() {
        // Duplicate IED name.
        let err = consolidate_scd(&[
            scd_with("S1", "IED1", "10.0.1.1"),
            scd_with("S2", "IED1", "10.0.2.1"),
        ])
        .unwrap_err();
        assert!(matches!(err, SclError::Invalid { .. }));
        // Duplicate IP.
        let err = consolidate_scd(&[
            scd_with("S1", "A", "10.0.1.1"),
            scd_with("S2", "B", "10.0.1.1"),
        ])
        .unwrap_err();
        assert!(matches!(err, SclError::Invalid { .. }));
    }

    #[test]
    fn station_bus_listing() {
        let combined = consolidate_scd(&[
            scd_with("S1", "S1IED1", "10.0.1.1"),
            scd_with("S2", "S2IED1", "10.0.2.1"),
        ])
        .unwrap();
        let buses = station_buses(&combined);
        assert_eq!(buses.len(), 2);
        assert_eq!(buses[0].1, vec!["S1IED1".to_string()]);
    }
}
