//! Typed model of IEC 61850 SCL (System Configuration description Language)
//! documents — the subset the SG-ML toolchain consumes and produces.

/// The 1-based source position of the element an SCL value was parsed from.
///
/// Positions are advisory metadata for diagnostics: two values that differ
/// only in position compare **equal** (and hash identically), so documents
/// survive write→reparse round-trips and synthesized test fixtures compare
/// cleanly against parsed ones. `line == 0` (the [`Default`]) means the value
/// was built in memory rather than parsed.
#[derive(Debug, Clone, Copy, Default)]
pub struct SourcePos {
    /// 1-based line, or 0 when unknown.
    pub line: u32,
    /// 1-based column, or 0 when unknown.
    pub column: u32,
}

impl SourcePos {
    /// Creates a known position.
    pub fn new(line: u32, column: u32) -> SourcePos {
        SourcePos { line, column }
    }

    /// Whether this position refers to an actual source location.
    pub fn is_known(self) -> bool {
        self.line != 0
    }
}

impl PartialEq for SourcePos {
    fn eq(&self, _other: &SourcePos) -> bool {
        true // positions are metadata, not model content
    }
}

impl Eq for SourcePos {}

impl std::hash::Hash for SourcePos {
    fn hash<H: std::hash::Hasher>(&self, _state: &mut H) {
        // consistent with PartialEq: all positions hash alike
    }
}

/// SCL file kinds, per Table I of the SG-ML paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SclFileKind {
    /// System Specification Description: substation single-line diagram.
    Ssd,
    /// System Configuration Description: complete substation configuration.
    Scd,
    /// IED Capability Description: one IED's functions and data types.
    Icd,
    /// System Exchange Description: inter-substation connectivity.
    Sed,
}

impl std::fmt::Display for SclFileKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SclFileKind::Ssd => "SSD",
            SclFileKind::Scd => "SCD",
            SclFileKind::Icd => "ICD",
            SclFileKind::Sed => "SED",
        };
        write!(f, "{s}")
    }
}

/// The SCL `Header` element.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Header {
    /// Unique id of the description.
    pub id: String,
    /// Version string.
    pub version: String,
    /// Revision string.
    pub revision: String,
}

/// Conducting-equipment categories used by the cyber range, following the
/// SCL common equipment type codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EquipmentType {
    /// Circuit breaker.
    CircuitBreaker,
    /// Disconnector / isolator.
    Disconnector,
    /// Generator.
    Generator,
    /// Battery / storage.
    Battery,
    /// Incoming feeder line (external grid infeed).
    IncomingFeeder,
    /// Load.
    Load,
    /// Line segment (with electrical parameters in a `Private` element).
    Line,
    /// Current transformer (instrumentation; no power-flow effect).
    CurrentTransformer,
    /// Voltage transformer (instrumentation; no power-flow effect).
    VoltageTransformer,
    /// Anything else (kept verbatim).
    #[default]
    Other,
}

impl EquipmentType {
    /// Parses the SCL type code.
    pub fn parse(code: &str) -> EquipmentType {
        match code {
            "CBR" => EquipmentType::CircuitBreaker,
            "DIS" => EquipmentType::Disconnector,
            "GEN" => EquipmentType::Generator,
            "BAT" => EquipmentType::Battery,
            "IFL" => EquipmentType::IncomingFeeder,
            "LOD" => EquipmentType::Load,
            "LIN" => EquipmentType::Line,
            "CTR" => EquipmentType::CurrentTransformer,
            "VTR" => EquipmentType::VoltageTransformer,
            _ => EquipmentType::Other,
        }
    }

    /// The SCL type code.
    pub fn code(self) -> &'static str {
        match self {
            EquipmentType::CircuitBreaker => "CBR",
            EquipmentType::Disconnector => "DIS",
            EquipmentType::Generator => "GEN",
            EquipmentType::Battery => "BAT",
            EquipmentType::IncomingFeeder => "IFL",
            EquipmentType::Load => "LOD",
            EquipmentType::Line => "LIN",
            EquipmentType::CurrentTransformer => "CTR",
            EquipmentType::VoltageTransformer => "VTR",
            EquipmentType::Other => "OTH",
        }
    }
}

/// A terminal of conducting equipment, tied to a connectivity node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Terminal {
    /// Terminal name (`T1`, `T2`).
    pub name: String,
    /// The `pathName` of the connectivity node this terminal attaches to.
    pub connectivity_node: String,
}

/// Electrical parameters carried in `Private type="sgcr:…"` extensions.
///
/// Real SSD files do not carry impedances; SG-ML supplements them. This
/// toolchain keeps the supplements inline as SCL `Private` elements (the
/// standard extension mechanism), written by the model generators.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ElectricalParams {
    /// Active power in MW (loads, generators, infeeds).
    pub p_mw: Option<f64>,
    /// Reactive power in Mvar.
    pub q_mvar: Option<f64>,
    /// Voltage set-point in per-unit (generators, infeeds).
    pub vm_pu: Option<f64>,
    /// Line length in km.
    pub length_km: Option<f64>,
    /// Line resistance in ohm/km.
    pub r_ohm_per_km: Option<f64>,
    /// Line reactance in ohm/km.
    pub x_ohm_per_km: Option<f64>,
    /// Line charging capacitance in nF/km.
    pub c_nf_per_km: Option<f64>,
    /// Line thermal limit in kA.
    pub max_i_ka: Option<f64>,
    /// Transformer rating in MVA.
    pub sn_mva: Option<f64>,
    /// Transformer short-circuit voltage in percent.
    pub vk_percent: Option<f64>,
    /// Transformer resistive short-circuit voltage in percent.
    pub vkr_percent: Option<f64>,
}

/// A piece of primary equipment in a bay.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConductingEquipment {
    /// Source position of the element.
    pub pos: SourcePos,
    /// Equipment name (unique within the substation by convention).
    pub name: String,
    /// Equipment category.
    pub eq_type: EquipmentType,
    /// Raw SCL type code (preserves unknown codes).
    pub type_code: String,
    /// Terminals (1 for loads/gens, 2 for breakers/lines).
    pub terminals: Vec<Terminal>,
    /// Electrical parameters from `Private` extensions.
    pub params: ElectricalParams,
    /// Normally-open flag for switching equipment.
    pub normally_open: bool,
}

/// A connectivity node (electrical junction → power-flow bus).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConnectivityNode {
    /// Source position of the element.
    pub pos: SourcePos,
    /// Local name.
    pub name: String,
    /// Full path name (`Substation/VoltageLevel/Bay/Name`).
    pub path_name: String,
}

/// A reference from primary equipment to a logical node on an IED.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LNodeRef {
    /// Source position of the element.
    pub pos: SourcePos,
    /// IED name.
    pub ied_name: String,
    /// LN class (e.g. `XCBR`, `PTOC`).
    pub ln_class: String,
    /// LN instance.
    pub ln_inst: String,
    /// LD instance on the IED.
    pub ld_inst: String,
}

/// A bay within a voltage level.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Bay {
    /// Bay name.
    pub name: String,
    /// Equipment in the bay.
    pub equipment: Vec<ConductingEquipment>,
    /// Connectivity nodes declared in the bay.
    pub connectivity_nodes: Vec<ConnectivityNode>,
    /// Function references to IED logical nodes.
    pub lnodes: Vec<LNodeRef>,
}

/// A transformer winding.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerWinding {
    /// Winding name (`W1` HV, `W2` LV).
    pub name: String,
    /// The terminal tying this winding to a connectivity node.
    pub terminal: Terminal,
    /// Rated winding voltage in kV.
    pub rated_kv: f64,
}

/// A power transformer (may span voltage levels).
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTransformer {
    /// Source position of the element.
    pub pos: SourcePos,
    /// Transformer name.
    pub name: String,
    /// Windings (2 supported).
    pub windings: Vec<TransformerWinding>,
    /// Electrical parameters from `Private` extensions.
    pub params: ElectricalParams,
}

/// A voltage level within a substation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VoltageLevel {
    /// Voltage level name.
    pub name: String,
    /// Nominal voltage in kV.
    pub voltage_kv: f64,
    /// Bays.
    pub bays: Vec<Bay>,
}

/// A substation: the single-line diagram of the SSD.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Substation {
    /// Source position of the element.
    pub pos: SourcePos,
    /// Substation name.
    pub name: String,
    /// Voltage levels.
    pub voltage_levels: Vec<VoltageLevel>,
    /// Power transformers.
    pub transformers: Vec<PowerTransformer>,
}

/// A GSE (GOOSE) address block on a connected access point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GseAddress {
    /// LD instance hosting the control block.
    pub ld_inst: String,
    /// Control block name.
    pub cb_name: String,
    /// Multicast MAC address string.
    pub mac: String,
    /// APPID (hex in SCL, parsed).
    pub appid: u16,
    /// VLAN id.
    pub vlan_id: u16,
}

/// One IED access point on a subnetwork, with its addressing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConnectedAp {
    /// Source position of the element.
    pub pos: SourcePos,
    /// IED name.
    pub ied_name: String,
    /// Access point name.
    pub ap_name: String,
    /// IP address.
    pub ip: String,
    /// Subnet mask.
    pub ip_subnet: String,
    /// Device MAC address (SCL `MAC-Address` P type).
    pub mac: Option<String>,
    /// GOOSE address blocks.
    pub gse: Vec<GseAddress>,
}

/// A communication subnetwork.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SubNetwork {
    /// Source position of the element.
    pub pos: SourcePos,
    /// Subnetwork name.
    pub name: String,
    /// Subnetwork type (e.g. `8-MMS`).
    pub net_type: String,
    /// Access points on this subnetwork.
    pub connected_aps: Vec<ConnectedAp>,
}

/// The `Communication` section.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Communication {
    /// Subnetworks.
    pub subnetworks: Vec<SubNetwork>,
}

/// A logical node instance on an IED.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ln {
    /// Prefix (may be empty).
    pub prefix: String,
    /// LN class (`XCBR`, `PTOC`, `MMXU`, `CSWI`, `CILO`, `PDIF`, …).
    pub ln_class: String,
    /// Instance number as a string.
    pub inst: String,
    /// Reference into `DataTypeTemplates`.
    pub ln_type: String,
}

impl Ln {
    /// The concatenated LN name (`prefix + class + inst`), e.g. `XCBR1`.
    pub fn name(&self) -> String {
        format!("{}{}{}", self.prefix, self.ln_class, self.inst)
    }
}

/// A logical device on an IED access point.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LDevice {
    /// LD instance name.
    pub inst: String,
    /// Logical nodes (includes LLN0 when declared).
    pub lns: Vec<Ln>,
}

/// An IED access point (server).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AccessPoint {
    /// Access point name.
    pub name: String,
    /// Logical devices.
    pub ldevices: Vec<LDevice>,
}

/// An IED.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ied {
    /// Source position of the element.
    pub pos: SourcePos,
    /// IED name.
    pub name: String,
    /// Manufacturer string.
    pub manufacturer: String,
    /// IED type string.
    pub ied_type: String,
    /// Access points.
    pub access_points: Vec<AccessPoint>,
}

impl Ied {
    /// All LN classes declared anywhere on this IED (deduplicated, sorted).
    pub fn ln_classes(&self) -> Vec<String> {
        let mut classes: Vec<String> = self
            .access_points
            .iter()
            .flat_map(|ap| ap.ldevices.iter())
            .flat_map(|ld| ld.lns.iter())
            .map(|ln| ln.ln_class.clone())
            .collect();
        classes.sort();
        classes.dedup();
        classes
    }

    /// Whether any LN of the given class is declared.
    pub fn has_ln_class(&self, class: &str) -> bool {
        self.access_points
            .iter()
            .flat_map(|ap| ap.ldevices.iter())
            .flat_map(|ld| ld.lns.iter())
            .any(|ln| ln.ln_class == class)
    }
}

/// A logical-node type template (feature discovery from ICDs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LNodeType {
    /// Template id.
    pub id: String,
    /// LN class.
    pub ln_class: String,
    /// Data object names.
    pub dos: Vec<String>,
}

/// The `DataTypeTemplates` section (LNodeTypes only).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DataTypeTemplates {
    /// LN type templates.
    pub lnode_types: Vec<LNodeType>,
}

/// An inter-substation tie declared by an SED file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct InterSubstationLine {
    /// Source position of the element.
    pub pos: SourcePos,
    /// Tie line name.
    pub name: String,
    /// From substation name.
    pub from_substation: String,
    /// Connectivity-node path in the from substation.
    pub from_node: String,
    /// To substation name.
    pub to_substation: String,
    /// Connectivity-node path in the to substation.
    pub to_node: String,
    /// Line electrical parameters.
    pub params: ElectricalParams,
    /// IEDs involved in inter-substation protection over this tie.
    pub protection_ieds: Vec<String>,
}

/// A parsed SCL document of any kind.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SclDocument {
    /// The header.
    pub header: Header,
    /// Substations (SSD/SCD; SED references them by name).
    pub substations: Vec<Substation>,
    /// Communication section (SCD).
    pub communication: Option<Communication>,
    /// IEDs (SCD/ICD).
    pub ieds: Vec<Ied>,
    /// Data type templates (ICD/SCD).
    pub templates: DataTypeTemplates,
    /// Inter-substation ties (SED).
    pub inter_substation_lines: Vec<InterSubstationLine>,
}

impl SclDocument {
    /// Finds a substation by name.
    pub fn substation(&self, name: &str) -> Option<&Substation> {
        self.substations.iter().find(|s| s.name == name)
    }

    /// Finds an IED by name.
    pub fn ied(&self, name: &str) -> Option<&Ied> {
        self.ieds.iter().find(|i| i.name == name)
    }

    /// All connectivity-node path names across all substations.
    pub fn connectivity_node_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.substations {
            for vl in &s.voltage_levels {
                for bay in &vl.bays {
                    for cn in &bay.connectivity_nodes {
                        out.push(cn.path_name.clone());
                    }
                }
            }
        }
        out
    }
}
