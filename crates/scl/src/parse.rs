//! Parsers from XML to the typed SCL model, one entry point per file kind.

use crate::codes;
use crate::error::{Diagnostic, SclError};
use crate::types::*;
use sgcr_xml::{Document, ElementRef};

/// The source position of an element, or the unknown position for documents
/// built in memory.
fn pos_of(el: &ElementRef<'_>) -> SourcePos {
    el.position()
        .map(|p| SourcePos::new(p.line, p.column))
        .unwrap_or_default()
}

/// Parses any SCL document without kind-specific requirements.
///
/// # Errors
///
/// Returns [`SclError`] if the text is not well-formed XML or not SCL.
pub fn parse_scl(text: &str) -> Result<SclDocument, SclError> {
    let (parsed, diagnostics) = parse_scl_lenient(text)?;
    if diagnostics
        .iter()
        .any(|d| d.severity == crate::error::Severity::Error)
    {
        return Err(SclError::Invalid { diagnostics });
    }
    Ok(parsed)
}

/// Parses any SCL document, returning the model alongside *all* structural
/// diagnostics (warnings and errors) instead of failing on errors — the
/// entry point analyzers use so a flawed document can still be inspected.
///
/// # Errors
///
/// Returns [`SclError`] only when the text is not well-formed XML or the
/// root element is not `<SCL>`.
pub fn parse_scl_lenient(text: &str) -> Result<(SclDocument, Vec<Diagnostic>), SclError> {
    let doc = Document::parse(text).map_err(|e| SclError::Xml(e.to_string()))?;
    let root = doc.root_element();
    if root.name() != "SCL" {
        return Err(SclError::NotScl {
            root: root.name().to_string(),
        });
    }
    let mut diagnostics = Vec::new();
    let parsed = parse_document(&root, &mut diagnostics);
    Ok((parsed, diagnostics))
}

/// Parses an SSD: requires at least one `Substation`.
///
/// # Errors
///
/// See [`parse_scl`]; additionally fails if no substation is present.
pub fn parse_ssd(text: &str) -> Result<SclDocument, SclError> {
    let doc = parse_scl(text)?;
    if doc.substations.is_empty() {
        return Err(SclError::MissingSection {
            kind: SclFileKind::Ssd,
            section: "Substation",
        });
    }
    Ok(doc)
}

/// Parses an SCD: requires `Substation`, `Communication`, and `IED`s.
///
/// # Errors
///
/// See [`parse_scl`]; additionally fails when a required section is absent.
pub fn parse_scd(text: &str) -> Result<SclDocument, SclError> {
    let doc = parse_scl(text)?;
    if doc.communication.is_none() {
        return Err(SclError::MissingSection {
            kind: SclFileKind::Scd,
            section: "Communication",
        });
    }
    if doc.ieds.is_empty() {
        return Err(SclError::MissingSection {
            kind: SclFileKind::Scd,
            section: "IED",
        });
    }
    Ok(doc)
}

/// Parses an ICD: requires exactly one `IED` and its templates.
///
/// # Errors
///
/// See [`parse_scl`]; additionally fails when no IED is described.
pub fn parse_icd(text: &str) -> Result<SclDocument, SclError> {
    let doc = parse_scl(text)?;
    if doc.ieds.is_empty() {
        return Err(SclError::MissingSection {
            kind: SclFileKind::Icd,
            section: "IED",
        });
    }
    Ok(doc)
}

/// Parses an SED: requires inter-substation connectivity.
///
/// # Errors
///
/// See [`parse_scl`]; additionally fails when no tie line is declared.
pub fn parse_sed(text: &str) -> Result<SclDocument, SclError> {
    let doc = parse_scl(text)?;
    if doc.inter_substation_lines.is_empty() {
        return Err(SclError::MissingSection {
            kind: SclFileKind::Sed,
            section: "Private(sgcr:InterSubstationLine)",
        });
    }
    Ok(doc)
}

fn parse_document(root: &ElementRef<'_>, diagnostics: &mut Vec<Diagnostic>) -> SclDocument {
    let header = root
        .child("Header")
        .map(|h| Header {
            id: h.attr_or("id", "").to_string(),
            version: h.attr_or("version", "").to_string(),
            revision: h.attr_or("revision", "").to_string(),
        })
        .unwrap_or_else(|| {
            diagnostics.push(Diagnostic::warning(
                codes::MISSING_HEADER,
                "missing <Header>",
                "SCL",
            ));
            Header::default()
        });

    let substations = root
        .children_named("Substation")
        .iter()
        .map(|s| parse_substation(s, diagnostics))
        .collect();

    let communication = root.child("Communication").map(|c| parse_communication(&c));

    let ieds = root
        .children_named("IED")
        .iter()
        .map(|i| parse_ied(i, diagnostics))
        .collect();

    let templates = root
        .child("DataTypeTemplates")
        .map(|t| parse_templates(&t))
        .unwrap_or_default();

    let inter_substation_lines = root
        .children_named("Private")
        .iter()
        .filter(|p| p.attr("type") == Some("sgcr:InterSubstationLine"))
        .filter_map(|p| parse_tie_line(p, diagnostics))
        .collect();

    SclDocument {
        header,
        substations,
        communication,
        ieds,
        templates,
        inter_substation_lines,
    }
}

fn parse_params(parent: &ElementRef<'_>) -> ElectricalParams {
    let mut params = ElectricalParams::default();
    for private in parent.children_named("Private") {
        if private.attr("type") != Some("sgcr:ElectricalParams") {
            continue;
        }
        params.p_mw = private.attr_parse("p_mw").or(params.p_mw);
        params.q_mvar = private.attr_parse("q_mvar").or(params.q_mvar);
        params.vm_pu = private.attr_parse("vm_pu").or(params.vm_pu);
        params.length_km = private.attr_parse("length_km").or(params.length_km);
        params.r_ohm_per_km = private.attr_parse("r_ohm_per_km").or(params.r_ohm_per_km);
        params.x_ohm_per_km = private.attr_parse("x_ohm_per_km").or(params.x_ohm_per_km);
        params.c_nf_per_km = private.attr_parse("c_nf_per_km").or(params.c_nf_per_km);
        params.max_i_ka = private.attr_parse("max_i_ka").or(params.max_i_ka);
        params.sn_mva = private.attr_parse("sn_mva").or(params.sn_mva);
        params.vk_percent = private.attr_parse("vk_percent").or(params.vk_percent);
        params.vkr_percent = private.attr_parse("vkr_percent").or(params.vkr_percent);
    }
    params
}

fn parse_substation(s: &ElementRef<'_>, diagnostics: &mut Vec<Diagnostic>) -> Substation {
    let name = s.attr_or("name", "").to_string();
    if name.is_empty() {
        diagnostics.push(Diagnostic::error(
            codes::UNNAMED_ELEMENT,
            "substation without a name",
            "Substation",
        ));
    }
    let voltage_levels = s
        .children_named("VoltageLevel")
        .iter()
        .map(|vl| parse_voltage_level(vl, &name, diagnostics))
        .collect();
    let transformers = s
        .children_named("PowerTransformer")
        .iter()
        .map(|t| parse_transformer(t, diagnostics))
        .collect();
    Substation {
        pos: pos_of(s),
        name,
        voltage_levels,
        transformers,
    }
}

fn parse_voltage_level(
    vl: &ElementRef<'_>,
    substation: &str,
    diagnostics: &mut Vec<Diagnostic>,
) -> VoltageLevel {
    let name = vl.attr_or("name", "").to_string();
    // <Voltage multiplier="k" unit="V">110</Voltage>
    let voltage_kv = vl
        .child("Voltage")
        .map(|v| {
            let value: f64 = v.text().trim().parse().unwrap_or_else(|_| {
                diagnostics.push(Diagnostic::error(
                    codes::UNPARSABLE_VALUE,
                    "unparsable <Voltage> value",
                    format!("{substation}/{name}"),
                ));
                0.0
            });
            match v.attr_or("multiplier", "k") {
                "k" => value,
                "M" => value * 1000.0,
                "" | "none" => value / 1000.0,
                other => {
                    diagnostics.push(Diagnostic::warning(
                        codes::UNKNOWN_MULTIPLIER,
                        format!("unknown voltage multiplier {other:?}, assuming kV"),
                        format!("{substation}/{name}"),
                    ));
                    value
                }
            }
        })
        .unwrap_or_else(|| {
            diagnostics.push(Diagnostic::warning(
                codes::UNPARSABLE_VALUE,
                "voltage level without <Voltage>, assuming 20 kV",
                format!("{substation}/{name}"),
            ));
            20.0
        });
    let bays = vl
        .children_named("Bay")
        .iter()
        .map(|b| parse_bay(b, substation, &name, diagnostics))
        .collect();
    VoltageLevel {
        name,
        voltage_kv,
        bays,
    }
}

fn parse_bay(
    b: &ElementRef<'_>,
    substation: &str,
    voltage_level: &str,
    diagnostics: &mut Vec<Diagnostic>,
) -> Bay {
    let name = b.attr_or("name", "").to_string();
    let connectivity_nodes = b
        .children_named("ConnectivityNode")
        .iter()
        .map(|cn| ConnectivityNode {
            pos: pos_of(cn),
            name: cn.attr_or("name", "").to_string(),
            path_name: cn.attr("pathName").map(str::to_string).unwrap_or_else(|| {
                format!(
                    "{substation}/{voltage_level}/{name}/{}",
                    cn.attr_or("name", "")
                )
            }),
        })
        .collect();
    let equipment = b
        .children_named("ConductingEquipment")
        .iter()
        .map(|ce| {
            let type_code = ce.attr_or("type", "OTH").to_string();
            let terminals = ce
                .children_named("Terminal")
                .iter()
                .map(|t| Terminal {
                    name: t.attr_or("name", "").to_string(),
                    connectivity_node: t
                        .attr("connectivityNode")
                        .or(t.attr("cNodeName"))
                        .unwrap_or("")
                        .to_string(),
                })
                .collect::<Vec<_>>();
            if terminals.is_empty() {
                diagnostics.push(Diagnostic::warning(
                    codes::EQUIPMENT_NO_TERMINAL,
                    "equipment without terminals",
                    format!(
                        "{substation}/{voltage_level}/{name}/{}",
                        ce.attr_or("name", "")
                    ),
                ));
            }
            ConductingEquipment {
                pos: pos_of(ce),
                name: ce.attr_or("name", "").to_string(),
                eq_type: EquipmentType::parse(&type_code),
                type_code,
                terminals,
                params: parse_params(ce),
                normally_open: ce.attr("sgcr:normallyOpen") == Some("true"),
            }
        })
        .collect();
    let lnodes = b
        .children_named("LNode")
        .iter()
        .map(|ln| LNodeRef {
            pos: pos_of(ln),
            ied_name: ln.attr_or("iedName", "").to_string(),
            ln_class: ln.attr_or("lnClass", "").to_string(),
            ln_inst: ln.attr_or("lnInst", "").to_string(),
            ld_inst: ln.attr_or("ldInst", "").to_string(),
        })
        .collect();
    Bay {
        name,
        equipment,
        connectivity_nodes,
        lnodes,
    }
}

fn parse_transformer(t: &ElementRef<'_>, diagnostics: &mut Vec<Diagnostic>) -> PowerTransformer {
    let name = t.attr_or("name", "").to_string();
    let windings: Vec<TransformerWinding> = t
        .children_named("TransformerWinding")
        .iter()
        .map(|w| {
            let terminal = w
                .child("Terminal")
                .map(|term| Terminal {
                    name: term.attr_or("name", "").to_string(),
                    connectivity_node: term
                        .attr("connectivityNode")
                        .or(term.attr("cNodeName"))
                        .unwrap_or("")
                        .to_string(),
                })
                .unwrap_or_else(|| {
                    diagnostics.push(Diagnostic::error(
                        codes::WINDING_NO_TERMINAL,
                        "transformer winding without a terminal",
                        name.clone(),
                    ));
                    Terminal {
                        name: String::new(),
                        connectivity_node: String::new(),
                    }
                });
            TransformerWinding {
                name: w.attr_or("name", "").to_string(),
                terminal,
                rated_kv: w.attr_parse("sgcr:ratedKV").unwrap_or(0.0),
            }
        })
        .collect();
    if windings.len() != 2 {
        diagnostics.push(Diagnostic::warning(
            codes::WINDING_COUNT,
            format!("transformer has {} windings, expected 2", windings.len()),
            name.clone(),
        ));
    }
    PowerTransformer {
        pos: pos_of(t),
        name,
        windings,
        params: parse_params(t),
    }
}

fn parse_communication(c: &ElementRef<'_>) -> Communication {
    let subnetworks = c
        .children_named("SubNetwork")
        .iter()
        .map(|sn| {
            let connected_aps = sn
                .children_named("ConnectedAP")
                .iter()
                .map(|ap| {
                    let mut ip = String::new();
                    let mut ip_subnet = String::new();
                    let mut mac = None;
                    if let Some(address) = ap.child("Address") {
                        for p in address.children_named("P") {
                            match p.attr_or("type", "") {
                                "IP" => ip = p.text().trim().to_string(),
                                "IP-SUBNET" => ip_subnet = p.text().trim().to_string(),
                                "MAC-Address" => mac = Some(p.text().trim().to_string()),
                                _ => {}
                            }
                        }
                    }
                    let gse = ap
                        .children_named("GSE")
                        .iter()
                        .map(|g| {
                            let mut mac = String::new();
                            let mut appid = 0u16;
                            let mut vlan_id = 0u16;
                            if let Some(address) = g.child("Address") {
                                for p in address.children_named("P") {
                                    match p.attr_or("type", "") {
                                        "MAC-Address" => mac = p.text().trim().to_string(),
                                        "APPID" => {
                                            appid = u16::from_str_radix(p.text().trim(), 16)
                                                .unwrap_or(0)
                                        }
                                        "VLAN-ID" => {
                                            vlan_id = u16::from_str_radix(p.text().trim(), 16)
                                                .unwrap_or(0)
                                        }
                                        _ => {}
                                    }
                                }
                            }
                            GseAddress {
                                ld_inst: g.attr_or("ldInst", "").to_string(),
                                cb_name: g.attr_or("cbName", "").to_string(),
                                mac,
                                appid,
                                vlan_id,
                            }
                        })
                        .collect();
                    ConnectedAp {
                        pos: pos_of(ap),
                        ied_name: ap.attr_or("iedName", "").to_string(),
                        ap_name: ap.attr_or("apName", "").to_string(),
                        ip,
                        ip_subnet,
                        mac,
                        gse,
                    }
                })
                .collect();
            SubNetwork {
                pos: pos_of(sn),
                name: sn.attr_or("name", "").to_string(),
                net_type: sn.attr_or("type", "").to_string(),
                connected_aps,
            }
        })
        .collect();
    Communication { subnetworks }
}

fn parse_ied(i: &ElementRef<'_>, diagnostics: &mut Vec<Diagnostic>) -> Ied {
    let name = i.attr_or("name", "").to_string();
    if name.is_empty() {
        diagnostics.push(Diagnostic::error(
            codes::UNNAMED_ELEMENT,
            "IED without a name",
            "IED",
        ));
    }
    let access_points = i
        .children_named("AccessPoint")
        .iter()
        .map(|ap| {
            let ldevices = ap
                .descendants_named("LDevice")
                .iter()
                .map(|ld| {
                    let mut lns: Vec<Ln> = Vec::new();
                    if let Some(lln0) = ld.child("LN0") {
                        lns.push(Ln {
                            prefix: String::new(),
                            ln_class: "LLN0".to_string(),
                            inst: String::new(),
                            ln_type: lln0.attr_or("lnType", "").to_string(),
                        });
                    }
                    for ln in ld.children_named("LN") {
                        lns.push(Ln {
                            prefix: ln.attr_or("prefix", "").to_string(),
                            ln_class: ln.attr_or("lnClass", "").to_string(),
                            inst: ln.attr_or("inst", "").to_string(),
                            ln_type: ln.attr_or("lnType", "").to_string(),
                        });
                    }
                    LDevice {
                        inst: ld.attr_or("inst", "").to_string(),
                        lns,
                    }
                })
                .collect();
            AccessPoint {
                name: ap.attr_or("name", "").to_string(),
                ldevices,
            }
        })
        .collect();
    Ied {
        pos: pos_of(i),
        name,
        manufacturer: i.attr_or("manufacturer", "").to_string(),
        ied_type: i.attr_or("type", "").to_string(),
        access_points,
    }
}

fn parse_templates(t: &ElementRef<'_>) -> DataTypeTemplates {
    let lnode_types = t
        .children_named("LNodeType")
        .iter()
        .map(|lt| LNodeType {
            id: lt.attr_or("id", "").to_string(),
            ln_class: lt.attr_or("lnClass", "").to_string(),
            dos: lt
                .children_named("DO")
                .iter()
                .map(|d| d.attr_or("name", "").to_string())
                .collect(),
        })
        .collect();
    DataTypeTemplates { lnode_types }
}

fn parse_tie_line(
    p: &ElementRef<'_>,
    diagnostics: &mut Vec<Diagnostic>,
) -> Option<InterSubstationLine> {
    let line = p.child("Line")?;
    let name = line.attr_or("name", "").to_string();
    let from_substation = line.attr_or("fromSubstation", "").to_string();
    let to_substation = line.attr_or("toSubstation", "").to_string();
    if from_substation.is_empty() || to_substation.is_empty() {
        diagnostics.push(Diagnostic::error(
            codes::TIE_MISSING_REFS,
            "tie line missing substation references",
            name.clone(),
        ));
        return None;
    }
    let protection_ieds = line
        .children_named("ProtectionIED")
        .iter()
        .map(|e| e.attr_or("name", "").to_string())
        .collect();
    Some(InterSubstationLine {
        pos: pos_of(&line),
        name,
        from_node: line.attr_or("fromNode", "").to_string(),
        to_node: line.attr_or("toNode", "").to_string(),
        from_substation,
        to_substation,
        params: parse_params(&line),
        protection_ieds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI_SSD: &str = r#"<?xml version="1.0"?>
<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="mini" version="1" revision="A"/>
  <Substation name="S1">
    <PowerTransformer name="T1">
      <TransformerWinding name="W1" sgcr:ratedKV="110">
        <Terminal name="T1" connectivityNode="S1/VL1/B1/CN1"/>
      </TransformerWinding>
      <TransformerWinding name="W2" sgcr:ratedKV="20">
        <Terminal name="T1" connectivityNode="S1/VL2/B1/CN2"/>
      </TransformerWinding>
      <Private type="sgcr:ElectricalParams" sn_mva="25" vk_percent="12" vkr_percent="0.6"/>
    </PowerTransformer>
    <VoltageLevel name="VL1">
      <Voltage multiplier="k" unit="V">110</Voltage>
      <Bay name="B1">
        <ConnectivityNode name="CN1" pathName="S1/VL1/B1/CN1"/>
        <ConductingEquipment name="GRID" type="IFL">
          <Terminal name="T1" connectivityNode="S1/VL1/B1/CN1"/>
          <Private type="sgcr:ElectricalParams" vm_pu="1.0"/>
        </ConductingEquipment>
        <LNode iedName="GIED1" lnClass="XCBR" lnInst="1" ldInst="LD0"/>
      </Bay>
    </VoltageLevel>
    <VoltageLevel name="VL2">
      <Voltage multiplier="k" unit="V">20</Voltage>
      <Bay name="B1">
        <ConnectivityNode name="CN2" pathName="S1/VL2/B1/CN2"/>
        <ConductingEquipment name="CB1" type="CBR">
          <Terminal name="T1" connectivityNode="S1/VL2/B1/CN2"/>
          <Terminal name="T2" connectivityNode="S1/VL2/B1/CN3"/>
        </ConductingEquipment>
        <ConnectivityNode name="CN3" pathName="S1/VL2/B1/CN3"/>
        <ConductingEquipment name="LOAD1" type="LOD">
          <Terminal name="T1" connectivityNode="S1/VL2/B1/CN3"/>
          <Private type="sgcr:ElectricalParams" p_mw="10" q_mvar="3"/>
        </ConductingEquipment>
      </Bay>
    </VoltageLevel>
  </Substation>
</SCL>"#;

    #[test]
    fn parse_ssd_extracts_topology() {
        let doc = parse_ssd(MINI_SSD).unwrap();
        assert_eq!(doc.header.id, "mini");
        let s = &doc.substations[0];
        assert_eq!(s.name, "S1");
        assert_eq!(s.voltage_levels.len(), 2);
        assert_eq!(s.voltage_levels[0].voltage_kv, 110.0);
        assert_eq!(s.transformers.len(), 1);
        assert_eq!(s.transformers[0].params.sn_mva, Some(25.0));
        assert_eq!(s.transformers[0].windings[0].rated_kv, 110.0);
        let bay = &s.voltage_levels[1].bays[0];
        assert_eq!(bay.equipment.len(), 2);
        assert_eq!(bay.equipment[0].eq_type, EquipmentType::CircuitBreaker);
        assert_eq!(bay.equipment[1].params.p_mw, Some(10.0));
        assert_eq!(doc.connectivity_node_paths().len(), 3);
        // LNode reference captured.
        let lnode = &s.voltage_levels[0].bays[0].lnodes[0];
        assert_eq!(lnode.ied_name, "GIED1");
        assert_eq!(lnode.ln_class, "XCBR");
    }

    const MINI_SCD: &str = r#"<?xml version="1.0"?>
<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="mini-scd" version="1" revision="A"/>
  <Substation name="S1"><VoltageLevel name="VL1"><Voltage>110</Voltage></VoltageLevel></Substation>
  <Communication>
    <SubNetwork name="StationBus" type="8-MMS">
      <ConnectedAP iedName="GIED1" apName="AP1">
        <Address>
          <P type="IP">10.0.1.11</P>
          <P type="IP-SUBNET">255.255.255.0</P>
          <P type="MAC-Address">02-00-00-00-01-0B</P>
        </Address>
        <GSE ldInst="LD0" cbName="gcb01">
          <Address>
            <P type="MAC-Address">01-0C-CD-01-00-01</P>
            <P type="APPID">3001</P>
            <P type="VLAN-ID">005</P>
          </Address>
        </GSE>
      </ConnectedAP>
      <ConnectedAP iedName="SCADA" apName="AP1">
        <Address><P type="IP">10.0.1.100</P><P type="IP-SUBNET">255.255.255.0</P></Address>
      </ConnectedAP>
    </SubNetwork>
  </Communication>
  <IED name="GIED1" manufacturer="sgcr" type="virtual-ied">
    <AccessPoint name="AP1">
      <Server>
        <LDevice inst="LD0">
          <LN0 lnClass="LLN0" inst="" lnType="LLN0_T"/>
          <LN lnClass="XCBR" inst="1" lnType="XCBR_T"/>
          <LN lnClass="PTOC" inst="1" lnType="PTOC_T"/>
          <LN lnClass="MMXU" inst="1" lnType="MMXU_T"/>
        </LDevice>
      </Server>
    </AccessPoint>
  </IED>
  <DataTypeTemplates>
    <LNodeType id="XCBR_T" lnClass="XCBR"><DO name="Pos" type="DPC"/></LNodeType>
    <LNodeType id="PTOC_T" lnClass="PTOC"><DO name="Str" type="ACD"/><DO name="Op" type="ACT"/></LNodeType>
  </DataTypeTemplates>
</SCL>"#;

    #[test]
    fn parse_scd_extracts_network_and_ieds() {
        let doc = parse_scd(MINI_SCD).unwrap();
        let comm = doc.communication.as_ref().unwrap();
        assert_eq!(comm.subnetworks.len(), 1);
        let aps = &comm.subnetworks[0].connected_aps;
        assert_eq!(aps.len(), 2);
        assert_eq!(aps[0].ip, "10.0.1.11");
        assert_eq!(aps[0].mac.as_deref(), Some("02-00-00-00-01-0B"));
        assert_eq!(aps[0].gse[0].appid, 0x3001);
        assert_eq!(aps[0].gse[0].vlan_id, 5);
        let ied = doc.ied("GIED1").unwrap();
        assert!(ied.has_ln_class("PTOC"));
        assert!(ied.has_ln_class("LLN0"));
        assert!(!ied.has_ln_class("PTOV"));
        assert_eq!(doc.templates.lnode_types.len(), 2);
    }

    #[test]
    fn ssd_without_substation_rejected() {
        let text = r#"<SCL><Header id="x"/></SCL>"#;
        assert!(matches!(
            parse_ssd(text),
            Err(SclError::MissingSection {
                section: "Substation",
                ..
            })
        ));
    }

    #[test]
    fn scd_without_communication_rejected() {
        assert!(matches!(
            parse_scd(MINI_SSD),
            Err(SclError::MissingSection {
                section: "Communication",
                ..
            })
        ));
    }

    #[test]
    fn non_scl_rejected() {
        assert!(matches!(
            parse_scl("<Workspace/>"),
            Err(SclError::NotScl { .. })
        ));
        assert!(matches!(parse_scl("not xml <<<"), Err(SclError::Xml(_))));
    }

    const MINI_SED: &str = r#"<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="sed-s1-s2" version="1"/>
  <Private type="sgcr:InterSubstationLine">
    <Line name="tie12" fromSubstation="S1" fromNode="S1/VL1/B1/CN1"
          toSubstation="S2" toNode="S2/VL1/B1/CN1">
      <Private type="sgcr:ElectricalParams" length_km="25" r_ohm_per_km="0.06" x_ohm_per_km="0.3" max_i_ka="0.8"/>
      <ProtectionIED name="S1PIED1"/>
      <ProtectionIED name="S2PIED1"/>
    </Line>
  </Private>
</SCL>"#;

    #[test]
    fn parse_sed_extracts_tie_lines() {
        let doc = parse_sed(MINI_SED).unwrap();
        assert_eq!(doc.inter_substation_lines.len(), 1);
        let tie = &doc.inter_substation_lines[0];
        assert_eq!(tie.from_substation, "S1");
        assert_eq!(tie.to_substation, "S2");
        assert_eq!(tie.params.length_km, Some(25.0));
        assert_eq!(tie.protection_ieds, vec!["S1PIED1", "S2PIED1"]);
    }

    #[test]
    fn sed_without_ties_rejected() {
        assert!(matches!(
            parse_sed(MINI_SSD),
            Err(SclError::MissingSection { .. })
        ));
    }

    #[test]
    fn parsed_elements_carry_positions() {
        let doc = parse_ssd(MINI_SSD).unwrap();
        let s = &doc.substations[0];
        assert!(s.pos.is_known());
        assert_eq!(s.pos.line, 4); // <Substation> on line 4 of MINI_SSD
        let cb = &s.voltage_levels[1].bays[0].equipment[0];
        assert!(cb.pos.is_known());
        assert!(cb.pos.line > s.pos.line);
        let scd = parse_scd(MINI_SCD).unwrap();
        let comm = scd.communication.as_ref().unwrap();
        assert!(comm.subnetworks[0].pos.is_known());
        assert!(comm.subnetworks[0].connected_aps[0].pos.is_known());
        assert!(scd.ieds[0].pos.is_known());
    }

    #[test]
    fn lenient_parse_reports_errors_without_failing() {
        // Unnamed substation is an error for parse_scl, but lenient parsing
        // still yields the document plus the diagnostic.
        let text = r#"<SCL><Header id="x"/><Substation/></SCL>"#;
        assert!(matches!(parse_scl(text), Err(SclError::Invalid { .. })));
        let (doc, diags) = parse_scl_lenient(text).unwrap();
        assert_eq!(doc.substations.len(), 1);
        assert!(diags
            .iter()
            .any(|d| d.code == crate::codes::UNNAMED_ELEMENT));
    }

    #[test]
    fn icd_requires_ied() {
        assert!(parse_icd(MINI_SCD).is_ok());
        assert!(matches!(
            parse_icd(MINI_SSD),
            Err(SclError::MissingSection { section: "IED", .. })
        ));
    }
}
