#![warn(missing_docs)]

//! # sgcr-scada
//!
//! The virtual SCADA HMI of the smart grid cyber range — the Rust
//! substitute for ScadaBR.
//!
//! Mirroring the paper's §III-B "Virtual SCADA Configuration": data sources
//! (a Modbus poller towards the PLC, MMS pollers towards IEDs) and data
//! points are configured from the SG-ML *SCADA Config XML* — information
//! that "is not part of the SCL files" — and the same configuration can be
//! translated to the ScadaBR-style import JSON the paper's script produces
//! ([`ScadaConfig::to_scadabr_json`]).
//!
//! The running HMI ([`ScadaApp`]) maintains a tag database with scaling,
//! deadbands and quality, evaluates alarm rules into an event log, and
//! executes operator commands (the manual-control path of Figure 1) via its
//! [`ScadaHandle`].
//!
//! # Examples
//!
//! ```
//! use sgcr_scada::ScadaConfig;
//!
//! let config = ScadaConfig::parse(r#"<ScadaConfig name="HMI">
//!   <DataSource name="PLC" type="MODBUS" ip="10.0.1.20" pollMs="500">
//!     <Point name="P_total" kind="input" address="0" scale="0.1"/>
//!   </DataSource>
//! </ScadaConfig>"#)?;
//! assert_eq!(config.sources.len(), 1);
//! let _json = config.to_scadabr_json();
//! # Ok::<(), sgcr_scada::ScadaConfigError>(())
//! ```

mod config;
mod hmi;

pub use config::{
    AlarmKind, AlarmRule, DataPoint, DataSource, ModbusPointKind, PointAddress, ScadaConfig,
    ScadaConfigError, SourceProtocol,
};
pub use hmi::{HmiEvent, OperatorCommand, Quality, ScadaApp, ScadaHandle, TagValue};
