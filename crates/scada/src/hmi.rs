//! The SCADA HMI application: polls data sources, maintains the tag
//! database, evaluates alarms, and executes operator commands.

use crate::config::{AlarmKind, ModbusPointKind, PointAddress, ScadaConfig, SourceProtocol};
use parking_lot::Mutex;
use sgcr_faults::DegradationSignal;
use sgcr_iec61850::{DataValue, MmsClient, MmsPdu, MmsRequest, MmsResponse};
use sgcr_modbus::{ModbusClient, Request as ModbusRequest, Response as ModbusResponse};
use sgcr_net::{AppPlane, ConnId, HostCtx, Ipv4Addr, SimDuration, SocketApp};
use sgcr_obs::{Counter, Event as ObsEvent, Plane, Telemetry, TimeNs, TraceCtx, Tracer};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Quality of a tag value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Fresh data from the source.
    Good,
    /// No data received yet.
    Uninitialized,
    /// No update within the configured stale window (IEC 61850 `q.old`).
    Old,
    /// The source marked its data untrustworthy (power plane is holding a
    /// stale solution after solver non-convergence).
    Invalid,
}

/// One tag's current value.
#[derive(Debug, Clone, PartialEq)]
pub struct TagValue {
    /// Engineering-unit value (scaled).
    pub value: f64,
    /// Last update time (sim ms).
    pub updated_ms: u64,
    /// Data quality.
    pub quality: Quality,
}

/// An entry in the HMI event log.
#[derive(Debug, Clone, PartialEq)]
pub struct HmiEvent {
    /// Simulation time (ms).
    pub time_ms: u64,
    /// Event text.
    pub message: String,
}

/// An operator command.
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorCommand {
    /// Write a writable tag (coil/holding/MMS control) with a value.
    WriteTag {
        /// Tag name.
        tag: String,
        /// Value (booleans as 0.0/1.0).
        value: f64,
    },
}

#[derive(Debug, Default)]
struct HmiShared {
    tags: HashMap<String, TagValue>,
    events: Vec<HmiEvent>,
    active_alarms: HashMap<String, String>,
    commands: VecDeque<OperatorCommand>,
    polls_completed: u64,
    /// Stale-tag detection window (ms); `None` disables the sweep.
    stale_window_ms: Option<u64>,
}

/// Key under which a tag's staleness alarm lives in `active_alarms`,
/// namespaced so it cannot collide with a configured alarm rule on the
/// same point.
fn stale_key(tag: &str) -> String {
    format!("stale:{tag}")
}

/// The operator's handle to a running HMI: read tags, watch alarms, issue
/// commands. Shared with the experiment harness.
#[derive(Clone, Default)]
pub struct ScadaHandle {
    shared: Arc<Mutex<HmiShared>>,
    degradation: DegradationSignal,
}

impl ScadaHandle {
    /// Reads a tag.
    pub fn tag(&self, name: &str) -> Option<TagValue> {
        self.shared.lock().tags.get(name).cloned()
    }

    /// Reads a tag's numeric value if it has good quality.
    pub fn tag_value(&self, name: &str) -> Option<f64> {
        self.shared
            .lock()
            .tags
            .get(name)
            .filter(|t| t.quality == Quality::Good)
            .map(|t| t.value)
    }

    /// All tag names, sorted.
    pub fn tag_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.lock().tags.keys().cloned().collect();
        names.sort();
        names
    }

    /// Currently active alarms `(point, message)`.
    pub fn active_alarms(&self) -> Vec<(String, String)> {
        let mut alarms: Vec<(String, String)> = self
            .shared
            .lock()
            .active_alarms
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        alarms.sort();
        alarms
    }

    /// The event log.
    pub fn events(&self) -> Vec<HmiEvent> {
        self.shared.lock().events.clone()
    }

    /// Number of completed poll rounds.
    pub fn polls_completed(&self) -> u64 {
        self.shared.lock().polls_completed
    }

    /// Queues an operator command (executed on the next HMI cycle).
    pub fn send_command(&self, command: OperatorCommand) {
        self.shared.lock().commands.push_back(command);
    }

    /// Convenience: operator breaker command through a writable tag.
    pub fn operate(&self, tag: &str, close: bool) {
        self.send_command(OperatorCommand::WriteTag {
            tag: tag.to_string(),
            value: f64::from(u8::from(close)),
        });
    }

    /// Configures (or disables, with `None`) the stale-tag window: a tag
    /// with good quality that receives no update for longer than `window`
    /// milliseconds flips to [`Quality::Old`] and raises a staleness alarm.
    pub fn set_stale_window_ms(&self, window: Option<u64>) {
        self.shared.lock().stale_window_ms = window;
    }

    /// The currently configured stale-tag window, if any.
    pub fn stale_window_ms(&self) -> Option<u64> {
        self.shared.lock().stale_window_ms
    }

    /// The degradation signal this HMI consults: while raised, freshly
    /// polled tag values are stored with [`Quality::Invalid`] instead of
    /// [`Quality::Good`]. The range raises it when the power solver stops
    /// converging. Cloning shares the underlying flag.
    pub fn degradation(&self) -> DegradationSignal {
        self.degradation.clone()
    }
}

enum SourceLink {
    Modbus {
        client: ModbusClient,
        conn: Option<ConnId>,
        unit: u8,
        /// request tid is matched inside ModbusClient; remember point order.
        outstanding: VecDeque<String>,
    },
    Mms {
        client: MmsClient,
        conn: Option<ConnId>,
        outstanding: HashMap<u32, Vec<String>>,
    },
}

const TOKEN_COMMANDS: u64 = 1_000_000;

/// The SCADA HMI application (one per operator workstation host).
pub struct ScadaApp {
    config: ScadaConfig,
    links: Vec<SourceLink>,
    conn_to_source: HashMap<ConnId, usize>,
    shared: ScadaHandle,
    telemetry: Telemetry,
    alarms_counter: Counter,
    commands_counter: Counter,
}

impl ScadaApp {
    /// Builds the app from a parsed configuration, with telemetry disabled.
    pub fn new(config: ScadaConfig) -> (ScadaApp, ScadaHandle) {
        ScadaApp::with_telemetry(config, Telemetry::disabled())
    }

    /// Builds the app with a telemetry handle. Alarm raises feed the
    /// `scada.alarms` counter and journal
    /// [`ScadaAlarm`](sgcr_obs::Event::ScadaAlarm) /
    /// [`ScadaAlarmCleared`](sgcr_obs::Event::ScadaAlarmCleared) events;
    /// executed operator commands feed `scada.commands` and journal
    /// [`ScadaCommand`](sgcr_obs::Event::ScadaCommand).
    pub fn with_telemetry(config: ScadaConfig, telemetry: Telemetry) -> (ScadaApp, ScadaHandle) {
        let handle = ScadaHandle::default();
        {
            // Pre-register all tags as uninitialized.
            let mut shared = handle.shared.lock();
            for source in &config.sources {
                for point in &source.points {
                    shared.tags.insert(
                        point.name.clone(),
                        TagValue {
                            value: 0.0,
                            updated_ms: 0,
                            quality: Quality::Uninitialized,
                        },
                    );
                }
            }
        }
        let links = config
            .sources
            .iter()
            .map(|s| match s.protocol {
                SourceProtocol::Modbus { unit } => SourceLink::Modbus {
                    client: ModbusClient::new(),
                    conn: None,
                    unit,
                    outstanding: VecDeque::new(),
                },
                SourceProtocol::Mms => SourceLink::Mms {
                    client: MmsClient::new(),
                    conn: None,
                    outstanding: HashMap::new(),
                },
            })
            .collect();
        (
            ScadaApp {
                config,
                links,
                conn_to_source: HashMap::new(),
                shared: handle.clone(),
                alarms_counter: telemetry.counter("scada.alarms"),
                commands_counter: telemetry.counter("scada.commands"),
                telemetry,
            },
            handle,
        )
    }

    fn log(&self, now_ms: u64, message: String) {
        self.shared.shared.lock().events.push(HmiEvent {
            time_ms: now_ms,
            message,
        });
    }

    fn poll_source(&mut self, ctx: &mut HostCtx<'_>, index: usize) {
        let source = self.config.sources[index].clone();
        match &mut self.links[index] {
            SourceLink::Modbus {
                client,
                conn,
                unit,
                outstanding,
            } => {
                if let Some(conn) = *conn {
                    for point in &source.points {
                        let PointAddress::Modbus { kind, address } = &point.address else {
                            continue;
                        };
                        let request = match kind {
                            ModbusPointKind::Coil => ModbusRequest::ReadCoils {
                                address: *address,
                                count: 1,
                            },
                            ModbusPointKind::Discrete => ModbusRequest::ReadDiscreteInputs {
                                address: *address,
                                count: 1,
                            },
                            ModbusPointKind::Holding => ModbusRequest::ReadHoldingRegisters {
                                address: *address,
                                count: 1,
                            },
                            ModbusPointKind::Input => ModbusRequest::ReadInputRegisters {
                                address: *address,
                                count: 1,
                            },
                        };
                        let wire = client.request(*unit, request);
                        outstanding.push_back(point.name.clone());
                        ctx.tcp_send(conn, &wire);
                    }
                }
            }
            SourceLink::Mms {
                client,
                conn,
                outstanding,
            } => {
                if let Some(conn) = *conn {
                    let items: Vec<String> = source
                        .points
                        .iter()
                        .filter_map(|p| match &p.address {
                            PointAddress::Mms { item } => Some(item.clone()),
                            PointAddress::Modbus { .. } => None,
                        })
                        .collect();
                    if !items.is_empty() {
                        let (invoke_id, wire) = client.request(MmsRequest::Read {
                            items: items.clone(),
                        });
                        outstanding.insert(invoke_id, items);
                        ctx.tcp_send(conn, &wire);
                    }
                }
            }
        }
        self.shared.shared.lock().polls_completed += 1;
        ctx.set_timer(SimDuration::from_millis(source.poll_ms), index as u64);
    }

    fn update_tag(
        &mut self,
        now_ms: u64,
        tag: &str,
        raw: f64,
        tracer: &Tracer,
        parent: Option<TraceCtx>,
    ) {
        let Some((_, point)) = self.config.find_point(tag) else {
            return;
        };
        let now = TimeNs::from_millis(now_ms);
        let mut span = tracer.open("scada.update_tag", Plane::Scada, parent, now);
        if span.is_recording() {
            span.attr("tag", tag);
            span.attr("raw", raw.to_string());
        }
        let update_ctx = span.ctx();
        let scaled = raw * point.scale;
        let deadband = point.deadband;
        let quality = if self.shared.degradation.is_degraded() {
            Quality::Invalid
        } else {
            Quality::Good
        };
        let was_stale;
        {
            let mut shared = self.shared.shared.lock();
            let entry = shared.tags.entry(tag.to_string()).or_insert(TagValue {
                value: 0.0,
                updated_ms: 0,
                quality: Quality::Uninitialized,
            });
            let significant =
                entry.quality == Quality::Uninitialized || (scaled - entry.value).abs() > deadband;
            was_stale = entry.quality == Quality::Old;
            entry.updated_ms = now_ms;
            entry.quality = quality;
            if significant {
                entry.value = scaled;
            }
        }
        if was_stale {
            let removed = self
                .shared
                .shared
                .lock()
                .active_alarms
                .remove(&stale_key(tag));
            if let Some(message) = removed {
                self.log(now_ms, format!("CLEARED {tag}: {message}"));
                self.telemetry.record(TimeNs::from_millis(now_ms), || {
                    ObsEvent::ScadaAlarmCleared {
                        point: tag.to_string(),
                        message: message.clone(),
                    }
                });
            }
        }
        self.evaluate_alarms(now_ms, tag, tracer, update_ctx);
        span.end(now);
    }

    fn evaluate_alarms(
        &mut self,
        now_ms: u64,
        tag: &str,
        tracer: &Tracer,
        parent: Option<TraceCtx>,
    ) {
        let value = match self.shared.tag_value(tag) {
            Some(v) => v,
            None => return,
        };
        let rules: Vec<_> = self
            .config
            .alarms
            .iter()
            .filter(|r| r.point == tag)
            .cloned()
            .collect();
        for rule in rules {
            let in_alarm = match rule.kind {
                AlarmKind::High(limit) => value > limit,
                AlarmKind::Low(limit) => value < limit,
                AlarmKind::StateTrue => value != 0.0,
                AlarmKind::StateFalse => value == 0.0,
            };
            let was_active = self
                .shared
                .shared
                .lock()
                .active_alarms
                .contains_key(&rule.point);
            if in_alarm && !was_active {
                self.shared
                    .shared
                    .lock()
                    .active_alarms
                    .insert(rule.point.clone(), rule.message.clone());
                self.log(now_ms, format!("ALARM {}: {}", rule.point, rule.message));
                self.alarms_counter.inc();
                self.telemetry
                    .record(TimeNs::from_millis(now_ms), || ObsEvent::ScadaAlarm {
                        point: rule.point.clone(),
                        message: rule.message.clone(),
                    });
                let now = TimeNs::from_millis(now_ms);
                let mut span = tracer.open("scada.alarm", Plane::Scada, parent, now);
                if span.is_recording() {
                    span.attr("point", rule.point.as_str());
                    span.attr("state", "raised");
                }
                span.end(now);
            } else if !in_alarm && was_active {
                self.shared.shared.lock().active_alarms.remove(&rule.point);
                self.log(now_ms, format!("CLEARED {}: {}", rule.point, rule.message));
                self.telemetry.record(TimeNs::from_millis(now_ms), || {
                    ObsEvent::ScadaAlarmCleared {
                        point: rule.point.clone(),
                        message: rule.message.clone(),
                    }
                });
                let now = TimeNs::from_millis(now_ms);
                let mut span = tracer.open("scada.alarm", Plane::Scada, parent, now);
                if span.is_recording() {
                    span.attr("point", rule.point.as_str());
                    span.attr("state", "cleared");
                }
                span.end(now);
            }
        }
    }

    /// Flips tags that have not refreshed within the stale window to
    /// [`Quality::Old`] and raises a staleness alarm per tag. Runs on the
    /// same 50 ms housekeeping timer as command processing; a `None` window
    /// makes this a no-op.
    fn sweep_stale(&mut self, now_ms: u64) {
        let Some(window) = self.shared.shared.lock().stale_window_ms else {
            return;
        };
        let mut newly_stale: Vec<(String, u64)> = Vec::new();
        {
            let mut shared = self.shared.shared.lock();
            for (name, tag) in &mut shared.tags {
                if tag.quality == Quality::Good && now_ms.saturating_sub(tag.updated_ms) > window {
                    tag.quality = Quality::Old;
                    newly_stale.push((name.clone(), now_ms - tag.updated_ms));
                }
            }
        }
        newly_stale.sort();
        for (tag, age_ms) in newly_stale {
            let message = format!("stale: no update for {age_ms} ms (window {window} ms)");
            self.shared
                .shared
                .lock()
                .active_alarms
                .insert(stale_key(&tag), message.clone());
            self.log(now_ms, format!("ALARM {tag}: {message}"));
            self.alarms_counter.inc();
            self.telemetry
                .record(TimeNs::from_millis(now_ms), || ObsEvent::TagStale {
                    tag: tag.clone(),
                    age_ms,
                });
            self.telemetry
                .record(TimeNs::from_millis(now_ms), || ObsEvent::ScadaAlarm {
                    point: tag.clone(),
                    message: message.clone(),
                });
        }
    }

    #[allow(clippy::collapsible_match)] // the Option lives inside a matched variant
    fn process_commands(&mut self, ctx: &mut HostCtx<'_>) {
        loop {
            let command = self.shared.shared.lock().commands.pop_front();
            let Some(OperatorCommand::WriteTag { tag, value }) = command else {
                break;
            };
            let now_ms = ctx.now().as_millis();
            let Some((source_index, point)) = self
                .config
                .sources
                .iter()
                .enumerate()
                .find_map(|(i, s)| s.points.iter().find(|p| p.name == tag).map(|p| (i, p)))
            else {
                self.log(now_ms, format!("REJECTED command to unknown tag {tag:?}"));
                continue;
            };
            if !point.writable {
                self.log(now_ms, format!("REJECTED command to read-only tag {tag:?}"));
                continue;
            }
            let address = point.address.clone();
            match (&mut self.links[source_index], address) {
                (
                    SourceLink::Modbus {
                        client, conn, unit, ..
                    },
                    PointAddress::Modbus { kind, address },
                ) => {
                    if let Some(conn) = *conn {
                        let request = match kind {
                            ModbusPointKind::Coil => ModbusRequest::WriteSingleCoil {
                                address,
                                value: value != 0.0,
                            },
                            ModbusPointKind::Holding => ModbusRequest::WriteSingleRegister {
                                address,
                                value: value as u16,
                            },
                            _ => {
                                self.log(
                                    now_ms,
                                    format!("REJECTED write to input-only point {tag:?}"),
                                );
                                continue;
                            }
                        };
                        let wire = client.request(*unit, request);
                        ctx.tcp_send(conn, &wire);
                        self.log(now_ms, format!("COMMAND {tag} := {value}"));
                        self.commands_counter.inc();
                        self.telemetry.record(TimeNs::from_millis(now_ms), || {
                            ObsEvent::ScadaCommand {
                                tag: tag.clone(),
                                value,
                            }
                        });
                    }
                }
                (SourceLink::Mms { client, conn, .. }, PointAddress::Mms { item }) => {
                    if let Some(conn) = *conn {
                        let (_, wire) = client.request(MmsRequest::Write {
                            items: vec![item],
                            values: vec![DataValue::Bool(value != 0.0)],
                        });
                        ctx.tcp_send(conn, &wire);
                        self.log(now_ms, format!("COMMAND {tag} := {value}"));
                        self.commands_counter.inc();
                        self.telemetry.record(TimeNs::from_millis(now_ms), || {
                            ObsEvent::ScadaCommand {
                                tag: tag.clone(),
                                value,
                            }
                        });
                    }
                }
                _ => {}
            }
        }
        ctx.set_timer(SimDuration::from_millis(50), TOKEN_COMMANDS);
    }
}

impl SocketApp for ScadaApp {
    fn plane(&self) -> AppPlane {
        AppPlane::Scada
    }

    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        for (i, source) in self.config.sources.clone().iter().enumerate() {
            let ip: Ipv4Addr = match source.ip.parse() {
                Ok(ip) => ip,
                Err(_) => continue,
            };
            let conn = ctx.tcp_connect(ip, source.port);
            self.conn_to_source.insert(conn, i);
            ctx.set_timer(SimDuration::from_millis(source.poll_ms), i as u64);
        }
        ctx.set_timer(SimDuration::from_millis(50), TOKEN_COMMANDS);
    }

    fn on_timer(&mut self, ctx: &mut HostCtx<'_>, token: u64) {
        if token == TOKEN_COMMANDS {
            self.sweep_stale(ctx.now().as_millis());
            self.process_commands(ctx);
        } else if (token as usize) < self.links.len() {
            self.poll_source(ctx, token as usize);
        }
    }

    fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
        let Some(&index) = self.conn_to_source.get(&conn) else {
            return;
        };
        match &mut self.links[index] {
            SourceLink::Modbus { conn: slot, .. } => *slot = Some(conn),
            SourceLink::Mms {
                conn: slot, client, ..
            } => {
                *slot = Some(conn);
                let init = client.initiate();
                ctx.tcp_send(conn, &init);
            }
        }
    }

    fn on_tcp_data(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, data: &[u8]) {
        let Some(&index) = self.conn_to_source.get(&conn) else {
            return;
        };
        let now_ms = ctx.now().as_millis();
        // The inbound data's causal context: for Modbus poll responses this
        // is the PLC scan that last changed the image; for MMS reports the
        // IED action that emitted them.
        let tracer = ctx.tracer();
        let parent = ctx.trace_parent();
        let mut updates: Vec<(String, f64)> = Vec::new();
        match &mut self.links[index] {
            SourceLink::Modbus {
                client,
                outstanding,
                ..
            } => {
                for (request, response) in client.feed(data) {
                    // Writes don't consume the outstanding read queue.
                    let is_read = matches!(
                        request,
                        ModbusRequest::ReadCoils { .. }
                            | ModbusRequest::ReadDiscreteInputs { .. }
                            | ModbusRequest::ReadHoldingRegisters { .. }
                            | ModbusRequest::ReadInputRegisters { .. }
                    );
                    if !is_read {
                        continue;
                    }
                    let Some(tag) = outstanding.pop_front() else {
                        continue;
                    };
                    let raw = match response {
                        ModbusResponse::Bits(bits) => bits.first().map(|b| f64::from(u8::from(*b))),
                        ModbusResponse::Registers(regs) => regs.first().map(|r| f64::from(*r)),
                        _ => None,
                    };
                    if let Some(raw) = raw {
                        updates.push((tag, raw));
                    }
                }
            }
            SourceLink::Mms {
                client,
                outstanding,
                ..
            } => {
                for pdu in client.feed(data) {
                    if let MmsPdu::InformationReport {
                        report_name,
                        entries,
                    } = &pdu
                    {
                        // Spontaneous report (e.g. a protection trip): log it
                        // and refresh any tag bound to a reported item.
                        self.shared.shared.lock().events.push(HmiEvent {
                            time_ms: now_ms,
                            message: format!(
                                "REPORT {report_name}: {}",
                                entries
                                    .iter()
                                    .map(|(item, value)| format!("{item}={value:?}"))
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                        });
                        for (item, value) in entries {
                            let raw = match value {
                                DataValue::Bool(b) => Some(f64::from(u8::from(*b))),
                                DataValue::Float(f) => Some(f64::from(*f)),
                                other => other.as_dbpos().map(|b| f64::from(u8::from(b))),
                            };
                            let tag = self.config.sources[index]
                                .points
                                .iter()
                                .find(|p| {
                                    matches!(&p.address, PointAddress::Mms { item: i } if i == item)
                                })
                                .map(|p| p.name.clone());
                            if let (Some(tag), Some(raw)) = (tag, raw) {
                                updates.push((tag, raw));
                            }
                        }
                        continue;
                    }
                    if let MmsPdu::ConfirmedResponse {
                        invoke_id,
                        response: MmsResponse::Read { results },
                    } = pdu
                    {
                        let Some(items) = outstanding.remove(&invoke_id) else {
                            continue;
                        };
                        for (item, result) in items.iter().zip(results) {
                            let Ok(value) = result else { continue };
                            let raw = match &value {
                                DataValue::Float(f) => Some(f64::from(*f)),
                                DataValue::Bool(b) => Some(f64::from(u8::from(*b))),
                                DataValue::Int(i) => Some(*i as f64),
                                other => other.as_dbpos().map(|b| f64::from(u8::from(b))),
                            };
                            if let Some(raw) = raw {
                                // Map back item → tag name.
                                let tag = self.config.sources[index]
                                    .points
                                    .iter()
                                    .find(|p| {
                                        matches!(&p.address, PointAddress::Mms { item: i } if i == item)
                                    })
                                    .map(|p| p.name.clone());
                                if let Some(tag) = tag {
                                    updates.push((tag, raw));
                                }
                            }
                        }
                    }
                }
            }
        }
        for (tag, raw) in updates {
            self.update_tag(now_ms, &tag, raw, &tracer, parent);
        }
    }
}
