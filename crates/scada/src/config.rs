//! SCADA configuration: the SG-ML *SCADA Config XML* schema (data sources
//! and data points, which the paper notes "are not part of the SCL files"),
//! plus the translation to ScadaBR-style import JSON that the paper's
//! toolchain performs.

use sgcr_xml::Document;
use std::fmt;

/// How a data point is addressed on a Modbus source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModbusPointKind {
    /// Coil (read/write bit).
    Coil,
    /// Discrete input (read-only bit).
    Discrete,
    /// Holding register (read/write word).
    Holding,
    /// Input register (read-only word).
    Input,
}

impl ModbusPointKind {
    /// Parses the XML `kind` attribute.
    pub fn parse(s: &str) -> Option<ModbusPointKind> {
        Some(match s.to_lowercase().as_str() {
            "coil" => ModbusPointKind::Coil,
            "discrete" => ModbusPointKind::Discrete,
            "holding" => ModbusPointKind::Holding,
            "input" => ModbusPointKind::Input,
            _ => return None,
        })
    }

    /// The XML attribute value.
    pub fn name(self) -> &'static str {
        match self {
            ModbusPointKind::Coil => "coil",
            ModbusPointKind::Discrete => "discrete",
            ModbusPointKind::Holding => "holding",
            ModbusPointKind::Input => "input",
        }
    }
}

/// The address of a data point.
#[derive(Debug, Clone, PartialEq)]
pub enum PointAddress {
    /// A Modbus table entry.
    Modbus {
        /// Which table.
        kind: ModbusPointKind,
        /// Register/bit index.
        address: u16,
    },
    /// An MMS item id.
    Mms {
        /// Full item (`GIED1LD0/MMXU1$MX$TotW$mag$f`).
        item: String,
    },
}

/// One data point (tag) of the HMI.
#[derive(Debug, Clone, PartialEq)]
pub struct DataPoint {
    /// Tag name (unique across the HMI).
    pub name: String,
    /// Address on its data source.
    pub address: PointAddress,
    /// Multiplier applied to raw values.
    pub scale: f64,
    /// Minimum change to record (engineering units).
    pub deadband: f64,
    /// Whether operators may write this point.
    pub writable: bool,
}

/// The protocol of a data source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceProtocol {
    /// Modbus TCP (towards the PLC).
    Modbus {
        /// Unit id.
        unit: u8,
    },
    /// IEC 61850 MMS (towards IEDs).
    Mms,
}

/// A polled data source.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSource {
    /// Source name.
    pub name: String,
    /// Protocol.
    pub protocol: SourceProtocol,
    /// Server IP.
    pub ip: String,
    /// Server TCP port (502 Modbus / 102 MMS).
    pub port: u16,
    /// Poll period in milliseconds.
    pub poll_ms: u64,
    /// Points on this source.
    pub points: Vec<DataPoint>,
}

/// Alarm comparison kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlarmKind {
    /// Value above limit.
    High(f64),
    /// Value below limit.
    Low(f64),
    /// Boolean became true.
    StateTrue,
    /// Boolean became false.
    StateFalse,
}

/// An alarm rule over a tag.
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmRule {
    /// Tag name the rule watches.
    pub point: String,
    /// Condition.
    pub kind: AlarmKind,
    /// Operator-facing message.
    pub message: String,
}

/// The complete HMI configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScadaConfig {
    /// HMI name.
    pub name: String,
    /// Data sources.
    pub sources: Vec<DataSource>,
    /// Alarm rules.
    pub alarms: Vec<AlarmRule>,
}

/// An error parsing SCADA Config XML.
#[derive(Debug, Clone, PartialEq)]
pub struct ScadaConfigError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScadaConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for ScadaConfigError {}

fn err(message: impl Into<String>) -> ScadaConfigError {
    ScadaConfigError {
        message: message.into(),
    }
}

impl ScadaConfig {
    /// Parses the SG-ML SCADA Config XML.
    ///
    /// # Errors
    ///
    /// Returns [`ScadaConfigError`] on malformed XML or missing attributes.
    pub fn parse(text: &str) -> Result<ScadaConfig, ScadaConfigError> {
        let doc = Document::parse(text).map_err(|e| err(e.to_string()))?;
        let root = doc.root_element();
        if root.name() != "ScadaConfig" {
            return Err(err(format!(
                "expected <ScadaConfig>, found <{}>",
                root.name()
            )));
        }
        let mut config = ScadaConfig {
            name: root.attr_or("name", "HMI").to_string(),
            ..ScadaConfig::default()
        };
        for source_el in root.children_named("DataSource") {
            let name = source_el.attr_or("name", "").to_string();
            let ip = source_el
                .attr("ip")
                .ok_or_else(|| err(format!("data source {name:?} missing ip")))?
                .to_string();
            let type_name = source_el.attr_or("type", "MODBUS").to_uppercase();
            let (protocol, default_port) = match type_name.as_str() {
                "MODBUS" => (
                    SourceProtocol::Modbus {
                        unit: source_el.attr_parse("unit").unwrap_or(1),
                    },
                    502,
                ),
                "MMS" | "IEC61850" => (SourceProtocol::Mms, 102),
                other => return Err(err(format!("unknown data source type {other:?}"))),
            };
            let mut points = Vec::new();
            for point_el in source_el.children_named("Point") {
                let point_name = point_el.attr_or("name", "").to_string();
                if point_name.is_empty() {
                    return Err(err(format!("point without a name on source {name:?}")));
                }
                let address = if let Some(item) = point_el.attr("item") {
                    PointAddress::Mms {
                        item: item.to_string(),
                    }
                } else {
                    let kind = ModbusPointKind::parse(point_el.attr_or("kind", ""))
                        .ok_or_else(|| err(format!("point {point_name:?} has invalid kind")))?;
                    let address = point_el
                        .attr_parse("address")
                        .ok_or_else(|| err(format!("point {point_name:?} missing address")))?;
                    PointAddress::Modbus { kind, address }
                };
                points.push(DataPoint {
                    name: point_name,
                    address,
                    scale: point_el.attr_parse("scale").unwrap_or(1.0),
                    deadband: point_el.attr_parse("deadband").unwrap_or(0.0),
                    writable: point_el.attr("writable") == Some("true"),
                });
            }
            config.sources.push(DataSource {
                name,
                protocol,
                ip,
                port: source_el.attr_parse("port").unwrap_or(default_port),
                poll_ms: source_el.attr_parse("pollMs").unwrap_or(1000),
                points,
            });
        }
        for alarm_el in root.children_named("Alarm") {
            let kind = match alarm_el.attr_or("kind", "") {
                "high" => AlarmKind::High(alarm_el.attr_parse("limit").unwrap_or(f64::MAX)),
                "low" => AlarmKind::Low(alarm_el.attr_parse("limit").unwrap_or(f64::MIN)),
                "true" => AlarmKind::StateTrue,
                "false" => AlarmKind::StateFalse,
                other => return Err(err(format!("unknown alarm kind {other:?}"))),
            };
            config.alarms.push(AlarmRule {
                point: alarm_el.attr_or("point", "").to_string(),
                kind,
                message: alarm_el.attr_or("message", "").to_string(),
            });
        }
        Ok(config)
    }

    /// Serializes back to SCADA Config XML.
    pub fn to_xml(&self) -> String {
        let mut doc = Document::new("ScadaConfig");
        let root = doc.root_id();
        doc.set_attr(root, "name", &self.name);
        for source in &self.sources {
            let s = doc.add_element(root, "DataSource");
            doc.set_attr(s, "name", &source.name);
            match &source.protocol {
                SourceProtocol::Modbus { unit } => {
                    doc.set_attr(s, "type", "MODBUS");
                    doc.set_attr(s, "unit", &unit.to_string());
                }
                SourceProtocol::Mms => doc.set_attr(s, "type", "MMS"),
            }
            doc.set_attr(s, "ip", &source.ip);
            doc.set_attr(s, "port", &source.port.to_string());
            doc.set_attr(s, "pollMs", &source.poll_ms.to_string());
            for point in &source.points {
                let p = doc.add_element(s, "Point");
                doc.set_attr(p, "name", &point.name);
                match &point.address {
                    PointAddress::Modbus { kind, address } => {
                        doc.set_attr(p, "kind", kind.name());
                        doc.set_attr(p, "address", &address.to_string());
                    }
                    PointAddress::Mms { item } => doc.set_attr(p, "item", item),
                }
                if point.scale != 1.0 {
                    doc.set_attr(p, "scale", &point.scale.to_string());
                }
                if point.deadband != 0.0 {
                    doc.set_attr(p, "deadband", &point.deadband.to_string());
                }
                if point.writable {
                    doc.set_attr(p, "writable", "true");
                }
            }
        }
        for alarm in &self.alarms {
            let a = doc.add_element(root, "Alarm");
            doc.set_attr(a, "point", &alarm.point);
            match alarm.kind {
                AlarmKind::High(limit) => {
                    doc.set_attr(a, "kind", "high");
                    doc.set_attr(a, "limit", &limit.to_string());
                }
                AlarmKind::Low(limit) => {
                    doc.set_attr(a, "kind", "low");
                    doc.set_attr(a, "limit", &limit.to_string());
                }
                AlarmKind::StateTrue => doc.set_attr(a, "kind", "true"),
                AlarmKind::StateFalse => doc.set_attr(a, "kind", "false"),
            }
            doc.set_attr(a, "message", &alarm.message);
        }
        doc.to_xml()
    }

    /// Translates to the ScadaBR-style import JSON the paper's script emits
    /// (`dataSources` + `dataPoints` arrays).
    pub fn to_scadabr_json(&self) -> String {
        fn json_escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\n  \"dataSources\": [\n");
        for (i, source) in self.sources.iter().enumerate() {
            let (type_name, extra) = match &source.protocol {
                SourceProtocol::Modbus { unit } => (
                    "MODBUS_IP",
                    format!(", \"slaveId\": {unit}, \"transportType\": \"TCP\""),
                ),
                SourceProtocol::Mms => ("IEC61850", String::new()),
            };
            out.push_str(&format!(
                "    {{\"xid\": \"DS_{}\", \"name\": \"{}\", \"type\": \"{}\", \"host\": \"{}\", \"port\": {}, \"updatePeriods\": {}{}}}{}\n",
                i + 1,
                json_escape(&source.name),
                type_name,
                json_escape(&source.ip),
                source.port,
                source.poll_ms,
                extra,
                if i + 1 < self.sources.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"dataPoints\": [\n");
        let total: usize = self.sources.iter().map(|s| s.points.len()).sum();
        let mut emitted = 0usize;
        for (i, source) in self.sources.iter().enumerate() {
            for point in &source.points {
                emitted += 1;
                let locator = match &point.address {
                    PointAddress::Modbus { kind, address } => format!(
                        "\"range\": \"{}\", \"offset\": {}",
                        match kind {
                            ModbusPointKind::Coil => "COIL_STATUS",
                            ModbusPointKind::Discrete => "INPUT_STATUS",
                            ModbusPointKind::Holding => "HOLDING_REGISTER",
                            ModbusPointKind::Input => "INPUT_REGISTER",
                        },
                        address
                    ),
                    PointAddress::Mms { item } => {
                        format!("\"objectReference\": \"{}\"", json_escape(item))
                    }
                };
                out.push_str(&format!(
                    "    {{\"xid\": \"DP_{}\", \"name\": \"{}\", \"dataSourceXid\": \"DS_{}\", {}, \"multiplier\": {}, \"settable\": {}}}{}\n",
                    emitted,
                    json_escape(&point.name),
                    i + 1,
                    locator,
                    point.scale,
                    point.writable,
                    if emitted < total { "," } else { "" }
                ));
            }
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Finds a point and its source by tag name.
    pub fn find_point(&self, tag: &str) -> Option<(&DataSource, &DataPoint)> {
        for source in &self.sources {
            if let Some(point) = source.points.iter().find(|p| p.name == tag) {
                return Some((source, point));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"<ScadaConfig name="EPIC-HMI">
  <DataSource name="CPLC" type="MODBUS" ip="10.0.1.20" port="502" unit="1" pollMs="500">
    <Point name="Gen1_P" kind="input" address="0" scale="0.1"/>
    <Point name="CB1_cmd" kind="coil" address="0" writable="true"/>
  </DataSource>
  <DataSource name="GIED1" type="MMS" ip="10.0.1.11" pollMs="1000">
    <Point name="GIED1_TotW" item="GIED1LD0/MMXU1$MX$TotW$mag$f" deadband="0.5"/>
  </DataSource>
  <Alarm point="Gen1_P" kind="high" limit="50" message="Generator overload"/>
  <Alarm point="CB1_cmd" kind="true" message="CB1 commanded"/>
</ScadaConfig>"#;

    #[test]
    fn parse_sample() {
        let config = ScadaConfig::parse(SAMPLE).unwrap();
        assert_eq!(config.name, "EPIC-HMI");
        assert_eq!(config.sources.len(), 2);
        assert_eq!(config.sources[0].poll_ms, 500);
        assert_eq!(
            config.sources[0].points[0].address,
            PointAddress::Modbus {
                kind: ModbusPointKind::Input,
                address: 0
            }
        );
        assert!(config.sources[0].points[1].writable);
        assert_eq!(config.sources[1].protocol, SourceProtocol::Mms);
        assert_eq!(config.sources[1].port, 102);
        assert_eq!(config.alarms.len(), 2);
        assert_eq!(config.alarms[0].kind, AlarmKind::High(50.0));
    }

    #[test]
    fn xml_roundtrip() {
        let config = ScadaConfig::parse(SAMPLE).unwrap();
        let text = config.to_xml();
        let reparsed = ScadaConfig::parse(&text).unwrap();
        assert_eq!(reparsed, config);
    }

    #[test]
    fn scadabr_json_translation() {
        let config = ScadaConfig::parse(SAMPLE).unwrap();
        let json = config.to_scadabr_json();
        assert!(json.contains("\"type\": \"MODBUS_IP\""));
        assert!(json.contains("\"type\": \"IEC61850\""));
        assert!(json.contains("\"range\": \"COIL_STATUS\""));
        assert!(json.contains("GIED1LD0/MMXU1$MX$TotW$mag$f"));
        assert!(json.contains("\"settable\": true"));
    }

    #[test]
    fn errors() {
        assert!(ScadaConfig::parse("<Wrong/>").is_err());
        assert!(ScadaConfig::parse(
            r#"<ScadaConfig><DataSource name="x" type="MODBUS"/></ScadaConfig>"#
        )
        .is_err());
        assert!(ScadaConfig::parse(
            r#"<ScadaConfig><DataSource name="x" type="CARRIERPIGEON" ip="1.2.3.4"/></ScadaConfig>"#
        )
        .is_err());
    }

    #[test]
    fn find_point() {
        let config = ScadaConfig::parse(SAMPLE).unwrap();
        let (source, point) = config.find_point("GIED1_TotW").unwrap();
        assert_eq!(source.name, "GIED1");
        assert_eq!(point.deadband, 0.5);
        assert!(config.find_point("nope").is_none());
    }
}
