//! Structural validation of the ScadaBR-style JSON translation — the
//! paper's "script to translate the SCADA Config XML into a JSON format
//! that SCADABR can import". We validate with a minimal JSON reader so the
//! output is guaranteed parseable by a real importer.

use sgcr_scada::ScadaConfig;

/// A tiny JSON structural validator: checks balanced braces/brackets,
/// quoted strings, and `"key": value` shapes. Returns the number of objects.
fn validate_json(text: &str) -> Result<usize, String> {
    let mut depth_obj = 0i32;
    let mut depth_arr = 0i32;
    let mut objects = 0usize;
    let mut in_string = false;
    let mut prev = ' ';
    for c in text.chars() {
        if in_string {
            if c == '"' && prev != '\\' {
                in_string = false;
            }
            prev = c;
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' => {
                depth_obj += 1;
                objects += 1;
            }
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err(format!("unbalanced at {c:?}"));
        }
        prev = c;
    }
    if in_string {
        return Err("unterminated string".into());
    }
    if depth_obj != 0 || depth_arr != 0 {
        return Err(format!("unbalanced: obj={depth_obj} arr={depth_arr}"));
    }
    Ok(objects)
}

const CONFIG: &str = r#"<ScadaConfig name="json-test">
  <DataSource name="PLC &quot;main&quot;" type="MODBUS" ip="10.0.0.1" pollMs="500">
    <Point name="P1" kind="holding" address="0" scale="0.1"/>
    <Point name="C1" kind="coil" address="3" writable="true"/>
  </DataSource>
  <DataSource name="IED1" type="MMS" ip="10.0.0.2" pollMs="1000">
    <Point name="V1" item="IED1LD0/MMXU1$MX$PhV$mag$f"/>
  </DataSource>
</ScadaConfig>"#;

#[test]
fn json_is_structurally_valid() {
    let config = ScadaConfig::parse(CONFIG).unwrap();
    let json = config.to_scadabr_json();
    let objects = validate_json(&json).expect("valid JSON structure");
    // Root + 2 sources + 3 points.
    assert_eq!(objects, 6, "{json}");
}

#[test]
fn json_escapes_quotes_in_names() {
    let config = ScadaConfig::parse(CONFIG).unwrap();
    let json = config.to_scadabr_json();
    assert!(json.contains(r#"PLC \"main\""#), "{json}");
    validate_json(&json).expect("escaped JSON still valid");
}

#[test]
fn json_carries_addressing_for_both_protocols() {
    let config = ScadaConfig::parse(CONFIG).unwrap();
    let json = config.to_scadabr_json();
    assert!(json.contains("\"range\": \"HOLDING_REGISTER\", \"offset\": 0"));
    assert!(json.contains("\"range\": \"COIL_STATUS\", \"offset\": 3"));
    assert!(json.contains("\"objectReference\": \"IED1LD0/MMXU1$MX$PhV$mag$f\""));
    assert!(json.contains("\"settable\": true"));
    assert!(json.contains("\"multiplier\": 0.1"));
}

#[test]
fn every_point_references_an_emitted_source() {
    let config = ScadaConfig::parse(CONFIG).unwrap();
    let json = config.to_scadabr_json();
    for i in 1..=2 {
        assert!(json.contains(&format!("\"xid\": \"DS_{i}\"")));
    }
    for i in 1..=3 {
        assert!(json.contains(&format!("\"xid\": \"DP_{i}\"")));
    }
    // Data points only reference defined sources.
    for line in json.lines().filter(|l| l.contains("dataSourceXid")) {
        assert!(
            line.contains("\"dataSourceXid\": \"DS_1\"")
                || line.contains("\"dataSourceXid\": \"DS_2\""),
            "{line}"
        );
    }
}
