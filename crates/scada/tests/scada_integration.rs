//! Integration: the SCADA HMI polling a Modbus server (PLC stand-in) and an
//! MMS server (IED stand-in) over the emulated network, with alarms and
//! operator commands.

use sgcr_iec61850::{DataModel, DataValue, MmsServer, MmsServerApp, SharedModel};
use sgcr_modbus::{ModbusServerApp, SharedRegisters};
use sgcr_net::{Ipv4Addr, LinkSpec, Network, SimTime};
use sgcr_scada::{OperatorCommand, Quality, ScadaApp, ScadaConfig};

const CONFIG: &str = r#"<ScadaConfig name="test-hmi">
  <DataSource name="PLC" type="MODBUS" ip="10.0.0.1" pollMs="200">
    <Point name="P_total" kind="input" address="0" scale="0.1"/>
    <Point name="CB1_fb" kind="discrete" address="0"/>
    <Point name="CB1_cmd" kind="coil" address="0" writable="true"/>
  </DataSource>
  <DataSource name="IED1" type="MMS" ip="10.0.0.2" pollMs="300">
    <Point name="IED1_V" item="IED1LD0/MMXU1$MX$PhV$mag$f"/>
  </DataSource>
  <Alarm point="P_total" kind="high" limit="40" message="Feeder overload"/>
</ScadaConfig>"#;

struct TestBed {
    net: Network,
    registers: SharedRegisters,
    model: SharedModel,
    handle: sgcr_scada::ScadaHandle,
}

fn testbed() -> TestBed {
    let mut net = Network::new();
    let sw = net.add_switch("sw");
    let plc = net.add_host("plc", Ipv4Addr::new(10, 0, 0, 1));
    let ied = net.add_host("ied", Ipv4Addr::new(10, 0, 0, 2));
    let hmi = net.add_host("hmi", Ipv4Addr::new(10, 0, 0, 100));
    for h in [plc, ied, hmi] {
        net.connect(h, sw, LinkSpec::default());
    }
    let registers = SharedRegisters::with_size(64);
    net.attach_app(plc, Box::new(ModbusServerApp::new(registers.clone())));

    let mut model = DataModel::new("IED1");
    model.insert("IED1LD0/MMXU1$MX$PhV$mag$f", DataValue::Float(0.0));
    let shared = SharedModel::new(model);
    net.attach_app(
        ied,
        Box::new(MmsServerApp::new(MmsServer::new(shared.clone()))),
    );

    let config = ScadaConfig::parse(CONFIG).expect("config");
    let (app, handle) = ScadaApp::new(config);
    net.attach_app(hmi, Box::new(app));
    TestBed {
        net,
        registers,
        model: shared,
        handle,
    }
}

#[test]
fn polls_both_protocols_with_scaling() {
    let mut bed = testbed();
    bed.registers.set_input(0, 235); // 23.5 after 0.1 scale
    bed.registers.set_discrete(0, true);
    bed.model
        .write("IED1LD0/MMXU1$MX$PhV$mag$f", DataValue::Float(1.02));
    bed.net.run_until(SimTime::from_millis(1500));

    assert_eq!(bed.handle.tag_value("P_total"), Some(23.5));
    assert_eq!(bed.handle.tag_value("CB1_fb"), Some(1.0));
    let v = bed.handle.tag_value("IED1_V").unwrap();
    assert!((v - 1.02).abs() < 1e-6);
    assert!(bed.handle.polls_completed() > 5);
    // All tags good quality.
    for name in bed.handle.tag_names() {
        assert_eq!(
            bed.handle.tag(&name).unwrap().quality,
            Quality::Good,
            "{name}"
        );
    }
}

#[test]
fn tags_track_changes_over_time() {
    let mut bed = testbed();
    bed.registers.set_input(0, 100);
    bed.net.run_until(SimTime::from_millis(500));
    assert_eq!(bed.handle.tag_value("P_total"), Some(10.0));
    bed.registers.set_input(0, 300);
    bed.net.run_until(SimTime::from_millis(1200));
    assert_eq!(bed.handle.tag_value("P_total"), Some(30.0));
}

#[test]
fn alarm_raises_and_clears() {
    let mut bed = testbed();
    bed.registers.set_input(0, 100); // 10.0 < 40: normal
    bed.net.run_until(SimTime::from_millis(500));
    assert!(bed.handle.active_alarms().is_empty());

    bed.registers.set_input(0, 500); // 50.0 > 40: alarm
    bed.net.run_until(SimTime::from_millis(1000));
    let alarms = bed.handle.active_alarms();
    assert_eq!(alarms.len(), 1);
    assert_eq!(alarms[0].1, "Feeder overload");

    bed.registers.set_input(0, 100);
    bed.net.run_until(SimTime::from_millis(1500));
    assert!(bed.handle.active_alarms().is_empty());
    let events = bed.handle.events();
    assert!(events.iter().any(|e| e.message.contains("ALARM")));
    assert!(events.iter().any(|e| e.message.contains("CLEARED")));
}

#[test]
fn operator_command_reaches_plc() {
    let mut bed = testbed();
    bed.net.run_until(SimTime::from_millis(300));
    assert!(!bed.registers.coil(0));
    bed.handle.operate("CB1_cmd", true);
    bed.net.run_until(SimTime::from_millis(800));
    assert!(bed.registers.coil(0), "coil written by operator command");
    assert!(bed
        .handle
        .events()
        .iter()
        .any(|e| e.message.contains("COMMAND CB1_cmd")));
}

#[test]
fn command_to_readonly_tag_rejected() {
    let mut bed = testbed();
    bed.net.run_until(SimTime::from_millis(200));
    bed.handle.send_command(OperatorCommand::WriteTag {
        tag: "P_total".into(),
        value: 1.0,
    });
    bed.net.run_until(SimTime::from_millis(600));
    assert!(bed
        .handle
        .events()
        .iter()
        .any(|e| e.message.contains("REJECTED")));
}
