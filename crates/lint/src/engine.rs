//! The incremental query engine behind `sgml_processor lint --cache`.
//!
//! [`crate::lint_bundle`] reparses and reanalyzes the whole bundle on every
//! run. This module restructures the same work as memoized *queries* keyed
//! on content fingerprints:
//!
//! * one **per-file query** per model file — the loader's parse/structure
//!   diagnostics for that file, plus (for `plc_config.xml`) the semantic ST
//!   analysis, all of which depend on that file's bytes alone;
//! * one **cross-file query** — every pass that looks across files (xref,
//!   addressing, topology, protection, hygiene, scenarios, SCADA↔PLC
//!   bindings), keyed on the fingerprint of the entire file set.
//!
//! Query results are `Vec<Diagnostic>` stored as JSON, one file per query,
//! under a caller-supplied cache directory. On a warm run with one edited
//! file, only that file's query and the cross-file query recompute; the
//! final report is assembled from per-query results and is byte-identical
//! to what [`crate::lint_bundle`] produces — the differential test in the
//! crate enforces that equivalence.
//!
//! Timestamps are ignored on purpose: keys hash `(engine version, file
//! name, file bytes)`, so `touch` changes nothing and a revert restores the
//! cached result.

use crate::pass::LintPass;
use crate::passes;
use crate::source::{role_of, FileRole, LoadError, LoadedBundle, SourceFile};
use crate::{json, LintReport};
use sgcr_core::Fingerprint;
use sgcr_scl::Diagnostic;
use std::fs;
use std::path::{Path, PathBuf};

/// Cache-effectiveness counters for one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Queries answered from the on-disk cache.
    pub reused: usize,
    /// Queries that had to run.
    pub recomputed: usize,
}

impl EngineStats {
    /// Total queries the run needed.
    pub fn total(&self) -> usize {
        self.reused + self.recomputed
    }
}

/// The outcome of an incremental lint: the report (identical to
/// [`crate::lint_bundle`] on the same inputs), the sources (for snippet
/// rendering), and the cache counters.
#[derive(Debug)]
pub struct IncrementalOutcome {
    /// The assembled report.
    pub report: LintReport,
    /// A sources-only bundle for [`crate::report::render_text`].
    pub bundle: LoadedBundle,
    /// Reused/recomputed counters.
    pub stats: EngineStats,
}

/// Salt mixed into every query key so a new engine (new passes, changed
/// semantics) never reads results written by an old one.
const ENGINE_VERSION: &str = concat!("sgcr-lint-engine-v1/", env!("CARGO_PKG_VERSION"));

/// Lints a bundle directory through the query cache at `cache_dir`
/// (created on demand).
///
/// # Errors
///
/// Returns [`LoadError`] on I/O failures or when the directory holds no SCL
/// model files — the same contract as [`LoadedBundle::from_dir`]. Cache
/// read problems are never errors: an unreadable or corrupt entry just
/// recomputes.
pub fn lint_dir_incremental(
    dir: impl AsRef<Path>,
    cache_dir: impl AsRef<Path>,
) -> Result<IncrementalOutcome, LoadError> {
    let dir = dir.as_ref();
    let cache_dir = cache_dir.as_ref();
    let _ = fs::create_dir_all(cache_dir);

    // Enumerate model files exactly like LoadedBundle::from_dir.
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| LoadError {
            message: format!("reading {}: {e}", dir.display()),
        })?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .collect();
    paths.sort();

    let mut sources: Vec<SourceFile> = Vec::new();
    for path in paths {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(role) = role_of(name) else {
            continue;
        };
        let text = fs::read_to_string(&path).map_err(|e| LoadError {
            message: format!("reading {}: {e}", path.display()),
        })?;
        sources.push(SourceFile {
            name: name.to_string(),
            role,
            text,
        });
    }
    if !sources
        .iter()
        .any(|f| matches!(f.role, FileRole::Ssd | FileRole::Scd))
    {
        return Err(LoadError {
            message: format!(
                "{} contains no SCL model files (*.ssd.xml / *.scd.xml)",
                dir.display()
            ),
        });
    }

    let mut stats = EngineStats::default();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    // Per-file queries.
    let mut file_keys = Vec::with_capacity(sources.len());
    for file in &sources {
        let key = file_query_key(file);
        file_keys.push(key);
        let cached = read_cached(cache_dir, key);
        let result = match cached {
            Some(diags) => {
                stats.reused += 1;
                diags
            }
            None => {
                let diags = run_file_query(file);
                stats.recomputed += 1;
                write_cached(cache_dir, key, &diags);
                diags
            }
        };
        diagnostics.extend(result);
    }

    // Cross-file query, keyed on the whole file set.
    let cross_key = {
        let mut fp = Fingerprint::new();
        fp.update(ENGINE_VERSION.as_bytes());
        fp.update(b"cross");
        for key in &file_keys {
            fp.update(&key.to_le_bytes());
        }
        fp.finish()
    };
    match read_cached(cache_dir, cross_key) {
        Some(diags) => {
            stats.reused += 1;
            diagnostics.extend(diags);
        }
        None => {
            let full = build_bundle(&sources);
            let mut diags = Vec::new();
            for pass in cross_passes() {
                pass.run(&full, &mut diags);
            }
            stats.recomputed += 1;
            write_cached(cache_dir, cross_key, &diags);
            diagnostics.extend(diags);
        }
    }

    // Same final ordering as lint_bundle.
    let report = crate::sorted_report(diagnostics);
    // Snippet rendering needs raw text only, so skip reparsing: hand the
    // renderer a sources-only bundle.
    let bundle = LoadedBundle {
        files: sources,
        scada_host: "SCADA".to_string(),
        ..LoadedBundle::default()
    };
    Ok(IncrementalOutcome {
        report,
        bundle,
        stats,
    })
}

/// The passes that read a single file's parse; everything else is cross.
fn is_per_file_pass_role(role: FileRole) -> bool {
    matches!(role, FileRole::PlcConfig)
}

/// Runs the per-file portion of the roster for one file: the loader's
/// parse/structure diagnostics plus any pass whose inputs are that file
/// alone.
fn run_file_query(file: &SourceFile) -> Vec<Diagnostic> {
    let mut mini = LoadedBundle::default();
    mini.add_file(file.name.clone(), file.role, file.text.clone());
    let mut diags = std::mem::take(&mut mini.diagnostics);
    if is_per_file_pass_role(file.role) {
        passes::st_logic::StLogicPass.run(&mini, &mut diags);
    }
    diags
}

/// The roster complement of [`run_file_query`]: passes needing the whole
/// bundle. Together they must equal [`crate::default_passes`] — the roster
/// test below keeps the two in sync.
fn cross_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(passes::xref::XrefPass),
        Box::new(passes::addr::AddrPass),
        Box::new(passes::topology::TopologyPass),
        Box::new(passes::protection::ProtectionPass),
        Box::new(passes::orphan::OrphanPass),
        Box::new(passes::scenario::ScenarioPass),
        Box::new(passes::adversary::AdversaryPass),
        Box::new(passes::st_logic::ScadaBindingPass),
    ]
}

fn build_bundle(sources: &[SourceFile]) -> LoadedBundle {
    let mut bundle = LoadedBundle {
        scada_host: "SCADA".to_string(),
        ..LoadedBundle::default()
    };
    for file in sources {
        bundle.add_file(file.name.clone(), file.role, file.text.clone());
    }
    bundle
}

fn file_query_key(file: &SourceFile) -> u64 {
    let mut fp = Fingerprint::new();
    fp.update(ENGINE_VERSION.as_bytes());
    fp.update(b"file");
    fp.update(file.name.as_bytes());
    fp.update(file.text.as_bytes());
    fp.finish()
}

fn cache_path(cache_dir: &Path, key: u64) -> PathBuf {
    cache_dir.join(format!("{key:016x}.json"))
}

/// Reads one cached query result; any problem (missing, unreadable,
/// malformed, unregistered code) falls back to recomputing.
fn read_cached(cache_dir: &Path, key: u64) -> Option<Vec<Diagnostic>> {
    let text = fs::read_to_string(cache_path(cache_dir, key)).ok()?;
    json::from_json(&text).ok().map(|r| r.diagnostics)
}

fn write_cached(cache_dir: &Path, key: u64, diags: &[Diagnostic]) {
    let report = LintReport {
        diagnostics: diags.to_vec(),
    };
    // Cache writes are best-effort: a read-only cache just disables reuse.
    let _ = fs::write(cache_path(cache_dir, key), json::to_json(&report));
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::{default_passes, lint_bundle};
    use std::collections::BTreeSet;

    const SSD: &str = r#"<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="demo"/>
  <Substation name="S1">
    <VoltageLevel name="VL1">
      <Voltage multiplier="k">110</Voltage>
      <Bay name="B1">
        <ConnectivityNode name="bus1" pathName="S1/VL1/B1/bus1"/>
        <ConductingEquipment name="GRID" type="IFL">
          <Terminal name="T1" connectivityNode="S1/VL1/B1/bus1"/>
        </ConductingEquipment>
        <ConductingEquipment name="LOAD1" type="LOD">
          <Terminal name="T1" connectivityNode="S1/VL1/B1/bus1"/>
        </ConductingEquipment>
      </Bay>
    </VoltageLevel>
  </Substation>
</SCL>"#;

    const PLC: &str = r#"<PLCConfig>
  <PLC name="CPLC">
    <Logic type="st"><![CDATA[
PROGRAM p
VAR x : INT; y : INT; END_VAR
y := x / 0;
END_PROGRAM
]]></Logic>
  </PLC>
</PLCConfig>"#;

    fn write_bundle(dir: &Path) {
        fs::create_dir_all(dir).unwrap();
        fs::write(dir.join("s1.ssd.xml"), SSD).unwrap();
        fs::write(dir.join("plc_config.xml"), PLC).unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sgcr-lint-engine-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The per-file/cross split must cover exactly the default roster.
    #[test]
    fn query_split_covers_default_roster() {
        let mut split: BTreeSet<&str> = cross_passes().iter().map(|p| p.name()).collect();
        split.insert(passes::st_logic::StLogicPass.name());
        let roster: BTreeSet<&str> = default_passes().iter().map(|p| p.name()).collect();
        assert_eq!(split, roster);
    }

    #[test]
    fn incremental_report_matches_lint_bundle_and_reuses_queries() {
        let dir = temp_dir("match");
        let cache = dir.join("cache");
        write_bundle(&dir);

        let cold = lint_dir_incremental(&dir, &cache).unwrap();
        assert_eq!(cold.stats.reused, 0);
        assert_eq!(cold.stats.recomputed, 3); // 2 files + cross

        let full = lint_bundle(&LoadedBundle::from_dir(&dir).unwrap());
        assert_eq!(cold.report, full, "incremental must equal full lint");
        assert!(cold.report.has_errors(), "fixture divides by zero");

        // Warm run: everything reused, identical bytes out.
        let warm = lint_dir_incremental(&dir, &cache).unwrap();
        assert_eq!(warm.stats.reused, 3);
        assert_eq!(warm.stats.recomputed, 0);
        assert_eq!(
            json::to_json(&warm.report),
            json::to_json(&cold.report),
            "warm report must be byte-identical"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn editing_one_file_recomputes_only_its_queries() {
        let dir = temp_dir("edit");
        let cache = dir.join("cache");
        write_bundle(&dir);
        let _ = lint_dir_incremental(&dir, &cache).unwrap();

        // Fix the PLC logic; the SSD query must be served from cache.
        fs::write(
            dir.join("plc_config.xml"),
            PLC.replace("y := x / 0;", "y := x / 2;"),
        )
        .unwrap();
        let edited = lint_dir_incremental(&dir, &cache).unwrap();
        assert_eq!(edited.stats.reused, 1, "SSD query should be cached");
        assert_eq!(edited.stats.recomputed, 2, "PLC file + cross query rerun");
        assert!(!edited
            .report
            .diagnostics
            .iter()
            .any(|d| d.code == sgcr_scl::codes::ST_DIVISION_BY_ZERO));

        let full = lint_bundle(&LoadedBundle::from_dir(&dir).unwrap());
        assert_eq!(edited.report, full);

        // Reverting restores the original cached result.
        fs::write(dir.join("plc_config.xml"), PLC).unwrap();
        let reverted = lint_dir_incremental(&dir, &cache).unwrap();
        assert_eq!(reverted.stats.reused, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entries_recompute() {
        let dir = temp_dir("corrupt");
        let cache = dir.join("cache");
        write_bundle(&dir);
        let _ = lint_dir_incremental(&dir, &cache).unwrap();
        for entry in fs::read_dir(&cache).unwrap() {
            fs::write(entry.unwrap().path(), "{ not json").unwrap();
        }
        let rerun = lint_dir_incremental(&dir, &cache).unwrap();
        assert_eq!(rerun.stats.reused, 0);
        assert_eq!(rerun.stats.recomputed, 3);
        let full = lint_bundle(&LoadedBundle::from_dir(&dir).unwrap());
        assert_eq!(rerun.report, full);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_directory_is_rejected() {
        let dir = temp_dir("empty");
        let err = lint_dir_incremental(&dir, dir.join("cache")).unwrap_err();
        assert!(err.message.contains("no SCL model files"));
        let _ = fs::remove_dir_all(&dir);
    }
}
