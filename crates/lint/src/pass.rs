//! The lint-pass abstraction and the default pass roster.

use crate::passes;
use crate::source::LoadedBundle;
use sgcr_scl::Diagnostic;

/// One analysis over a loaded bundle.
///
/// Passes are stateless: they read the [`LoadedBundle`] and append
/// [`Diagnostic`]s. The driver runs them in roster order; each finding's
/// position comes from the model's `pos` metadata, so passes stay pure
/// cross-file logic with no XML in sight.
pub trait LintPass {
    /// Stable pass name (used in `--format json` and for filtering).
    fn name(&self) -> &'static str;

    /// Runs the pass, appending findings to `out`.
    fn run(&self, bundle: &LoadedBundle, out: &mut Vec<Diagnostic>);
}

/// The default pass roster, in execution order.
pub fn default_passes() -> Vec<Box<dyn LintPass>> {
    vec![
        Box::new(passes::xref::XrefPass),
        Box::new(passes::addr::AddrPass),
        Box::new(passes::topology::TopologyPass),
        Box::new(passes::protection::ProtectionPass),
        Box::new(passes::orphan::OrphanPass),
        Box::new(passes::scenario::ScenarioPass),
        Box::new(passes::adversary::AdversaryPass),
        Box::new(passes::st_logic::StLogicPass),
        Box::new(passes::st_logic::ScadaBindingPass),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_names_are_unique() {
        let passes = default_passes();
        let mut names: Vec<_> = passes.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}
