//! JSON output for `--format json`, plus the parser that round-trips it.
//!
//! The emitter and parser are hand-rolled (the toolchain is
//! dependency-free); the schema is deliberately small:
//!
//! ```json
//! {
//!   "errors": 1,
//!   "warnings": 0,
//!   "diagnostics": [
//!     {
//!       "code": "SG0201",
//!       "severity": "error",
//!       "message": "...",
//!       "context": "...",
//!       "span": { "file": "s.scd.xml", "line": 14, "column": 7 }
//!     }
//!   ]
//! }
//! ```
//!
//! `span` is omitted for findings with no source anchor. Parsing maps `code`
//! strings back through [`codes::lookup`], so only registered codes
//! round-trip — which is the point of having a registry.

use crate::LintReport;
use sgcr_obs::json::quote;
use sgcr_scl::{codes, Diagnostic, Severity, Span};
use std::fmt::Write as _;

/// Serializes a report to JSON.
pub fn to_json(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"errors\": {},", report.error_count());
    let _ = writeln!(out, "  \"warnings\": {},", report.warning_count());
    out.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        let _ = write!(out, "\"code\": {}, ", quote(d.code));
        let _ = write!(out, "\"severity\": {}, ", quote(d.severity.label()));
        let _ = write!(out, "\"message\": {}, ", quote(&d.message));
        let _ = write!(out, "\"context\": {}", quote(&d.context));
        if let Some(span) = &d.span {
            let _ = write!(
                out,
                ", \"span\": {{\"file\": {}, \"line\": {}, \"column\": {}}}",
                quote(&span.file),
                span.line,
                span.column
            );
        }
        out.push('}');
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// An error while parsing report JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for JsonError {}

fn err(message: impl Into<String>) -> JsonError {
    JsonError {
        message: message.into(),
    }
}

/// Parses report JSON produced by [`to_json`] back into a [`LintReport`].
///
/// # Errors
///
/// Returns [`JsonError`] on malformed JSON, an unregistered diagnostic code,
/// or an unknown severity label.
pub fn from_json(text: &str) -> Result<LintReport, JsonError> {
    let value = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    }
    .parse()?;
    let root = value
        .as_object()
        .ok_or_else(|| err("root is not an object"))?;
    let list = root
        .iter()
        .find(|(k, _)| k == "diagnostics")
        .and_then(|(_, v)| v.as_array())
        .ok_or_else(|| err("missing \"diagnostics\" array"))?;

    let mut diagnostics = Vec::new();
    for item in list {
        let fields = item
            .as_object()
            .ok_or_else(|| err("diagnostic is not an object"))?;
        let get_str = |key: &str| -> Result<&str, JsonError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_str())
                .ok_or_else(|| err(format!("diagnostic missing string field {key:?}")))
        };
        let code_str = get_str("code")?;
        let code = codes::lookup(code_str)
            .ok_or_else(|| err(format!("unregistered diagnostic code {code_str:?}")))?
            .code;
        let severity = match get_str("severity")? {
            "error" => Severity::Error,
            "warning" => Severity::Warning,
            "info" => Severity::Info,
            other => return Err(err(format!("unknown severity {other:?}"))),
        };
        let mut diagnostic = Diagnostic::new(
            code,
            severity,
            get_str("message")?.to_string(),
            get_str("context")?.to_string(),
        );
        if let Some(span) = fields.iter().find(|(k, _)| k == "span") {
            let span = span
                .1
                .as_object()
                .ok_or_else(|| err("span is not an object"))?;
            let field = |key: &str| span.iter().find(|(k, _)| k == key).map(|(_, v)| v);
            let file = field("file")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| err("span missing file"))?;
            let line = field("line")
                .and_then(JsonValue::as_u32)
                .ok_or_else(|| err("span missing line"))?;
            let column = field("column")
                .and_then(JsonValue::as_u32)
                .ok_or_else(|| err("span missing column"))?;
            diagnostic = diagnostic.with_span(Span::new(file, line, column));
        }
        diagnostics.push(diagnostic);
    }
    Ok(LintReport { diagnostics })
}

/// A parsed JSON value (the minimal subset the report schema needs).
enum JsonValue {
    Null,
    Bool(#[allow(dead_code)] bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_u32(&self) -> Option<u32> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as u32)
            }
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse(mut self) -> Result<JsonValue, JsonError> {
        let value = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, JsonError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| err("unexpected end of input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected {:?} at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::String(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(err(format!("invalid literal at offset {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                other => return Err(err(format!("unexpected {:?} in object", other as char))),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                other => return Err(err(format!("unexpected {:?} in array", other as char))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                None => return Err(err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| err("bad \\u escape"))?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by to_json;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(err(format!("unknown escape \\{}", other as char))),
                    }
                }
                Some(byte) => {
                    // Re-walk UTF-8 via str slicing to stay codepoint-correct.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| err("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| err("empty string"))?;
                    if byte < 0x20 {
                        return Err(err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| err("invalid number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips() {
        let report = LintReport {
            diagnostics: vec![
                Diagnostic::error(
                    codes::DUPLICATE_IP,
                    "IP \"10.0.1.5\" reused\nsecond line",
                    "SubNetwork bus",
                )
                .with_span(Span::new("s.scd.xml", 14, 7)),
                Diagnostic::warning(codes::ORPHAN_ICD, "orphan", "ICD x.icd.xml"),
            ],
        };
        let json = to_json(&report);
        let parsed = from_json(&json).expect("round trip");
        assert_eq!(parsed.diagnostics, report.diagnostics);
        assert_eq!(parsed.error_count(), 1);
        assert_eq!(parsed.warning_count(), 1);
    }

    #[test]
    fn empty_report_round_trips() {
        let report = LintReport {
            diagnostics: Vec::new(),
        };
        let parsed = from_json(&to_json(&report)).expect("round trip");
        assert!(parsed.diagnostics.is_empty());
    }

    #[test]
    fn unregistered_code_is_rejected() {
        let json = r#"{"diagnostics": [{"code": "SG9999", "severity": "error",
            "message": "m", "context": "c"}]}"#;
        assert!(from_json(json).is_err());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(from_json("{").is_err());
        assert!(from_json("[]").is_err());
        assert!(from_json("{\"diagnostics\": 3}").is_err());
    }
}
