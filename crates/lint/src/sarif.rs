//! SARIF 2.1.0 output for `--format sarif`, so CI systems (GitHub code
//! scanning, Azure DevOps, VS Code SARIF viewers) can ingest lint findings
//! natively.
//!
//! The emitter writes the minimal valid subset: one run, a driver with one
//! `reportingDescriptor` per distinct code (summary text from the
//! [`codes`] registry), and one `result` per diagnostic with a physical
//! location when the finding carries a span. Severities map
//! `Error → error`, `Warning → warning`, `Info → note`. Output is fully
//! deterministic: rules are sorted by code and results keep report order,
//! so golden-file tests can compare bytes.

use crate::LintReport;
use sgcr_obs::json::quote;
use sgcr_scl::{codes, Severity};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Serializes a report as a SARIF 2.1.0 log.
pub fn to_sarif(report: &LintReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"sgcr-lint\",\n");
    let _ = writeln!(
        out,
        "          \"version\": {},",
        quote(env!("CARGO_PKG_VERSION"))
    );
    out.push_str("          \"rules\": [");

    let used: BTreeSet<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    for (i, code) in used.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let summary = codes::lookup(code).map(|c| c.summary).unwrap_or_default();
        out.push_str("\n            {");
        let _ = write!(out, "\"id\": {}, ", quote(code));
        let _ = write!(
            out,
            "\"shortDescription\": {{\"text\": {}}}",
            quote(summary)
        );
        out.push('}');
    }
    if !used.is_empty() {
        out.push_str("\n          ");
    }
    out.push_str("]\n        }\n      },\n");
    out.push_str("      \"results\": [");

    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "note",
        };
        out.push_str("\n        {");
        let _ = write!(out, "\"ruleId\": {}, ", quote(d.code));
        let _ = write!(out, "\"level\": {}, ", quote(level));
        let _ = write!(out, "\"message\": {{\"text\": {}}}", quote(&d.message));
        if !d.context.is_empty() {
            let _ = write!(
                out,
                ", \"properties\": {{\"context\": {}}}",
                quote(&d.context)
            );
        }
        if let Some(span) = &d.span {
            let _ = write!(
                out,
                ", \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]",
                quote(&span.file),
                span.line.max(1),
                span.column.max(1)
            );
        }
        out.push('}');
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n      ");
    }
    out.push_str("]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use sgcr_scl::{Diagnostic, Span};

    #[test]
    fn sarif_structure_is_valid_json_with_rules_and_locations() {
        let report = LintReport {
            diagnostics: vec![
                Diagnostic::error(
                    codes::ST_DIVISION_BY_ZERO,
                    "division by a literal zero always faults",
                    "PLC CPLC",
                )
                .with_span(Span::new("plc_config.xml", 6, 10)),
                Diagnostic::warning(codes::ORPHAN_ICD, "orphan \"x\"", "ICD x.icd.xml"),
            ],
        };
        let sarif = to_sarif(&report);
        // Must be parseable JSON (reuse the report parser's scanner via a
        // quick structural sanity check instead).
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("\"id\": \"SG0501\""));
        assert!(sarif.contains("\"id\": \"SG6013\""));
        assert!(sarif.contains("\"ruleId\": \"SG6013\", \"level\": \"error\""));
        assert!(sarif.contains("\"startLine\": 6, \"startColumn\": 10"));
        assert!(sarif.contains("orphan \\\"x\\\""));
        // Deterministic output.
        assert_eq!(sarif, to_sarif(&report));
    }

    #[test]
    fn empty_report_is_an_empty_run() {
        let sarif = to_sarif(&LintReport::default());
        assert!(sarif.contains("\"rules\": []"));
        assert!(sarif.contains("\"results\": []"));
    }
}
