//! The rustc-style text renderer: one block per diagnostic, with the source
//! line and a caret when the span's file is part of the loaded bundle.
//!
//! ```text
//! error[SG0201]: IP address 10.0.1.5 is already assigned to GIED1
//!   --> substation01.scd.xml:14:7
//!    |
//! 14 |       <ConnectedAP iedName="GIED2" apName="AP1">
//!    |       ^
//!    = context: SubNetwork StationBus, ConnectedAP GIED2
//!    = note: two access points share one IP address
//! ```

use crate::source::LoadedBundle;
use crate::LintReport;
use sgcr_scl::{codes, Diagnostic};
use std::fmt::Write as _;

/// Renders the whole report, one block per diagnostic plus a summary line.
pub fn render_text(report: &LintReport, bundle: &LoadedBundle) -> String {
    let mut out = String::new();
    for diagnostic in &report.diagnostics {
        render_diagnostic(&mut out, diagnostic, bundle);
        out.push('\n');
    }
    let errors = report.error_count();
    let warnings = report.warning_count();
    if errors == 0 && warnings == 0 {
        out.push_str("no findings\n");
    } else {
        let _ = writeln!(
            out,
            "{errors} error{}, {warnings} warning{}",
            plural(errors),
            plural(warnings)
        );
    }
    out
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

/// Renders one diagnostic block.
pub fn render_diagnostic(out: &mut String, diagnostic: &Diagnostic, bundle: &LoadedBundle) {
    let _ = writeln!(
        out,
        "{}[{}]: {}",
        diagnostic.severity.label(),
        diagnostic.code,
        diagnostic.message
    );
    if let Some(span) = &diagnostic.span {
        let _ = writeln!(out, "  --> {span}");
        if let Some(line) = source_line(bundle, &span.file, span.line) {
            let gutter = span.line.to_string();
            let pad = " ".repeat(gutter.len());
            let caret_indent = " ".repeat(span.column.saturating_sub(1) as usize);
            let _ = writeln!(out, "{pad} |");
            let _ = writeln!(out, "{gutter} | {line}");
            let _ = writeln!(out, "{pad} | {caret_indent}^");
        }
    }
    if !diagnostic.context.is_empty() {
        let _ = writeln!(out, "   = context: {}", diagnostic.context);
    }
    if let Some(info) = codes::lookup(diagnostic.code) {
        let _ = writeln!(out, "   = note: {}", info.summary);
    }
}

fn source_line(bundle: &LoadedBundle, file: &str, line: u32) -> Option<String> {
    let text = bundle.source_text(file)?;
    let line = text.lines().nth(line.checked_sub(1)? as usize)?;
    // Tabs would desynchronize the caret column; render them as one space.
    Some(line.replace('\t', " "))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::source::{FileRole, LoadedBundle};
    use sgcr_scl::{Severity, Span};

    fn bundle_with(name: &str, text: &str) -> LoadedBundle {
        let mut bundle = LoadedBundle::default();
        bundle.add_file(name.to_string(), FileRole::Scd, text.to_string());
        bundle
    }

    #[test]
    fn renders_block_with_snippet_and_caret() {
        let bundle = bundle_with(
            "s.scd.xml",
            "<SCL xmlns=\"http://www.iec.ch/61850/2003/SCL\">\n  <Header id=\"x\"/>\n</SCL>",
        );
        let report = LintReport {
            diagnostics: vec![Diagnostic::error(
                codes::DUPLICATE_IP,
                "IP address 10.0.1.5 is already assigned to GIED1",
                "SubNetwork bus",
            )
            .with_span(Span::new("s.scd.xml", 2, 3))],
        };
        let text = render_text(&report, &bundle);
        assert!(
            text.contains("error[SG0201]: IP address 10.0.1.5"),
            "{text}"
        );
        assert!(text.contains("--> s.scd.xml:2:3"), "{text}");
        assert!(text.contains("2 |   <Header id=\"x\"/>"), "{text}");
        assert!(text.contains("  |   ^"), "{text}");
        assert!(text.contains("= context: SubNetwork bus"), "{text}");
        assert!(text.contains("1 error, 0 warnings"), "{text}");
    }

    #[test]
    fn renders_clean_report() {
        let bundle = bundle_with("s.scd.xml", "<x/>");
        let report = LintReport {
            diagnostics: Vec::new(),
        };
        assert_eq!(render_text(&report, &bundle), "no findings\n");
        assert_eq!(report.max_severity(), None);
    }

    #[test]
    fn span_outside_sources_still_renders() {
        let bundle = LoadedBundle::default();
        let report = LintReport {
            diagnostics: vec![
                Diagnostic::new(codes::ORPHAN_ICD, Severity::Warning, "msg", "ctx")
                    .with_span(Span::new("missing.icd.xml", 9, 1)),
            ],
        };
        let text = render_text(&report, &bundle);
        assert!(text.contains("--> missing.icd.xml:9:1"), "{text}");
        assert!(text.contains("0 errors, 1 warning"), "{text}");
    }
}
