//! # sgcr-lint
//!
//! Cross-file static analyzer for SG-ML bundles: loads every file of a bundle
//! (SCL models plus the SG-ML supplementary configs), runs a roster of
//! [`LintPass`]es over the combined model, and reports findings as coded,
//! span-carrying [`Diagnostic`]s — without generating the cyber range.
//!
//! The paper's pipeline validates a bundle by *building* it; that conflates
//! "is this model well-formed?" with "can this host run it?". This crate
//! answers the first question alone, so a model can be checked in CI, in an
//! editor, or before shipping it to a range host.
//!
//! ```no_run
//! use sgcr_lint::{lint_bundle, report::render_text, source::LoadedBundle};
//!
//! let bundle = LoadedBundle::from_dir("bundles/demo")?;
//! let report = lint_bundle(&bundle);
//! print!("{}", render_text(&report, &bundle));
//! std::process::exit(if report.has_errors() { 1 } else { 0 });
//! # Ok::<(), sgcr_lint::source::LoadError>(())
//! ```
//!
//! Every code is registered in [`sgcr_scl::codes`] and catalogued in
//! `docs/diagnostics.md`; `--format json` output round-trips through
//! [`json::from_json`].

pub mod engine;
pub mod json;
mod pass;
pub mod passes;
pub mod report;
pub mod sarif;
pub mod source;

pub use pass::{default_passes, LintPass};

use sgcr_scl::{Diagnostic, Severity};
use source::LoadedBundle;

/// The outcome of linting one bundle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// Every finding, ordered by file, line, then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of `Severity::Error` findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Severity::Warning` findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any finding is an error (the bundle cannot be generated).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The worst severity present, `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// All findings carrying the given code.
    pub fn with_code<'a>(&'a self, code: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }
}

/// Runs the default pass roster over a loaded bundle.
///
/// The report starts from the diagnostics the loader already collected
/// (parse failures, intra-file SCL structure), then appends each pass's
/// findings, and finally orders everything by file, line, and code so output
/// is stable across pass-roster changes.
pub fn lint_bundle(bundle: &LoadedBundle) -> LintReport {
    lint_bundle_with(bundle, &default_passes())
}

/// Runs a caller-chosen pass roster (the loader's diagnostics are always
/// included).
pub fn lint_bundle_with(bundle: &LoadedBundle, passes: &[Box<dyn LintPass>]) -> LintReport {
    let mut diagnostics = bundle.diagnostics.clone();
    for pass in passes {
        pass.run(bundle, &mut diagnostics);
    }
    sorted_report(diagnostics)
}

/// Final report assembly: the stable (file, position, code) ordering every
/// producer — the full roster and the incremental engine — must share.
pub(crate) fn sorted_report(mut diagnostics: Vec<Diagnostic>) -> LintReport {
    diagnostics.sort_by(|a, b| {
        let key = |d: &Diagnostic| {
            (
                d.span.as_ref().map(|s| s.file.clone()).unwrap_or_default(),
                d.span
                    .as_ref()
                    .map(|s| (s.line, s.column))
                    .unwrap_or((0, 0)),
                d.code,
            )
        };
        key(a).cmp(&key(b))
    });
    LintReport { diagnostics }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::source::FileRole;
    use sgcr_scl::codes;

    const CLEAN_SSD: &str = r#"<SCL xmlns="http://www.iec.ch/61850/2003/SCL">
  <Header id="demo"/>
  <Substation name="S1">
    <VoltageLevel name="VL1">
      <Voltage multiplier="k">110</Voltage>
      <Bay name="B1">
        <ConnectivityNode name="bus1" pathName="S1/VL1/B1/bus1"/>
        <ConductingEquipment name="GRID" type="IFL">
          <Terminal name="T1" connectivityNode="S1/VL1/B1/bus1"/>
        </ConductingEquipment>
        <ConductingEquipment name="LOAD1" type="LOD">
          <Terminal name="T1" connectivityNode="S1/VL1/B1/bus1"/>
        </ConductingEquipment>
      </Bay>
    </VoltageLevel>
  </Substation>
</SCL>"#;

    fn load(files: &[(&str, FileRole, &str)]) -> LoadedBundle {
        let mut bundle = LoadedBundle::default();
        for (name, role, text) in files {
            bundle.add_file(name.to_string(), *role, text.to_string());
        }
        bundle
    }

    #[test]
    fn clean_bundle_yields_no_findings() {
        let bundle = load(&[("s1.ssd.xml", FileRole::Ssd, CLEAN_SSD)]);
        let report = lint_bundle(&bundle);
        assert!(
            report.diagnostics.is_empty(),
            "unexpected findings: {:#?}",
            report.diagnostics
        );
    }

    #[test]
    fn generator_fed_island_is_clean() {
        // The solver promotes a generator to slack, so a generator-only
        // island (the EPIC microgrid shape) must not be flagged.
        let ssd = CLEAN_SSD.replace("type=\"IFL\"", "type=\"GEN\"");
        let bundle = load(&[("s1.ssd.xml", FileRole::Ssd, &ssd)]);
        let report = lint_bundle(&bundle);
        assert!(
            report.diagnostics.is_empty(),
            "unexpected findings: {:#?}",
            report.diagnostics
        );
    }

    #[test]
    fn island_without_infeed_is_an_error() {
        let ssd = CLEAN_SSD.replace("type=\"IFL\"", "type=\"BAT\"");
        let bundle = load(&[("s1.ssd.xml", FileRole::Ssd, &ssd)]);
        let report = lint_bundle(&bundle);
        assert!(report.has_errors());
        assert_eq!(report.with_code(codes::ISLAND_NO_SLACK).count(), 1);
        let finding = report
            .with_code(codes::ISLAND_NO_SLACK)
            .next()
            .expect("finding");
        let span = finding.span.as_ref().expect("span");
        assert_eq!(span.file, "s1.ssd.xml");
        assert!(span.line > 1, "island finding should carry a real line");
    }

    #[test]
    fn report_ordering_is_stable() {
        let ssd = CLEAN_SSD.replace("type=\"IFL\"", "type=\"BAT\"");
        let bundle = load(&[("s1.ssd.xml", FileRole::Ssd, &ssd)]);
        let a = lint_bundle(&bundle);
        let b = lint_bundle(&bundle);
        assert_eq!(a, b);
    }
}
