//! Loading an SG-ML bundle for analysis: every model file is parsed
//! *leniently* (a flawed file still yields a model to inspect) and kept
//! alongside its file name and raw text, so every downstream finding can be
//! anchored to a real `file:line:column` span and rendered with its source
//! line.

use sgcr_core::{IedConfig, PlcConfig, SgmlBundle};
use sgcr_scada::ScadaConfig;
use sgcr_scenario::Scenario;
use sgcr_scl::{codes, parse_scl_lenient, Diagnostic, SclDocument, Span};
use std::fmt;
use std::fs;
use std::path::Path;

/// What role a file plays in the bundle (derived from its name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// `*.ssd.xml` — substation single-line diagram.
    Ssd,
    /// `*.scd.xml` — complete substation configuration.
    Scd,
    /// `*.icd.xml` — one IED's capabilities.
    Icd,
    /// `*.sed.xml` — inter-substation ties.
    Sed,
    /// `ied_config.xml` — thresholds + cyber↔physical mapping.
    IedConfig,
    /// `scada_config.xml` — HMI data sources, points, alarms.
    ScadaConfig,
    /// `plc_config.xml` — PLC logic and MMS bindings.
    PlcConfig,
    /// `power_config.xml` — profiles, events, solve interval.
    PowerConfig,
    /// `*.scenario.xml` — exercise scenario (stages + objectives).
    Scenario,
}

impl fmt::Display for FileRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileRole::Ssd => "SSD",
            FileRole::Scd => "SCD",
            FileRole::Icd => "ICD",
            FileRole::Sed => "SED",
            FileRole::IedConfig => "IED Config",
            FileRole::ScadaConfig => "SCADA Config",
            FileRole::PlcConfig => "PLC Config",
            FileRole::PowerConfig => "Power Config",
            FileRole::Scenario => "Scenario",
        };
        write!(f, "{s}")
    }
}

/// One raw source file of the bundle (kept for snippet rendering).
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Bundle-relative file name.
    pub name: String,
    /// Role derived from the name.
    pub role: FileRole,
    /// Raw text.
    pub text: String,
}

/// A parsed SCL file with its bundle-relative name.
#[derive(Debug, Clone)]
pub struct SclFile {
    /// Bundle-relative file name.
    pub name: String,
    /// The parsed (lenient) document.
    pub doc: SclDocument,
}

/// An error reading a bundle directory.
#[derive(Debug)]
pub struct LoadError {
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for LoadError {}

/// The analyzed form of an SG-ML bundle: parsed models plus their source
/// files, with every parse failure already recorded as a coded diagnostic.
#[derive(Debug, Clone, Default)]
pub struct LoadedBundle {
    /// Every raw file, for snippet rendering.
    pub files: Vec<SourceFile>,
    /// Parsed SSD files.
    pub ssds: Vec<SclFile>,
    /// Parsed SCD files.
    pub scds: Vec<SclFile>,
    /// Parsed ICD files.
    pub icds: Vec<SclFile>,
    /// Parsed SED files.
    pub seds: Vec<SclFile>,
    /// Parsed IED Config, with its file name.
    pub ied_config: Option<(String, IedConfig)>,
    /// Parsed SCADA Config, with its file name.
    pub scada_config: Option<(String, ScadaConfig)>,
    /// Parsed PLC Config, with its file name.
    pub plc_config: Option<(String, PlcConfig)>,
    /// Parsed exercise scenarios, with their file names.
    pub scenarios: Vec<(String, Scenario)>,
    /// The SCADA workstation host name (default `SCADA`).
    pub scada_host: String,
    /// Diagnostics produced while loading (parse failures, SCL structure).
    pub diagnostics: Vec<Diagnostic>,
}

impl LoadedBundle {
    /// Loads and leniently parses a bundle directory, using the same naming
    /// conventions as [`SgmlBundle::from_dir`] but keeping file names so
    /// findings carry real spans.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] on I/O failures or when the directory holds no
    /// SCL model files at all; individual files that fail to *parse* are
    /// reported as diagnostics, not errors.
    pub fn from_dir(dir: impl AsRef<Path>) -> Result<LoadedBundle, LoadError> {
        let dir = dir.as_ref();
        let mut names: Vec<_> = fs::read_dir(dir)
            .map_err(|e| LoadError {
                message: format!("reading {}: {e}", dir.display()),
            })?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .collect();
        names.sort();

        let mut loaded = LoadedBundle::new();
        for path in names {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(role) = role_of(name) else {
                continue;
            };
            let text = fs::read_to_string(&path).map_err(|e| LoadError {
                message: format!("reading {}: {e}", path.display()),
            })?;
            loaded.add_file(name.to_string(), role, text);
        }
        if loaded.ssds.is_empty() && loaded.scds.is_empty() {
            return Err(LoadError {
                message: format!(
                    "{} contains no SCL model files (*.ssd.xml / *.scd.xml)",
                    dir.display()
                ),
            });
        }
        Ok(loaded)
    }

    /// Builds a loaded bundle from an in-memory [`SgmlBundle`], synthesizing
    /// the file names [`SgmlBundle::write_to_dir`] would use.
    pub fn from_bundle(bundle: &SgmlBundle) -> LoadedBundle {
        let mut loaded = LoadedBundle::new();
        if let Some(host) = &bundle.scada_host {
            loaded.scada_host = host.clone();
        }
        for (i, text) in bundle.ssds.iter().enumerate() {
            loaded.add_file(
                format!("substation{:02}.ssd.xml", i + 1),
                FileRole::Ssd,
                text.clone(),
            );
        }
        for (i, text) in bundle.scds.iter().enumerate() {
            loaded.add_file(
                format!("substation{:02}.scd.xml", i + 1),
                FileRole::Scd,
                text.clone(),
            );
        }
        for (i, text) in bundle.icds.iter().enumerate() {
            loaded.add_file(
                format!("ied{:03}.icd.xml", i + 1),
                FileRole::Icd,
                text.clone(),
            );
        }
        for (i, text) in bundle.seds.iter().enumerate() {
            loaded.add_file(
                format!("tie{:02}.sed.xml", i + 1),
                FileRole::Sed,
                text.clone(),
            );
        }
        if let Some(text) = &bundle.ied_config {
            loaded.add_file("ied_config.xml".into(), FileRole::IedConfig, text.clone());
        }
        if let Some(text) = &bundle.scada_config {
            loaded.add_file(
                "scada_config.xml".into(),
                FileRole::ScadaConfig,
                text.clone(),
            );
        }
        if let Some(text) = &bundle.plc_config {
            loaded.add_file("plc_config.xml".into(), FileRole::PlcConfig, text.clone());
        }
        if let Some(text) = &bundle.power_extra {
            loaded.add_file(
                "power_config.xml".into(),
                FileRole::PowerConfig,
                text.clone(),
            );
        }
        for (i, text) in bundle.scenarios.iter().enumerate() {
            loaded.add_file(
                format!("exercise{:02}.scenario.xml", i + 1),
                FileRole::Scenario,
                text.clone(),
            );
        }
        loaded
    }

    fn new() -> LoadedBundle {
        LoadedBundle {
            scada_host: "SCADA".to_string(),
            ..LoadedBundle::default()
        }
    }

    /// Registers a file with the bundle, parsing it according to its role.
    pub fn add_file(&mut self, name: String, role: FileRole, text: String) {
        match role {
            FileRole::Ssd | FileRole::Scd | FileRole::Icd | FileRole::Sed => {
                match parse_scl_lenient(&text) {
                    Ok((doc, diags)) => {
                        self.diagnostics
                            .extend(diags.into_iter().map(|d| attach_file(d, &name)));
                        let file = SclFile {
                            name: name.clone(),
                            doc,
                        };
                        match role {
                            FileRole::Ssd => self.ssds.push(file),
                            FileRole::Scd => self.scds.push(file),
                            FileRole::Icd => self.icds.push(file),
                            FileRole::Sed => self.seds.push(file),
                            _ => unreachable!(),
                        }
                    }
                    Err(e) => self.push_parse_failure(&name, role, &e.to_string()),
                }
            }
            FileRole::IedConfig => match IedConfig::parse(&text) {
                Ok(config) => self.ied_config = Some((name.clone(), config)),
                Err(e) => self.push_parse_failure(&name, role, &e.to_string()),
            },
            FileRole::ScadaConfig => match ScadaConfig::parse(&text) {
                Ok(config) => self.scada_config = Some((name.clone(), config)),
                Err(e) => self.push_parse_failure(&name, role, &e.to_string()),
            },
            FileRole::PlcConfig => match PlcConfig::parse(&text) {
                Ok(config) => self.plc_config = Some((name.clone(), config)),
                Err(e) => self.push_parse_failure(&name, role, &e.to_string()),
            },
            FileRole::PowerConfig => {
                // Structure checked by the range generator; lint keeps the
                // text only so hygiene passes can see the file exists.
            }
            FileRole::Scenario => match Scenario::parse(&text) {
                Ok(scenario) => self.scenarios.push((name.clone(), scenario)),
                Err(e) => self.push_parse_failure(&name, role, &e.to_string()),
            },
        }
        self.files.push(SourceFile { name, role, text });
    }

    fn push_parse_failure(&mut self, name: &str, role: FileRole, detail: &str) {
        self.diagnostics.push(
            Diagnostic::error(
                codes::PARSE_FAILED,
                format!("cannot parse {role} file: {detail}"),
                name.to_string(),
            )
            .with_span(Span::new(name, 1, 1)),
        );
    }

    /// The raw text of a bundle file, for snippet rendering.
    pub fn source_text(&self, file: &str) -> Option<&str> {
        self.files
            .iter()
            .find(|f| f.name == file)
            .map(|f| f.text.as_str())
    }

    /// All parsed SCL files with substations (SSDs first, then SCDs).
    pub fn substation_files(&self) -> impl Iterator<Item = &SclFile> {
        self.ssds.iter().chain(self.scds.iter())
    }
}

/// Attaches the file name to a parse diagnostic's span when the element
/// position is already known, or leaves it span-less.
fn attach_file(d: Diagnostic, _file: &str) -> Diagnostic {
    // Parse-time diagnostics currently carry context paths but no element
    // position; give them at least the file anchor.
    if d.span.is_none() {
        let file = _file.to_string();
        Diagnostic {
            span: Some(Span::new(file, 1, 1)),
            ..d
        }
    } else {
        d
    }
}

/// Derives a file's bundle role from its name, `None` for unrelated files.
pub fn role_of(name: &str) -> Option<FileRole> {
    if name.ends_with(".ssd.xml") {
        Some(FileRole::Ssd)
    } else if name.ends_with(".scd.xml") {
        Some(FileRole::Scd)
    } else if name.ends_with(".icd.xml") {
        Some(FileRole::Icd)
    } else if name.ends_with(".sed.xml") {
        Some(FileRole::Sed)
    } else if name == "ied_config.xml" {
        Some(FileRole::IedConfig)
    } else if name == "scada_config.xml" {
        Some(FileRole::ScadaConfig)
    } else if name == "plc_config.xml" {
        Some(FileRole::PlcConfig)
    } else if name == "power_config.xml" {
        Some(FileRole::PowerConfig)
    } else if name.ends_with(".scenario.xml") {
        Some(FileRole::Scenario)
    } else {
        None
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn roles_follow_bundle_conventions() {
        assert_eq!(role_of("s1.ssd.xml"), Some(FileRole::Ssd));
        assert_eq!(role_of("s1.scd.xml"), Some(FileRole::Scd));
        assert_eq!(role_of("gied1.icd.xml"), Some(FileRole::Icd));
        assert_eq!(role_of("tie01.sed.xml"), Some(FileRole::Sed));
        assert_eq!(role_of("ied_config.xml"), Some(FileRole::IedConfig));
        assert_eq!(role_of("power_config.xml"), Some(FileRole::PowerConfig));
        assert_eq!(role_of("exercise01.scenario.xml"), Some(FileRole::Scenario));
        assert_eq!(role_of("README.md"), None);
    }

    #[test]
    fn unparsable_file_becomes_coded_diagnostic() {
        let mut loaded = LoadedBundle::new();
        loaded.add_file("bad.scd.xml".into(), FileRole::Scd, "<<< not xml".into());
        assert!(loaded.scds.is_empty());
        assert_eq!(loaded.diagnostics.len(), 1);
        assert_eq!(loaded.diagnostics[0].code, codes::PARSE_FAILED);
        assert_eq!(
            loaded.diagnostics[0].span.as_ref().map(|s| s.file.as_str()),
            Some("bad.scd.xml")
        );
    }
}
