//! Network-addressing checks (`SG02xx`): IP/MAC validity and uniqueness,
//! subnet coherence, GOOSE APPID collisions.

use crate::pass::LintPass;
use crate::source::LoadedBundle;
use sgcr_scl::{codes, ConnectedAp, Diagnostic};
use std::collections::BTreeMap;

/// Checks addressing consistency across every subnetwork of every SCD.
pub struct AddrPass;

impl LintPass for AddrPass {
    fn name(&self) -> &'static str {
        "addr"
    }

    fn run(&self, bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
        // (file, subnetwork name, ap)
        let mut aps: Vec<(&str, &str, &ConnectedAp)> = Vec::new();
        for file in &bundle.scds {
            if let Some(comm) = &file.doc.communication {
                for subnet in &comm.subnetworks {
                    for ap in &subnet.connected_aps {
                        aps.push((&file.name, &subnet.name, ap));
                    }
                }
            }
        }

        check_ips(&aps, out);
        check_macs(&aps, out);
        check_duplicate_hosts(bundle, out);
        check_subnets(&aps, out);
        check_appids(&aps, out);
    }
}

/// SG0203 (invalid) + SG0201 (duplicate) IP addresses.
fn check_ips(aps: &[(&str, &str, &ConnectedAp)], out: &mut Vec<Diagnostic>) {
    let mut first_owner: BTreeMap<&str, &str> = BTreeMap::new();
    for (file, subnet, ap) in aps {
        if ap.ip.is_empty() {
            continue;
        }
        if parse_ipv4(&ap.ip).is_none() {
            out.push(
                Diagnostic::error(
                    codes::INVALID_IP,
                    format!(
                        "invalid IP address {:?} on access point {}",
                        ap.ip, ap.ap_name
                    ),
                    format!("ConnectedAP {}", ap.ied_name),
                )
                .with_pos(file, Some(ap.pos)),
            );
            continue;
        }
        match first_owner.get(ap.ip.as_str()) {
            None => {
                first_owner.insert(&ap.ip, &ap.ied_name);
            }
            Some(owner) if *owner != ap.ied_name => {
                out.push(
                    Diagnostic::error(
                        codes::DUPLICATE_IP,
                        format!("IP address {} is already assigned to {}", ap.ip, owner),
                        format!("SubNetwork {subnet}, ConnectedAP {}", ap.ied_name),
                    )
                    .with_pos(file, Some(ap.pos)),
                );
            }
            Some(_) => {} // the same IED on two subnetworks may reuse its IP
        }
    }
}

/// SG0204 (invalid) + SG0202 (duplicate) MAC addresses.
fn check_macs(aps: &[(&str, &str, &ConnectedAp)], out: &mut Vec<Diagnostic>) {
    let mut first_owner: BTreeMap<&str, &str> = BTreeMap::new();
    for (file, _, ap) in aps {
        let Some(mac) = &ap.mac else { continue };
        if parse_mac(mac).is_none() {
            out.push(
                Diagnostic::warning(
                    codes::INVALID_MAC,
                    format!("invalid MAC address {mac:?}"),
                    format!("ConnectedAP {}", ap.ied_name),
                )
                .with_pos(file, Some(ap.pos)),
            );
            continue;
        }
        match first_owner.get(mac.as_str()) {
            None => {
                first_owner.insert(mac, &ap.ied_name);
            }
            Some(owner) if *owner != ap.ied_name => {
                out.push(
                    Diagnostic::warning(
                        codes::DUPLICATE_MAC,
                        format!("MAC address {mac} is already assigned to {owner}"),
                        format!("ConnectedAP {}", ap.ied_name),
                    )
                    .with_pos(file, Some(ap.pos)),
                );
            }
            Some(_) => {}
        }
    }
}

/// SG0206: one name declared as an IED server twice across the SCDs.
fn check_duplicate_hosts(bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
    let mut first_file: BTreeMap<&str, &str> = BTreeMap::new();
    for file in &bundle.scds {
        for ied in &file.doc.ieds {
            match first_file.get(ied.name.as_str()) {
                None => {
                    first_file.insert(&ied.name, &file.name);
                }
                Some(original) => {
                    out.push(
                        Diagnostic::error(
                            codes::DUPLICATE_HOST,
                            format!("IED {:?} is already declared in {original}", ied.name),
                            format!("IED {}", ied.name),
                        )
                        .with_pos(&file.name, Some(ied.pos)),
                    );
                }
            }
        }
    }
}

/// SG0205: access points whose IP falls outside their subnetwork's dominant
/// subnet (masked with each AP's own `IP-SUBNET`, default /24).
fn check_subnets(aps: &[(&str, &str, &ConnectedAp)], out: &mut Vec<Diagnostic>) {
    let mut by_subnet: BTreeMap<&str, Vec<(&str, &ConnectedAp, u32)>> = BTreeMap::new();
    for (file, subnet, ap) in aps {
        if let Some(ip) = parse_ipv4(&ap.ip) {
            let mask = parse_ipv4(&ap.ip_subnet).unwrap_or(0xFFFF_FF00);
            by_subnet
                .entry(subnet)
                .or_default()
                .push((file, ap, ip & mask));
        }
    }
    for (subnet, members) in by_subnet {
        if members.len() < 2 {
            continue;
        }
        let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
        for (_, _, network) in &members {
            *counts.entry(*network).or_default() += 1;
        }
        let Some((&dominant, &count)) = counts.iter().max_by_key(|(_, c)| **c) else {
            continue;
        };
        if count == 1 {
            continue; // no dominant subnet: every AP is its own island, noise
        }
        for (file, ap, network) in members {
            if network != dominant {
                out.push(
                    Diagnostic::warning(
                        codes::SUBNET_MISMATCH,
                        format!(
                            "IP {} is outside the dominant subnet {} of SubNetwork {subnet}",
                            ap.ip,
                            format_ipv4(dominant),
                        ),
                        format!("ConnectedAP {}", ap.ied_name),
                    )
                    .with_pos(file, Some(ap.pos)),
                );
            }
        }
    }
}

/// SG0207: two GOOSE control blocks sharing one APPID on one subnetwork.
fn check_appids(aps: &[(&str, &str, &ConnectedAp)], out: &mut Vec<Diagnostic>) {
    let mut first_owner: BTreeMap<(&str, u16), String> = BTreeMap::new();
    for (file, subnet, ap) in aps {
        for gse in &ap.gse {
            match first_owner.get(&(*subnet, gse.appid)) {
                None => {
                    first_owner.insert(
                        (subnet, gse.appid),
                        format!("{}/{}", ap.ied_name, gse.cb_name),
                    );
                }
                Some(owner) => {
                    out.push(
                        Diagnostic::warning(
                            codes::DUPLICATE_APPID,
                            format!(
                                "GOOSE APPID 0x{:04X} is already used by {owner} on SubNetwork {subnet}",
                                gse.appid
                            ),
                            format!("ConnectedAP {}, GSE {}", ap.ied_name, gse.cb_name),
                        )
                        .with_pos(file, Some(ap.pos)),
                    );
                }
            }
        }
    }
}

/// Parses a dotted-quad IPv4 address.
pub(crate) fn parse_ipv4(s: &str) -> Option<u32> {
    let mut out: u32 = 0;
    let mut octets = 0;
    for part in s.split('.') {
        if part.is_empty() || part.len() > 3 || !part.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let value: u32 = part.parse().ok()?;
        if value > 255 {
            return None;
        }
        out = (out << 8) | value;
        octets += 1;
    }
    (octets == 4).then_some(out)
}

fn format_ipv4(ip: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (ip >> 24) & 0xFF,
        (ip >> 16) & 0xFF,
        (ip >> 8) & 0xFF,
        ip & 0xFF
    )
}

/// Parses a MAC address of six hex octets separated by `-` or `:`.
pub(crate) fn parse_mac(s: &str) -> Option<[u8; 6]> {
    let parts: Vec<&str> = if s.contains('-') {
        s.split('-').collect()
    } else {
        s.split(':').collect()
    };
    if parts.len() != 6 {
        return None;
    }
    let mut mac = [0u8; 6];
    for (slot, part) in mac.iter_mut().zip(&parts) {
        if part.len() != 2 {
            return None;
        }
        *slot = u8::from_str_radix(part, 16).ok()?;
    }
    Some(mac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_parser() {
        assert_eq!(parse_ipv4("10.0.1.5"), Some(0x0A000105));
        assert_eq!(parse_ipv4("255.255.255.0"), Some(0xFFFFFF00));
        assert_eq!(parse_ipv4("10.0.1"), None);
        assert_eq!(parse_ipv4("10.0.1.256"), None);
        assert_eq!(parse_ipv4("10.0.1.5.6"), None);
        assert_eq!(parse_ipv4("a.b.c.d"), None);
    }

    #[test]
    fn mac_parser() {
        assert_eq!(
            parse_mac("01-0C-CD-01-00-01"),
            Some([0x01, 0x0C, 0xCD, 0x01, 0x00, 0x01])
        );
        assert_eq!(
            parse_mac("01:0c:cd:01:00:01"),
            Some([0x01, 0x0C, 0xCD, 0x01, 0x00, 0x01])
        );
        assert_eq!(parse_mac("01-0C-CD-01-00"), None);
        assert_eq!(parse_mac("01-0C-CD-01-00-GG"), None);
    }
}
