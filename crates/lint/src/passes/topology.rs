//! Power-topology checks (`SG0110`, `SG03xx`): every terminal must land on a
//! declared connectivity node, and the resulting graph must be energizable.
//!
//! Two graphs are analyzed:
//!
//! * the **all-closed** graph (every switch treated as closed) answers
//!   "*could* this island ever be fed?" — an island with neither an
//!   external-grid infeed nor a generator (the solver promotes one to slack)
//!   is dead however the operators switch ([`codes::ISLAND_NO_SLACK`]);
//! * the **normal-state** graph (normally-open switches removed) answers
//!   "is it fed *as drawn*?" — a load that the all-closed graph supplies but
//!   the normal state does not is a switching mistake
//!   ([`codes::SWITCH_ISOLATES_LOAD`]).

use crate::pass::LintPass;
use crate::source::LoadedBundle;
use sgcr_scl::{codes, Diagnostic, EquipmentType, SourcePos};
use std::collections::BTreeMap;

/// Checks bus connectivity, islands, and terminal counts.
pub struct TopologyPass;

impl LintPass for TopologyPass {
    fn name(&self) -> &'static str {
        "topology"
    }

    fn run(&self, bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
        let mut graph = Graph::default();
        collect_nodes(bundle, &mut graph, out);
        collect_edges(bundle, &mut graph, out);
        report_islands(&graph, out);
    }
}

/// One connectivity node (bus) of the bundle-wide graph.
struct Bus {
    file: String,
    pos: SourcePos,
    substation: String,
    degree: usize,
    /// Index of the load attached here, if any (name, file, pos).
    load: Option<(String, String, SourcePos)>,
    /// Whether an external-grid infeed attaches here.
    has_slack: bool,
}

#[derive(Default)]
struct Graph {
    /// Bus index by connectivity-node path name.
    index: BTreeMap<String, usize>,
    buses: Vec<Bus>,
    /// Edges that exist whatever the switch states are.
    all_closed: Vec<(usize, usize)>,
    /// Edges present in the normally-drawn switching state.
    normal: Vec<(usize, usize)>,
}

impl Graph {
    fn bus(&self, path: &str) -> Option<usize> {
        self.index.get(path).copied()
    }
}

/// Registers every declared connectivity node; SG0304 on duplicates.
fn collect_nodes(bundle: &LoadedBundle, graph: &mut Graph, out: &mut Vec<Diagnostic>) {
    for (file, idx) in super::substation_sources(bundle) {
        let substation = &file.doc.substations[idx];
        for vl in &substation.voltage_levels {
            for bay in &vl.bays {
                for cn in &bay.connectivity_nodes {
                    if graph.index.contains_key(&cn.path_name) {
                        out.push(
                            Diagnostic::warning(
                                codes::DUPLICATE_NODE_PATH,
                                format!(
                                    "connectivity node path {:?} is declared twice",
                                    cn.path_name
                                ),
                                format!("{}/{}/{}", substation.name, vl.name, bay.name),
                            )
                            .with_pos(&file.name, Some(cn.pos)),
                        );
                        continue;
                    }
                    graph.index.insert(cn.path_name.clone(), graph.buses.len());
                    graph.buses.push(Bus {
                        file: file.name.clone(),
                        pos: cn.pos,
                        substation: substation.name.clone(),
                        degree: 0,
                        load: None,
                        has_slack: false,
                    });
                }
            }
        }
    }
}

/// Wires equipment, transformers, and SED ties into the graph.
/// Emits SG0110 (unknown node) and SG0306 (wrong terminal count) on the way.
fn collect_edges(bundle: &LoadedBundle, graph: &mut Graph, out: &mut Vec<Diagnostic>) {
    for (file, idx) in super::substation_sources(bundle) {
        let substation = &file.doc.substations[idx];
        for vl in &substation.voltage_levels {
            for bay in &vl.bays {
                for eq in &bay.equipment {
                    let context =
                        format!("{}/{}/{}/{}", substation.name, vl.name, bay.name, eq.name);
                    let mut buses = Vec::new();
                    for terminal in &eq.terminals {
                        match graph.bus(&terminal.connectivity_node) {
                            Some(bus) => buses.push(bus),
                            None => out.push(
                                Diagnostic::error(
                                    codes::TERMINAL_UNKNOWN_NODE,
                                    format!(
                                        "terminal {} references connectivity node {:?} which is not declared",
                                        terminal.name, terminal.connectivity_node
                                    ),
                                    context.clone(),
                                )
                                .with_pos(&file.name, Some(eq.pos)),
                            ),
                        }
                    }
                    for &bus in &buses {
                        graph.buses[bus].degree += 1;
                    }
                    check_terminal_count(
                        eq.eq_type,
                        eq.terminals.len(),
                        &context,
                        &file.name,
                        eq.pos,
                        out,
                    );
                    match eq.eq_type {
                        EquipmentType::CircuitBreaker | EquipmentType::Disconnector => {
                            if let [a, b] = buses[..] {
                                graph.all_closed.push((a, b));
                                if !eq.normally_open {
                                    graph.normal.push((a, b));
                                }
                            }
                        }
                        EquipmentType::Line | EquipmentType::Other => {
                            if let [a, b] = buses[..] {
                                graph.all_closed.push((a, b));
                                graph.normal.push((a, b));
                            }
                        }
                        // The solver promotes a generator to slack when an
                        // island has no external grid, so both types make an
                        // island energizable. Batteries compile to static
                        // generators and cannot hold an island up alone.
                        EquipmentType::IncomingFeeder | EquipmentType::Generator => {
                            if let [bus] = buses[..] {
                                graph.buses[bus].has_slack = true;
                            }
                        }
                        EquipmentType::Load => {
                            if let [bus] = buses[..] {
                                graph.buses[bus].load =
                                    Some((eq.name.clone(), file.name.clone(), eq.pos));
                            }
                        }
                        EquipmentType::Battery
                        | EquipmentType::CurrentTransformer
                        | EquipmentType::VoltageTransformer => {}
                    }
                }
            }
        }
        for transformer in &substation.transformers {
            let context = format!("{}/{}", substation.name, transformer.name);
            let mut buses = Vec::new();
            for winding in &transformer.windings {
                match graph.bus(&winding.terminal.connectivity_node) {
                    Some(bus) => buses.push(bus),
                    None => out.push(
                        Diagnostic::error(
                            codes::TERMINAL_UNKNOWN_NODE,
                            format!(
                                "winding {} references connectivity node {:?} which is not declared",
                                winding.name, winding.terminal.connectivity_node
                            ),
                            context.clone(),
                        )
                        .with_pos(&file.name, Some(transformer.pos)),
                    ),
                }
            }
            if transformer.windings.len() != 2 {
                out.push(
                    Diagnostic::warning(
                        codes::WRONG_TERMINAL_COUNT,
                        format!(
                            "power transformer has {} windings, expected 2",
                            transformer.windings.len()
                        ),
                        context,
                    )
                    .with_pos(&file.name, Some(transformer.pos)),
                );
            }
            for &bus in &buses {
                graph.buses[bus].degree += 1;
            }
            if let [a, b] = buses[..] {
                graph.all_closed.push((a, b));
                graph.normal.push((a, b));
            }
        }
    }

    // SED ties join substations; endpoint validity is the xref pass's job,
    // here unresolvable endpoints are simply skipped.
    for file in &bundle.seds {
        for tie in &file.doc.inter_substation_lines {
            if let (Some(a), Some(b)) = (graph.bus(&tie.from_node), graph.bus(&tie.to_node)) {
                graph.buses[a].degree += 1;
                graph.buses[b].degree += 1;
                graph.all_closed.push((a, b));
                graph.normal.push((a, b));
            }
        }
    }
}

/// SG0306 for conducting equipment.
fn check_terminal_count(
    eq_type: EquipmentType,
    terminals: usize,
    context: &str,
    file: &str,
    pos: SourcePos,
    out: &mut Vec<Diagnostic>,
) {
    let expected = match eq_type {
        EquipmentType::CircuitBreaker | EquipmentType::Disconnector | EquipmentType::Line => 2,
        EquipmentType::IncomingFeeder
        | EquipmentType::Load
        | EquipmentType::Generator
        | EquipmentType::Battery => 1,
        _ => return,
    };
    if terminals != expected {
        out.push(
            Diagnostic::warning(
                codes::WRONG_TERMINAL_COUNT,
                format!(
                    "{} equipment has {terminals} terminals, expected {expected}",
                    eq_type.code()
                ),
                context.to_string(),
            )
            .with_pos(file, Some(pos)),
        );
    }
}

/// SG0301 (isolated bus), SG0302 (island without slack), SG0303 (normal
/// switch state isolates a load the all-closed graph supplies).
fn report_islands(graph: &Graph, out: &mut Vec<Diagnostic>) {
    let n = graph.buses.len();
    for (i, bus) in graph.buses.iter().enumerate() {
        if bus.degree == 0 {
            let path = graph
                .index
                .iter()
                .find(|(_, &idx)| idx == i)
                .map(|(p, _)| p.as_str())
                .unwrap_or("?");
            out.push(
                Diagnostic::warning(
                    codes::ISOLATED_BUS,
                    format!("connectivity node {path:?} has no connected equipment"),
                    format!("Substation {}", bus.substation),
                )
                .with_pos(&bus.file, Some(bus.pos)),
            );
        }
    }

    let closed = components(n, &graph.all_closed);
    let normal = components(n, &graph.normal);

    // Which components (in each graph) contain a slack source?
    let mut closed_fed = vec![false; n];
    let mut normal_fed = vec![false; n];
    for (i, bus) in graph.buses.iter().enumerate() {
        if bus.has_slack {
            closed_fed[closed[i]] = true;
            normal_fed[normal[i]] = true;
        }
    }

    // SG0302: one finding per dead island, anchored at its first bus.
    let mut reported = vec![false; n];
    for (i, bus) in graph.buses.iter().enumerate() {
        if bus.degree == 0 || closed_fed[closed[i]] || reported[closed[i]] {
            continue;
        }
        reported[closed[i]] = true;
        let members = closed.iter().filter(|&&c| c == closed[i]).count();
        out.push(
            Diagnostic::error(
                codes::ISLAND_NO_SLACK,
                format!(
                    "electrical island of {members} bus(es) has no external-grid infeed or generator even with every switch closed"
                ),
                format!("Substation {}", bus.substation),
            )
            .with_pos(&bus.file, Some(bus.pos)),
        );
    }

    // SG0303: loads the drawn switch states cut off from every source.
    for (i, bus) in graph.buses.iter().enumerate() {
        let Some((load, file, pos)) = &bus.load else {
            continue;
        };
        if closed_fed[closed[i]] && !normal_fed[normal[i]] {
            out.push(
                Diagnostic::warning(
                    codes::SWITCH_ISOLATES_LOAD,
                    format!(
                        "load {load:?} is unsupplied in the normal switching state (closing open switches would supply it)"
                    ),
                    format!("Substation {}", bus.substation),
                )
                .with_pos(file, Some(*pos)),
            );
        }
    }
}

/// Connected components by union-find; returns each node's root index.
fn components(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]]; // path halving
            x = parent[x];
        }
        x
    }
    for &(a, b) in edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    }
    (0..n).map(|i| find(&mut parent, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_components() {
        let roots = components(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(roots[0], roots[1]);
        assert_eq!(roots[1], roots[2]);
        assert_eq!(roots[3], roots[4]);
        assert_ne!(roots[0], roots[3]);
    }
}
