//! Adversary-plane checks (`SG7xxx`): can every `<Adversary>` declaration
//! actually be planned against the bundle's derived attack graph?
//!
//! The pass compiles the bundle, derives the same [`AttackGraph`] the
//! exercise engine will use, and dry-runs the seeded planner — so a goal
//! that cannot parse, names an unknown target, is unreachable with the
//! available attack primitives, or exceeds its action budget is caught at
//! lint time with a real `file:line:column` span instead of failing when
//! the exercise boots. It also warns when a planned campaign and a manual
//! cyber stage fight over the same victim host.

use crate::pass::LintPass;
use crate::source::{FileRole, LoadedBundle};
use sgcr_adversary::{plan, AttackGraph, PlanError, PlanRequest};
use sgcr_core::{CompiledModel, SgmlBundle};
use sgcr_scenario::{Adversary, Pos, Scenario, StageAction};
use sgcr_scl::{codes, Diagnostic, Span};
use std::collections::BTreeSet;

/// Validates `<Adversary>` declarations against the derived attack graph.
pub struct AdversaryPass;

impl LintPass for AdversaryPass {
    fn name(&self) -> &'static str {
        "adversary"
    }

    fn run(&self, bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
        if bundle
            .scenarios
            .iter()
            .all(|(_, scenario)| scenario.adversary.is_none())
        {
            return;
        }
        // The planner needs the compiled model; when the bundle does not
        // compile, the structural passes already explain why — stay quiet.
        let Ok(model) = CompiledModel::compile(&reassemble(bundle)) else {
            return;
        };
        let graph = AttackGraph::derive(&model);
        for (file, scenario) in &bundle.scenarios {
            let Some(adv) = &scenario.adversary else {
                continue;
            };
            check_adversary(file, scenario, adv, &graph, out);
        }
    }
}

/// Rebuilds the [`SgmlBundle`] the processor would compile from the raw
/// loaded files, by role.
fn reassemble(bundle: &LoadedBundle) -> SgmlBundle {
    let mut sgml = SgmlBundle::default();
    for file in &bundle.files {
        let text = file.text.clone();
        match file.role {
            FileRole::Ssd => sgml.ssds.push(text),
            FileRole::Scd => sgml.scds.push(text),
            FileRole::Icd => sgml.icds.push(text),
            FileRole::Sed => sgml.seds.push(text),
            FileRole::IedConfig => sgml.ied_config = Some(text),
            FileRole::ScadaConfig => sgml.scada_config = Some(text),
            FileRole::PlcConfig => sgml.plc_config = Some(text),
            FileRole::PowerConfig => sgml.power_extra = Some(text),
            FileRole::Scenario => sgml.scenarios.push(text),
        }
    }
    sgml
}

fn span(file: &str, pos: Pos) -> Span {
    if pos.line > 0 {
        Span::new(file, pos.line, pos.column)
    } else {
        Span::new(file, 1, 1)
    }
}

/// Dry-runs the planner for one declaration and maps every failure mode
/// to its SG7xxx code; on success, cross-checks manual cyber stages.
fn check_adversary(
    file: &str,
    scenario: &Scenario,
    adv: &Adversary,
    graph: &AttackGraph,
    out: &mut Vec<Diagnostic>,
) {
    let context = "Adversary".to_string();
    let reserved_names: Vec<String> = scenario.hosts.iter().map(|h| h.name.clone()).collect();
    let reserved_ips: Vec<_> = scenario
        .hosts
        .iter()
        .filter_map(|h| h.ip.parse().ok())
        .collect();
    let result = plan(
        graph,
        &PlanRequest {
            goal: &adv.goal,
            budget: adv.budget,
            seed: adv.seed,
            reserved_names: &reserved_names,
            reserved_ips: &reserved_ips,
        },
    );
    let campaign = match result {
        Ok(campaign) => campaign,
        Err(e) => {
            let code = match &e {
                PlanError::BadGoal { .. } => codes::ADVERSARY_BAD_GOAL,
                PlanError::UnknownTarget { .. } => codes::ADVERSARY_UNKNOWN_TARGET,
                PlanError::Unreachable { .. } => codes::ADVERSARY_UNREACHABLE_GOAL,
                PlanError::BudgetTooSmall { .. } => codes::ADVERSARY_BUDGET_TOO_SMALL,
            };
            out.push(
                Diagnostic::error(code, e.to_string(), context).with_span(span(file, adv.pos)),
            );
            return;
        }
    };

    // SG7005: a hand-written cyber stage attacking a victim the planned
    // campaign also attacks — both would race for the same host/app slot.
    let planned_victims: BTreeSet<&str> = campaign
        .steps
        .iter()
        .flat_map(|s| s.action.victims())
        .collect();
    for stage in &scenario.stages {
        let manual: Vec<&str> = match &stage.action {
            StageAction::Fci { victim, .. } => vec![victim.as_str()],
            StageAction::Mitm {
                victim_a, victim_b, ..
            } => vec![victim_a.as_str(), victim_b.as_str()],
            _ => continue,
        };
        for victim in manual {
            if planned_victims.contains(victim) {
                out.push(
                    Diagnostic::warning(
                        codes::ADVERSARY_CONFLICTING_STAGE,
                        format!(
                            "stage {:?} manually attacks {victim:?}, which the planned \
                             adversary campaign (goal {:?}) also attacks",
                            stage.id, adv.goal
                        ),
                        format!("Stage {}", stage.id),
                    )
                    .with_span(span(file, stage.pos)),
                );
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use sgcr_models::epic_bundle;

    fn diags_for(scenario_xml: &str) -> Vec<Diagnostic> {
        let mut bundle = epic_bundle();
        bundle.scenarios = vec![scenario_xml.to_string()];
        let loaded = LoadedBundle::from_bundle(&bundle);
        let mut out = Vec::new();
        AdversaryPass.run(&loaded, &mut out);
        out
    }

    #[test]
    fn plannable_goal_is_clean() {
        let out = diags_for(
            r#"<Scenario name="ok" durationMs="8000">
  <Adversary goal="breakerOpen:EPIC/CB_GEN" budget="4" seed="7"/>
</Scenario>"#,
        );
        assert!(out.is_empty(), "unexpected diagnostics: {out:?}");
    }

    #[test]
    fn scenarios_without_adversary_are_skipped() {
        let out = diags_for(r#"<Scenario name="plain" durationMs="1000"/>"#);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn failure_modes_map_to_codes_with_spans() {
        let cases = [
            (r#"goal="open sesame""#, codes::ADVERSARY_BAD_GOAL),
            (
                r#"goal="breakerOpen:EPIC/CB_GHOST""#,
                codes::ADVERSARY_UNKNOWN_TARGET,
            ),
            (
                // GenProt_trip is a state-bit alarm no traffic transform
                // can force.
                r#"goal="scadaAlarm:GenProt_trip""#,
                codes::ADVERSARY_UNREACHABLE_GOAL,
            ),
            (
                r#"goal="breakerOpen:EPIC/CB_GEN" budget="1""#,
                codes::ADVERSARY_BUDGET_TOO_SMALL,
            ),
        ];
        for (attrs, code) in cases {
            let out = diags_for(&format!(
                "<Scenario name=\"bad\" durationMs=\"1000\">\n  <Adversary {attrs}/>\n</Scenario>"
            ));
            assert_eq!(out.len(), 1, "{attrs}: {out:?}");
            assert_eq!(out[0].code, code, "{attrs}");
            // Anchored to the <Adversary> element, not the file top.
            assert!(out[0].span.as_ref().unwrap().line > 1, "{attrs}: {out:?}");
        }
    }

    #[test]
    fn conflicting_manual_stage_is_warned() {
        let out = diags_for(
            r#"<Scenario name="mixed" durationMs="8000">
  <Host name="box" ip="10.0.1.77" switch="GenBus"/>
  <Adversary goal="breakerOpen:EPIC/CB_GEN" budget="2" seed="3"/>
  <Stage id="manual" t="100" kind="fci" host="box" victim="GIED2" item="x" value="false"/>
</Scenario>"#,
        );
        // seed 3, budget 2: the campaign strikes one of GIED1/GIED2. Use
        // whichever victim the seed picks — the point is the overlap fires
        // when a manual stage attacks a planned victim. With two control
        // candidates the test pins the seed so the choice is stable.
        if out.is_empty() {
            // The seeded choice fell on the other IED — attack it instead.
            let out2 = diags_for(
                r#"<Scenario name="mixed" durationMs="8000">
  <Host name="box" ip="10.0.1.77" switch="GenBus"/>
  <Adversary goal="breakerOpen:EPIC/CB_GEN" budget="2" seed="3"/>
  <Stage id="manual" t="100" kind="fci" host="box" victim="GIED1" item="x" value="false"/>
</Scenario>"#,
            );
            assert_eq!(out2.len(), 1, "{out2:?}");
            assert_eq!(out2[0].code, codes::ADVERSARY_CONFLICTING_STAGE);
            assert!(out2[0].span.as_ref().unwrap().line > 1);
        } else {
            assert_eq!(out.len(), 1, "{out:?}");
            assert_eq!(out[0].code, codes::ADVERSARY_CONFLICTING_STAGE);
            assert!(out[0].span.as_ref().unwrap().line > 1);
        }
    }
}
