//! Semantic checks on PLC control logic (`SG6xxx`): the lint front end of
//! the [`sgcr_plc::check_program`] semantic analyzer, plus cross-plane
//! binding coherence.
//!
//! Two passes live here:
//!
//! * [`StLogicPass`] — per-PLC: parses the Structured Text (or PLCopen XML)
//!   body, runs the semantic analyzer, and maps findings back to real
//!   `plc_config.xml` line/column spans through the CDATA offset. Also
//!   flags `<Read>`/`<Write>`/`<Goose>` bindings that reference a variable
//!   the program neither declares nor touches (`SG6020`).
//! * [`ScadaBindingPass`] — cross-file: a SCADA Modbus tag polling a PLC's
//!   coil/register must land on a located output variable the program
//!   actually drives (`SG6021`).

use crate::pass::LintPass;
use crate::source::LoadedBundle;
use sgcr_core::{PlcDef, PlcLogic};
use sgcr_plc::st::check::{CheckCode, CheckSeverity};
use sgcr_plc::{
    assigned_variables, check_program, parse_plcopen, parse_program, read_variables, IoPoint, Pos,
    Program,
};
use sgcr_scada::{ModbusPointKind, PointAddress, SourceProtocol};
use sgcr_scl::{codes, Diagnostic, Severity, Span};
use std::collections::BTreeSet;

/// Semantic analysis of each PLC's control logic.
pub struct StLogicPass;

impl LintPass for StLogicPass {
    fn name(&self) -> &'static str {
        "st-logic"
    }

    fn run(&self, bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
        let Some((file, config)) = &bundle.plc_config else {
            return;
        };
        let text = bundle.source_text(file).unwrap_or("");
        for plc in &config.plcs {
            check_plc(file, text, plc, out);
        }
    }
}

fn check_plc(file: &str, text: &str, plc: &PlcDef, out: &mut Vec<Diagnostic>) {
    let context = format!("PLC {}", plc.name);
    let plc_anchor = element_anchor(text, &format!("<PLC name=\"{}\"", plc.name));

    let (program, body_anchor) = match &plc.logic {
        PlcLogic::StructuredText(st) => {
            let anchor = text.find(st.as_str()).map(|off| pos_at(text, off));
            match parse_program(st) {
                Ok(program) => (program, anchor),
                Err(e) => {
                    let span = map_pos(file, anchor, e.pos)
                        .or_else(|| plc_anchor.map(|(l, c)| Span::new(file, l, c)));
                    out.push(with_opt_span(
                        Diagnostic::error(
                            codes::ST_PARSE_FAILED,
                            format!("structured text does not parse: {e}"),
                            context,
                        ),
                        span,
                    ));
                    return;
                }
            }
        }
        PlcLogic::PlcOpenXml(xml) => match parse_plcopen(xml) {
            // PLCopen positions are synthesized (`Pos::default()`), so
            // findings anchor at the <PLC> element instead.
            Ok(program) => (program, None),
            Err(e) => {
                out.push(with_opt_span(
                    Diagnostic::error(
                        codes::ST_PARSE_FAILED,
                        format!("PLCopen XML does not parse: {e}"),
                        context,
                    ),
                    plc_anchor.map(|(l, c)| Span::new(file, l, c)),
                ));
                return;
            }
        },
    };

    // Variables the runtime provides before every scan: polled MMS reads,
    // GOOSE subscriptions, and located I/O (restored from the register
    // tables by the input image).
    let mut external: BTreeSet<String> = BTreeSet::new();
    external.extend(plc.reads.iter().map(|r| r.variable.clone()));
    external.extend(plc.gooses.iter().map(|g| g.variable.clone()));
    external.extend(
        program
            .vars
            .iter()
            .filter(|v| v.location.is_some())
            .map(|v| v.name.clone()),
    );

    for finding in check_program(&program, &external) {
        let (code, severity) = match (finding.code, finding.severity) {
            (CheckCode::TypeMismatch, s) => (codes::ST_TYPE_MISMATCH, sev(s)),
            (CheckCode::UnknownVariable, s) => (codes::ST_UNKNOWN_VARIABLE, sev(s)),
            (CheckCode::BadFbCall, s) => (codes::ST_BAD_FB_CALL, sev(s)),
            (CheckCode::ReadBeforeWrite, s) => (codes::ST_READ_BEFORE_WRITE, sev(s)),
            (CheckCode::DeadStore, s) => (codes::ST_DEAD_STORE, sev(s)),
            (CheckCode::Unreachable, s) => (codes::ST_UNREACHABLE, sev(s)),
            (CheckCode::DivisionByZero, s) => (codes::ST_DIVISION_BY_ZERO, sev(s)),
        };
        let span = map_pos(file, body_anchor, finding.pos)
            .or_else(|| plc_anchor.map(|(l, c)| Span::new(file, l, c)));
        out.push(with_opt_span(
            Diagnostic::new(code, severity, finding.message, context.clone()),
            span,
        ));
    }

    check_bindings(file, text, plc, &program, &context, out);
}

/// SG6020: every binding must reference a variable the program knows.
/// `<Read>`/`<Goose>` feed a variable the program should *read* somewhere;
/// `<Write>` watches a variable the program should *assign*.
fn check_bindings(
    file: &str,
    text: &str,
    plc: &PlcDef,
    program: &Program,
    context: &str,
    out: &mut Vec<Diagnostic>,
) {
    let declared: BTreeSet<&str> = program.vars.iter().map(|v| v.name.as_str()).collect();
    let reads = read_variables(program);
    let assigned = assigned_variables(program);
    let plc_off = text
        .find(&format!("<PLC name=\"{}\"", plc.name))
        .unwrap_or(0);

    let flag = |variable: &str, kind: &str, detail: &str, out: &mut Vec<Diagnostic>| {
        let span = text[plc_off..]
            .find(&format!("variable=\"{variable}\""))
            .map(|rel| {
                let (l, c) = pos_at(text, plc_off + rel);
                Span::new(file, l, c)
            });
        out.push(with_opt_span(
            Diagnostic::error(
                codes::PLC_BINDING_UNDECLARED,
                format!("{kind} binding references variable {variable:?}, which {detail}"),
                context.to_string(),
            ),
            span,
        ));
    };

    for rule in &plc.reads {
        let v = rule.variable.as_str();
        if !declared.contains(v) && !reads.contains(v) {
            flag(v, "<Read>", "the program neither declares nor reads", out);
        }
    }
    for rule in &plc.gooses {
        let v = rule.variable.as_str();
        if !declared.contains(v) && !reads.contains(v) {
            flag(v, "<Goose>", "the program neither declares nor reads", out);
        }
    }
    for rule in &plc.writes {
        let v = rule.variable.as_str();
        if !declared.contains(v) && !assigned.contains(v) {
            flag(
                v,
                "<Write>",
                "the program neither declares nor assigns",
                out,
            );
        }
    }
}

/// SG6021: SCADA Modbus tags must poll PLC outputs something drives.
pub struct ScadaBindingPass;

impl LintPass for ScadaBindingPass {
    fn name(&self) -> &'static str {
        "scada-binding"
    }

    fn run(&self, bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
        let Some((sfile, scada)) = &bundle.scada_config else {
            return;
        };
        let Some((_, plc_config)) = &bundle.plc_config else {
            return;
        };
        let stext = bundle.source_text(sfile).unwrap_or("");

        for source in &scada.sources {
            if !matches!(source.protocol, SourceProtocol::Modbus { .. }) {
                continue;
            }
            let Some(plc) = plc_config.plcs.iter().find(|p| p.name == source.name) else {
                continue;
            };
            let program = match &plc.logic {
                PlcLogic::StructuredText(st) => parse_program(st).ok(),
                PlcLogic::PlcOpenXml(xml) => parse_plcopen(xml).ok(),
            };
            // A broken program is already SG6000; nothing to cross-check.
            let Some(program) = program else { continue };
            let assigned = assigned_variables(&program);

            for point in &source.points {
                if point.writable {
                    // Operator command: SCADA drives it, not the PLC.
                    continue;
                }
                let PointAddress::Modbus { kind, address } = &point.address else {
                    continue;
                };
                // Only the PLC-driven output tables can go stale; discrete
                // and input-register tables are fed from outside the logic.
                let expected = match kind {
                    ModbusPointKind::Coil => IoPoint::Coil(*address),
                    ModbusPointKind::Holding => IoPoint::Holding(*address),
                    ModbusPointKind::Discrete | ModbusPointKind::Input => continue,
                };
                let located = program.vars.iter().find(|v| {
                    v.location
                        .as_deref()
                        .and_then(IoPoint::parse)
                        .is_some_and(|p| p == expected)
                });
                let problem = match located {
                    None => format!(
                        "tag {:?} polls {expected} of PLC {:?}, but no located variable \
                         sits at that address",
                        point.name, plc.name
                    ),
                    Some(var) if !assigned.contains(&var.name) => format!(
                        "tag {:?} polls {expected} of PLC {:?} (variable {:?}), but the \
                         program never assigns it",
                        point.name, plc.name, var.name
                    ),
                    Some(_) => continue,
                };
                let span = stext.find(&format!("name=\"{}\"", point.name)).map(|off| {
                    let (l, c) = pos_at(stext, off);
                    Span::new(sfile, l, c)
                });
                out.push(with_opt_span(
                    Diagnostic::warning(
                        codes::SCADA_TAG_UNDRIVEN,
                        problem,
                        format!("DataSource {}", source.name),
                    ),
                    span,
                ));
            }
        }
    }
}

// --- span plumbing ---------------------------------------------------------

fn sev(s: CheckSeverity) -> Severity {
    match s {
        CheckSeverity::Warning => Severity::Warning,
        CheckSeverity::Error => Severity::Error,
    }
}

fn with_opt_span(d: Diagnostic, span: Option<Span>) -> Diagnostic {
    match span {
        Some(span) => d.with_span(span),
        None => d,
    }
}

/// Line/column (1-based) of a byte offset.
fn pos_at(text: &str, offset: usize) -> (u32, u32) {
    let before = &text[..offset.min(text.len())];
    let line = before.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
    let column = (offset - before.rfind('\n').map_or(0, |i| i + 1)) as u32 + 1;
    (line, column)
}

/// Position of a marker string inside the file.
fn element_anchor(text: &str, marker: &str) -> Option<(u32, u32)> {
    text.find(marker).map(|off| pos_at(text, off))
}

/// Translates an ST-relative position into a file span, given the file
/// position where the ST body starts. Line 1 of the body shares a file line
/// with the `<![CDATA[` opener, so its columns shift by the anchor column.
fn map_pos(file: &str, anchor: Option<(u32, u32)>, pos: Pos) -> Option<Span> {
    let (base_line, base_col) = anchor?;
    if !pos.is_known() {
        return None;
    }
    let line = base_line + pos.line - 1;
    let column = if pos.line == 1 {
        base_col + pos.column - 1
    } else {
        pos.column
    };
    Some(Span::new(file, line, column))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::source::FileRole;

    fn bundle_with_plc(plc_xml: &str) -> LoadedBundle {
        let mut bundle = LoadedBundle::default();
        bundle.add_file(
            "plc_config.xml".into(),
            FileRole::PlcConfig,
            plc_xml.to_string(),
        );
        bundle
    }

    fn run_pass(bundle: &LoadedBundle) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        StLogicPass.run(bundle, &mut out);
        out
    }

    #[test]
    fn clean_logic_produces_nothing() {
        let bundle = bundle_with_plc(
            r#"<PLCConfig>
  <PLC name="CPLC" scanMs="100">
    <Logic type="st"><![CDATA[
PROGRAM p
VAR
    level : REAL;
    alarm AT %QX0.0 : BOOL;
END_VAR
alarm := level > 0.9;
END_PROGRAM
]]></Logic>
    <Read server="GIED1" item="x" variable="level"/>
  </PLC>
</PLCConfig>"#,
        );
        let out = run_pass(&bundle);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn parse_error_maps_to_file_coordinates() {
        // The bad token sits on CDATA line 2 → file line 4.
        let bundle = bundle_with_plc(
            "<PLCConfig>\n  <PLC name=\"CPLC\">\n    <Logic type=\"st\"><![CDATA[\nx := ;\n]]></Logic>\n  </PLC>\n</PLCConfig>",
        );
        let out = run_pass(&bundle);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, codes::ST_PARSE_FAILED);
        let span = out[0].span.as_ref().expect("span");
        assert_eq!(span.file, "plc_config.xml");
        assert_eq!(span.line, 4);
        assert_eq!(span.column, 6);
    }

    #[test]
    fn semantic_findings_carry_real_spans() {
        let bundle = bundle_with_plc(
            "<PLCConfig>\n  <PLC name=\"CPLC\">\n    <Logic type=\"st\"><![CDATA[\nPROGRAM p\nVAR x : INT; END_VAR\nx := nope;\nEND_PROGRAM\n]]></Logic>\n  </PLC>\n</PLCConfig>",
        );
        let out = run_pass(&bundle);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, codes::ST_UNKNOWN_VARIABLE);
        assert_eq!(out[0].severity, Severity::Error);
        // `nope` is on CDATA line 4 (the CDATA text starts with a newline),
        // column 6 → file line 6.
        let span = out[0].span.as_ref().expect("span");
        assert_eq!((span.line, span.column), (6, 6));
    }

    #[test]
    fn dangling_bindings_are_flagged() {
        let bundle = bundle_with_plc(
            r#"<PLCConfig>
  <PLC name="CPLC">
    <Logic type="st"><![CDATA[
PROGRAM p
VAR out AT %QX0.0 : BOOL; trip : BOOL; END_VAR
out := trip;
END_PROGRAM
]]></Logic>
    <Goose gocb="G1LD0/LLN0$GO$gcb01" index="0" variable="trip"/>
    <Goose gocb="G1LD0/LLN0$GO$gcb01" index="1" variable="ghost"/>
    <Write server="IED1" item="ctl" variable="never_set"/>
  </PLC>
</PLCConfig>"#,
        );
        let out = run_pass(&bundle);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.code == codes::PLC_BINDING_UNDECLARED));
        assert!(out[0].message.contains("ghost"));
        assert!(out[1].message.contains("never_set"));
        // Spans anchor at the offending variable= attribute.
        let span = out[0].span.as_ref().expect("span");
        assert_eq!(span.line, 10);
    }

    #[test]
    fn scada_tag_on_undriven_output_is_flagged() {
        let mut bundle = bundle_with_plc(
            r#"<PLCConfig>
  <PLC name="CPLC">
    <Logic type="st"><![CDATA[
PROGRAM p
VAR driven AT %QW0 : INT; idle AT %QW1 : INT; b : BOOL; END_VAR
driven := 1;
b := idle > 0;
END_PROGRAM
]]></Logic>
  </PLC>
</PLCConfig>"#,
        );
        bundle.add_file(
            "scada_config.xml".into(),
            FileRole::ScadaConfig,
            r#"<ScadaConfig name="HMI">
  <DataSource name="CPLC" type="MODBUS" ip="10.0.0.9" port="502">
    <Point name="OkTag" kind="holding" address="0"/>
    <Point name="StaleTag" kind="holding" address="1"/>
    <Point name="GhostTag" kind="holding" address="7"/>
    <Point name="CmdTag" kind="coil" address="0" writable="true"/>
  </DataSource>
</ScadaConfig>"#
                .to_string(),
        );
        let mut out = Vec::new();
        ScadaBindingPass.run(&bundle, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.code == codes::SCADA_TAG_UNDRIVEN));
        assert!(out.iter().any(|d| d.message.contains("StaleTag")));
        assert!(out.iter().any(|d| d.message.contains("GhostTag")));
        assert!(out.iter().all(|d| d.span.is_some()));
    }
}
