//! Bundle-hygiene checks (`SG05xx`): files that contribute nothing and
//! declarations that collide across files.

use crate::pass::LintPass;
use crate::source::LoadedBundle;
use sgcr_scl::{codes, Diagnostic};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Flags orphan ICDs, dead files, and duplicate substations.
pub struct OrphanPass;

impl LintPass for OrphanPass {
    fn name(&self) -> &'static str {
        "orphan"
    }

    fn run(&self, bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
        check_orphan_icds(bundle, out);
        check_dead_files(bundle, out);
        check_duplicate_substations(bundle, out);
    }
}

/// SG0501: an ICD whose IED nothing in the bundle instantiates.
fn check_orphan_icds(bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
    let mut referenced = BTreeSet::new();
    for file in &bundle.scds {
        for ied in &file.doc.ieds {
            referenced.insert(ied.name.clone());
        }
        if let Some(comm) = &file.doc.communication {
            for subnet in &comm.subnetworks {
                for ap in &subnet.connected_aps {
                    referenced.insert(ap.ied_name.clone());
                }
            }
        }
    }
    for file in bundle.substation_files() {
        for substation in &file.doc.substations {
            for vl in &substation.voltage_levels {
                for bay in &vl.bays {
                    for lnode in &bay.lnodes {
                        referenced.insert(lnode.ied_name.clone());
                    }
                }
            }
        }
    }
    if let Some((_, config)) = &bundle.ied_config {
        for spec in &config.ieds {
            referenced.insert(spec.name.clone());
        }
    }

    for file in &bundle.icds {
        let orphaned = !file.doc.ieds.is_empty()
            && file
                .doc
                .ieds
                .iter()
                .all(|ied| !referenced.contains(&ied.name));
        if orphaned {
            let names: Vec<&str> = file.doc.ieds.iter().map(|i| i.name.as_str()).collect();
            let first = &file.doc.ieds[0];
            out.push(
                Diagnostic::warning(
                    codes::ORPHAN_ICD,
                    format!(
                        "ICD describes IED {} which no SCD, diagram, or IED Config references",
                        names.join(", ")
                    ),
                    format!("ICD {}", file.name),
                )
                .with_pos(&file.name, Some(first.pos)),
            );
        }
    }
}

/// SG0502: model files that carry none of the content their kind exists for.
fn check_dead_files(bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
    for file in &bundle.ssds {
        if file.doc.substations.is_empty() {
            out.push(
                Diagnostic::warning(
                    codes::UNUSED_FILE,
                    "SSD file declares no substation".to_string(),
                    format!("SSD {}", file.name),
                )
                .with_span(sgcr_scl::Span::new(&file.name, 1, 1)),
            );
        }
    }
    for file in &bundle.seds {
        if file.doc.inter_substation_lines.is_empty() {
            out.push(
                Diagnostic::warning(
                    codes::UNUSED_FILE,
                    "SED file declares no inter-substation tie".to_string(),
                    format!("SED {}", file.name),
                )
                .with_span(sgcr_scl::Span::new(&file.name, 1, 1)),
            );
        }
    }
    for file in &bundle.scds {
        if file.doc.ieds.is_empty() && file.doc.communication.is_none() {
            out.push(
                Diagnostic::warning(
                    codes::UNUSED_FILE,
                    "SCD file carries neither IEDs nor a Communication section".to_string(),
                    format!("SCD {}", file.name),
                )
                .with_span(sgcr_scl::Span::new(&file.name, 1, 1)),
            );
        }
    }
}

/// SG0504: one substation name declared by two SSD files.
fn check_duplicate_substations(bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
    let mut first_file: BTreeMap<&str, &str> = BTreeMap::new();
    for file in &bundle.ssds {
        for substation in &file.doc.substations {
            match first_file.get(substation.name.as_str()) {
                None => {
                    first_file.insert(&substation.name, &file.name);
                }
                Some(original) => {
                    out.push(
                        Diagnostic::error(
                            codes::DUPLICATE_SUBSTATION,
                            format!(
                                "substation {:?} is already declared in {original}",
                                substation.name
                            ),
                            format!("Substation {}", substation.name),
                        )
                        .with_pos(&file.name, Some(substation.pos)),
                    );
                }
            }
        }
    }
}
