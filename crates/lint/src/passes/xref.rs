//! Cross-file reference checks (`SG01xx`): every name one file uses must be
//! declared by another file of the bundle.

use super::{known_host_names, known_ied_names};
use crate::pass::LintPass;
use crate::source::LoadedBundle;
use sgcr_scl::{codes, Diagnostic};
use std::collections::BTreeSet;

/// Resolves IED names, SED tie endpoints, and supplementary-config hosts.
pub struct XrefPass;

impl LintPass for XrefPass {
    fn name(&self) -> &'static str {
        "xref"
    }

    fn run(&self, bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
        let ieds = known_ied_names(bundle);
        let hosts = known_host_names(bundle);

        check_connected_aps(bundle, &ieds, out);
        check_lnodes(bundle, &ieds, out);
        check_sed_ties(bundle, &ieds, out);
        check_configs(bundle, &ieds, &hosts, out);
    }
}

/// SG0101 + SG0102: access points vs. IED declarations, per SCD.
fn check_connected_aps(bundle: &LoadedBundle, ieds: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    let mut ap_owners = BTreeSet::new();
    for file in &bundle.scds {
        if let Some(comm) = &file.doc.communication {
            for subnet in &comm.subnetworks {
                for ap in &subnet.connected_aps {
                    ap_owners.insert(ap.ied_name.clone());
                    // SCADA and PLC hosts legitimately have an access point
                    // without an <IED> server section, hence only a warning.
                    if !ieds.contains(&ap.ied_name) && ap.ied_name != bundle.scada_host {
                        let is_plc = bundle
                            .plc_config
                            .as_ref()
                            .is_some_and(|(_, c)| c.plcs.iter().any(|p| p.name == ap.ied_name));
                        if !is_plc {
                            out.push(
                                Diagnostic::warning(
                                    codes::CONNECTED_AP_UNDECLARED_IED,
                                    format!(
                                        "ConnectedAP references IED {:?} but no <IED> declares it",
                                        ap.ied_name
                                    ),
                                    format!("SubNetwork {}", subnet.name),
                                )
                                .with_pos(&file.name, Some(ap.pos)),
                            );
                        }
                    }
                }
            }
        }
    }
    // SG0102: a declared IED that no access point puts on the network.
    for file in &bundle.scds {
        if file.doc.communication.is_none() {
            continue; // structure-only SCD; absence of APs is not informative
        }
        for ied in &file.doc.ieds {
            if !ap_owners.contains(&ied.name) {
                out.push(
                    Diagnostic::warning(
                        codes::IED_NO_CONNECTED_AP,
                        format!("IED {:?} has no ConnectedAP on any subnetwork", ied.name),
                        format!("IED {}", ied.name),
                    )
                    .with_pos(&file.name, Some(ied.pos)),
                );
            }
        }
    }
}

/// SG0103: `<LNode>` references in single-line diagrams.
fn check_lnodes(bundle: &LoadedBundle, ieds: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    for (file, idx) in super::substation_sources(bundle) {
        let substation = &file.doc.substations[idx];
        for vl in &substation.voltage_levels {
            for bay in &vl.bays {
                for lnode in &bay.lnodes {
                    if !lnode.ied_name.is_empty() && !ieds.contains(&lnode.ied_name) {
                        out.push(
                            Diagnostic::warning(
                                codes::LNODE_UNKNOWN_IED,
                                format!(
                                    "LNode references IED {:?} which no SCD, ICD, or IED Config declares",
                                    lnode.ied_name
                                ),
                                format!("{}/{}/{}", substation.name, vl.name, bay.name),
                            )
                            .with_pos(&file.name, Some(lnode.pos)),
                        );
                    }
                }
            }
        }
    }
}

/// SG0104/SG0105/SG0106: SED tie endpoints.
fn check_sed_ties(bundle: &LoadedBundle, ieds: &BTreeSet<String>, out: &mut Vec<Diagnostic>) {
    let mut substations = BTreeSet::new();
    let mut node_paths = BTreeSet::new();
    for file in bundle.substation_files() {
        for substation in &file.doc.substations {
            substations.insert(substation.name.clone());
        }
        node_paths.extend(file.doc.connectivity_node_paths());
    }

    for file in &bundle.seds {
        for tie in &file.doc.inter_substation_lines {
            for (side, substation, node) in [
                ("from", &tie.from_substation, &tie.from_node),
                ("to", &tie.to_substation, &tie.to_node),
            ] {
                if !substations.contains(substation) {
                    out.push(
                        Diagnostic::error(
                            codes::SED_UNKNOWN_SUBSTATION,
                            format!(
                                "tie {} endpoint references substation {substation:?} which no SSD declares",
                                side
                            ),
                            format!("InterSubstationLine {}", tie.name),
                        )
                        .with_pos(&file.name, Some(tie.pos)),
                    );
                } else if !node_paths.contains(node) {
                    out.push(
                        Diagnostic::error(
                            codes::SED_UNKNOWN_NODE,
                            format!(
                                "tie {side} endpoint references connectivity node {node:?} which {substation} does not contain"
                            ),
                            format!("InterSubstationLine {}", tie.name),
                        )
                        .with_pos(&file.name, Some(tie.pos)),
                    );
                }
            }
            for ied in &tie.protection_ieds {
                if !ieds.contains(ied) {
                    out.push(
                        Diagnostic::warning(
                            codes::SED_UNKNOWN_PROTECTION_IED,
                            format!("tie names protection IED {ied:?} which the bundle does not declare"),
                            format!("InterSubstationLine {}", tie.name),
                        )
                        .with_pos(&file.name, Some(tie.pos)),
                    );
                }
            }
        }
    }
}

/// SG0107/SG0108/SG0109: supplementary configs vs. the model.
fn check_configs(
    bundle: &LoadedBundle,
    ieds: &BTreeSet<String>,
    hosts: &BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    // With no SCD at all there is nothing to resolve against.
    let have_model = bundle.scds.iter().any(|f| !f.doc.ieds.is_empty());

    if let Some((config_file, config)) = &bundle.ied_config {
        if have_model {
            for spec in &config.ieds {
                let declared = bundle
                    .scds
                    .iter()
                    .chain(bundle.icds.iter())
                    .any(|f| f.doc.ied(&spec.name).is_some());
                if !declared && !hosts.contains(&spec.name) {
                    out.push(Diagnostic::error(
                        codes::CONFIG_UNKNOWN_HOST,
                        format!(
                            "IED Config configures IED {:?} which no SCD or ICD declares",
                            spec.name
                        ),
                        format!("{config_file}: IED {}", spec.name),
                    ));
                }
            }
        }
    }

    if let Some((config_file, config)) = &bundle.plc_config {
        for plc in &config.plcs {
            for (kind, server) in plc
                .reads
                .iter()
                .map(|r| ("read", &r.server))
                .chain(plc.writes.iter().map(|w| ("write", &w.server)))
            {
                if !ieds.contains(server) && !hosts.contains(server) {
                    out.push(Diagnostic::error(
                        codes::PLC_BINDING_UNRESOLVED,
                        format!("PLC {kind} binding targets MMS server {server:?} which the bundle does not declare"),
                        format!("{config_file}: PLC {}", plc.name),
                    ));
                }
            }
        }
    }

    if let Some((config_file, config)) = &bundle.scada_config {
        let comm_present = bundle.scds.iter().any(|f| f.doc.communication.is_some());
        if comm_present && !hosts.contains(&bundle.scada_host) {
            out.push(Diagnostic::error(
                codes::SCADA_UNKNOWN_HOST,
                format!(
                    "SCADA workstation host {:?} has no ConnectedAP in any SCD",
                    bundle.scada_host
                ),
                format!("{config_file}: ScadaConfig {}", config.name),
            ));
        }
        // An MMS source must point at an IP some access point owns; Modbus
        // sources target PLC soft-hosts which have no AP, so they are exempt.
        let ap_ips: BTreeSet<&str> = bundle
            .scds
            .iter()
            .flat_map(|f| f.doc.communication.iter())
            .flat_map(|c| c.subnetworks.iter())
            .flat_map(|s| s.connected_aps.iter())
            .map(|ap| ap.ip.as_str())
            .collect();
        if comm_present {
            for source in &config.sources {
                if source.protocol == sgcr_scada::SourceProtocol::Mms
                    && !ap_ips.contains(source.ip.as_str())
                {
                    out.push(Diagnostic::warning(
                        codes::CONFIG_UNKNOWN_HOST,
                        format!(
                            "SCADA data source {:?} polls MMS server {} which no ConnectedAP owns",
                            source.name, source.ip
                        ),
                        format!("{config_file}: DataSource {}", source.name),
                    ));
                }
            }
        }
    }
}
