//! Exercise-scenario checks (`SG5xxx`): does every scenario file fit the
//! bundle it ships with?
//!
//! The scenario schema is deliberately lenient at parse time — dangling
//! references are this pass's job, anchored to the offending element's
//! `file:line:column` so a broken exercise is caught before anyone boots a
//! range to run it.

use crate::pass::LintPass;
use crate::passes::{known_host_names, known_ied_names, substation_sources};
use crate::source::LoadedBundle;
use sgcr_scenario::{Check, Pos, Scenario, StageAction, StageStart};
use sgcr_scl::{codes, Diagnostic, EquipmentType, Span};
use std::collections::BTreeSet;

/// Validates `*.scenario.xml` files against the rest of the bundle.
pub struct ScenarioPass;

impl LintPass for ScenarioPass {
    fn name(&self) -> &'static str {
        "scenario"
    }

    fn run(&self, bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
        let names = BundleNames::collect(bundle);
        for (file, scenario) in &bundle.scenarios {
            check_duplicate_ids(file, scenario, out);
            check_stage_refs(file, scenario, out);
            check_targets(file, scenario, &names, out);
            check_deadlines(file, scenario, out);
        }
    }
}

/// Everything a scenario can legally reference, harvested once per bundle.
struct BundleNames {
    /// Hosts with a network presence (IEDs, PLCs, SCADA).
    hosts: BTreeSet<String>,
    /// Subnetwork (switch) names.
    subnetworks: BTreeSet<String>,
    /// IED names.
    ieds: BTreeSet<String>,
    /// Scoped power-equipment names (`Substation/Name`) by type code.
    switches: BTreeSet<String>,
    /// Scoped line names.
    lines: BTreeSet<String>,
    /// Scoped generator/battery names.
    gens: BTreeSet<String>,
    /// Scoped load names.
    loads: BTreeSet<String>,
    /// Connectivity-node paths (`Substation/VoltageLevel/Bay/Name`).
    buses: BTreeSet<String>,
    /// SCADA point (tag) names.
    points: BTreeSet<String>,
}

impl BundleNames {
    fn collect(bundle: &LoadedBundle) -> BundleNames {
        let mut names = BundleNames {
            hosts: known_host_names(bundle),
            subnetworks: BTreeSet::new(),
            ieds: known_ied_names(bundle),
            switches: BTreeSet::new(),
            lines: BTreeSet::new(),
            gens: BTreeSet::new(),
            loads: BTreeSet::new(),
            buses: BTreeSet::new(),
            points: BTreeSet::new(),
        };
        names.hosts.insert(bundle.scada_host.clone());
        for file in &bundle.scds {
            if let Some(comm) = &file.doc.communication {
                for subnet in &comm.subnetworks {
                    names.subnetworks.insert(subnet.name.clone());
                }
            }
        }
        for (file, i) in substation_sources(bundle) {
            let substation = &file.doc.substations[i];
            for vl in &substation.voltage_levels {
                for bay in &vl.bays {
                    for cn in &bay.connectivity_nodes {
                        names.buses.insert(format!(
                            "{}/{}/{}/{}",
                            substation.name, vl.name, bay.name, cn.name
                        ));
                    }
                    for eq in &bay.equipment {
                        let scoped = format!("{}/{}", substation.name, eq.name);
                        match eq.eq_type {
                            EquipmentType::CircuitBreaker | EquipmentType::Disconnector => {
                                names.switches.insert(scoped);
                            }
                            EquipmentType::Line => {
                                names.lines.insert(scoped);
                            }
                            EquipmentType::Generator | EquipmentType::Battery => {
                                names.gens.insert(scoped);
                            }
                            EquipmentType::Load => {
                                names.loads.insert(scoped);
                            }
                            _ => {}
                        }
                    }
                }
            }
        }
        if let Some((_, config)) = &bundle.scada_config {
            for source in &config.sources {
                for point in &source.points {
                    names.points.insert(point.name.clone());
                }
            }
        }
        names
    }
}

fn span(file: &str, pos: Pos) -> Option<Span> {
    (pos.line > 0).then(|| Span::new(file, pos.line, pos.column))
}

fn push(
    out: &mut Vec<Diagnostic>,
    code: &'static str,
    message: String,
    context: String,
    file: &str,
    pos: Pos,
) {
    let mut d = Diagnostic::error(code, message, context);
    if let Some(span) = span(file, pos) {
        d = d.with_span(span);
    } else {
        d = d.with_span(Span::new(file, 1, 1));
    }
    out.push(d);
}

/// SG5004: two stages or two objectives sharing one id.
fn check_duplicate_ids(file: &str, scenario: &Scenario, out: &mut Vec<Diagnostic>) {
    let mut stage_ids = BTreeSet::new();
    for stage in &scenario.stages {
        if !stage_ids.insert(stage.id.as_str()) {
            push(
                out,
                codes::SCENARIO_DUPLICATE_ID,
                format!("stage id {:?} is declared more than once", stage.id),
                format!("Stage {}", stage.id),
                file,
                stage.pos,
            );
        }
    }
    let mut objective_ids = BTreeSet::new();
    for objective in &scenario.objectives {
        if !objective_ids.insert(objective.id.as_str()) {
            push(
                out,
                codes::SCENARIO_DUPLICATE_ID,
                format!("objective id {:?} is declared more than once", objective.id),
                format!("Objective {}", objective.id),
                file,
                objective.pos,
            );
        }
    }
}

/// SG5002: `after=` references that point at no stage (or at themselves).
fn check_stage_refs(file: &str, scenario: &Scenario, out: &mut Vec<Diagnostic>) {
    let stage_ids: BTreeSet<&str> = scenario.stages.iter().map(|s| s.id.as_str()).collect();
    for stage in &scenario.stages {
        if let StageStart::After { stage: dep, .. } = &stage.start {
            let message = if dep == &stage.id {
                Some(format!("stage {:?} waits for itself", stage.id))
            } else if !stage_ids.contains(dep.as_str()) {
                Some(format!(
                    "stage {:?} waits for undefined stage {dep:?}",
                    stage.id
                ))
            } else {
                None
            };
            if let Some(message) = message {
                push(
                    out,
                    codes::SCENARIO_UNDEFINED_STAGE,
                    message,
                    format!("Stage {}", stage.id),
                    file,
                    stage.pos,
                );
            }
        }
    }
    for objective in &scenario.objectives {
        if let Some(dep) = &objective.after {
            if !stage_ids.contains(dep.as_str()) {
                push(
                    out,
                    codes::SCENARIO_UNDEFINED_STAGE,
                    format!(
                        "objective {:?} is anchored to undefined stage {dep:?}",
                        objective.id
                    ),
                    format!("Objective {}", objective.id),
                    file,
                    objective.pos,
                );
            }
        }
    }
}

/// SG5001: stage and objective targets the bundle does not define.
fn check_targets(file: &str, scenario: &Scenario, names: &BundleNames, out: &mut Vec<Diagnostic>) {
    let declared: BTreeSet<&str> = scenario.hosts.iter().map(|h| h.name.as_str()).collect();
    for host in &scenario.hosts {
        if !names.subnetworks.contains(&host.switch) {
            push(
                out,
                codes::SCENARIO_UNKNOWN_TARGET,
                format!(
                    "host {:?} attaches to unknown subnetwork {:?}",
                    host.name, host.switch
                ),
                format!("Host {}", host.name),
                file,
                host.pos,
            );
        }
    }

    let unknown = |what: &str, target: &str, ctx: String, pos: Pos, out: &mut Vec<Diagnostic>| {
        push(
            out,
            codes::SCENARIO_UNKNOWN_TARGET,
            format!("{what} {target:?} is not defined by the bundle"),
            ctx,
            file,
            pos,
        );
    };

    for stage in &scenario.stages {
        let ctx = format!("Stage {}", stage.id);
        match &stage.action {
            StageAction::Power(action) => {
                use sgcr_scenario::ScenarioAction as A;
                let (set, target, what) = match action {
                    A::OpenSwitch(t) | A::CloseSwitch(t) => (&names.switches, t, "switch"),
                    A::LineOutage(t) | A::LineRestore(t) => (&names.lines, t, "line"),
                    A::GenLoss(t) | A::GenRestore(t) => (&names.gens, t, "generator"),
                    A::SetLoadP(t, _) => (&names.loads, t, "load"),
                };
                if !set.contains(target) {
                    unknown(what, target, ctx, stage.pos, out);
                }
            }
            StageAction::Fci { host, victim, .. } => {
                if !declared.contains(host.as_str()) {
                    unknown("attacker host", host, ctx.clone(), stage.pos, out);
                }
                if !names.hosts.contains(victim) {
                    unknown("victim", victim, ctx, stage.pos, out);
                }
            }
            StageAction::Mitm {
                host,
                victim_a,
                victim_b,
                ..
            } => {
                if !declared.contains(host.as_str()) {
                    unknown("attacker host", host, ctx.clone(), stage.pos, out);
                }
                for victim in [victim_a, victim_b] {
                    if !names.hosts.contains(victim) {
                        unknown("victim", victim, ctx.clone(), stage.pos, out);
                    }
                }
            }
            StageAction::Scan { host, .. } => {
                if !declared.contains(host.as_str()) {
                    unknown("attacker host", host, ctx, stage.pos, out);
                }
            }
            StageAction::Link { a, b, .. } => {
                for end in [a, b] {
                    let known = names.hosts.contains(end)
                        || names.subnetworks.contains(end)
                        || declared.contains(end.as_str());
                    if !known {
                        unknown("link endpoint", end, ctx.clone(), stage.pos, out);
                    }
                }
            }
            StageAction::LinkFault { a, b, fault } => {
                for end in [a, b] {
                    let known = names.hosts.contains(end)
                        || names.subnetworks.contains(end)
                        || declared.contains(end.as_str());
                    if !known {
                        push(
                            out,
                            codes::SCENARIO_UNKNOWN_FAULT_TARGET,
                            format!("link endpoint {end:?} is not defined by the bundle"),
                            ctx.clone(),
                            file,
                            stage.pos,
                        );
                    }
                }
                for (what, p) in [
                    ("loss", fault.loss),
                    ("corrupt", fault.corrupt),
                    ("duplicate", fault.duplicate),
                ] {
                    if !(0.0..=1.0).contains(&p) {
                        push(
                            out,
                            codes::SCENARIO_BAD_FAULT_PROBABILITY,
                            format!("stage {:?} has {what}={p} outside [0, 1]", stage.id),
                            ctx.clone(),
                            file,
                            stage.pos,
                        );
                    }
                }
            }
            StageAction::Crash { host, .. } => {
                if !names.hosts.contains(host) && !declared.contains(host.as_str()) {
                    push(
                        out,
                        codes::SCENARIO_UNKNOWN_FAULT_TARGET,
                        format!("crashed host {host:?} is not defined by the bundle"),
                        ctx,
                        file,
                        stage.pos,
                    );
                }
            }
            StageAction::Sensor { ied, .. } => {
                if !names.ieds.contains(ied) {
                    push(
                        out,
                        codes::SCENARIO_UNKNOWN_FAULT_IED,
                        format!("sensor fault IED {ied:?} is not defined by the bundle"),
                        ctx,
                        file,
                        stage.pos,
                    );
                }
            }
        }
    }

    for objective in &scenario.objectives {
        let ctx = format!("Objective {}", objective.id);
        match &objective.check {
            Check::BreakerOpen { switch } | Check::BreakerClosed { switch } => {
                if !names.switches.contains(switch) {
                    unknown("switch", switch, ctx, objective.pos, out);
                }
            }
            Check::IedTrip { ied } => {
                if !names.ieds.contains(ied) {
                    unknown("IED", ied, ctx, objective.pos, out);
                }
            }
            Check::ScadaAlarm { point }
            | Check::TagAbove { point, .. }
            | Check::TagBelow { point, .. } => {
                if !names.points.contains(point) {
                    unknown("SCADA point", point, ctx, objective.pos, out);
                }
            }
            Check::VoltageBand { bus, .. } => {
                if !names.buses.contains(bus) {
                    unknown("bus", bus, ctx, objective.pos, out);
                }
            }
        }
    }
}

/// SG5003: deadlines that can never be met.
fn check_deadlines(file: &str, scenario: &Scenario, out: &mut Vec<Diagnostic>) {
    for objective in &scenario.objectives {
        match &objective.check {
            Check::VoltageBand { from_ms, to_ms, .. } => {
                if to_ms <= from_ms {
                    push(
                        out,
                        codes::SCENARIO_BAD_DEADLINE,
                        format!(
                            "objective {:?} has an empty window (fromMs={from_ms}, toMs={to_ms})",
                            objective.id
                        ),
                        format!("Objective {}", objective.id),
                        file,
                        objective.pos,
                    );
                }
            }
            _ => {
                if objective.within_ms <= 0 {
                    push(
                        out,
                        codes::SCENARIO_BAD_DEADLINE,
                        format!(
                            "objective {:?} has a zero or negative deadline (withinMs={})",
                            objective.id, objective.within_ms
                        ),
                        format!("Objective {}", objective.id),
                        file,
                        objective.pos,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use sgcr_models::epic_bundle;

    fn diags_for(scenario_xml: &str) -> Vec<Diagnostic> {
        let mut bundle = epic_bundle();
        bundle.scenarios = vec![scenario_xml.to_string()];
        let loaded = LoadedBundle::from_bundle(&bundle);
        let mut out = Vec::new();
        ScenarioPass.run(&loaded, &mut out);
        out
    }

    #[test]
    fn shipped_epic_scenario_is_clean() {
        let loaded = LoadedBundle::from_bundle(&epic_bundle());
        assert_eq!(loaded.scenarios.len(), 1);
        let mut out = Vec::new();
        ScenarioPass.run(&loaded, &mut out);
        assert!(out.is_empty(), "unexpected diagnostics: {out:?}");
    }

    #[test]
    fn unknown_targets_are_flagged_with_spans() {
        let out = diags_for(
            r#"<Scenario name="bad" durationMs="1000">
  <Host name="box" ip="10.0.1.66" switch="NoSuchBus"/>
  <Stage id="s1" kind="power" action="openSwitch" target="EPIC/CB_GHOST"/>
  <Stage id="s2" kind="fci" host="box" victim="GHOST1" item="x"/>
  <Stage id="s3" kind="link" a="SCADA" b="GhostBus" action="down"/>
  <Objective id="o1" kind="breakerOpen" target="EPIC/CB_GHOST" withinMs="10"/>
  <Objective id="o2" kind="iedTrip" ied="GHOSTIED" withinMs="10"/>
  <Objective id="o3" kind="scadaAlarm" point="Ghost_pt" withinMs="10"/>
  <Objective id="o4" kind="voltageBand" bus="EPIC/LV/GhostBay/CN_X" min="0.9" max="1.1" toMs="100"/>
</Scenario>"#,
        );
        let unknown: Vec<_> = out
            .iter()
            .filter(|d| d.code == codes::SCENARIO_UNKNOWN_TARGET)
            .collect();
        assert_eq!(unknown.len(), 8, "{out:?}");
        // Findings are anchored to the offending element, not the file top.
        assert!(unknown.iter().all(|d| d.span.as_ref().unwrap().line > 1));
    }

    #[test]
    fn fault_stages_are_checked_with_spans() {
        let out = diags_for(
            r#"<Scenario name="bad" durationMs="1000">
  <Stage id="f1" kind="linkFault" a="SCADA" b="GhostBus" loss="0.5"/>
  <Stage id="f2" kind="linkFault" a="SCADA" b="ControlBus" loss="1.5" corrupt="-0.1"/>
  <Stage id="f3" kind="crash" host="GhostIED"/>
  <Stage id="f4" kind="sensor" ied="GhostIED" key="meas/x" mode="stuck"/>
  <Stage id="ok1" kind="linkFault" a="SCADA" b="ControlBus" loss="0.25" jitterMs="3"/>
  <Stage id="ok2" kind="crash" host="MIED1" restartAfterMs="500"/>
  <Stage id="ok3" kind="sensor" ied="GIED1" key="meas/EPIC/branch/LGen/i_ka" mode="drift" perSec="0.1"/>
</Scenario>"#,
        );
        let count = |code: &str| out.iter().filter(|d| d.code == code).count();
        assert_eq!(count(codes::SCENARIO_UNKNOWN_FAULT_TARGET), 2, "{out:?}"); // GhostBus, GhostIED
        assert_eq!(count(codes::SCENARIO_UNKNOWN_FAULT_IED), 1, "{out:?}");
        assert_eq!(count(codes::SCENARIO_BAD_FAULT_PROBABILITY), 2, "{out:?}"); // loss, corrupt
                                                                                // Findings are anchored to the offending element, not the file top.
        assert!(out.iter().all(|d| d.span.as_ref().unwrap().line > 1));
    }

    #[test]
    fn undefined_stages_duplicates_and_deadlines_are_flagged() {
        let out = diags_for(
            r#"<Scenario name="bad" durationMs="1000">
  <Stage id="a" after="ghost" kind="power" action="openSwitch" target="EPIC/CB_GEN"/>
  <Stage id="a" kind="power" action="closeSwitch" target="EPIC/CB_GEN"/>
  <Stage id="b" after="b" kind="power" action="openSwitch" target="EPIC/CB_GEN"/>
  <Objective id="o" kind="breakerOpen" target="EPIC/CB_GEN" after="ghost" withinMs="0"/>
  <Objective id="o" kind="voltageBand" bus="EPIC/LV/GenBay/CN_GEN" min="0.9" max="1.1" fromMs="500" toMs="500"/>
</Scenario>"#,
        );
        let count = |code: &str| out.iter().filter(|d| d.code == code).count();
        assert_eq!(count(codes::SCENARIO_UNDEFINED_STAGE), 3); // a->ghost, b->b, o->ghost
        assert_eq!(count(codes::SCENARIO_DUPLICATE_ID), 2); // stage a, objective o
        assert_eq!(count(codes::SCENARIO_BAD_DEADLINE), 2); // withinMs=0, empty band
    }
}
