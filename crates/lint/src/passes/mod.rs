//! The built-in lint passes.
//!
//! | Pass | Codes | Question it answers |
//! |------|-------|---------------------|
//! | [`xref`] | `SG01xx` | do cross-file references resolve? |
//! | [`addr`] | `SG02xx` | is the network addressing consistent? |
//! | [`topology`] | `SG0110`, `SG03xx` | does the single-line diagram power up? |
//! | [`protection`] | `SG04xx` | can every protection function actually trip? |
//! | [`orphan`] | `SG05xx` | does every file contribute to the bundle? |
//! | [`scenario`] | `SG5xxx` | do exercise scenarios fit the bundle? |
//! | [`st_logic`] | `SG6xxx` | is the PLC control logic semantically sound? |
//! | [`adversary`] | `SG7xxx` | can every `<Adversary>` goal actually be planned? |

pub mod addr;
pub mod adversary;
pub mod orphan;
pub mod protection;
pub mod scenario;
pub mod st_logic;
pub mod topology;
pub mod xref;

use crate::source::{LoadedBundle, SclFile};
use std::collections::BTreeSet;

/// Every IED name the bundle knows about: SCD declarations, ICD templates,
/// and IED Config entries. Used to decide whether a reference is dangling.
pub(crate) fn known_ied_names(bundle: &LoadedBundle) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for file in bundle.scds.iter().chain(bundle.icds.iter()) {
        for ied in &file.doc.ieds {
            names.insert(ied.name.clone());
        }
    }
    if let Some((_, config)) = &bundle.ied_config {
        for spec in &config.ieds {
            names.insert(spec.name.clone());
        }
    }
    names
}

/// Every host with a network presence: `ConnectedAP` owners plus PLC names
/// (PLC hosts are declared only in the PLC Config, not the SCDs).
pub(crate) fn known_host_names(bundle: &LoadedBundle) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for file in &bundle.scds {
        if let Some(comm) = &file.doc.communication {
            for subnet in &comm.subnetworks {
                for ap in &subnet.connected_aps {
                    names.insert(ap.ied_name.clone());
                }
            }
        }
    }
    if let Some((_, config)) = &bundle.plc_config {
        for plc in &config.plcs {
            names.insert(plc.name.clone());
        }
    }
    names
}

/// All substation-bearing files (SSDs first), deduplicated by substation
/// name: when an SSD and an SCD both carry a substation, the SSD wins — the
/// SCD copy is the consolidated echo, not a second declaration.
pub(crate) fn substation_sources(bundle: &LoadedBundle) -> Vec<(&SclFile, usize)> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for file in bundle.ssds.iter().chain(bundle.scds.iter()) {
        for (i, substation) in file.doc.substations.iter().enumerate() {
            if seen.insert(substation.name.clone()) {
                out.push((file, i));
            }
        }
    }
    out
}
