//! Protection sanity checks (`SG04xx`): every protection function must have a
//! defined breaker it can actually trip and a plausible threshold.

use crate::pass::LintPass;
use crate::source::LoadedBundle;
use sgcr_ied::ProtectionSpec;
use sgcr_scl::{codes, Diagnostic};

/// Checks protection functions declared in the IED Config and in the
/// single-line diagrams.
pub struct ProtectionPass;

impl LintPass for ProtectionPass {
    fn name(&self) -> &'static str {
        "protection"
    }

    fn run(&self, bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
        check_config(bundle, out);
        check_bays(bundle, out);
    }
}

/// Breaker references and thresholds of every configured protection function.
fn check_config(bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
    let Some((file, config)) = &bundle.ied_config else {
        return;
    };
    for spec in &config.ieds {
        for protection in &spec.protections {
            let context = format!("{file}: IED {}, {}", spec.name, protection.ln());
            let breaker = match protection {
                ProtectionSpec::Ptoc { breaker, .. }
                | ProtectionSpec::Ptov { breaker, .. }
                | ProtectionSpec::Ptuv { breaker, .. }
                | ProtectionSpec::Pdif { breaker, .. }
                | ProtectionSpec::Cilo { breaker, .. } => breaker,
            };
            if breaker.is_empty() {
                // CILO gates commands rather than tripping, but still needs
                // the breaker whose close commands it supervises.
                out.push(Diagnostic::warning(
                    codes::PROTECTION_NO_BREAKER,
                    format!(
                        "{} function has no breaker mapped and can never operate",
                        protection.ln_class()
                    ),
                    context.clone(),
                ));
            } else if spec.breaker(breaker).is_none() {
                out.push(Diagnostic::error(
                    codes::PROTECTION_UNDEFINED_BREAKER,
                    format!(
                        "{} trips breaker {breaker:?} but IED {} defines no such breaker mapping",
                        protection.ln_class(),
                        spec.name
                    ),
                    context.clone(),
                ));
            }
            let threshold = match protection {
                ProtectionSpec::Ptoc { pickup, .. } => Some(*pickup),
                ProtectionSpec::Ptov { threshold_pu, .. }
                | ProtectionSpec::Ptuv { threshold_pu, .. } => Some(*threshold_pu),
                ProtectionSpec::Pdif { threshold, .. } => Some(*threshold),
                ProtectionSpec::Cilo { .. } => None,
            };
            if let Some(threshold) = threshold {
                if threshold <= 0.0 || threshold.is_nan() {
                    out.push(Diagnostic::warning(
                        codes::PROTECTION_BAD_THRESHOLD,
                        format!(
                            "{} threshold {threshold} is not positive; the function would \
                             operate immediately or never",
                            protection.ln_class()
                        ),
                        context.clone(),
                    ));
                }
            }
        }
    }
}

/// SG0401 at the diagram level: a bay that assigns a protection-class LNode
/// but contains neither a breaker nor an XCBR reference has nothing to trip.
fn check_bays(bundle: &LoadedBundle, out: &mut Vec<Diagnostic>) {
    for (file, idx) in super::substation_sources(bundle) {
        let substation = &file.doc.substations[idx];
        for vl in &substation.voltage_levels {
            for bay in &vl.bays {
                let has_breaker = bay
                    .equipment
                    .iter()
                    .any(|eq| eq.eq_type == sgcr_scl::EquipmentType::CircuitBreaker)
                    || bay.lnodes.iter().any(|l| l.ln_class == "XCBR");
                for lnode in &bay.lnodes {
                    let is_protection =
                        lnode.ln_class.starts_with('P') && lnode.ln_class.len() == 4;
                    if is_protection && !has_breaker {
                        out.push(
                            Diagnostic::warning(
                                codes::PROTECTION_NO_BREAKER,
                                format!(
                                    "bay assigns {} to {} but contains no circuit breaker to trip",
                                    lnode.ln_class, lnode.ied_name
                                ),
                                format!("{}/{}/{}", substation.name, vl.name, bay.name),
                            )
                            .with_pos(&file.name, Some(lnode.pos)),
                        );
                    }
                }
            }
        }
    }
}
