//! Property tests: Modbus codec roundtrips, register-map semantics, and
//! stream-decoder robustness against fragmentation and garbage.

use proptest::prelude::*;
use sgcr_modbus::{
    decode_request, decode_response, encode_request, encode_response, Adu, FunctionCode,
    RegisterMap, Request, Response, StreamDecoder,
};

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u16>(), 1u16..100)
            .prop_map(|(address, count)| Request::ReadCoils { address, count }),
        (any::<u16>(), 1u16..100)
            .prop_map(|(address, count)| Request::ReadDiscreteInputs { address, count }),
        (any::<u16>(), 1u16..50)
            .prop_map(|(address, count)| Request::ReadHoldingRegisters { address, count }),
        (any::<u16>(), 1u16..50)
            .prop_map(|(address, count)| Request::ReadInputRegisters { address, count }),
        (any::<u16>(), any::<bool>())
            .prop_map(|(address, value)| Request::WriteSingleCoil { address, value }),
        (any::<u16>(), any::<u16>())
            .prop_map(|(address, value)| Request::WriteSingleRegister { address, value }),
        (
            any::<u16>(),
            proptest::collection::vec(any::<bool>(), 1..40)
        )
            .prop_map(|(address, values)| Request::WriteMultipleCoils { address, values }),
        (any::<u16>(), proptest::collection::vec(any::<u16>(), 1..30))
            .prop_map(|(address, values)| Request::WriteMultipleRegisters { address, values }),
    ]
}

fn function_of(request: &Request) -> FunctionCode {
    match request {
        Request::ReadCoils { .. } => FunctionCode::ReadCoils,
        Request::ReadDiscreteInputs { .. } => FunctionCode::ReadDiscreteInputs,
        Request::ReadHoldingRegisters { .. } => FunctionCode::ReadHoldingRegisters,
        Request::ReadInputRegisters { .. } => FunctionCode::ReadInputRegisters,
        Request::WriteSingleCoil { .. } => FunctionCode::WriteSingleCoil,
        Request::WriteSingleRegister { .. } => FunctionCode::WriteSingleRegister,
        Request::WriteMultipleCoils { .. } => FunctionCode::WriteMultipleCoils,
        Request::WriteMultipleRegisters { .. } => FunctionCode::WriteMultipleRegisters,
    }
}

proptest! {
    #[test]
    fn request_roundtrip(request in request_strategy()) {
        let wire = encode_request(&request);
        prop_assert_eq!(decode_request(&wire), Some(request));
    }

    #[test]
    fn request_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = decode_request(&bytes);
    }

    #[test]
    fn execute_then_decode_response(request in request_strategy()) {
        // Run the request against a real map and roundtrip the response.
        let mut map = RegisterMap::with_size(65536);
        let response = map.execute(&request);
        let wire = encode_response(function_of(&request), &response);
        let decoded = decode_response(&request, &wire).expect("response decodes");
        prop_assert_eq!(decoded, response);
    }

    #[test]
    fn write_then_read_coils(address in 0u16..1000, values in proptest::collection::vec(any::<bool>(), 1..32)) {
        let mut map = RegisterMap::with_size(2048);
        map.execute(&Request::WriteMultipleCoils { address, values: values.clone() });
        let response = map.execute(&Request::ReadCoils { address, count: values.len() as u16 });
        prop_assert_eq!(response, Response::Bits(values));
    }

    #[test]
    fn write_then_read_registers(address in 0u16..1000, values in proptest::collection::vec(any::<u16>(), 1..32)) {
        let mut map = RegisterMap::with_size(2048);
        map.execute(&Request::WriteMultipleRegisters { address, values: values.clone() });
        let response = map.execute(&Request::ReadHoldingRegisters { address, count: values.len() as u16 });
        prop_assert_eq!(response, Response::Registers(values));
    }

    #[test]
    fn stream_decoder_reassembles_any_fragmentation(
        requests in proptest::collection::vec(request_strategy(), 1..6),
        cuts in proptest::collection::vec(1usize..16, 1..10),
    ) {
        let adus: Vec<Adu> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| Adu {
                transaction_id: i as u16,
                unit_id: 1,
                pdu: encode_request(r).into(),
            })
            .collect();
        let mut stream: Vec<u8> = Vec::new();
        for adu in &adus {
            stream.extend(adu.encode());
        }
        // Deliver in arbitrary fragment sizes.
        let mut decoder = StreamDecoder::new();
        let mut received = Vec::new();
        let mut offset = 0usize;
        let mut cut_iter = cuts.iter().cycle();
        while offset < stream.len() {
            let step = (*cut_iter.next().expect("cycle")).min(stream.len() - offset);
            received.extend(decoder.feed(&stream[offset..offset + step]));
            offset += step;
        }
        prop_assert_eq!(received, adus);
    }

    #[test]
    fn stream_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut decoder = StreamDecoder::new();
        let _ = decoder.feed(&bytes);
    }
}
