//! Emulated Modbus TCP server and client applications for `sgcr-net` hosts.

use crate::codec::{
    decode_request, decode_response, encode_response, Adu, FunctionCode, Request, Response,
    StreamDecoder,
};
use crate::registers::SharedRegisters;
use bytes::Bytes;
use sgcr_net::{ConnId, HostCtx, Ipv4Addr, SocketApp};
use std::collections::HashMap;

/// The standard Modbus TCP port.
pub const MODBUS_PORT: u16 = 502;

/// A Modbus TCP server serving a [`SharedRegisters`] map.
///
/// Attach to a host; the PLC/IED runtime mutates the shared map and the
/// server answers SCADA/master requests against it.
pub struct ModbusServerApp {
    registers: SharedRegisters,
    port: u16,
    decoders: HashMap<ConnId, StreamDecoder>,
    requests_served: u64,
}

impl ModbusServerApp {
    /// Creates a server on the standard port.
    pub fn new(registers: SharedRegisters) -> Self {
        Self::on_port(registers, MODBUS_PORT)
    }

    /// Creates a server on a custom port.
    pub fn on_port(registers: SharedRegisters, port: u16) -> Self {
        ModbusServerApp {
            registers,
            port,
            decoders: HashMap::new(),
            requests_served: 0,
        }
    }

    /// Number of requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }
}

impl SocketApp for ModbusServerApp {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        ctx.tcp_listen(self.port);
    }

    fn on_tcp_accepted(&mut self, _ctx: &mut HostCtx<'_>, conn: ConnId, _peer: (Ipv4Addr, u16)) {
        self.decoders.insert(conn, StreamDecoder::new());
    }

    fn on_tcp_data(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId, data: &[u8]) {
        let adus = match self.decoders.get_mut(&conn) {
            Some(dec) => dec.feed(data),
            None => return,
        };
        for adu in adus {
            self.requests_served += 1;
            let reply_pdu = match decode_request(&adu.pdu) {
                Some(req) => {
                    let fc = FunctionCode::from_u8(adu.pdu[0]).expect("decoded request");
                    let resp = self.registers.with(|map| map.execute(&req));
                    encode_response(fc, &resp)
                }
                None => {
                    // Unknown function: Modbus exception 0x01.
                    vec![adu.pdu.first().copied().unwrap_or(0) | 0x80, 0x01]
                }
            };
            let reply = Adu {
                transaction_id: adu.transaction_id,
                unit_id: adu.unit_id,
                pdu: Bytes::from(reply_pdu),
            };
            ctx.tcp_send(conn, &reply.encode());
        }
    }

    fn on_tcp_closed(&mut self, _ctx: &mut HostCtx<'_>, conn: ConnId) {
        self.decoders.remove(&conn);
    }
}

/// Client-side bookkeeping: matches responses to outstanding requests over
/// one TCP connection. Embed in a master application (SCADA, PLC, attacker).
#[derive(Debug, Default)]
pub struct ModbusClient {
    decoder: StreamDecoder,
    next_tid: u16,
    pending: HashMap<u16, Request>,
}

impl ModbusClient {
    /// Creates an idle client.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes a request, remembering it for response matching.
    /// Send the returned bytes on the TCP connection.
    pub fn request(&mut self, unit_id: u8, req: Request) -> Vec<u8> {
        self.next_tid = self.next_tid.wrapping_add(1);
        let tid = self.next_tid;
        let adu = Adu {
            transaction_id: tid,
            unit_id,
            pdu: Bytes::from(crate::codec::encode_request(&req)),
        };
        self.pending.insert(tid, req);
        adu.encode()
    }

    /// Feeds received TCP bytes; returns completed `(request, response)` pairs.
    pub fn feed(&mut self, data: &[u8]) -> Vec<(Request, Response)> {
        let mut out = Vec::new();
        for adu in self.decoder.feed(data) {
            if let Some(req) = self.pending.remove(&adu.transaction_id) {
                if let Some(resp) = decode_response(&req, &adu.pdu) {
                    out.push((req, resp));
                }
            }
        }
        out
    }

    /// Number of requests still awaiting a response.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use sgcr_net::{LinkSpec, Network, SimDuration, SimTime};
    use std::sync::Arc;

    /// A master that connects, writes a register, then reads it back.
    struct TestMaster {
        server_ip: Ipv4Addr,
        client: ModbusClient,
        conn: Option<ConnId>,
        results: Arc<Mutex<Vec<(Request, Response)>>>,
    }

    impl SocketApp for TestMaster {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            self.conn = Some(ctx.tcp_connect(self.server_ip, MODBUS_PORT));
        }
        fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
            let w = self.client.request(
                1,
                Request::WriteSingleRegister {
                    address: 10,
                    value: 4242,
                },
            );
            ctx.tcp_send(conn, &w);
            let r = self.client.request(
                1,
                Request::ReadHoldingRegisters {
                    address: 10,
                    count: 1,
                },
            );
            ctx.tcp_send(conn, &r);
        }
        fn on_tcp_data(&mut self, _ctx: &mut HostCtx<'_>, _conn: ConnId, data: &[u8]) {
            self.results.lock().extend(self.client.feed(data));
        }
    }

    #[test]
    fn end_to_end_write_then_read() {
        let mut net = Network::new();
        let sw = net.add_switch("sw");
        let server = net.add_host("plc", Ipv4Addr::new(10, 0, 0, 1));
        let master = net.add_host("scada", Ipv4Addr::new(10, 0, 0, 2));
        net.connect(server, sw, LinkSpec::default());
        net.connect(master, sw, LinkSpec::default());

        let regs = SharedRegisters::with_size(64);
        net.attach_app(server, Box::new(ModbusServerApp::new(regs.clone())));
        let results = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(
            master,
            Box::new(TestMaster {
                server_ip: Ipv4Addr::new(10, 0, 0, 1),
                client: ModbusClient::new(),
                conn: None,
                results: results.clone(),
            }),
        );
        net.run_until(SimTime::from_millis(500));

        let results = results.lock();
        assert_eq!(results.len(), 2);
        assert!(matches!(
            results[0].1,
            Response::WroteSingleRegister {
                address: 10,
                value: 4242
            }
        ));
        assert_eq!(results[1].1, Response::Registers(vec![4242]));
        // The device side sees the write through the shared handle.
        assert_eq!(regs.holding(10), 4242);
    }

    /// The device runtime updates inputs; the master polls them.
    struct Poller {
        server_ip: Ipv4Addr,
        client: ModbusClient,
        observed: Arc<Mutex<Vec<u16>>>,
        conn: Option<ConnId>,
    }

    impl SocketApp for Poller {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            self.conn = Some(ctx.tcp_connect(self.server_ip, MODBUS_PORT));
        }
        fn on_tcp_connected(&mut self, ctx: &mut HostCtx<'_>, conn: ConnId) {
            let r = self.client.request(
                1,
                Request::ReadInputRegisters {
                    address: 0,
                    count: 1,
                },
            );
            ctx.tcp_send(conn, &r);
            ctx.set_timer(SimDuration::from_millis(100), 1);
        }
        fn on_timer(&mut self, ctx: &mut HostCtx<'_>, _token: u64) {
            if let Some(conn) = self.conn {
                let r = self.client.request(
                    1,
                    Request::ReadInputRegisters {
                        address: 0,
                        count: 1,
                    },
                );
                ctx.tcp_send(conn, &r);
                ctx.set_timer(SimDuration::from_millis(100), 1);
            }
        }
        fn on_tcp_data(&mut self, _ctx: &mut HostCtx<'_>, _conn: ConnId, data: &[u8]) {
            for (_, resp) in self.client.feed(data) {
                if let Response::Registers(regs) = resp {
                    self.observed.lock().push(regs[0]);
                }
            }
        }
    }

    #[test]
    fn polling_sees_device_updates() {
        let mut net = Network::new();
        let sw = net.add_switch("sw");
        let server = net.add_host("ied", Ipv4Addr::new(10, 0, 0, 1));
        let master = net.add_host("hmi", Ipv4Addr::new(10, 0, 0, 2));
        net.connect(server, sw, LinkSpec::default());
        net.connect(master, sw, LinkSpec::default());

        let regs = SharedRegisters::with_size(16);
        net.attach_app(server, Box::new(ModbusServerApp::new(regs.clone())));
        let observed = Arc::new(Mutex::new(Vec::new()));
        net.attach_app(
            master,
            Box::new(Poller {
                server_ip: Ipv4Addr::new(10, 0, 0, 1),
                client: ModbusClient::new(),
                observed: observed.clone(),
                conn: None,
            }),
        );

        // Step the sim, changing the "measurement" between slices.
        for (step, value) in [(0u64, 100u16), (1, 200), (2, 300)] {
            regs.set_input(0, value);
            net.run_until(SimTime::from_millis((step + 1) * 250));
        }
        let observed = observed.lock();
        assert!(observed.contains(&100));
        assert!(observed.contains(&200));
        assert!(observed.contains(&300));
    }
}
