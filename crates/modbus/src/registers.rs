//! The four Modbus data tables and a thread-safe handle shared between the
//! Modbus server application and the device runtime (PLC scan cycle, SCADA).

use crate::codec::{ExceptionCode, Request, Response};
use parking_lot::Mutex;
use std::sync::Arc;

/// The four Modbus data tables of one unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterMap {
    /// Read/write single bits (outputs).
    pub coils: Vec<bool>,
    /// Read-only single bits (inputs).
    pub discrete_inputs: Vec<bool>,
    /// Read/write 16-bit registers.
    pub holding_registers: Vec<u16>,
    /// Read-only 16-bit registers.
    pub input_registers: Vec<u16>,
}

impl Default for RegisterMap {
    fn default() -> Self {
        RegisterMap::with_size(1024)
    }
}

impl RegisterMap {
    /// Creates a map with `size` entries in every table.
    pub fn with_size(size: usize) -> RegisterMap {
        RegisterMap {
            coils: vec![false; size],
            discrete_inputs: vec![false; size],
            holding_registers: vec![0; size],
            input_registers: vec![0; size],
        }
    }

    /// Executes a request against the tables, producing the response.
    pub fn execute(&mut self, req: &Request) -> Response {
        fn range_ok<T>(table: &[T], address: u16, count: u16) -> bool {
            (address as usize + count as usize) <= table.len() && count > 0
        }
        match req {
            Request::ReadCoils { address, count } => {
                if !range_ok(&self.coils, *address, *count) {
                    return exception(1, ExceptionCode::IllegalDataAddress);
                }
                Response::Bits(self.coils[*address as usize..(*address + *count) as usize].to_vec())
            }
            Request::ReadDiscreteInputs { address, count } => {
                if !range_ok(&self.discrete_inputs, *address, *count) {
                    return exception(2, ExceptionCode::IllegalDataAddress);
                }
                Response::Bits(
                    self.discrete_inputs[*address as usize..(*address + *count) as usize].to_vec(),
                )
            }
            Request::ReadHoldingRegisters { address, count } => {
                if !range_ok(&self.holding_registers, *address, *count) {
                    return exception(3, ExceptionCode::IllegalDataAddress);
                }
                Response::Registers(
                    self.holding_registers[*address as usize..(*address + *count) as usize]
                        .to_vec(),
                )
            }
            Request::ReadInputRegisters { address, count } => {
                if !range_ok(&self.input_registers, *address, *count) {
                    return exception(4, ExceptionCode::IllegalDataAddress);
                }
                Response::Registers(
                    self.input_registers[*address as usize..(*address + *count) as usize].to_vec(),
                )
            }
            Request::WriteSingleCoil { address, value } => {
                let Some(slot) = self.coils.get_mut(*address as usize) else {
                    return exception(5, ExceptionCode::IllegalDataAddress);
                };
                *slot = *value;
                Response::WroteSingleCoil {
                    address: *address,
                    value: *value,
                }
            }
            Request::WriteSingleRegister { address, value } => {
                let Some(slot) = self.holding_registers.get_mut(*address as usize) else {
                    return exception(6, ExceptionCode::IllegalDataAddress);
                };
                *slot = *value;
                Response::WroteSingleRegister {
                    address: *address,
                    value: *value,
                }
            }
            Request::WriteMultipleCoils { address, values } => {
                if !range_ok(&self.coils, *address, values.len() as u16) {
                    return exception(15, ExceptionCode::IllegalDataAddress);
                }
                for (i, v) in values.iter().enumerate() {
                    self.coils[*address as usize + i] = *v;
                }
                Response::WroteMultipleCoils {
                    address: *address,
                    count: values.len() as u16,
                }
            }
            Request::WriteMultipleRegisters { address, values } => {
                if !range_ok(&self.holding_registers, *address, values.len() as u16) {
                    return exception(16, ExceptionCode::IllegalDataAddress);
                }
                for (i, v) in values.iter().enumerate() {
                    self.holding_registers[*address as usize + i] = *v;
                }
                Response::WroteMultipleRegisters {
                    address: *address,
                    count: values.len() as u16,
                }
            }
        }
    }
}

fn exception(function: u8, code: ExceptionCode) -> Response {
    Response::Exception { function, code }
}

/// A cheaply cloneable, thread-safe handle to a [`RegisterMap`], shared
/// between the Modbus server app (network side) and the device logic.
#[derive(Debug, Clone, Default)]
pub struct SharedRegisters {
    inner: Arc<Mutex<RegisterMap>>,
}

impl SharedRegisters {
    /// Creates a shared map with the default size.
    pub fn new() -> SharedRegisters {
        SharedRegisters::default()
    }

    /// Creates a shared map with `size` entries per table.
    pub fn with_size(size: usize) -> SharedRegisters {
        SharedRegisters {
            inner: Arc::new(Mutex::new(RegisterMap::with_size(size))),
        }
    }

    /// Runs `f` with exclusive access to the tables.
    pub fn with<R>(&self, f: impl FnOnce(&mut RegisterMap) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Reads one holding register.
    pub fn holding(&self, address: u16) -> u16 {
        self.inner
            .lock()
            .holding_registers
            .get(address as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Writes one holding register.
    pub fn set_holding(&self, address: u16, value: u16) {
        if let Some(slot) = self
            .inner
            .lock()
            .holding_registers
            .get_mut(address as usize)
        {
            *slot = value;
        }
    }

    /// Reads one input register.
    pub fn input(&self, address: u16) -> u16 {
        self.inner
            .lock()
            .input_registers
            .get(address as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Writes one input register.
    pub fn set_input(&self, address: u16, value: u16) {
        if let Some(slot) = self.inner.lock().input_registers.get_mut(address as usize) {
            *slot = value;
        }
    }

    /// Reads one coil.
    pub fn coil(&self, address: u16) -> bool {
        self.inner
            .lock()
            .coils
            .get(address as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Writes one coil.
    pub fn set_coil(&self, address: u16, value: bool) {
        if let Some(slot) = self.inner.lock().coils.get_mut(address as usize) {
            *slot = value;
        }
    }

    /// Reads one discrete input.
    pub fn discrete(&self, address: u16) -> bool {
        self.inner
            .lock()
            .discrete_inputs
            .get(address as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Writes one discrete input.
    pub fn set_discrete(&self, address: u16, value: bool) {
        if let Some(slot) = self.inner.lock().discrete_inputs.get_mut(address as usize) {
            *slot = value;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_cycle() {
        let mut map = RegisterMap::with_size(16);
        let resp = map.execute(&Request::WriteSingleRegister {
            address: 3,
            value: 777,
        });
        assert_eq!(
            resp,
            Response::WroteSingleRegister {
                address: 3,
                value: 777
            }
        );
        let resp = map.execute(&Request::ReadHoldingRegisters {
            address: 2,
            count: 3,
        });
        assert_eq!(resp, Response::Registers(vec![0, 777, 0]));
    }

    #[test]
    fn out_of_range_is_exception() {
        let mut map = RegisterMap::with_size(8);
        let resp = map.execute(&Request::ReadCoils {
            address: 6,
            count: 5,
        });
        assert!(matches!(
            resp,
            Response::Exception {
                code: ExceptionCode::IllegalDataAddress,
                ..
            }
        ));
        let resp = map.execute(&Request::ReadCoils {
            address: 0,
            count: 0,
        });
        assert!(matches!(resp, Response::Exception { .. }));
    }

    #[test]
    fn multi_writes() {
        let mut map = RegisterMap::with_size(16);
        map.execute(&Request::WriteMultipleCoils {
            address: 4,
            values: vec![true, true, false, true],
        });
        assert_eq!(
            map.execute(&Request::ReadCoils {
                address: 4,
                count: 4
            }),
            Response::Bits(vec![true, true, false, true])
        );
        map.execute(&Request::WriteMultipleRegisters {
            address: 0,
            values: vec![5, 6],
        });
        assert_eq!(map.holding_registers[0], 5);
        assert_eq!(map.holding_registers[1], 6);
    }

    #[test]
    fn shared_handle_is_shared() {
        let shared = SharedRegisters::with_size(8);
        let clone = shared.clone();
        shared.set_holding(2, 99);
        assert_eq!(clone.holding(2), 99);
        clone.set_coil(1, true);
        assert!(shared.coil(1));
        shared.set_discrete(0, true);
        assert!(clone.discrete(0));
        shared.set_input(3, 1234);
        assert_eq!(clone.input(3), 1234);
    }
}
