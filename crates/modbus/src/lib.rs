#![warn(missing_docs)]

//! # sgcr-modbus
//!
//! Modbus TCP for the smart grid cyber range: wire codec, the four data
//! tables, and emulated server/client applications for `sgcr-net` hosts.
//!
//! In the SG-ML architecture Modbus is the SCADA-facing protocol: the virtual
//! PLC (OpenPLC61850 substitute) exposes a Modbus server that the SCADA HMI
//! (ScadaBR substitute) polls, while the PLC's located variables map onto the
//! Modbus tables. The attack toolkit also speaks this codec when intercepting
//! or injecting master traffic.
//!
//! # Examples
//!
//! ```
//! use sgcr_modbus::{Request, encode_request, decode_request};
//!
//! let req = Request::ReadHoldingRegisters { address: 0, count: 4 };
//! let wire = encode_request(&req);
//! assert_eq!(decode_request(&wire), Some(req));
//! ```

mod apps;
mod codec;
mod registers;

pub use apps::{ModbusClient, ModbusServerApp, MODBUS_PORT};
pub use codec::{
    decode_request, decode_response, encode_request, encode_response, Adu, ExceptionCode,
    FunctionCode, Request, Response, StreamDecoder,
};
pub use registers::{RegisterMap, SharedRegisters};
