//! Modbus TCP wire format: MBAP header + PDU encode/decode and a stream
//! reassembler for TCP byte streams.

use bytes::Bytes;

/// Modbus function codes supported by the cyber range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FunctionCode {
    /// 0x01
    ReadCoils = 1,
    /// 0x02
    ReadDiscreteInputs = 2,
    /// 0x03
    ReadHoldingRegisters = 3,
    /// 0x04
    ReadInputRegisters = 4,
    /// 0x05
    WriteSingleCoil = 5,
    /// 0x06
    WriteSingleRegister = 6,
    /// 0x0F
    WriteMultipleCoils = 15,
    /// 0x10
    WriteMultipleRegisters = 16,
}

impl FunctionCode {
    /// Parses a function code byte.
    pub fn from_u8(b: u8) -> Option<FunctionCode> {
        match b {
            1 => Some(FunctionCode::ReadCoils),
            2 => Some(FunctionCode::ReadDiscreteInputs),
            3 => Some(FunctionCode::ReadHoldingRegisters),
            4 => Some(FunctionCode::ReadInputRegisters),
            5 => Some(FunctionCode::WriteSingleCoil),
            6 => Some(FunctionCode::WriteSingleRegister),
            15 => Some(FunctionCode::WriteMultipleCoils),
            16 => Some(FunctionCode::WriteMultipleRegisters),
            _ => None,
        }
    }
}

/// Modbus exception codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ExceptionCode {
    /// 0x01: function not supported.
    IllegalFunction = 1,
    /// 0x02: address out of range.
    IllegalDataAddress = 2,
    /// 0x03: value not allowed.
    IllegalDataValue = 3,
    /// 0x04: unrecoverable server error.
    ServerDeviceFailure = 4,
}

/// A Modbus request PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Read `count` coils from `address`.
    ReadCoils {
        /// Starting address.
        address: u16,
        /// Number of coils.
        count: u16,
    },
    /// Read `count` discrete inputs from `address`.
    ReadDiscreteInputs {
        /// Starting address.
        address: u16,
        /// Number of inputs.
        count: u16,
    },
    /// Read `count` holding registers from `address`.
    ReadHoldingRegisters {
        /// Starting address.
        address: u16,
        /// Number of registers.
        count: u16,
    },
    /// Read `count` input registers from `address`.
    ReadInputRegisters {
        /// Starting address.
        address: u16,
        /// Number of registers.
        count: u16,
    },
    /// Write one coil.
    WriteSingleCoil {
        /// Coil address.
        address: u16,
        /// New value.
        value: bool,
    },
    /// Write one holding register.
    WriteSingleRegister {
        /// Register address.
        address: u16,
        /// New value.
        value: u16,
    },
    /// Write multiple coils.
    WriteMultipleCoils {
        /// Starting address.
        address: u16,
        /// Values.
        values: Vec<bool>,
    },
    /// Write multiple holding registers.
    WriteMultipleRegisters {
        /// Starting address.
        address: u16,
        /// Values.
        values: Vec<u16>,
    },
}

/// A Modbus response PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Coil/discrete-input read result.
    Bits(Vec<bool>),
    /// Register read result.
    Registers(Vec<u16>),
    /// Echo of a single-coil write.
    WroteSingleCoil {
        /// Coil address.
        address: u16,
        /// Written value.
        value: bool,
    },
    /// Echo of a single-register write.
    WroteSingleRegister {
        /// Register address.
        address: u16,
        /// Written value.
        value: u16,
    },
    /// Acknowledgement of a multi-coil write.
    WroteMultipleCoils {
        /// Starting address.
        address: u16,
        /// Number written.
        count: u16,
    },
    /// Acknowledgement of a multi-register write.
    WroteMultipleRegisters {
        /// Starting address.
        address: u16,
        /// Number written.
        count: u16,
    },
    /// Exception response.
    Exception {
        /// The function that failed.
        function: u8,
        /// Why.
        code: ExceptionCode,
    },
}

/// A complete Modbus TCP ADU (MBAP header + PDU body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adu {
    /// Transaction identifier (matches responses to requests).
    pub transaction_id: u16,
    /// Unit (slave) identifier.
    pub unit_id: u8,
    /// Raw PDU bytes (function code + data).
    pub pdu: Bytes,
}

impl Adu {
    /// Serializes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(7 + self.pdu.len());
        out.extend_from_slice(&self.transaction_id.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // protocol id
        out.extend_from_slice(&((self.pdu.len() + 1) as u16).to_be_bytes());
        out.push(self.unit_id);
        out.extend_from_slice(&self.pdu);
        out
    }
}

/// Accumulates TCP stream bytes and yields complete ADUs.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
}

impl StreamDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds stream bytes; returns every complete ADU now available.
    pub fn feed(&mut self, data: &[u8]) -> Vec<Adu> {
        self.buf.extend_from_slice(data);
        let mut out = Vec::new();
        loop {
            if self.buf.len() < 7 {
                break;
            }
            let len = u16::from_be_bytes([self.buf[4], self.buf[5]]) as usize;
            if len < 1 || self.buf.len() < 6 + len {
                break;
            }
            let adu = Adu {
                transaction_id: u16::from_be_bytes([self.buf[0], self.buf[1]]),
                unit_id: self.buf[6],
                pdu: Bytes::copy_from_slice(&self.buf[7..6 + len]),
            };
            self.buf.drain(..6 + len);
            out.push(adu);
        }
        out
    }
}

fn pack_bits(values: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; values.len().div_ceil(8)];
    for (i, &v) in values.iter().enumerate() {
        if v {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

fn unpack_bits(bytes: &[u8], count: usize) -> Vec<bool> {
    (0..count)
        .map(|i| bytes.get(i / 8).is_some_and(|b| b & (1 << (i % 8)) != 0))
        .collect()
}

/// Encodes a request PDU.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::ReadCoils { address, count } => {
            out.push(FunctionCode::ReadCoils as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(&count.to_be_bytes());
        }
        Request::ReadDiscreteInputs { address, count } => {
            out.push(FunctionCode::ReadDiscreteInputs as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(&count.to_be_bytes());
        }
        Request::ReadHoldingRegisters { address, count } => {
            out.push(FunctionCode::ReadHoldingRegisters as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(&count.to_be_bytes());
        }
        Request::ReadInputRegisters { address, count } => {
            out.push(FunctionCode::ReadInputRegisters as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(&count.to_be_bytes());
        }
        Request::WriteSingleCoil { address, value } => {
            out.push(FunctionCode::WriteSingleCoil as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(if *value { &[0xff, 0x00] } else { &[0x00, 0x00] });
        }
        Request::WriteSingleRegister { address, value } => {
            out.push(FunctionCode::WriteSingleRegister as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(&value.to_be_bytes());
        }
        Request::WriteMultipleCoils { address, values } => {
            out.push(FunctionCode::WriteMultipleCoils as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(&(values.len() as u16).to_be_bytes());
            let bytes = pack_bits(values);
            out.push(bytes.len() as u8);
            out.extend_from_slice(&bytes);
        }
        Request::WriteMultipleRegisters { address, values } => {
            out.push(FunctionCode::WriteMultipleRegisters as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(&(values.len() as u16).to_be_bytes());
            out.push((values.len() * 2) as u8);
            for v in values {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
    }
    out
}

/// Decodes a request PDU.
pub fn decode_request(pdu: &[u8]) -> Option<Request> {
    let fc = FunctionCode::from_u8(*pdu.first()?)?;
    let body = &pdu[1..];
    let rd = |b: &[u8]| -> Option<(u16, u16)> {
        if b.len() < 4 {
            return None;
        }
        Some((
            u16::from_be_bytes([b[0], b[1]]),
            u16::from_be_bytes([b[2], b[3]]),
        ))
    };
    Some(match fc {
        FunctionCode::ReadCoils => {
            let (address, count) = rd(body)?;
            Request::ReadCoils { address, count }
        }
        FunctionCode::ReadDiscreteInputs => {
            let (address, count) = rd(body)?;
            Request::ReadDiscreteInputs { address, count }
        }
        FunctionCode::ReadHoldingRegisters => {
            let (address, count) = rd(body)?;
            Request::ReadHoldingRegisters { address, count }
        }
        FunctionCode::ReadInputRegisters => {
            let (address, count) = rd(body)?;
            Request::ReadInputRegisters { address, count }
        }
        FunctionCode::WriteSingleCoil => {
            let (address, raw) = rd(body)?;
            Request::WriteSingleCoil {
                address,
                value: raw == 0xff00,
            }
        }
        FunctionCode::WriteSingleRegister => {
            let (address, value) = rd(body)?;
            Request::WriteSingleRegister { address, value }
        }
        FunctionCode::WriteMultipleCoils => {
            let (address, count) = rd(body)?;
            let nbytes = *body.get(4)? as usize;
            let bytes = body.get(5..5 + nbytes)?;
            Request::WriteMultipleCoils {
                address,
                values: unpack_bits(bytes, count as usize),
            }
        }
        FunctionCode::WriteMultipleRegisters => {
            let (address, count) = rd(body)?;
            let nbytes = *body.get(4)? as usize;
            let bytes = body.get(5..5 + nbytes)?;
            if nbytes != count as usize * 2 {
                return None;
            }
            Request::WriteMultipleRegisters {
                address,
                values: bytes
                    .chunks_exact(2)
                    .map(|c| u16::from_be_bytes([c[0], c[1]]))
                    .collect(),
            }
        }
    })
}

/// Encodes a response PDU (needs the request function code for reads).
pub fn encode_response(function: FunctionCode, resp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match resp {
        Response::Bits(values) => {
            out.push(function as u8);
            let bytes = pack_bits(values);
            out.push(bytes.len() as u8);
            out.extend_from_slice(&bytes);
        }
        Response::Registers(values) => {
            out.push(function as u8);
            out.push((values.len() * 2) as u8);
            for v in values {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        Response::WroteSingleCoil { address, value } => {
            out.push(FunctionCode::WriteSingleCoil as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(if *value { &[0xff, 0x00] } else { &[0x00, 0x00] });
        }
        Response::WroteSingleRegister { address, value } => {
            out.push(FunctionCode::WriteSingleRegister as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(&value.to_be_bytes());
        }
        Response::WroteMultipleCoils { address, count } => {
            out.push(FunctionCode::WriteMultipleCoils as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(&count.to_be_bytes());
        }
        Response::WroteMultipleRegisters { address, count } => {
            out.push(FunctionCode::WriteMultipleRegisters as u8);
            out.extend_from_slice(&address.to_be_bytes());
            out.extend_from_slice(&count.to_be_bytes());
        }
        Response::Exception { function, code } => {
            out.push(function | 0x80);
            out.push(*code as u8);
        }
    }
    out
}

/// Decodes a response PDU given the request it answers.
pub fn decode_response(request: &Request, pdu: &[u8]) -> Option<Response> {
    let fc = *pdu.first()?;
    if fc & 0x80 != 0 {
        let code = match *pdu.get(1)? {
            1 => ExceptionCode::IllegalFunction,
            2 => ExceptionCode::IllegalDataAddress,
            3 => ExceptionCode::IllegalDataValue,
            _ => ExceptionCode::ServerDeviceFailure,
        };
        return Some(Response::Exception {
            function: fc & 0x7f,
            code,
        });
    }
    let body = &pdu[1..];
    Some(match request {
        Request::ReadCoils { count, .. } | Request::ReadDiscreteInputs { count, .. } => {
            let nbytes = *body.first()? as usize;
            let bytes = body.get(1..1 + nbytes)?;
            Response::Bits(unpack_bits(bytes, *count as usize))
        }
        Request::ReadHoldingRegisters { .. } | Request::ReadInputRegisters { .. } => {
            let nbytes = *body.first()? as usize;
            let bytes = body.get(1..1 + nbytes)?;
            Response::Registers(
                bytes
                    .chunks_exact(2)
                    .map(|c| u16::from_be_bytes([c[0], c[1]]))
                    .collect(),
            )
        }
        Request::WriteSingleCoil { .. } => {
            if body.len() < 4 {
                return None;
            }
            Response::WroteSingleCoil {
                address: u16::from_be_bytes([body[0], body[1]]),
                value: u16::from_be_bytes([body[2], body[3]]) == 0xff00,
            }
        }
        Request::WriteSingleRegister { .. } => {
            if body.len() < 4 {
                return None;
            }
            Response::WroteSingleRegister {
                address: u16::from_be_bytes([body[0], body[1]]),
                value: u16::from_be_bytes([body[2], body[3]]),
            }
        }
        Request::WriteMultipleCoils { .. } => {
            if body.len() < 4 {
                return None;
            }
            Response::WroteMultipleCoils {
                address: u16::from_be_bytes([body[0], body[1]]),
                count: u16::from_be_bytes([body[2], body[3]]),
            }
        }
        Request::WriteMultipleRegisters { .. } => {
            if body.len() < 4 {
                return None;
            }
            Response::WroteMultipleRegisters {
                address: u16::from_be_bytes([body[0], body[1]]),
                count: u16::from_be_bytes([body[2], body[3]]),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let reqs = vec![
            Request::ReadCoils {
                address: 0,
                count: 16,
            },
            Request::ReadDiscreteInputs {
                address: 5,
                count: 3,
            },
            Request::ReadHoldingRegisters {
                address: 100,
                count: 10,
            },
            Request::ReadInputRegisters {
                address: 30,
                count: 2,
            },
            Request::WriteSingleCoil {
                address: 7,
                value: true,
            },
            Request::WriteSingleRegister {
                address: 9,
                value: 0xBEEF,
            },
            Request::WriteMultipleCoils {
                address: 3,
                values: vec![true, false, true, true, false, false, true, false, true],
            },
            Request::WriteMultipleRegisters {
                address: 50,
                values: vec![1, 2, 3, 65535],
            },
        ];
        for req in reqs {
            let encoded = encode_request(&req);
            assert_eq!(decode_request(&encoded), Some(req.clone()), "req {req:?}");
        }
    }

    #[test]
    fn response_roundtrips() {
        let req = Request::ReadHoldingRegisters {
            address: 0,
            count: 3,
        };
        let resp = Response::Registers(vec![10, 20, 30]);
        let enc = encode_response(FunctionCode::ReadHoldingRegisters, &resp);
        assert_eq!(decode_response(&req, &enc), Some(resp));

        let req = Request::ReadCoils {
            address: 0,
            count: 10,
        };
        let resp = Response::Bits(vec![
            true, false, true, false, true, false, true, false, true, false,
        ]);
        let enc = encode_response(FunctionCode::ReadCoils, &resp);
        assert_eq!(decode_response(&req, &enc), Some(resp));
    }

    #[test]
    fn exception_roundtrip() {
        let req = Request::ReadCoils {
            address: 9999,
            count: 1,
        };
        let resp = Response::Exception {
            function: FunctionCode::ReadCoils as u8,
            code: ExceptionCode::IllegalDataAddress,
        };
        let enc = encode_response(FunctionCode::ReadCoils, &resp);
        assert_eq!(decode_response(&req, &enc), Some(resp));
    }

    #[test]
    fn adu_roundtrip_via_stream_decoder() {
        let adu = Adu {
            transaction_id: 42,
            unit_id: 1,
            pdu: Bytes::from(encode_request(&Request::ReadCoils {
                address: 0,
                count: 8,
            })),
        };
        let wire = adu.encode();
        let mut dec = StreamDecoder::new();
        // Feed in two fragments: must reassemble.
        let split = wire.len() / 2;
        assert!(dec.feed(&wire[..split]).is_empty());
        let adus = dec.feed(&wire[split..]);
        assert_eq!(adus, vec![adu]);
    }

    #[test]
    fn stream_decoder_handles_back_to_back_adus() {
        let mk = |tid: u16| Adu {
            transaction_id: tid,
            unit_id: 1,
            pdu: Bytes::from(encode_request(&Request::ReadCoils {
                address: 0,
                count: 1,
            })),
        };
        let mut wire = mk(1).encode();
        wire.extend(mk(2).encode());
        let mut dec = StreamDecoder::new();
        let adus = dec.feed(&wire);
        assert_eq!(adus.len(), 2);
        assert_eq!(adus[0].transaction_id, 1);
        assert_eq!(adus[1].transaction_id, 2);
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(decode_request(&[]), None);
        assert_eq!(decode_request(&[0x63]), None);
        assert_eq!(decode_request(&[1, 0]), None);
    }

    #[test]
    fn bit_packing() {
        let bits = vec![true, true, false, false, true];
        assert_eq!(pack_bits(&bits), vec![0b10011]);
        assert_eq!(unpack_bits(&[0b10011], 5), bits);
    }
}
