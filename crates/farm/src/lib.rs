#![warn(missing_docs)]

//! # sgcr-farm
//!
//! The multi-tenant **range farm**: one `Arc`-shared
//! [`CompiledModel`] multiplexed into N independent cyber ranges (or full
//! scored exercises) across a worker thread pool — the paper's "generated
//! once, exercised many times" vision at server scale.
//!
//! Each tenant gets its own [`CyberRange`] instantiated from the shared
//! model (no XML or Structured Text is re-parsed per tenant), its own
//! [`Telemetry`] journal/metrics, and a deterministic fault seed
//! (`base_fault_seed + tenant index`), so every tenant's run is
//! byte-replayable in isolation while the farm as a whole scales across
//! cores. Because each range's co-simulation is single-threaded and
//! deterministic, per-tenant outputs are independent of worker-thread
//! scheduling.
//!
//! [`run_farm`] drives the whole fleet and returns a [`FarmReport`] with
//! farm-level throughput (ranges/sec, steps/sec) and latency aggregates
//! (p50/p99/max step wall time) plus per-tenant detail — the numbers the
//! committed `BENCH_farm.json` trajectory tracks. With an output directory
//! configured, every tenant streams `tenant-NNNN.journal.jsonl` and
//! `tenant-NNNN.metrics.json` files as it finishes, and the farm itself
//! writes a `farm.journal.jsonl` with its `FarmStarted`/`FarmFinished`
//! lifecycle events.
//!
//! ## Supervision, checkpoints, and dynamic tenants
//!
//! Long-lived farms are *supervised*: workers pull jobs from a shared work
//! queue instead of a fixed tenant counter, each soak tenant is periodically
//! [checkpointed](sgcr_core::Checkpoint) on the collector cadence, and a
//! restart policy ([`FarmConfig::restart_max`]) requeues halted or panicked
//! tenants from their last checkpoint with bounded exponential backoff until
//! a circuit breaker gives up. The status endpoint doubles as a lifecycle
//! API: `POST /tenants` admits a new tenant mid-run (up to
//! [`FarmConfig::admit_max`] beyond the initial fleet; over capacity sheds
//! load with 429) and `DELETE /tenants/<id>` drains one gracefully — the
//! tenant finishes its step, leaves a final `tenant-NNNN.checkpoint.json`,
//! flushes its sinks, and is evicted from the live aggregate so `/metrics`
//! stays bounded by the live population. Sink write failures are retried
//! with backoff and then *degrade* the farm (journal event + gauge) instead
//! of failing the tenant.
//!
//! ## Live observability
//!
//! While the farm runs, a collector thread periodically folds every live
//! tenant's metric snapshot into a farm-level [`FarmAggregator`] (counters
//! summed, gauges last-write, histograms bucket-merged) — memory bounded by
//! O(buckets × tenants), never by step count — and samples the process RSS.
//! With [`FarmConfig::status_addr`] set (CLI: `serve --status-addr`), a
//! zero-dependency HTTP endpoint serves the aggregate as `/metrics`
//! (Prometheus text exposition), `/status` (per-tenant JSON state), and
//! `/healthz`. The final p50/p99 step latencies are estimated from the
//! merged histograms, replacing the raw per-step sample vectors earlier
//! versions held in memory.
//!
//! ```no_run
//! use sgcr_core::{CompiledModel, SgmlBundle};
//! use sgcr_farm::{run_farm, FarmConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bundle = SgmlBundle::from_dir("examples/epic_bundle")?;
//! let model = CompiledModel::shared(&bundle)?;
//! let report = run_farm(
//!     model,
//!     &FarmConfig {
//!         tenants: 128,
//!         sim_seconds: 2,
//!         status_addr: Some("127.0.0.1:9644".to_string()),
//!         ..FarmConfig::default()
//!     },
//! );
//! println!("{}", report.to_text());
//! # Ok(())
//! # }
//! ```

mod status;

pub use status::{http_get, http_request, StatusServer};

use parking_lot::Mutex;
use sgcr_core::{Checkpoint, CompiledModel, CyberRange, RangeBuilder};
use sgcr_faults::DegradationSignal;
use sgcr_net::{SimDuration, SimTime};
use sgcr_obs::agg::{histogram_quantile, rss_bytes};
use sgcr_obs::{
    json, prom, Counter, Event as ObsEvent, FarmAggregator, Gauge, Histogram, HistogramSnapshot,
    Telemetry,
};
use sgcr_scenario::{run_exercise, Scenario};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The aggregator key the farm's own telemetry (lifecycle counters, RSS
/// gauges, sink-writer instruments) is folded under — outside any real
/// tenant's index range.
const FARM_SELF: usize = usize::MAX;

/// Ceiling on the supervisor's exponential restart backoff.
const RESTART_BACKOFF_CAP: Duration = Duration::from_secs(5);

/// `(p50, p99)` step-latency estimates from a bucketed step-seconds
/// histogram, clamped by the true observed maximum.
///
/// [`histogram_quantile`] interpolates linearly inside the holding bucket,
/// so an estimate can overshoot every recorded sample by up to one bucket's
/// width; clamping with the exactly-tracked max restores the invariant
/// `p50 ≤ p99 ≤ max`. A missing or empty histogram reports `(0.0, 0.0)`.
fn clamped_step_quantiles(h: Option<&HistogramSnapshot>, max_step_seconds: f64) -> (f64, f64) {
    h.map_or((0.0, 0.0), |h| {
        (
            histogram_quantile(h, 0.50).min(max_step_seconds),
            histogram_quantile(h, 0.99).min(max_step_seconds),
        )
    })
}

/// Configuration of one farm run.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Number of independent tenant ranges to instantiate and run.
    pub tenants: usize,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Co-simulated seconds each tenant runs.
    pub sim_seconds: u64,
    /// Per-tenant wall-clock budget for one co-simulation step, in
    /// milliseconds. Steps over budget count as overruns.
    pub step_budget_ms: Option<u64>,
    /// Halt a tenant once it accumulates this many budget overruns
    /// (0 = never halt). Ignored in scenario mode, where the exercise
    /// engine owns the step loop and overruns are accounted post-hoc.
    pub max_overruns: u64,
    /// Tenant `i` runs under fault seed `base_fault_seed + i`.
    pub base_fault_seed: u64,
    /// Step-interval override for every tenant (`None` = the model's).
    pub interval: Option<SimDuration>,
    /// Run this scored exercise per tenant instead of a plain soak.
    pub scenario: Option<Scenario>,
    /// Directory for per-tenant `tenant-NNNN.journal.jsonl` /
    /// `tenant-NNNN.metrics.json` files, written by workers as each tenant
    /// finishes, plus the farm-level `farm.journal.jsonl` (`None` = keep
    /// everything in memory only).
    pub out_dir: Option<PathBuf>,
    /// Bind address for the live `/metrics` + `/status` + `/healthz` HTTP
    /// endpoint (e.g. `127.0.0.1:9644`); `None` = no endpoint. A bind
    /// failure fails the farm up front, like an unwritable `out_dir`.
    pub status_addr: Option<String>,
    /// How often the collector thread folds live tenant snapshots into the
    /// farm aggregate and samples RSS, in milliseconds (0 = default 250).
    /// Soak tenants are also checkpointed on this cadence.
    pub collect_interval_ms: u64,
    /// Supervisor restart budget per tenant: a halted or panicked soak
    /// tenant is restarted from its last checkpoint up to this many times
    /// before the circuit breaker gives it up (0 = supervision off; halted
    /// tenants stay halted, the pre-supervision behavior).
    pub restart_max: u64,
    /// Base supervisor backoff before a restart, in milliseconds; doubles
    /// per restart of the same tenant, capped at 5 s (0 = default 100).
    pub restart_backoff_ms: u64,
    /// Admission-control headroom: how many tenants beyond the initial
    /// `tenants` fleet `POST /tenants` may admit mid-run. 0 = no headroom
    /// (every admission request sheds load with 429).
    pub admit_max: usize,
}

impl Default for FarmConfig {
    fn default() -> FarmConfig {
        FarmConfig {
            tenants: 1,
            threads: 0,
            sim_seconds: 10,
            step_budget_ms: None,
            max_overruns: 0,
            base_fault_seed: 0,
            interval: None,
            scenario: None,
            out_dir: None,
            status_addr: None,
            collect_interval_ms: 0,
            restart_max: 0,
            restart_backoff_ms: 0,
            admit_max: 0,
        }
    }
}

impl FarmConfig {
    /// The collector/checkpoint cadence with the default applied.
    fn collect_interval(&self) -> Duration {
        Duration::from_millis(if self.collect_interval_ms == 0 {
            250
        } else {
            self.collect_interval_ms
        })
    }
}

/// One tenant's outcome.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant index (also its journal file number and fault-seed offset).
    pub tenant: usize,
    /// Power-flow steps executed.
    pub steps: u64,
    /// Wall-clock seconds the tenant's whole run took (the final attempt
    /// only, for a supervised tenant that restarted).
    pub wall_seconds: f64,
    /// Median step wall time in seconds, estimated from the tenant's
    /// `range.step_seconds` histogram.
    pub p50_step_seconds: f64,
    /// 99th-percentile step wall time in seconds, estimated from the
    /// tenant's `range.step_seconds` histogram.
    pub p99_step_seconds: f64,
    /// Worst step wall time in seconds (over the retained step window).
    pub max_step_seconds: f64,
    /// Steps that blew the configured budget.
    pub budget_overruns: u64,
    /// True when the tenant was halted early for exceeding `max_overruns`.
    pub halted: bool,
    /// Failed re-solves over the run (the range degrades gracefully).
    pub solve_errors: u64,
    /// Times the supervisor restarted this tenant from a checkpoint.
    pub restarts: u64,
    /// True when the supervisor's circuit breaker abandoned the tenant
    /// after exhausting its restart budget.
    pub given_up: bool,
    /// True when the tenant was drained gracefully (`DELETE /tenants/<id>`).
    pub drained: bool,
    /// `(earned, total)` exercise score, scenario mode only.
    pub score: Option<(u32, u32)>,
    /// Journal file path, when an output directory was configured.
    pub journal_path: Option<String>,
    /// Instantiation or exercise error, if the tenant never ran.
    pub error: Option<String>,
}

/// The farm-level after-action report: throughput and latency aggregates
/// over every tenant, plus per-tenant detail.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// Tenants initially requested (dynamically admitted tenants appear in
    /// [`FarmReport::per_tenant`] beyond this count).
    pub tenants: usize,
    /// Worker threads actually used.
    pub threads: usize,
    /// Co-simulated seconds per tenant.
    pub sim_seconds: u64,
    /// Wall-clock seconds for the whole farm run.
    pub wall_seconds: f64,
    /// Tenant ranges completed per wall-clock second.
    pub ranges_per_sec: f64,
    /// Power-flow steps executed across all tenants.
    pub steps_total: u64,
    /// Steps per wall-clock second across the farm.
    pub steps_per_sec: f64,
    /// Median step wall time across every tenant's steps, seconds —
    /// estimated from the bucket-merged farm histogram.
    pub p50_step_seconds: f64,
    /// 99th-percentile step wall time across every tenant's steps, seconds —
    /// estimated from the bucket-merged farm histogram.
    pub p99_step_seconds: f64,
    /// Worst step wall time across the farm, seconds.
    pub max_step_seconds: f64,
    /// Median supervisor checkpoint capture time, seconds — estimated from
    /// the farm's `farm.checkpoint_seconds` histogram.
    pub checkpoint_p50_seconds: f64,
    /// 99th-percentile supervisor checkpoint capture time, seconds.
    pub checkpoint_p99_seconds: f64,
    /// The configured per-step budget, if any.
    pub step_budget_ms: Option<u64>,
    /// Budget overruns across all tenants.
    pub budget_overruns: u64,
    /// Tenants halted for exceeding `max_overruns`.
    pub tenants_halted: usize,
    /// Tenants that failed to instantiate or run.
    pub tenants_failed: usize,
    /// Tenants the supervisor's circuit breaker gave up on.
    pub tenants_given_up: usize,
    /// Tenants drained gracefully via the lifecycle API.
    pub tenants_drained: usize,
    /// Supervisor restarts across all tenants.
    pub restarts_total: u64,
    /// Journal records evicted across every tenant's bounded ring buffer.
    pub journal_dropped: u64,
    /// Spans evicted across every tenant's bounded span buffer.
    pub spans_dropped: u64,
    /// Peak process resident set size observed during the run, in bytes
    /// (0 when the platform has no procfs).
    pub rss_peak_bytes: u64,
    /// Bytes of per-tenant journal/metrics sink files written.
    pub journal_bytes_written: u64,
    /// Wall-clock seconds workers spent blocked writing sink files — the
    /// JSONL writer backpressure signal.
    pub journal_write_seconds: f64,
    /// One-line inventory of the shared compiled model.
    pub model_summary: String,
    /// Per-tenant outcomes, ordered by tenant index.
    pub per_tenant: Vec<TenantReport>,
}

impl FarmReport {
    /// Human-readable multi-line summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "farm: {} tenants x {} s sim on {} threads | {}\n",
            self.tenants, self.sim_seconds, self.threads, self.model_summary
        ));
        out.push_str(&format!(
            "wall {:.2} s | {:.1} ranges/sec | {} steps ({:.0} steps/sec)\n",
            self.wall_seconds, self.ranges_per_sec, self.steps_total, self.steps_per_sec
        ));
        out.push_str(&format!(
            "step latency p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms\n",
            self.p50_step_seconds * 1e3,
            self.p99_step_seconds * 1e3,
            self.max_step_seconds * 1e3
        ));
        match self.step_budget_ms {
            Some(budget) => out.push_str(&format!(
                "budget {budget} ms/step: {} overruns, {} tenants halted, {} failed\n",
                self.budget_overruns, self.tenants_halted, self.tenants_failed
            )),
            None => out.push_str(&format!(
                "no step budget | {} tenants failed\n",
                self.tenants_failed
            )),
        }
        out.push_str(&format!(
            "supervisor: {} restarts, {} given up, {} drained | checkpoint p50 {:.3} ms, p99 {:.3} ms\n",
            self.restarts_total,
            self.tenants_given_up,
            self.tenants_drained,
            self.checkpoint_p50_seconds * 1e3,
            self.checkpoint_p99_seconds * 1e3
        ));
        out.push_str(&format!(
            "rss peak {:.1} MiB | sinks {} B in {:.3} s | {} journal / {} span records dropped\n",
            self.rss_peak_bytes as f64 / (1024.0 * 1024.0),
            self.journal_bytes_written,
            self.journal_write_seconds,
            self.journal_dropped,
            self.spans_dropped
        ));
        out
    }

    /// JSON form (stable key order) — the schema `BENCH_farm.json` commits.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"tenants\":{},", self.tenants));
        out.push_str(&format!("\"threads\":{},", self.threads));
        out.push_str(&format!("\"sim_seconds\":{},", self.sim_seconds));
        out.push_str(&format!(
            "\"wall_seconds\":{},",
            json::number(self.wall_seconds)
        ));
        out.push_str(&format!(
            "\"ranges_per_sec\":{},",
            json::number(self.ranges_per_sec)
        ));
        out.push_str(&format!("\"steps_total\":{},", self.steps_total));
        out.push_str(&format!(
            "\"steps_per_sec\":{},",
            json::number(self.steps_per_sec)
        ));
        out.push_str(&format!(
            "\"p50_step_seconds\":{},",
            json::number(self.p50_step_seconds)
        ));
        out.push_str(&format!(
            "\"p99_step_seconds\":{},",
            json::number(self.p99_step_seconds)
        ));
        out.push_str(&format!(
            "\"max_step_seconds\":{},",
            json::number(self.max_step_seconds)
        ));
        out.push_str(&format!(
            "\"checkpoint_p50_seconds\":{},",
            json::number(self.checkpoint_p50_seconds)
        ));
        out.push_str(&format!(
            "\"checkpoint_p99_seconds\":{},",
            json::number(self.checkpoint_p99_seconds)
        ));
        match self.step_budget_ms {
            Some(budget) => out.push_str(&format!("\"step_budget_ms\":{budget},")),
            None => out.push_str("\"step_budget_ms\":null,"),
        }
        out.push_str(&format!("\"budget_overruns\":{},", self.budget_overruns));
        out.push_str(&format!("\"tenants_halted\":{},", self.tenants_halted));
        out.push_str(&format!("\"tenants_failed\":{},", self.tenants_failed));
        out.push_str(&format!("\"tenants_given_up\":{},", self.tenants_given_up));
        out.push_str(&format!("\"tenants_drained\":{},", self.tenants_drained));
        out.push_str(&format!("\"restarts_total\":{},", self.restarts_total));
        out.push_str(&format!("\"journal_dropped\":{},", self.journal_dropped));
        out.push_str(&format!("\"spans_dropped\":{},", self.spans_dropped));
        out.push_str(&format!("\"rss_peak_bytes\":{},", self.rss_peak_bytes));
        out.push_str(&format!(
            "\"journal_bytes_written\":{},",
            self.journal_bytes_written
        ));
        out.push_str(&format!(
            "\"journal_write_seconds\":{},",
            json::number(self.journal_write_seconds)
        ));
        out.push_str(&format!(
            "\"model_summary\":{},",
            json::quote(&self.model_summary)
        ));
        out.push_str("\"per_tenant\":[");
        for (i, t) in self.per_tenant.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"tenant\":{},", t.tenant));
            out.push_str(&format!("\"steps\":{},", t.steps));
            out.push_str(&format!(
                "\"wall_seconds\":{},",
                json::number(t.wall_seconds)
            ));
            out.push_str(&format!(
                "\"p50_step_seconds\":{},",
                json::number(t.p50_step_seconds)
            ));
            out.push_str(&format!(
                "\"p99_step_seconds\":{},",
                json::number(t.p99_step_seconds)
            ));
            out.push_str(&format!(
                "\"max_step_seconds\":{},",
                json::number(t.max_step_seconds)
            ));
            out.push_str(&format!("\"budget_overruns\":{},", t.budget_overruns));
            out.push_str(&format!("\"halted\":{},", t.halted));
            out.push_str(&format!("\"solve_errors\":{},", t.solve_errors));
            out.push_str(&format!("\"restarts\":{},", t.restarts));
            out.push_str(&format!("\"given_up\":{},", t.given_up));
            out.push_str(&format!("\"drained\":{},", t.drained));
            match t.score {
                Some((earned, total)) => out.push_str(&format!(
                    "\"score\":{{\"earned\":{earned},\"total\":{total}}},"
                )),
                None => out.push_str("\"score\":null,"),
            }
            match &t.journal_path {
                Some(path) => out.push_str(&format!("\"journal\":{},", json::quote(path))),
                None => out.push_str("\"journal\":null,"),
            }
            match &t.error {
                Some(error) => out.push_str(&format!("\"error\":{}", json::quote(error))),
                None => out.push_str("\"error\":null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// A tenant's live lifecycle state, as reported on `/status`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
enum TenantState {
    Pending = 0,
    Running = 1,
    Completed = 2,
    Halted = 3,
    Failed = 4,
    GivenUp = 5,
    Drained = 6,
}

impl TenantState {
    fn from_u8(v: u8) -> TenantState {
        match v {
            1 => TenantState::Running,
            2 => TenantState::Completed,
            3 => TenantState::Halted,
            4 => TenantState::Failed,
            5 => TenantState::GivenUp,
            6 => TenantState::Drained,
            _ => TenantState::Pending,
        }
    }

    fn name(self) -> &'static str {
        match self {
            TenantState::Pending => "pending",
            TenantState::Running => "running",
            TenantState::Completed => "completed",
            TenantState::Halted => "halted",
            TenantState::Failed => "failed",
            TenantState::GivenUp => "given-up",
            TenantState::Drained => "drained",
        }
    }

    /// Whether the tenant can still make progress (and so can be drained).
    fn is_live(self) -> bool {
        matches!(self, TenantState::Pending | TenantState::Running)
    }
}

/// Lock-free per-tenant live counters behind `/status`, plus the tenant's
/// supervision state (drain flag, last checkpoint).
#[derive(Default)]
struct TenantLive {
    state: AtomicU8,
    steps: AtomicU64,
    overruns: AtomicU64,
    solve_errors: AtomicU64,
    restarts: AtomicU64,
    /// Raised by `DELETE /tenants/<id>`; the soak loop drains at the next
    /// step boundary.
    drain: AtomicBool,
    /// Exercise score packed as `PRESENT | earned << 32 | total` (0 = none).
    score: AtomicU64,
    /// The tenant's most recent supervisor checkpoint — what a restart
    /// resumes from and what a drain persists.
    checkpoint: Mutex<Option<Checkpoint>>,
}

const SCORE_PRESENT: u64 = 1 << 63;

/// One unit of work: run tenant `tenant` (from its last checkpoint, if any)
/// no earlier than `not_before`.
struct Job {
    tenant: usize,
    restarts: u64,
    not_before: Instant,
}

/// The supervised work queue. The farm is done when the queue is empty and
/// no worker holds an outstanding job — at which point it closes and new
/// admissions are rejected.
struct WorkQueue {
    jobs: VecDeque<Job>,
    outstanding: usize,
    closed: bool,
}

/// Why an admission request was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AdmitRejected {
    /// The farm has finished (or is finishing) its work; nothing can run.
    Closed,
    /// The admission-control cap (`tenants + admit_max`) is reached.
    AtCapacity,
}

/// Live tenant-state counts, one slot per [`TenantState`].
#[derive(Clone, Copy, Default)]
struct StateCounts {
    running: usize,
    completed: usize,
    halted: usize,
    failed: usize,
    given_up: usize,
    drained: usize,
}

/// State shared between the workers, the collector thread, and the status
/// endpoint for one farm run.
pub(crate) struct FarmShared {
    initial_tenants: usize,
    threads: usize,
    sim_seconds: u64,
    step_budget_ms: Option<u64>,
    scenario: bool,
    admit_max: usize,
    restart_backoff: Duration,
    live: Mutex<BTreeMap<usize, Telemetry>>,
    aggregator: FarmAggregator,
    per_tenant: Mutex<Vec<Arc<TenantLive>>>,
    queue: Mutex<WorkQueue>,
    shutdown: AtomicBool,
    rss_peak: AtomicU64,
    sink_signal: DegradationSignal,
    farm_telemetry: Telemetry,
    ranges_total: Counter,
    restarts_total: Counter,
    running_gauge: Gauge,
    completed_gauge: Gauge,
    halted_gauge: Gauge,
    failed_gauge: Gauge,
    given_up_gauge: Gauge,
    drained_gauge: Gauge,
    sink_degraded_gauge: Gauge,
    rss_gauge: Gauge,
    rss_peak_gauge: Gauge,
    journal_bytes: Counter,
    journal_write_hist: Histogram,
    checkpoint_hist: Histogram,
}

impl FarmShared {
    fn new(config: &FarmConfig, threads: usize) -> FarmShared {
        let farm_telemetry = Telemetry::new();
        let now = Instant::now();
        FarmShared {
            initial_tenants: config.tenants,
            threads,
            sim_seconds: config.sim_seconds,
            step_budget_ms: config.step_budget_ms,
            scenario: config.scenario.is_some(),
            admit_max: config.admit_max,
            restart_backoff: Duration::from_millis(if config.restart_backoff_ms == 0 {
                100
            } else {
                config.restart_backoff_ms
            }),
            live: Mutex::new(BTreeMap::new()),
            aggregator: FarmAggregator::new(),
            per_tenant: Mutex::new(
                (0..config.tenants)
                    .map(|_| Arc::new(TenantLive::default()))
                    .collect(),
            ),
            queue: Mutex::new(WorkQueue {
                jobs: (0..config.tenants)
                    .map(|tenant| Job {
                        tenant,
                        restarts: 0,
                        not_before: now,
                    })
                    .collect(),
                outstanding: 0,
                closed: false,
            }),
            shutdown: AtomicBool::new(false),
            rss_peak: AtomicU64::new(0),
            sink_signal: DegradationSignal::new(),
            ranges_total: farm_telemetry.counter("farm.ranges_total"),
            restarts_total: farm_telemetry.counter("farm.restarts_total"),
            running_gauge: farm_telemetry.gauge("farm.tenants_running"),
            completed_gauge: farm_telemetry.gauge("farm.tenants_completed"),
            halted_gauge: farm_telemetry.gauge("farm.tenants_halted"),
            failed_gauge: farm_telemetry.gauge("farm.tenants_failed"),
            given_up_gauge: farm_telemetry.gauge("farm.tenants_given_up"),
            drained_gauge: farm_telemetry.gauge("farm.tenants_drained"),
            sink_degraded_gauge: farm_telemetry.gauge("farm.sink_degraded"),
            rss_gauge: farm_telemetry.gauge("farm.rss_bytes"),
            rss_peak_gauge: farm_telemetry.gauge("farm.rss_peak_bytes"),
            journal_bytes: farm_telemetry.counter("farm.journal_bytes_written"),
            journal_write_hist: farm_telemetry.histogram(
                "farm.journal_write_seconds",
                &sgcr_obs::buckets::LATENCY_SECONDS,
            ),
            checkpoint_hist: farm_telemetry.histogram(
                "farm.checkpoint_seconds",
                &sgcr_obs::buckets::LATENCY_SECONDS,
            ),
            farm_telemetry,
        }
    }

    /// The live record of `tenant`, if it was ever admitted.
    fn live_of(&self, tenant: usize) -> Option<Arc<TenantLive>> {
        self.per_tenant.lock().get(tenant).cloned()
    }

    /// Blocks until a runnable job is available; `None` means the farm's
    /// work is exhausted (queue empty, nothing outstanding) and the worker
    /// should exit.
    fn next_job(&self) -> Option<Job> {
        loop {
            let wait = {
                let mut q = self.queue.lock();
                if q.closed && q.jobs.is_empty() {
                    return None;
                }
                let now = Instant::now();
                if let Some(pos) = q.jobs.iter().position(|j| j.not_before <= now) {
                    let job = q.jobs.remove(pos)?;
                    q.outstanding += 1;
                    return Some(job);
                }
                if q.jobs.is_empty() && q.outstanding == 0 {
                    q.closed = true;
                    return None;
                }
                // Everything queued is backing off (or other workers hold
                // the outstanding jobs); poll again at the earliest due
                // time, re-checking often enough to notice admissions.
                q.jobs
                    .iter()
                    .map(|j| j.not_before)
                    .min()
                    .map(|t| t.saturating_duration_since(now))
                    .unwrap_or(Duration::from_millis(10))
                    .min(Duration::from_millis(10))
                    .max(Duration::from_millis(1))
            };
            std::thread::sleep(wait);
        }
    }

    /// Marks the worker's current job finished (terminal outcome). Closes
    /// the queue when it was the last one.
    fn complete_job(&self) {
        let mut q = self.queue.lock();
        q.outstanding = q.outstanding.saturating_sub(1);
        if q.jobs.is_empty() && q.outstanding == 0 {
            q.closed = true;
        }
    }

    /// Requeues the worker's current job for a supervised restart after
    /// `backoff`.
    fn requeue(&self, job: Job, backoff: Duration) {
        let mut q = self.queue.lock();
        q.outstanding = q.outstanding.saturating_sub(1);
        q.jobs.push_back(Job {
            not_before: Instant::now() + backoff,
            ..job
        });
    }

    /// The supervisor's exponential backoff before restart number
    /// `restarts` (1-based), capped at [`RESTART_BACKOFF_CAP`].
    fn backoff_for(&self, restarts: u64) -> Duration {
        let shift = u32::try_from(restarts.saturating_sub(1).min(6)).unwrap_or(6);
        self.restart_backoff
            .saturating_mul(1u32 << shift)
            .min(RESTART_BACKOFF_CAP)
    }

    /// Admits one new tenant mid-run: registers its live record, queues its
    /// job, and returns its index. Rejected when the farm has finished
    /// ([`AdmitRejected::Closed`]) or the `tenants + admit_max` cap is
    /// reached ([`AdmitRejected::AtCapacity`]).
    pub(crate) fn admit(&self) -> Result<usize, AdmitRejected> {
        let mut q = self.queue.lock();
        if q.closed {
            return Err(AdmitRejected::Closed);
        }
        let mut registry = self.per_tenant.lock();
        if registry.len() >= self.initial_tenants.saturating_add(self.admit_max) {
            return Err(AdmitRejected::AtCapacity);
        }
        let tenant = registry.len();
        registry.push(Arc::new(TenantLive::default()));
        drop(registry);
        q.jobs.push_back(Job {
            tenant,
            restarts: 0,
            not_before: Instant::now(),
        });
        Ok(tenant)
    }

    /// Flags `tenant` for graceful drain. Returns false when the tenant is
    /// unknown or already terminal.
    pub(crate) fn drain(&self, tenant: usize) -> bool {
        let Some(live) = self.live_of(tenant) else {
            return false;
        };
        if !TenantState::from_u8(live.state.load(Ordering::Relaxed)).is_live() {
            return false;
        }
        live.drain.store(true, Ordering::Relaxed);
        true
    }

    fn tenant_started(&self, live: &TenantLive, tenant: usize, telemetry: &Telemetry) {
        live.state
            .store(TenantState::Running as u8, Ordering::Relaxed);
        self.live.lock().insert(tenant, telemetry.clone());
    }

    fn tenant_progress(&self, live: &TenantLive, steps: u64, overruns: u64) {
        live.steps.store(steps, Ordering::Relaxed);
        live.overruns.store(overruns, Ordering::Relaxed);
    }

    /// Captures a supervisor checkpoint of a running tenant: observes the
    /// capture latency, journals the event, and stores the checkpoint as
    /// the tenant's restart/drain anchor.
    fn capture_checkpoint(&self, live: &TenantLive, tenant: usize, range: &CyberRange) {
        let capture_start = Instant::now();
        let checkpoint = range.checkpoint();
        self.checkpoint_hist
            .observe(capture_start.elapsed().as_secs_f64());
        let (t_ns, steps) = (checkpoint.sim_time_ns(), checkpoint.steps());
        self.farm_telemetry
            .record(t_ns, || ObsEvent::TenantCheckpointed {
                tenant: tenant as u64,
                steps,
            });
        *live.checkpoint.lock() = Some(checkpoint);
    }

    /// Records a terminal tenant outcome: folds the final snapshot into the
    /// aggregate (or evicts it, for drained tenants) and publishes the
    /// final state.
    #[allow(clippy::too_many_arguments)]
    fn tenant_finished(
        &self,
        live: &TenantLive,
        tenant: usize,
        telemetry: &Telemetry,
        state: TenantState,
        report: &TenantReport,
    ) {
        self.live.lock().remove(&tenant);
        if state == TenantState::Drained {
            // Drained tenants leave the live population entirely: their
            // contribution is evicted so `/metrics` and aggregator memory
            // stay bounded under dynamic churn.
            self.aggregator.evict(tenant);
        } else {
            self.aggregator.submit(tenant, telemetry.snapshot());
        }
        live.steps.store(report.steps, Ordering::Relaxed);
        live.overruns
            .store(report.budget_overruns, Ordering::Relaxed);
        live.solve_errors
            .store(report.solve_errors, Ordering::Relaxed);
        if let Some((earned, total)) = report.score {
            live.score.store(
                SCORE_PRESENT | u64::from(earned) << 32 | u64::from(total),
                Ordering::Relaxed,
            );
        }
        live.state.store(state as u8, Ordering::Relaxed);
        if state != TenantState::Failed {
            self.ranges_total.inc();
        }
    }

    /// Records a non-terminal interruption (halt/panic pending supervision):
    /// the tenant leaves the live map and its cumulative snapshot is kept in
    /// the aggregate, but no terminal state is published yet.
    fn tenant_suspended(&self, live: &TenantLive, tenant: usize, telemetry: &Telemetry) {
        self.live.lock().remove(&tenant);
        self.aggregator.submit(tenant, telemetry.snapshot());
        live.state
            .store(TenantState::Pending as u8, Ordering::Relaxed);
    }

    /// Journals persistent sink-write failure and raises the degradation
    /// signal — the tenant keeps running; only durability is degraded.
    fn sink_degraded(&self, tenant: usize, detail: &str) {
        self.sink_signal.set(true);
        self.sink_degraded_gauge.set(1.0);
        let detail = format!("tenant {tenant}: {detail}");
        self.farm_telemetry.record(0u64, || ObsEvent::Custom {
            name: "SinkDegraded".to_string(),
            detail,
        });
    }

    /// One collector pass: folds every live tenant's snapshot plus the
    /// farm's own instruments into the aggregator, and samples RSS.
    pub(crate) fn collect(&self) {
        let live: Vec<(usize, Telemetry)> = self
            .live
            .lock()
            .iter()
            .map(|(t, tel)| (*t, tel.clone()))
            .collect();
        for (tenant, telemetry) in live {
            self.aggregator.submit(tenant, telemetry.snapshot());
        }
        if let Some(rss) = rss_bytes() {
            self.rss_gauge.set(rss as f64);
            let peak = self.rss_peak.fetch_max(rss, Ordering::Relaxed).max(rss);
            self.rss_peak_gauge.set(peak as f64);
        }
        let counts = self.counts();
        self.running_gauge.set(counts.running as f64);
        self.completed_gauge.set(counts.completed as f64);
        self.halted_gauge.set(counts.halted as f64);
        self.failed_gauge.set(counts.failed as f64);
        self.given_up_gauge.set(counts.given_up as f64);
        self.drained_gauge.set(counts.drained as f64);
        self.aggregator
            .submit(FARM_SELF, self.farm_telemetry.snapshot());
    }

    fn counts(&self) -> StateCounts {
        let mut counts = StateCounts::default();
        for live in self.per_tenant.lock().iter() {
            match TenantState::from_u8(live.state.load(Ordering::Relaxed)) {
                TenantState::Running => counts.running += 1,
                TenantState::Completed => counts.completed += 1,
                TenantState::Halted => counts.halted += 1,
                TenantState::Failed => counts.failed += 1,
                TenantState::GivenUp => counts.given_up += 1,
                TenantState::Drained => counts.drained += 1,
                TenantState::Pending => {}
            }
        }
        counts
    }

    fn finish(&self) {
        self.collect();
        self.shutdown.store(true, Ordering::Release);
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// The `/metrics` body: a fresh collect pass, then the merged farm
    /// registry rendered as Prometheus text exposition.
    pub(crate) fn metrics_text(&self) -> String {
        self.collect();
        prom::render(&self.aggregator.aggregate())
    }

    /// The `/status` body: deterministic-key JSON of farm and per-tenant
    /// live state.
    pub(crate) fn status_json(&self) -> String {
        let counts = self.counts();
        let registry: Vec<Arc<TenantLive>> = self.per_tenant.lock().clone();
        let mut out = String::with_capacity(256 + registry.len() * 96);
        let _ = write!(
            out,
            "{{\"tenants\":{},\"threads\":{},\"sim_seconds\":{},\"scenario\":{},",
            registry.len(),
            self.threads,
            self.sim_seconds,
            self.scenario
        );
        match self.step_budget_ms {
            Some(budget) => {
                let _ = write!(out, "\"step_budget_ms\":{budget},");
            }
            None => out.push_str("\"step_budget_ms\":null,"),
        }
        let _ = write!(
            out,
            "\"admit_max\":{},\"tenants_running\":{},\"tenants_completed\":{},\"tenants_halted\":{},\"tenants_failed\":{},\"tenants_given_up\":{},\"tenants_drained\":{},\"per_tenant\":[",
            self.admit_max,
            counts.running,
            counts.completed,
            counts.halted,
            counts.failed,
            counts.given_up,
            counts.drained
        );
        for (tenant, live) in registry.iter().enumerate() {
            if tenant > 0 {
                out.push(',');
            }
            let state = TenantState::from_u8(live.state.load(Ordering::Relaxed));
            let _ = write!(
                out,
                "{{\"tenant\":{tenant},\"state\":{},\"steps\":{},\"budget_overruns\":{},\"solve_errors\":{},\"restarts\":{},\"draining\":{},",
                json::quote(state.name()),
                live.steps.load(Ordering::Relaxed),
                live.overruns.load(Ordering::Relaxed),
                live.solve_errors.load(Ordering::Relaxed),
                live.restarts.load(Ordering::Relaxed),
                live.drain.load(Ordering::Relaxed) && state.is_live()
            );
            let score = live.score.load(Ordering::Relaxed);
            if score & SCORE_PRESENT != 0 {
                let _ = write!(
                    out,
                    "\"score\":{{\"earned\":{},\"total\":{}}}}}",
                    (score >> 32) & 0x7fff_ffff,
                    score & 0xffff_ffff
                );
            } else {
                out.push_str("\"score\":null}");
            }
        }
        out.push_str("]}");
        out
    }
}

fn effective_threads(config: &FarmConfig) -> usize {
    if config.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        config.threads
    }
    .min(config.tenants.saturating_add(config.admit_max).max(1))
}

/// Runs `config.tenants` independent ranges from one shared compiled model
/// across a worker pool and aggregates the farm report.
///
/// Tenant instantiation or exercise failures never abort the farm; they are
/// recorded on the tenant's report (`error`) and counted in
/// [`FarmReport::tenants_failed`]. With [`FarmConfig::status_addr`] set,
/// the live status endpoint is bound before any tenant starts; a bind
/// failure fails the whole farm up front (like an unwritable `out_dir`).
pub fn run_farm(model: Arc<CompiledModel>, config: &FarmConfig) -> FarmReport {
    let server = match &config.status_addr {
        Some(addr) => match StatusServer::bind(addr) {
            Ok(server) => Some(server),
            Err(e) => {
                let threads = effective_threads(config);
                let mut report = empty_report(&model, config, threads);
                report.tenants_failed = config.tenants;
                report.per_tenant = (0..config.tenants)
                    .map(|tenant| {
                        failed_tenant(tenant, format!("cannot bind status endpoint {addr}: {e}"))
                    })
                    .collect();
                return report;
            }
        },
        None => None,
    };
    run_farm_with_status(model, config, server)
}

/// [`run_farm`] with an explicitly pre-bound status endpoint (or none).
///
/// Binding separately lets callers bind port 0 and read the assigned
/// address before the farm starts — the CLI and the tests both do this.
pub fn run_farm_with_status(
    model: Arc<CompiledModel>,
    config: &FarmConfig,
    server: Option<StatusServer>,
) -> FarmReport {
    let threads = effective_threads(config);

    if let Some(dir) = &config.out_dir {
        // Creating the sink directory up front keeps workers fs-race-free.
        if let Err(e) = std::fs::create_dir_all(dir) {
            let mut report = empty_report(&model, config, threads);
            report.tenants_failed = config.tenants;
            report.per_tenant = (0..config.tenants)
                .map(|tenant| failed_tenant(tenant, format!("cannot create out dir: {e}")))
                .collect();
            return report;
        }
    }

    let shared = FarmShared::new(config, threads);
    {
        let (tenants, sim_seconds) = (config.tenants as u64, config.sim_seconds);
        let threads = threads as u64;
        shared
            .farm_telemetry
            .record(0u64, || ObsEvent::FarmStarted {
                tenants,
                threads,
                sim_seconds,
            });
    }
    let collect_interval = config.collect_interval();

    let wall_start = std::time::Instant::now();
    let (tx, rx) = mpsc::channel::<TenantReport>();

    let mut per_tenant: Vec<TenantReport> = Vec::new();
    std::thread::scope(|scope| {
        let shared = &shared;
        scope.spawn(move || {
            // Collector: fold live snapshots until the farm winds down,
            // waking often enough to notice shutdown promptly.
            while !shared.is_shutdown() {
                shared.collect();
                let mut slept = Duration::ZERO;
                while slept < collect_interval && !shared.is_shutdown() {
                    let nap = Duration::from_millis(20).min(collect_interval - slept);
                    std::thread::sleep(nap);
                    slept += nap;
                }
            }
        });
        if let Some(server) = server {
            scope.spawn(move || status::serve(server, shared));
        }
        for _ in 0..threads {
            let tx = tx.clone();
            let model = &model;
            scope.spawn(move || {
                while let Some(job) = shared.next_job() {
                    run_job(model, config, job, shared, &tx);
                }
            });
        }
        drop(tx);
        per_tenant = rx.iter().collect();
        // All workers are done; release the collector and the endpoint.
        shared.finish();
    });
    per_tenant.sort_by_key(|t| t.tenant);
    let wall_seconds = wall_start.elapsed().as_secs_f64();

    let mut steps_total = 0u64;
    let mut budget_overruns = 0u64;
    let mut tenants_halted = 0usize;
    let mut tenants_failed = 0usize;
    let mut tenants_given_up = 0usize;
    let mut tenants_drained = 0usize;
    let mut max_step_seconds = 0.0f64;
    for t in &per_tenant {
        steps_total += t.steps;
        budget_overruns += t.budget_overruns;
        max_step_seconds = max_step_seconds.max(t.max_step_seconds);
        if t.halted {
            tenants_halted += 1;
        }
        if t.error.is_some() {
            tenants_failed += 1;
        }
        if t.given_up {
            tenants_given_up += 1;
        }
        if t.drained {
            tenants_drained += 1;
        }
    }

    // Farm-level latency percentiles from the bucket-merged histogram of
    // every tenant's `range.step_seconds` — O(buckets × tenants) memory,
    // replacing the raw per-step sample vectors the farm used to hold.
    let merged = shared.aggregator.aggregate();
    let (p50, p99) =
        clamped_step_quantiles(merged.histogram("range.step_seconds"), max_step_seconds);
    let (checkpoint_p50, checkpoint_p99) = merged
        .histogram("farm.checkpoint_seconds")
        .map_or((0.0, 0.0), |h| {
            (histogram_quantile(h, 0.50), histogram_quantile(h, 0.99))
        });

    {
        let (completed_n, halted_n, failed_n) = (
            per_tenant
                .iter()
                .filter(|t| t.error.is_none() && !t.halted)
                .count() as u64,
            tenants_halted as u64,
            tenants_failed as u64,
        );
        let t_end = config.sim_seconds.saturating_mul(1_000_000_000);
        shared
            .farm_telemetry
            .record(t_end, || ObsEvent::FarmFinished {
                tenants_completed: completed_n,
                tenants_halted: halted_n,
                tenants_failed: failed_n,
            });
    }
    if let Some(dir) = &config.out_dir {
        let _ = std::fs::write(
            dir.join("farm.journal.jsonl"),
            shared.farm_telemetry.journal_jsonl(),
        );
    }

    let completed = per_tenant.iter().filter(|t| t.error.is_none()).count();
    FarmReport {
        tenants: config.tenants,
        threads,
        sim_seconds: config.sim_seconds,
        wall_seconds,
        ranges_per_sec: if wall_seconds > 0.0 {
            completed as f64 / wall_seconds
        } else {
            0.0
        },
        steps_total,
        steps_per_sec: if wall_seconds > 0.0 {
            steps_total as f64 / wall_seconds
        } else {
            0.0
        },
        p50_step_seconds: p50,
        p99_step_seconds: p99,
        max_step_seconds,
        checkpoint_p50_seconds: checkpoint_p50,
        checkpoint_p99_seconds: checkpoint_p99,
        step_budget_ms: config.step_budget_ms,
        budget_overruns,
        tenants_halted,
        tenants_failed,
        tenants_given_up,
        tenants_drained,
        restarts_total: shared.restarts_total.get(),
        journal_dropped: merged.journal_dropped,
        spans_dropped: merged.spans_dropped,
        rss_peak_bytes: shared.rss_peak.load(Ordering::Relaxed),
        journal_bytes_written: shared.journal_bytes.get(),
        journal_write_seconds: shared.journal_write_hist.sum(),
        model_summary: model.summary(),
        per_tenant,
    }
}

/// One tenant attempt's result, before the supervisor's verdict.
enum Attempt {
    /// Terminal: the report is final and the tenant state is published.
    Done(TenantReport),
    /// Restart-eligible interruption (budget halt). The report is what the
    /// tenant reports if the supervisor gives up right now.
    Interrupted(TenantReport),
}

/// Runs one queued job at the pool boundary: executes the tenant attempt
/// with panics caught, then applies the supervisor's restart policy —
/// requeue with backoff, give up (circuit breaker), or report terminally.
fn run_job(
    model: &Arc<CompiledModel>,
    config: &FarmConfig,
    job: Job,
    shared: &FarmShared,
    tx: &mpsc::Sender<TenantReport>,
) {
    let tenant = job.tenant;
    let Some(live) = shared.live_of(tenant) else {
        // Registry and queue are updated under one lock; an unknown tenant
        // here is unreachable, but a supervisor must not crash on it.
        shared.complete_job();
        return;
    };
    live.restarts.store(job.restarts, Ordering::Relaxed);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        run_tenant_attempt(model, config, &job, shared, &live)
    }));
    let attempt = match attempt {
        Ok(attempt) => attempt,
        Err(panic) => {
            // Worker panic caught at the pool boundary: the tenant's attempt
            // state is lost, but its last checkpoint survives — treat it
            // exactly like a halt and let the restart policy decide.
            let detail = panic_message(panic.as_ref());
            shared.tenant_suspended(&live, tenant, &Telemetry::new());
            let mut report = failed_tenant(tenant, format!("worker panic: {detail}"));
            report.restarts = job.restarts;
            report.steps = live.steps.load(Ordering::Relaxed);
            Attempt::Interrupted(report)
        }
    };
    match attempt {
        Attempt::Done(report) => {
            // A send only fails if the receiver is gone, i.e. the farm is
            // already being torn down — nothing left to report to.
            let _ = tx.send(report);
            shared.complete_job();
        }
        Attempt::Interrupted(mut report) => {
            if config.restart_max > 0 && job.restarts < config.restart_max {
                let restarts = job.restarts + 1;
                let (t_ns, from_steps) = live
                    .checkpoint
                    .lock()
                    .as_ref()
                    .map_or((0, 0), |c| (c.sim_time_ns(), c.steps()));
                shared.restarts_total.inc();
                live.restarts.store(restarts, Ordering::Relaxed);
                shared
                    .farm_telemetry
                    .record(t_ns, || ObsEvent::TenantRestarted {
                        tenant: tenant as u64,
                        restarts,
                        from_steps,
                    });
                let backoff = shared.backoff_for(restarts);
                shared.requeue(
                    Job {
                        tenant,
                        restarts,
                        not_before: Instant::now(),
                    },
                    backoff,
                );
            } else if config.restart_max > 0 {
                // Circuit breaker: restart budget exhausted.
                let restarts = job.restarts;
                let t_ns = live
                    .checkpoint
                    .lock()
                    .as_ref()
                    .map_or(0, sgcr_core::Checkpoint::sim_time_ns);
                shared
                    .farm_telemetry
                    .record(t_ns, || ObsEvent::TenantGivenUp {
                        tenant: tenant as u64,
                        restarts,
                    });
                report.given_up = true;
                live.state
                    .store(TenantState::GivenUp as u8, Ordering::Relaxed);
                let _ = tx.send(report);
                shared.complete_job();
            } else {
                // Supervision off: the pre-supervision behavior — a halted
                // tenant stays halted (or a panicked one stays failed).
                let state = if report.error.is_some() {
                    TenantState::Failed
                } else {
                    TenantState::Halted
                };
                live.state.store(state as u8, Ordering::Relaxed);
                let _ = tx.send(report);
                shared.complete_job();
            }
        }
    }
}

/// Best-effort human text out of a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one tenant attempt (fresh, or resumed from its last checkpoint) and
/// measures it. Never panics by design; failures land on the report's
/// `error` field, and a budget halt returns [`Attempt::Interrupted`] for
/// the supervisor to decide on.
fn run_tenant_attempt(
    model: &Arc<CompiledModel>,
    config: &FarmConfig,
    job: &Job,
    shared: &FarmShared,
    live: &TenantLive,
) -> Attempt {
    let tenant = job.tenant;
    let telemetry = Telemetry::new();
    shared.tenant_started(live, tenant, &telemetry);

    // Drained while still queued (e.g. during restart backoff): honor the
    // drain without re-running anything. The last checkpoint — the exact
    // state the tenant would resume from — is what gets persisted.
    if live.drain.load(Ordering::Relaxed) {
        let checkpoint = live.checkpoint.lock().clone();
        let steps = checkpoint.as_ref().map_or(0, sgcr_core::Checkpoint::steps);
        if let Some(cp) = &checkpoint {
            persist_checkpoint(config, tenant, cp, shared);
        }
        let mut report = failed_tenant(tenant, String::new());
        report.error = None;
        report.steps = steps;
        report.restarts = job.restarts;
        report.drained = true;
        shared.tenant_finished(live, tenant, &telemetry, TenantState::Drained, &report);
        return Attempt::Done(report);
    }

    let resume_from = live.checkpoint.lock().clone();
    let wall_start = std::time::Instant::now();
    let built = match &resume_from {
        // Resume replays deterministically from step 0 into this fresh
        // telemetry handle, so the journal is byte-identical to a run that
        // never paused.
        Some(checkpoint) => checkpoint
            .resume(model.clone(), telemetry.clone())
            .map_err(|e| e.to_string()),
        None => {
            let mut builder = RangeBuilder::from_model(model.clone())
                .telemetry(telemetry.clone())
                .fault_seed(config.base_fault_seed + tenant as u64);
            if let Some(interval) = config.interval {
                builder = builder.interval(interval);
            }
            builder.build().map_err(|e| e.to_string())
        }
    };
    let mut range = match built {
        Ok(range) => range,
        Err(e) => {
            let mut report = failed_tenant(tenant, e);
            report.restarts = job.restarts;
            shared.tenant_finished(live, tenant, &telemetry, TenantState::Failed, &report);
            return Attempt::Done(report);
        }
    };

    let mut budget_overruns = 0u64;
    let mut halted = false;
    let mut drained = false;
    let mut score = None;

    match &config.scenario {
        Some(scenario) => {
            // The exercise engine owns the step loop; budget accounting is
            // post-hoc from the range's retained step statistics, and the
            // supervisor does not interpose (no checkpoints, no drain).
            match run_exercise(&mut range, scenario) {
                Ok(report) => {
                    let s = report.score();
                    score = Some((s.earned, s.total));
                }
                Err(e) => {
                    let mut report = failed_tenant(tenant, format!("exercise: {e}"));
                    report.steps = range.steps_total();
                    report.solve_errors = range.solve_errors_total();
                    report.restarts = job.restarts;
                    shared.tenant_finished(live, tenant, &telemetry, TenantState::Failed, &report);
                    return Attempt::Done(report);
                }
            }
            if let Some(budget_ms) = config.step_budget_ms {
                let budget = budget_ms as f64 / 1e3;
                budget_overruns = range
                    .step_stats()
                    .filter(|s| s.total_seconds > budget)
                    .count() as u64;
            }
        }
        None => {
            // Plain soak: drive the step loop directly so the budget can
            // halt a runaway tenant live, a drain request lands on a step
            // boundary, and the supervisor checkpoints on its cadence. The
            // end time is absolute, so a resumed tenant finishes the same
            // total simulated horizon instead of restarting it.
            let end = SimTime::from_nanos(config.sim_seconds.saturating_mul(1_000_000_000));
            budget_overruns = resume_from.as_ref().map_or(0, |_| {
                // Overruns are wall-clock policy, not simulation state:
                // restart the count for the resumed attempt.
                0
            });
            let checkpoint_every = config.collect_interval();
            let mut last_checkpoint = Instant::now();
            while range.now() < end {
                if live.drain.load(Ordering::Relaxed) {
                    drained = true;
                    break;
                }
                let step_start = std::time::Instant::now();
                range.step();
                if let Some(budget_ms) = config.step_budget_ms {
                    if step_start.elapsed().as_secs_f64() * 1e3 > budget_ms as f64 {
                        budget_overruns += 1;
                        if config.max_overruns > 0 && budget_overruns >= config.max_overruns {
                            halted = true;
                            shared.tenant_progress(live, range.steps_total(), budget_overruns);
                            break;
                        }
                    }
                }
                shared.tenant_progress(live, range.steps_total(), budget_overruns);
                if last_checkpoint.elapsed() >= checkpoint_every {
                    shared.capture_checkpoint(live, tenant, &range);
                    last_checkpoint = Instant::now();
                }
            }
            if halted || drained {
                // Anchor the restart (or the drain file) at the exact
                // interruption boundary — no completed step is lost.
                shared.capture_checkpoint(live, tenant, &range);
            }
        }
    }
    let wall_seconds = wall_start.elapsed().as_secs_f64();

    // Latency stats from the tenant's own step-seconds histogram — bounded
    // by the bucket count, not the step count. The true max over the
    // retained step window clamps the interpolated quantile estimates so
    // p50 ≤ p99 ≤ max always holds.
    let max_step_seconds = range
        .step_stats()
        .map(|s| s.total_seconds)
        .fold(0.0, f64::max);
    let snapshot = telemetry.snapshot();
    let (p50, p99) =
        clamped_step_quantiles(snapshot.histogram("range.step_seconds"), max_step_seconds);

    let report = TenantReport {
        tenant,
        steps: range.steps_total(),
        wall_seconds,
        p50_step_seconds: p50,
        p99_step_seconds: p99,
        max_step_seconds,
        budget_overruns,
        halted,
        solve_errors: range.solve_errors_total(),
        restarts: job.restarts,
        given_up: false,
        drained,
        score,
        journal_path: None,
        error: None,
    };

    if halted && config.restart_max > 0 {
        // Restart-eligible: hand the verdict to the supervisor. The
        // cumulative snapshot stays in the aggregate; sinks are written
        // only on the terminal attempt.
        shared.tenant_suspended(live, tenant, &telemetry);
        return Attempt::Interrupted(report);
    }

    if drained {
        if let Some(cp) = live.checkpoint.lock().as_ref() {
            persist_checkpoint(config, tenant, cp, shared);
        }
    }
    let journal_path = write_tenant_sinks(config, tenant, &telemetry, shared);
    let report = TenantReport {
        journal_path,
        ..report
    };
    let state = if report.drained {
        TenantState::Drained
    } else if report.halted {
        TenantState::Halted
    } else {
        TenantState::Completed
    };
    shared.tenant_finished(live, tenant, &telemetry, state, &report);
    Attempt::Done(report)
}

/// Writes `contents` to `path`, retrying transient failures with a short
/// doubling backoff before giving up.
fn write_with_retry(path: &Path, contents: &str) -> std::io::Result<()> {
    let mut delay = Duration::from_millis(10);
    let mut last_err: Option<std::io::Error> = None;
    for attempt in 0..3 {
        if attempt > 0 {
            std::thread::sleep(delay);
            delay *= 2;
        }
        match std::fs::write(path, contents) {
            Ok(()) => return Ok(()),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("write failed")))
}

/// Persists a drained tenant's final checkpoint next to its journal sinks
/// (`tenant-NNNN.checkpoint.json`). Failures degrade, never fail the drain.
fn persist_checkpoint(config: &FarmConfig, tenant: usize, cp: &Checkpoint, shared: &FarmShared) {
    let Some(dir) = &config.out_dir else {
        return;
    };
    let path = dir.join(format!("tenant-{tenant:04}.checkpoint.json"));
    if let Err(e) = write_with_retry(&path, &cp.to_json()) {
        shared.sink_degraded(tenant, &format!("checkpoint sink: {e}"));
    }
}

/// Streams one finished tenant's journal and metrics to the output
/// directory; returns the journal path written (if any). Write volume and
/// blocked time feed the farm's sink-backpressure instruments. Persistent
/// write failures (after retry with backoff) raise the farm's degradation
/// signal and are journaled — the tenant is *not* failed over durability.
fn write_tenant_sinks(
    config: &FarmConfig,
    tenant: usize,
    telemetry: &Telemetry,
    shared: &FarmShared,
) -> Option<String> {
    let dir = config.out_dir.as_ref()?;
    let journal_text = telemetry.journal_jsonl();
    let metrics_text = telemetry.snapshot().to_json();
    let bytes = (journal_text.len() + metrics_text.len()) as u64;
    let write_start = std::time::Instant::now();
    let journal = dir.join(format!("tenant-{tenant:04}.journal.jsonl"));
    if let Err(e) = write_with_retry(&journal, &journal_text) {
        shared.sink_degraded(tenant, &format!("journal sink: {e}"));
        return None;
    }
    let metrics = dir.join(format!("tenant-{tenant:04}.metrics.json"));
    if let Err(e) = write_with_retry(&metrics, &metrics_text) {
        shared.sink_degraded(tenant, &format!("metrics sink: {e}"));
        return Some(journal.to_string_lossy().into_owned());
    }
    shared.journal_bytes.add(bytes);
    shared
        .journal_write_hist
        .observe(write_start.elapsed().as_secs_f64());
    Some(journal.to_string_lossy().into_owned())
}

fn failed_tenant(tenant: usize, error: String) -> TenantReport {
    TenantReport {
        tenant,
        steps: 0,
        wall_seconds: 0.0,
        p50_step_seconds: 0.0,
        p99_step_seconds: 0.0,
        max_step_seconds: 0.0,
        budget_overruns: 0,
        halted: false,
        solve_errors: 0,
        restarts: 0,
        given_up: false,
        drained: false,
        score: None,
        journal_path: None,
        error: Some(error),
    }
}

fn empty_report(model: &CompiledModel, config: &FarmConfig, threads: usize) -> FarmReport {
    FarmReport {
        tenants: config.tenants,
        threads,
        sim_seconds: config.sim_seconds,
        wall_seconds: 0.0,
        ranges_per_sec: 0.0,
        steps_total: 0,
        steps_per_sec: 0.0,
        p50_step_seconds: 0.0,
        p99_step_seconds: 0.0,
        max_step_seconds: 0.0,
        checkpoint_p50_seconds: 0.0,
        checkpoint_p99_seconds: 0.0,
        step_budget_ms: config.step_budget_ms,
        budget_overruns: 0,
        tenants_halted: 0,
        tenants_failed: 0,
        tenants_given_up: 0,
        tenants_drained: 0,
        restarts_total: 0,
        journal_dropped: 0,
        spans_dropped: 0,
        rss_peak_bytes: 0,
        journal_bytes_written: 0,
        journal_write_seconds: 0.0,
        model_summary: model.summary(),
        per_tenant: Vec::new(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
mod tests {
    use super::*;

    /// The interpolated quantile estimate can overshoot every recorded
    /// sample by up to one bucket's width; the clamp pins the reported
    /// percentiles to the exactly-tracked true max.
    #[test]
    fn quantile_estimates_are_clamped_by_true_max() {
        // Three samples, all ≤ 4 ms, landing in the (1 ms, 10 ms] bucket:
        // interpolation places p99 near the bucket's upper bound (~9.9 ms),
        // well past anything that was actually observed.
        let h = HistogramSnapshot {
            count: 3,
            sum: 0.009,
            buckets: vec![(0.001, 0), (0.010, 3), (f64::INFINITY, 0)],
        };
        let true_max = 0.004;
        assert!(
            histogram_quantile(&h, 0.99) > true_max,
            "fixture must make the raw estimate overshoot the true max"
        );

        let (p50, p99) = clamped_step_quantiles(Some(&h), true_max);
        assert!(p50 <= p99, "p50 {p50} must not exceed p99 {p99}");
        assert!(
            p99 <= true_max,
            "p99 {p99} must be clamped to max {true_max}"
        );
        assert!(p50 > 0.0, "clamp must not zero out a populated histogram");
    }

    #[test]
    fn missing_histogram_reports_zero_percentiles() {
        assert_eq!(clamped_step_quantiles(None, 1.0), (0.0, 0.0));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let shared = FarmShared::new(
            &FarmConfig {
                restart_backoff_ms: 100,
                ..FarmConfig::default()
            },
            1,
        );
        assert_eq!(shared.backoff_for(1), Duration::from_millis(100));
        assert_eq!(shared.backoff_for(2), Duration::from_millis(200));
        assert_eq!(shared.backoff_for(3), Duration::from_millis(400));
        // Capped: 100 ms << 6 = 6.4 s would exceed the 5 s ceiling.
        assert_eq!(shared.backoff_for(7), RESTART_BACKOFF_CAP);
        assert_eq!(shared.backoff_for(70), RESTART_BACKOFF_CAP);
    }

    #[test]
    fn admission_cap_and_close_are_enforced() {
        let shared = FarmShared::new(
            &FarmConfig {
                tenants: 2,
                admit_max: 1,
                ..FarmConfig::default()
            },
            1,
        );
        assert_eq!(shared.admit(), Ok(2), "headroom of 1 admits tenant 2");
        assert_eq!(shared.admit(), Err(AdmitRejected::AtCapacity));
        shared.queue.lock().closed = true;
        assert_eq!(shared.admit(), Err(AdmitRejected::Closed));
    }

    #[test]
    fn drain_flags_only_live_tenants() {
        let shared = FarmShared::new(
            &FarmConfig {
                tenants: 1,
                ..FarmConfig::default()
            },
            1,
        );
        assert!(shared.drain(0), "pending tenant is drainable");
        assert!(!shared.drain(7), "unknown tenant");
        let live = shared.live_of(0).unwrap();
        live.state
            .store(TenantState::Completed as u8, Ordering::Relaxed);
        assert!(!shared.drain(0), "terminal tenant is not drainable");
    }

    #[test]
    fn queue_closes_when_work_is_exhausted() {
        let shared = FarmShared::new(
            &FarmConfig {
                tenants: 1,
                ..FarmConfig::default()
            },
            1,
        );
        let job = shared.next_job().expect("one seeded job");
        assert_eq!(job.tenant, 0);
        shared.complete_job();
        assert!(shared.next_job().is_none(), "queue closes after last job");
        assert!(shared.queue.lock().closed);
    }
}
