#![warn(missing_docs)]

//! # sgcr-farm
//!
//! The multi-tenant **range farm**: one `Arc`-shared
//! [`CompiledModel`] multiplexed into N independent cyber ranges (or full
//! scored exercises) across a worker thread pool — the paper's "generated
//! once, exercised many times" vision at server scale.
//!
//! Each tenant gets its own [`CyberRange`](sgcr_core::CyberRange) instantiated from the shared
//! model (no XML or Structured Text is re-parsed per tenant), its own
//! [`Telemetry`] journal/metrics, and a deterministic fault seed
//! (`base_fault_seed + tenant index`), so every tenant's run is
//! byte-replayable in isolation while the farm as a whole scales across
//! cores. Because each range's co-simulation is single-threaded and
//! deterministic, per-tenant outputs are independent of worker-thread
//! scheduling.
//!
//! [`run_farm`] drives the whole fleet and returns a [`FarmReport`] with
//! farm-level throughput (ranges/sec, steps/sec) and latency aggregates
//! (p50/p99/max step wall time) plus per-tenant detail — the numbers the
//! committed `BENCH_farm.json` trajectory tracks. With an output directory
//! configured, every tenant streams `tenant-NNNN.journal.jsonl` and
//! `tenant-NNNN.metrics.json` files as it finishes, and the farm itself
//! writes a `farm.journal.jsonl` with its `FarmStarted`/`FarmFinished`
//! lifecycle events.
//!
//! ## Live observability
//!
//! While the farm runs, a collector thread periodically folds every live
//! tenant's metric snapshot into a farm-level [`FarmAggregator`] (counters
//! summed, gauges last-write, histograms bucket-merged) — memory bounded by
//! O(buckets × tenants), never by step count — and samples the process RSS.
//! With [`FarmConfig::status_addr`] set (CLI: `serve --status-addr`), a
//! zero-dependency HTTP endpoint serves the aggregate as `/metrics`
//! (Prometheus text exposition), `/status` (per-tenant JSON state), and
//! `/healthz`. The final p50/p99 step latencies are estimated from the
//! merged histograms, replacing the raw per-step sample vectors earlier
//! versions held in memory.
//!
//! ```no_run
//! use sgcr_core::{CompiledModel, SgmlBundle};
//! use sgcr_farm::{run_farm, FarmConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bundle = SgmlBundle::from_dir("examples/epic_bundle")?;
//! let model = CompiledModel::shared(&bundle)?;
//! let report = run_farm(
//!     model,
//!     &FarmConfig {
//!         tenants: 128,
//!         sim_seconds: 2,
//!         status_addr: Some("127.0.0.1:9644".to_string()),
//!         ..FarmConfig::default()
//!     },
//! );
//! println!("{}", report.to_text());
//! # Ok(())
//! # }
//! ```

mod status;

pub use status::{http_get, StatusServer};

use parking_lot::Mutex;
use sgcr_core::{CompiledModel, RangeBuilder};
use sgcr_net::SimDuration;
use sgcr_obs::agg::{histogram_quantile, rss_bytes};
use sgcr_obs::{
    json, prom, Counter, Event as ObsEvent, FarmAggregator, Gauge, Histogram, HistogramSnapshot,
    Telemetry,
};
use sgcr_scenario::{run_exercise, Scenario};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// The aggregator key the farm's own telemetry (lifecycle counters, RSS
/// gauges, sink-writer instruments) is folded under — outside any real
/// tenant's index range.
const FARM_SELF: usize = usize::MAX;

/// `(p50, p99)` step-latency estimates from a bucketed step-seconds
/// histogram, clamped by the true observed maximum.
///
/// [`histogram_quantile`] interpolates linearly inside the holding bucket,
/// so an estimate can overshoot every recorded sample by up to one bucket's
/// width; clamping with the exactly-tracked max restores the invariant
/// `p50 ≤ p99 ≤ max`. A missing or empty histogram reports `(0.0, 0.0)`.
fn clamped_step_quantiles(h: Option<&HistogramSnapshot>, max_step_seconds: f64) -> (f64, f64) {
    h.map_or((0.0, 0.0), |h| {
        (
            histogram_quantile(h, 0.50).min(max_step_seconds),
            histogram_quantile(h, 0.99).min(max_step_seconds),
        )
    })
}

/// Configuration of one farm run.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Number of independent tenant ranges to instantiate and run.
    pub tenants: usize,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Co-simulated seconds each tenant runs.
    pub sim_seconds: u64,
    /// Per-tenant wall-clock budget for one co-simulation step, in
    /// milliseconds. Steps over budget count as overruns.
    pub step_budget_ms: Option<u64>,
    /// Halt a tenant once it accumulates this many budget overruns
    /// (0 = never halt). Ignored in scenario mode, where the exercise
    /// engine owns the step loop and overruns are accounted post-hoc.
    pub max_overruns: u64,
    /// Tenant `i` runs under fault seed `base_fault_seed + i`.
    pub base_fault_seed: u64,
    /// Step-interval override for every tenant (`None` = the model's).
    pub interval: Option<SimDuration>,
    /// Run this scored exercise per tenant instead of a plain soak.
    pub scenario: Option<Scenario>,
    /// Directory for per-tenant `tenant-NNNN.journal.jsonl` /
    /// `tenant-NNNN.metrics.json` files, written by workers as each tenant
    /// finishes, plus the farm-level `farm.journal.jsonl` (`None` = keep
    /// everything in memory only).
    pub out_dir: Option<PathBuf>,
    /// Bind address for the live `/metrics` + `/status` + `/healthz` HTTP
    /// endpoint (e.g. `127.0.0.1:9644`); `None` = no endpoint. A bind
    /// failure fails the farm up front, like an unwritable `out_dir`.
    pub status_addr: Option<String>,
    /// How often the collector thread folds live tenant snapshots into the
    /// farm aggregate and samples RSS, in milliseconds (0 = default 250).
    pub collect_interval_ms: u64,
}

impl Default for FarmConfig {
    fn default() -> FarmConfig {
        FarmConfig {
            tenants: 1,
            threads: 0,
            sim_seconds: 10,
            step_budget_ms: None,
            max_overruns: 0,
            base_fault_seed: 0,
            interval: None,
            scenario: None,
            out_dir: None,
            status_addr: None,
            collect_interval_ms: 0,
        }
    }
}

/// One tenant's outcome.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant index (also its journal file number and fault-seed offset).
    pub tenant: usize,
    /// Power-flow steps executed.
    pub steps: u64,
    /// Wall-clock seconds the tenant's whole run took.
    pub wall_seconds: f64,
    /// Median step wall time in seconds, estimated from the tenant's
    /// `range.step_seconds` histogram.
    pub p50_step_seconds: f64,
    /// 99th-percentile step wall time in seconds, estimated from the
    /// tenant's `range.step_seconds` histogram.
    pub p99_step_seconds: f64,
    /// Worst step wall time in seconds (over the retained step window).
    pub max_step_seconds: f64,
    /// Steps that blew the configured budget.
    pub budget_overruns: u64,
    /// True when the tenant was halted early for exceeding `max_overruns`.
    pub halted: bool,
    /// Failed re-solves over the run (the range degrades gracefully).
    pub solve_errors: u64,
    /// `(earned, total)` exercise score, scenario mode only.
    pub score: Option<(u32, u32)>,
    /// Journal file path, when an output directory was configured.
    pub journal_path: Option<String>,
    /// Instantiation or exercise error, if the tenant never ran.
    pub error: Option<String>,
}

/// The farm-level after-action report: throughput and latency aggregates
/// over every tenant, plus per-tenant detail.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// Tenants requested.
    pub tenants: usize,
    /// Worker threads actually used.
    pub threads: usize,
    /// Co-simulated seconds per tenant.
    pub sim_seconds: u64,
    /// Wall-clock seconds for the whole farm run.
    pub wall_seconds: f64,
    /// Tenant ranges completed per wall-clock second.
    pub ranges_per_sec: f64,
    /// Power-flow steps executed across all tenants.
    pub steps_total: u64,
    /// Steps per wall-clock second across the farm.
    pub steps_per_sec: f64,
    /// Median step wall time across every tenant's steps, seconds —
    /// estimated from the bucket-merged farm histogram.
    pub p50_step_seconds: f64,
    /// 99th-percentile step wall time across every tenant's steps, seconds —
    /// estimated from the bucket-merged farm histogram.
    pub p99_step_seconds: f64,
    /// Worst step wall time across the farm, seconds.
    pub max_step_seconds: f64,
    /// The configured per-step budget, if any.
    pub step_budget_ms: Option<u64>,
    /// Budget overruns across all tenants.
    pub budget_overruns: u64,
    /// Tenants halted for exceeding `max_overruns`.
    pub tenants_halted: usize,
    /// Tenants that failed to instantiate or run.
    pub tenants_failed: usize,
    /// Journal records evicted across every tenant's bounded ring buffer.
    pub journal_dropped: u64,
    /// Spans evicted across every tenant's bounded span buffer.
    pub spans_dropped: u64,
    /// Peak process resident set size observed during the run, in bytes
    /// (0 when the platform has no procfs).
    pub rss_peak_bytes: u64,
    /// Bytes of per-tenant journal/metrics sink files written.
    pub journal_bytes_written: u64,
    /// Wall-clock seconds workers spent blocked writing sink files — the
    /// JSONL writer backpressure signal.
    pub journal_write_seconds: f64,
    /// One-line inventory of the shared compiled model.
    pub model_summary: String,
    /// Per-tenant outcomes, ordered by tenant index.
    pub per_tenant: Vec<TenantReport>,
}

impl FarmReport {
    /// Human-readable multi-line summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "farm: {} tenants x {} s sim on {} threads | {}\n",
            self.tenants, self.sim_seconds, self.threads, self.model_summary
        ));
        out.push_str(&format!(
            "wall {:.2} s | {:.1} ranges/sec | {} steps ({:.0} steps/sec)\n",
            self.wall_seconds, self.ranges_per_sec, self.steps_total, self.steps_per_sec
        ));
        out.push_str(&format!(
            "step latency p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms\n",
            self.p50_step_seconds * 1e3,
            self.p99_step_seconds * 1e3,
            self.max_step_seconds * 1e3
        ));
        match self.step_budget_ms {
            Some(budget) => out.push_str(&format!(
                "budget {budget} ms/step: {} overruns, {} tenants halted, {} failed\n",
                self.budget_overruns, self.tenants_halted, self.tenants_failed
            )),
            None => out.push_str(&format!(
                "no step budget | {} tenants failed\n",
                self.tenants_failed
            )),
        }
        out.push_str(&format!(
            "rss peak {:.1} MiB | sinks {} B in {:.3} s | {} journal / {} span records dropped\n",
            self.rss_peak_bytes as f64 / (1024.0 * 1024.0),
            self.journal_bytes_written,
            self.journal_write_seconds,
            self.journal_dropped,
            self.spans_dropped
        ));
        out
    }

    /// JSON form (stable key order) — the schema `BENCH_farm.json` commits.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"tenants\":{},", self.tenants));
        out.push_str(&format!("\"threads\":{},", self.threads));
        out.push_str(&format!("\"sim_seconds\":{},", self.sim_seconds));
        out.push_str(&format!(
            "\"wall_seconds\":{},",
            json::number(self.wall_seconds)
        ));
        out.push_str(&format!(
            "\"ranges_per_sec\":{},",
            json::number(self.ranges_per_sec)
        ));
        out.push_str(&format!("\"steps_total\":{},", self.steps_total));
        out.push_str(&format!(
            "\"steps_per_sec\":{},",
            json::number(self.steps_per_sec)
        ));
        out.push_str(&format!(
            "\"p50_step_seconds\":{},",
            json::number(self.p50_step_seconds)
        ));
        out.push_str(&format!(
            "\"p99_step_seconds\":{},",
            json::number(self.p99_step_seconds)
        ));
        out.push_str(&format!(
            "\"max_step_seconds\":{},",
            json::number(self.max_step_seconds)
        ));
        match self.step_budget_ms {
            Some(budget) => out.push_str(&format!("\"step_budget_ms\":{budget},")),
            None => out.push_str("\"step_budget_ms\":null,"),
        }
        out.push_str(&format!("\"budget_overruns\":{},", self.budget_overruns));
        out.push_str(&format!("\"tenants_halted\":{},", self.tenants_halted));
        out.push_str(&format!("\"tenants_failed\":{},", self.tenants_failed));
        out.push_str(&format!("\"journal_dropped\":{},", self.journal_dropped));
        out.push_str(&format!("\"spans_dropped\":{},", self.spans_dropped));
        out.push_str(&format!("\"rss_peak_bytes\":{},", self.rss_peak_bytes));
        out.push_str(&format!(
            "\"journal_bytes_written\":{},",
            self.journal_bytes_written
        ));
        out.push_str(&format!(
            "\"journal_write_seconds\":{},",
            json::number(self.journal_write_seconds)
        ));
        out.push_str(&format!(
            "\"model_summary\":{},",
            json::quote(&self.model_summary)
        ));
        out.push_str("\"per_tenant\":[");
        for (i, t) in self.per_tenant.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"tenant\":{},", t.tenant));
            out.push_str(&format!("\"steps\":{},", t.steps));
            out.push_str(&format!(
                "\"wall_seconds\":{},",
                json::number(t.wall_seconds)
            ));
            out.push_str(&format!(
                "\"p50_step_seconds\":{},",
                json::number(t.p50_step_seconds)
            ));
            out.push_str(&format!(
                "\"p99_step_seconds\":{},",
                json::number(t.p99_step_seconds)
            ));
            out.push_str(&format!(
                "\"max_step_seconds\":{},",
                json::number(t.max_step_seconds)
            ));
            out.push_str(&format!("\"budget_overruns\":{},", t.budget_overruns));
            out.push_str(&format!("\"halted\":{},", t.halted));
            out.push_str(&format!("\"solve_errors\":{},", t.solve_errors));
            match t.score {
                Some((earned, total)) => out.push_str(&format!(
                    "\"score\":{{\"earned\":{earned},\"total\":{total}}},"
                )),
                None => out.push_str("\"score\":null,"),
            }
            match &t.journal_path {
                Some(path) => out.push_str(&format!("\"journal\":{},", json::quote(path))),
                None => out.push_str("\"journal\":null,"),
            }
            match &t.error {
                Some(error) => out.push_str(&format!("\"error\":{}", json::quote(error))),
                None => out.push_str("\"error\":null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// A tenant's live lifecycle state, as reported on `/status`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
enum TenantState {
    Pending = 0,
    Running = 1,
    Completed = 2,
    Halted = 3,
    Failed = 4,
}

impl TenantState {
    fn from_u8(v: u8) -> TenantState {
        match v {
            1 => TenantState::Running,
            2 => TenantState::Completed,
            3 => TenantState::Halted,
            4 => TenantState::Failed,
            _ => TenantState::Pending,
        }
    }

    fn name(self) -> &'static str {
        match self {
            TenantState::Pending => "pending",
            TenantState::Running => "running",
            TenantState::Completed => "completed",
            TenantState::Halted => "halted",
            TenantState::Failed => "failed",
        }
    }
}

/// Lock-free per-tenant live counters behind `/status`.
#[derive(Default)]
struct TenantLive {
    state: AtomicU8,
    steps: AtomicU64,
    overruns: AtomicU64,
    solve_errors: AtomicU64,
    /// Exercise score packed as `PRESENT | earned << 32 | total` (0 = none).
    score: AtomicU64,
}

const SCORE_PRESENT: u64 = 1 << 63;

/// State shared between the workers, the collector thread, and the status
/// endpoint for one farm run.
pub(crate) struct FarmShared {
    tenants: usize,
    threads: usize,
    sim_seconds: u64,
    step_budget_ms: Option<u64>,
    scenario: bool,
    live: Mutex<BTreeMap<usize, Telemetry>>,
    aggregator: FarmAggregator,
    per_tenant: Vec<TenantLive>,
    shutdown: AtomicBool,
    rss_peak: AtomicU64,
    farm_telemetry: Telemetry,
    ranges_total: Counter,
    running_gauge: Gauge,
    completed_gauge: Gauge,
    halted_gauge: Gauge,
    failed_gauge: Gauge,
    rss_gauge: Gauge,
    rss_peak_gauge: Gauge,
    journal_bytes: Counter,
    journal_write_hist: Histogram,
}

impl FarmShared {
    fn new(config: &FarmConfig, threads: usize) -> FarmShared {
        let farm_telemetry = Telemetry::new();
        FarmShared {
            tenants: config.tenants,
            threads,
            sim_seconds: config.sim_seconds,
            step_budget_ms: config.step_budget_ms,
            scenario: config.scenario.is_some(),
            live: Mutex::new(BTreeMap::new()),
            aggregator: FarmAggregator::new(),
            per_tenant: (0..config.tenants).map(|_| TenantLive::default()).collect(),
            shutdown: AtomicBool::new(false),
            rss_peak: AtomicU64::new(0),
            ranges_total: farm_telemetry.counter("farm.ranges_total"),
            running_gauge: farm_telemetry.gauge("farm.tenants_running"),
            completed_gauge: farm_telemetry.gauge("farm.tenants_completed"),
            halted_gauge: farm_telemetry.gauge("farm.tenants_halted"),
            failed_gauge: farm_telemetry.gauge("farm.tenants_failed"),
            rss_gauge: farm_telemetry.gauge("farm.rss_bytes"),
            rss_peak_gauge: farm_telemetry.gauge("farm.rss_peak_bytes"),
            journal_bytes: farm_telemetry.counter("farm.journal_bytes_written"),
            journal_write_hist: farm_telemetry.histogram(
                "farm.journal_write_seconds",
                &sgcr_obs::buckets::LATENCY_SECONDS,
            ),
            farm_telemetry,
        }
    }

    fn tenant_started(&self, tenant: usize, telemetry: &Telemetry) {
        self.per_tenant[tenant]
            .state
            .store(TenantState::Running as u8, Ordering::Relaxed);
        self.live.lock().insert(tenant, telemetry.clone());
    }

    fn tenant_progress(&self, tenant: usize, steps: u64, overruns: u64) {
        let live = &self.per_tenant[tenant];
        live.steps.store(steps, Ordering::Relaxed);
        live.overruns.store(overruns, Ordering::Relaxed);
    }

    #[allow(clippy::too_many_arguments)]
    fn tenant_finished(
        &self,
        tenant: usize,
        telemetry: &Telemetry,
        state: TenantState,
        steps: u64,
        overruns: u64,
        solve_errors: u64,
        score: Option<(u32, u32)>,
    ) {
        self.live.lock().remove(&tenant);
        self.aggregator.submit(tenant, telemetry.snapshot());
        let live = &self.per_tenant[tenant];
        live.steps.store(steps, Ordering::Relaxed);
        live.overruns.store(overruns, Ordering::Relaxed);
        live.solve_errors.store(solve_errors, Ordering::Relaxed);
        if let Some((earned, total)) = score {
            live.score.store(
                SCORE_PRESENT | u64::from(earned) << 32 | u64::from(total),
                Ordering::Relaxed,
            );
        }
        live.state.store(state as u8, Ordering::Relaxed);
        if state != TenantState::Failed {
            self.ranges_total.inc();
        }
    }

    /// One collector pass: folds every live tenant's snapshot plus the
    /// farm's own instruments into the aggregator, and samples RSS.
    pub(crate) fn collect(&self) {
        let live: Vec<(usize, Telemetry)> = self
            .live
            .lock()
            .iter()
            .map(|(t, tel)| (*t, tel.clone()))
            .collect();
        for (tenant, telemetry) in live {
            self.aggregator.submit(tenant, telemetry.snapshot());
        }
        if let Some(rss) = rss_bytes() {
            self.rss_gauge.set(rss as f64);
            let peak = self.rss_peak.fetch_max(rss, Ordering::Relaxed).max(rss);
            self.rss_peak_gauge.set(peak as f64);
        }
        let (running, completed, halted, failed) = self.counts();
        self.running_gauge.set(running as f64);
        self.completed_gauge.set(completed as f64);
        self.halted_gauge.set(halted as f64);
        self.failed_gauge.set(failed as f64);
        self.aggregator
            .submit(FARM_SELF, self.farm_telemetry.snapshot());
    }

    fn counts(&self) -> (usize, usize, usize, usize) {
        let mut counts = (0usize, 0usize, 0usize, 0usize);
        for live in &self.per_tenant {
            match TenantState::from_u8(live.state.load(Ordering::Relaxed)) {
                TenantState::Running => counts.0 += 1,
                TenantState::Completed => counts.1 += 1,
                TenantState::Halted => counts.2 += 1,
                TenantState::Failed => counts.3 += 1,
                TenantState::Pending => {}
            }
        }
        counts
    }

    fn finish(&self) {
        self.collect();
        self.shutdown.store(true, Ordering::Release);
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// The `/metrics` body: a fresh collect pass, then the merged farm
    /// registry rendered as Prometheus text exposition.
    pub(crate) fn metrics_text(&self) -> String {
        self.collect();
        prom::render(&self.aggregator.aggregate())
    }

    /// The `/status` body: deterministic-key JSON of farm and per-tenant
    /// live state.
    pub(crate) fn status_json(&self) -> String {
        let (running, completed, halted, failed) = self.counts();
        let mut out = String::with_capacity(256 + self.tenants * 96);
        let _ = write!(
            out,
            "{{\"tenants\":{},\"threads\":{},\"sim_seconds\":{},\"scenario\":{},",
            self.tenants, self.threads, self.sim_seconds, self.scenario
        );
        match self.step_budget_ms {
            Some(budget) => {
                let _ = write!(out, "\"step_budget_ms\":{budget},");
            }
            None => out.push_str("\"step_budget_ms\":null,"),
        }
        let _ = write!(
            out,
            "\"tenants_running\":{running},\"tenants_completed\":{completed},\"tenants_halted\":{halted},\"tenants_failed\":{failed},\"per_tenant\":["
        );
        for (tenant, live) in self.per_tenant.iter().enumerate() {
            if tenant > 0 {
                out.push(',');
            }
            let state = TenantState::from_u8(live.state.load(Ordering::Relaxed));
            let _ = write!(
                out,
                "{{\"tenant\":{tenant},\"state\":{},\"steps\":{},\"budget_overruns\":{},\"solve_errors\":{},",
                json::quote(state.name()),
                live.steps.load(Ordering::Relaxed),
                live.overruns.load(Ordering::Relaxed),
                live.solve_errors.load(Ordering::Relaxed)
            );
            let score = live.score.load(Ordering::Relaxed);
            if score & SCORE_PRESENT != 0 {
                let _ = write!(
                    out,
                    "\"score\":{{\"earned\":{},\"total\":{}}}}}",
                    (score >> 32) & 0x7fff_ffff,
                    score & 0xffff_ffff
                );
            } else {
                out.push_str("\"score\":null}");
            }
        }
        out.push_str("]}");
        out
    }
}

fn effective_threads(config: &FarmConfig) -> usize {
    if config.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        config.threads
    }
    .min(config.tenants.max(1))
}

/// Runs `config.tenants` independent ranges from one shared compiled model
/// across a worker pool and aggregates the farm report.
///
/// Tenant instantiation or exercise failures never abort the farm; they are
/// recorded on the tenant's report (`error`) and counted in
/// [`FarmReport::tenants_failed`]. With [`FarmConfig::status_addr`] set,
/// the live status endpoint is bound before any tenant starts; a bind
/// failure fails the whole farm up front (like an unwritable `out_dir`).
pub fn run_farm(model: Arc<CompiledModel>, config: &FarmConfig) -> FarmReport {
    let server = match &config.status_addr {
        Some(addr) => match StatusServer::bind(addr) {
            Ok(server) => Some(server),
            Err(e) => {
                let threads = effective_threads(config);
                let mut report = empty_report(&model, config, threads);
                report.tenants_failed = config.tenants;
                report.per_tenant = (0..config.tenants)
                    .map(|tenant| {
                        failed_tenant(tenant, format!("cannot bind status endpoint {addr}: {e}"))
                    })
                    .collect();
                return report;
            }
        },
        None => None,
    };
    run_farm_with_status(model, config, server)
}

/// [`run_farm`] with an explicitly pre-bound status endpoint (or none).
///
/// Binding separately lets callers bind port 0 and read the assigned
/// address before the farm starts — the CLI and the tests both do this.
pub fn run_farm_with_status(
    model: Arc<CompiledModel>,
    config: &FarmConfig,
    server: Option<StatusServer>,
) -> FarmReport {
    let threads = effective_threads(config);

    if let Some(dir) = &config.out_dir {
        // Creating the sink directory up front keeps workers fs-race-free.
        if let Err(e) = std::fs::create_dir_all(dir) {
            let mut report = empty_report(&model, config, threads);
            report.tenants_failed = config.tenants;
            report.per_tenant = (0..config.tenants)
                .map(|tenant| failed_tenant(tenant, format!("cannot create out dir: {e}")))
                .collect();
            return report;
        }
    }

    let shared = FarmShared::new(config, threads);
    {
        let (tenants, sim_seconds) = (config.tenants as u64, config.sim_seconds);
        let threads = threads as u64;
        shared
            .farm_telemetry
            .record(0u64, || ObsEvent::FarmStarted {
                tenants,
                threads,
                sim_seconds,
            });
    }
    let collect_interval = Duration::from_millis(if config.collect_interval_ms == 0 {
        250
    } else {
        config.collect_interval_ms
    });

    let wall_start = std::time::Instant::now();
    let next_tenant = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<TenantReport>();

    let mut per_tenant: Vec<TenantReport> = Vec::new();
    std::thread::scope(|scope| {
        let shared = &shared;
        scope.spawn(move || {
            // Collector: fold live snapshots until the farm winds down,
            // waking often enough to notice shutdown promptly.
            while !shared.is_shutdown() {
                shared.collect();
                let mut slept = Duration::ZERO;
                while slept < collect_interval && !shared.is_shutdown() {
                    let nap = Duration::from_millis(20).min(collect_interval - slept);
                    std::thread::sleep(nap);
                    slept += nap;
                }
            }
        });
        if let Some(server) = server {
            scope.spawn(move || status::serve(server, shared));
        }
        for _ in 0..threads {
            let tx = tx.clone();
            let next_tenant = &next_tenant;
            let model = &model;
            scope.spawn(move || loop {
                let tenant = next_tenant.fetch_add(1, Ordering::Relaxed);
                if tenant >= config.tenants {
                    break;
                }
                // A send only fails if the receiver is gone, i.e. the farm
                // is already being torn down — nothing left to report to.
                let _ = tx.send(run_tenant(model, config, tenant, shared));
            });
        }
        drop(tx);
        per_tenant = rx.iter().collect();
        // All workers are done; release the collector and the endpoint.
        shared.finish();
    });
    per_tenant.sort_by_key(|t| t.tenant);
    let wall_seconds = wall_start.elapsed().as_secs_f64();

    let mut steps_total = 0u64;
    let mut budget_overruns = 0u64;
    let mut tenants_halted = 0usize;
    let mut tenants_failed = 0usize;
    let mut max_step_seconds = 0.0f64;
    for t in &per_tenant {
        steps_total += t.steps;
        budget_overruns += t.budget_overruns;
        max_step_seconds = max_step_seconds.max(t.max_step_seconds);
        if t.halted {
            tenants_halted += 1;
        }
        if t.error.is_some() {
            tenants_failed += 1;
        }
    }

    // Farm-level latency percentiles from the bucket-merged histogram of
    // every tenant's `range.step_seconds` — O(buckets × tenants) memory,
    // replacing the raw per-step sample vectors the farm used to hold.
    let merged = shared.aggregator.aggregate();
    let (p50, p99) =
        clamped_step_quantiles(merged.histogram("range.step_seconds"), max_step_seconds);

    {
        let (completed_n, halted_n, failed_n) = (
            per_tenant
                .iter()
                .filter(|t| t.error.is_none() && !t.halted)
                .count() as u64,
            tenants_halted as u64,
            tenants_failed as u64,
        );
        let t_end = config.sim_seconds.saturating_mul(1_000_000_000);
        shared
            .farm_telemetry
            .record(t_end, || ObsEvent::FarmFinished {
                tenants_completed: completed_n,
                tenants_halted: halted_n,
                tenants_failed: failed_n,
            });
    }
    if let Some(dir) = &config.out_dir {
        let _ = std::fs::write(
            dir.join("farm.journal.jsonl"),
            shared.farm_telemetry.journal_jsonl(),
        );
    }

    let completed = per_tenant.iter().filter(|t| t.error.is_none()).count();
    FarmReport {
        tenants: config.tenants,
        threads,
        sim_seconds: config.sim_seconds,
        wall_seconds,
        ranges_per_sec: if wall_seconds > 0.0 {
            completed as f64 / wall_seconds
        } else {
            0.0
        },
        steps_total,
        steps_per_sec: if wall_seconds > 0.0 {
            steps_total as f64 / wall_seconds
        } else {
            0.0
        },
        p50_step_seconds: p50,
        p99_step_seconds: p99,
        max_step_seconds,
        step_budget_ms: config.step_budget_ms,
        budget_overruns,
        tenants_halted,
        tenants_failed,
        journal_dropped: merged.journal_dropped,
        spans_dropped: merged.spans_dropped,
        rss_peak_bytes: shared.rss_peak.load(Ordering::Relaxed),
        journal_bytes_written: shared.journal_bytes.get(),
        journal_write_seconds: shared.journal_write_hist.sum(),
        model_summary: model.summary(),
        per_tenant,
    }
}

/// Runs one tenant to completion and measures it. Never panics; failures
/// land on the report's `error` field.
fn run_tenant(
    model: &Arc<CompiledModel>,
    config: &FarmConfig,
    tenant: usize,
    shared: &FarmShared,
) -> TenantReport {
    let telemetry = Telemetry::new();
    shared.tenant_started(tenant, &telemetry);
    let mut builder = RangeBuilder::from_model(model.clone())
        .telemetry(telemetry.clone())
        .fault_seed(config.base_fault_seed + tenant as u64);
    if let Some(interval) = config.interval {
        builder = builder.interval(interval);
    }
    let wall_start = std::time::Instant::now();
    let mut range = match builder.build() {
        Ok(range) => range,
        Err(e) => {
            shared.tenant_finished(tenant, &telemetry, TenantState::Failed, 0, 0, 0, None);
            return failed_tenant(tenant, e.to_string());
        }
    };

    let mut budget_overruns = 0u64;
    let mut halted = false;
    let mut score = None;

    match &config.scenario {
        Some(scenario) => {
            // The exercise engine owns the step loop; budget accounting is
            // post-hoc from the range's retained step statistics.
            match run_exercise(&mut range, scenario) {
                Ok(report) => {
                    let s = report.score();
                    score = Some((s.earned, s.total));
                }
                Err(e) => {
                    shared.tenant_finished(
                        tenant,
                        &telemetry,
                        TenantState::Failed,
                        range.steps_total(),
                        0,
                        range.solve_errors_total(),
                        None,
                    );
                    return failed_tenant(tenant, format!("exercise: {e}"));
                }
            }
            if let Some(budget_ms) = config.step_budget_ms {
                let budget = budget_ms as f64 / 1e3;
                budget_overruns = range
                    .step_stats()
                    .filter(|s| s.total_seconds > budget)
                    .count() as u64;
            }
        }
        None => {
            // Plain soak: drive the step loop directly so the budget can
            // halt a runaway tenant live.
            let end = range.now() + SimDuration::from_secs(config.sim_seconds);
            while range.now() < end {
                let step_start = std::time::Instant::now();
                range.step();
                if let Some(budget_ms) = config.step_budget_ms {
                    if step_start.elapsed().as_secs_f64() * 1e3 > budget_ms as f64 {
                        budget_overruns += 1;
                        if config.max_overruns > 0 && budget_overruns >= config.max_overruns {
                            halted = true;
                            shared.tenant_progress(tenant, range.steps_total(), budget_overruns);
                            break;
                        }
                    }
                }
                shared.tenant_progress(tenant, range.steps_total(), budget_overruns);
            }
        }
    }
    let wall_seconds = wall_start.elapsed().as_secs_f64();

    // Latency stats from the tenant's own step-seconds histogram — bounded
    // by the bucket count, not the step count. The true max over the
    // retained step window clamps the interpolated quantile estimates so
    // p50 ≤ p99 ≤ max always holds.
    let max_step_seconds = range
        .step_stats()
        .map(|s| s.total_seconds)
        .fold(0.0, f64::max);
    let snapshot = telemetry.snapshot();
    let (p50, p99) =
        clamped_step_quantiles(snapshot.histogram("range.step_seconds"), max_step_seconds);

    let report = TenantReport {
        tenant,
        steps: range.steps_total(),
        wall_seconds,
        p50_step_seconds: p50,
        p99_step_seconds: p99,
        max_step_seconds,
        budget_overruns,
        halted,
        solve_errors: range.solve_errors_total(),
        score,
        journal_path: None,
        error: None,
    };
    let sink = write_tenant_sinks(config, tenant, &telemetry, shared);
    let report = match sink {
        Ok(journal_path) => TenantReport {
            journal_path,
            ..report
        },
        Err(e) => TenantReport {
            error: Some(format!("sink: {e}")),
            ..report
        },
    };
    let state = if report.error.is_some() {
        TenantState::Failed
    } else if report.halted {
        TenantState::Halted
    } else {
        TenantState::Completed
    };
    shared.tenant_finished(
        tenant,
        &telemetry,
        state,
        report.steps,
        report.budget_overruns,
        report.solve_errors,
        report.score,
    );
    report
}

/// Streams one finished tenant's journal and metrics to the output
/// directory; returns the journal path written (if any). Write volume and
/// blocked time feed the farm's sink-backpressure instruments.
fn write_tenant_sinks(
    config: &FarmConfig,
    tenant: usize,
    telemetry: &Telemetry,
    shared: &FarmShared,
) -> std::io::Result<Option<String>> {
    let Some(dir) = &config.out_dir else {
        return Ok(None);
    };
    let journal_text = telemetry.journal_jsonl();
    let metrics_text = telemetry.snapshot().to_json();
    let bytes = (journal_text.len() + metrics_text.len()) as u64;
    let write_start = std::time::Instant::now();
    let journal = dir.join(format!("tenant-{tenant:04}.journal.jsonl"));
    std::fs::write(&journal, journal_text)?;
    let metrics = dir.join(format!("tenant-{tenant:04}.metrics.json"));
    std::fs::write(&metrics, metrics_text)?;
    shared.journal_bytes.add(bytes);
    shared
        .journal_write_hist
        .observe(write_start.elapsed().as_secs_f64());
    Ok(Some(journal.to_string_lossy().into_owned()))
}

fn failed_tenant(tenant: usize, error: String) -> TenantReport {
    TenantReport {
        tenant,
        steps: 0,
        wall_seconds: 0.0,
        p50_step_seconds: 0.0,
        p99_step_seconds: 0.0,
        max_step_seconds: 0.0,
        budget_overruns: 0,
        halted: false,
        solve_errors: 0,
        score: None,
        journal_path: None,
        error: Some(error),
    }
}

fn empty_report(model: &CompiledModel, config: &FarmConfig, threads: usize) -> FarmReport {
    FarmReport {
        tenants: config.tenants,
        threads,
        sim_seconds: config.sim_seconds,
        wall_seconds: 0.0,
        ranges_per_sec: 0.0,
        steps_total: 0,
        steps_per_sec: 0.0,
        p50_step_seconds: 0.0,
        p99_step_seconds: 0.0,
        max_step_seconds: 0.0,
        step_budget_ms: config.step_budget_ms,
        budget_overruns: 0,
        tenants_halted: 0,
        tenants_failed: 0,
        journal_dropped: 0,
        spans_dropped: 0,
        rss_peak_bytes: 0,
        journal_bytes_written: 0,
        journal_write_seconds: 0.0,
        model_summary: model.summary(),
        per_tenant: Vec::new(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::float_cmp)]
mod tests {
    use super::*;

    /// The interpolated quantile estimate can overshoot every recorded
    /// sample by up to one bucket's width; the clamp pins the reported
    /// percentiles to the exactly-tracked true max.
    #[test]
    fn quantile_estimates_are_clamped_by_true_max() {
        // Three samples, all ≤ 4 ms, landing in the (1 ms, 10 ms] bucket:
        // interpolation places p99 near the bucket's upper bound (~9.9 ms),
        // well past anything that was actually observed.
        let h = HistogramSnapshot {
            count: 3,
            sum: 0.009,
            buckets: vec![(0.001, 0), (0.010, 3), (f64::INFINITY, 0)],
        };
        let true_max = 0.004;
        assert!(
            histogram_quantile(&h, 0.99) > true_max,
            "fixture must make the raw estimate overshoot the true max"
        );

        let (p50, p99) = clamped_step_quantiles(Some(&h), true_max);
        assert!(p50 <= p99, "p50 {p50} must not exceed p99 {p99}");
        assert!(
            p99 <= true_max,
            "p99 {p99} must be clamped to max {true_max}"
        );
        assert!(p50 > 0.0, "clamp must not zero out a populated histogram");
    }

    #[test]
    fn missing_histogram_reports_zero_percentiles() {
        assert_eq!(clamped_step_quantiles(None, 1.0), (0.0, 0.0));
    }
}
