#![warn(missing_docs)]

//! # sgcr-farm
//!
//! The multi-tenant **range farm**: one `Arc`-shared
//! [`CompiledModel`] multiplexed into N independent cyber ranges (or full
//! scored exercises) across a worker thread pool — the paper's "generated
//! once, exercised many times" vision at server scale.
//!
//! Each tenant gets its own [`CyberRange`](sgcr_core::CyberRange) instantiated from the shared
//! model (no XML or Structured Text is re-parsed per tenant), its own
//! [`Telemetry`] journal/metrics, and a deterministic fault seed
//! (`base_fault_seed + tenant index`), so every tenant's run is
//! byte-replayable in isolation while the farm as a whole scales across
//! cores. Because each range's co-simulation is single-threaded and
//! deterministic, per-tenant outputs are independent of worker-thread
//! scheduling.
//!
//! [`run_farm`] drives the whole fleet and returns a [`FarmReport`] with
//! farm-level throughput (ranges/sec, steps/sec) and latency aggregates
//! (p50/p99/max step wall time) plus per-tenant detail — the numbers the
//! committed `BENCH_farm.json` trajectory tracks. With an output directory
//! configured, every tenant streams `tenant-NNNN.journal.jsonl` and
//! `tenant-NNNN.metrics.json` files as it finishes.
//!
//! ```no_run
//! use sgcr_core::{CompiledModel, SgmlBundle};
//! use sgcr_farm::{run_farm, FarmConfig};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bundle = SgmlBundle::from_dir("examples/epic_bundle")?;
//! let model = CompiledModel::shared(&bundle)?;
//! let report = run_farm(
//!     model,
//!     &FarmConfig {
//!         tenants: 128,
//!         sim_seconds: 2,
//!         ..FarmConfig::default()
//!     },
//! );
//! println!("{}", report.to_text());
//! # Ok(())
//! # }
//! ```

use sgcr_core::{CompiledModel, RangeBuilder};
use sgcr_net::SimDuration;
use sgcr_obs::{json, Telemetry};
use sgcr_scenario::{run_exercise, Scenario};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// Configuration of one farm run.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Number of independent tenant ranges to instantiate and run.
    pub tenants: usize,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
    /// Co-simulated seconds each tenant runs.
    pub sim_seconds: u64,
    /// Per-tenant wall-clock budget for one co-simulation step, in
    /// milliseconds. Steps over budget count as overruns.
    pub step_budget_ms: Option<u64>,
    /// Halt a tenant once it accumulates this many budget overruns
    /// (0 = never halt). Ignored in scenario mode, where the exercise
    /// engine owns the step loop and overruns are accounted post-hoc.
    pub max_overruns: u64,
    /// Tenant `i` runs under fault seed `base_fault_seed + i`.
    pub base_fault_seed: u64,
    /// Step-interval override for every tenant (`None` = the model's).
    pub interval: Option<SimDuration>,
    /// Run this scored exercise per tenant instead of a plain soak.
    pub scenario: Option<Scenario>,
    /// Directory for per-tenant `tenant-NNNN.journal.jsonl` /
    /// `tenant-NNNN.metrics.json` files, written by workers as each tenant
    /// finishes (`None` = keep everything in memory only).
    pub out_dir: Option<PathBuf>,
}

impl Default for FarmConfig {
    fn default() -> FarmConfig {
        FarmConfig {
            tenants: 1,
            threads: 0,
            sim_seconds: 10,
            step_budget_ms: None,
            max_overruns: 0,
            base_fault_seed: 0,
            interval: None,
            scenario: None,
            out_dir: None,
        }
    }
}

/// One tenant's outcome.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant index (also its journal file number and fault-seed offset).
    pub tenant: usize,
    /// Power-flow steps executed.
    pub steps: u64,
    /// Wall-clock seconds the tenant's whole run took.
    pub wall_seconds: f64,
    /// Median step wall time in seconds.
    pub p50_step_seconds: f64,
    /// 99th-percentile step wall time in seconds.
    pub p99_step_seconds: f64,
    /// Worst step wall time in seconds.
    pub max_step_seconds: f64,
    /// Steps that blew the configured budget.
    pub budget_overruns: u64,
    /// True when the tenant was halted early for exceeding `max_overruns`.
    pub halted: bool,
    /// Failed re-solves over the run (the range degrades gracefully).
    pub solve_errors: u64,
    /// `(earned, total)` exercise score, scenario mode only.
    pub score: Option<(u32, u32)>,
    /// Journal file path, when an output directory was configured.
    pub journal_path: Option<String>,
    /// Instantiation or exercise error, if the tenant never ran.
    pub error: Option<String>,
    /// Raw per-step wall times (seconds) shipped back for farm-level
    /// percentile aggregation; not serialized per tenant.
    step_samples: Vec<f64>,
}

/// The farm-level after-action report: throughput and latency aggregates
/// over every tenant, plus per-tenant detail.
#[derive(Debug, Clone)]
pub struct FarmReport {
    /// Tenants requested.
    pub tenants: usize,
    /// Worker threads actually used.
    pub threads: usize,
    /// Co-simulated seconds per tenant.
    pub sim_seconds: u64,
    /// Wall-clock seconds for the whole farm run.
    pub wall_seconds: f64,
    /// Tenant ranges completed per wall-clock second.
    pub ranges_per_sec: f64,
    /// Power-flow steps executed across all tenants.
    pub steps_total: u64,
    /// Steps per wall-clock second across the farm.
    pub steps_per_sec: f64,
    /// Median step wall time across every tenant's steps, seconds.
    pub p50_step_seconds: f64,
    /// 99th-percentile step wall time across every tenant's steps, seconds.
    pub p99_step_seconds: f64,
    /// Worst step wall time across the farm, seconds.
    pub max_step_seconds: f64,
    /// The configured per-step budget, if any.
    pub step_budget_ms: Option<u64>,
    /// Budget overruns across all tenants.
    pub budget_overruns: u64,
    /// Tenants halted for exceeding `max_overruns`.
    pub tenants_halted: usize,
    /// Tenants that failed to instantiate or run.
    pub tenants_failed: usize,
    /// One-line inventory of the shared compiled model.
    pub model_summary: String,
    /// Per-tenant outcomes, ordered by tenant index.
    pub per_tenant: Vec<TenantReport>,
}

impl FarmReport {
    /// Human-readable multi-line summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "farm: {} tenants x {} s sim on {} threads | {}\n",
            self.tenants, self.sim_seconds, self.threads, self.model_summary
        ));
        out.push_str(&format!(
            "wall {:.2} s | {:.1} ranges/sec | {} steps ({:.0} steps/sec)\n",
            self.wall_seconds, self.ranges_per_sec, self.steps_total, self.steps_per_sec
        ));
        out.push_str(&format!(
            "step latency p50 {:.3} ms, p99 {:.3} ms, max {:.3} ms\n",
            self.p50_step_seconds * 1e3,
            self.p99_step_seconds * 1e3,
            self.max_step_seconds * 1e3
        ));
        match self.step_budget_ms {
            Some(budget) => out.push_str(&format!(
                "budget {budget} ms/step: {} overruns, {} tenants halted, {} failed\n",
                self.budget_overruns, self.tenants_halted, self.tenants_failed
            )),
            None => out.push_str(&format!(
                "no step budget | {} tenants failed\n",
                self.tenants_failed
            )),
        }
        out
    }

    /// JSON form (stable key order) — the schema `BENCH_farm.json` commits.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"tenants\":{},", self.tenants));
        out.push_str(&format!("\"threads\":{},", self.threads));
        out.push_str(&format!("\"sim_seconds\":{},", self.sim_seconds));
        out.push_str(&format!(
            "\"wall_seconds\":{},",
            json::number(self.wall_seconds)
        ));
        out.push_str(&format!(
            "\"ranges_per_sec\":{},",
            json::number(self.ranges_per_sec)
        ));
        out.push_str(&format!("\"steps_total\":{},", self.steps_total));
        out.push_str(&format!(
            "\"steps_per_sec\":{},",
            json::number(self.steps_per_sec)
        ));
        out.push_str(&format!(
            "\"p50_step_seconds\":{},",
            json::number(self.p50_step_seconds)
        ));
        out.push_str(&format!(
            "\"p99_step_seconds\":{},",
            json::number(self.p99_step_seconds)
        ));
        out.push_str(&format!(
            "\"max_step_seconds\":{},",
            json::number(self.max_step_seconds)
        ));
        match self.step_budget_ms {
            Some(budget) => out.push_str(&format!("\"step_budget_ms\":{budget},")),
            None => out.push_str("\"step_budget_ms\":null,"),
        }
        out.push_str(&format!("\"budget_overruns\":{},", self.budget_overruns));
        out.push_str(&format!("\"tenants_halted\":{},", self.tenants_halted));
        out.push_str(&format!("\"tenants_failed\":{},", self.tenants_failed));
        out.push_str(&format!(
            "\"model_summary\":{},",
            json::quote(&self.model_summary)
        ));
        out.push_str("\"per_tenant\":[");
        for (i, t) in self.per_tenant.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str(&format!("\"tenant\":{},", t.tenant));
            out.push_str(&format!("\"steps\":{},", t.steps));
            out.push_str(&format!(
                "\"wall_seconds\":{},",
                json::number(t.wall_seconds)
            ));
            out.push_str(&format!(
                "\"p50_step_seconds\":{},",
                json::number(t.p50_step_seconds)
            ));
            out.push_str(&format!(
                "\"p99_step_seconds\":{},",
                json::number(t.p99_step_seconds)
            ));
            out.push_str(&format!(
                "\"max_step_seconds\":{},",
                json::number(t.max_step_seconds)
            ));
            out.push_str(&format!("\"budget_overruns\":{},", t.budget_overruns));
            out.push_str(&format!("\"halted\":{},", t.halted));
            out.push_str(&format!("\"solve_errors\":{},", t.solve_errors));
            match t.score {
                Some((earned, total)) => out.push_str(&format!(
                    "\"score\":{{\"earned\":{earned},\"total\":{total}}},"
                )),
                None => out.push_str("\"score\":null,"),
            }
            match &t.journal_path {
                Some(path) => out.push_str(&format!("\"journal\":{},", json::quote(path))),
                None => out.push_str("\"journal\":null,"),
            }
            match &t.error {
                Some(error) => out.push_str(&format!("\"error\":{}", json::quote(error))),
                None => out.push_str("\"error\":null"),
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Runs `config.tenants` independent ranges from one shared compiled model
/// across a worker pool and aggregates the farm report.
///
/// Tenant instantiation or exercise failures never abort the farm; they are
/// recorded on the tenant's report (`error`) and counted in
/// [`FarmReport::tenants_failed`].
pub fn run_farm(model: Arc<CompiledModel>, config: &FarmConfig) -> FarmReport {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        config.threads
    }
    .min(config.tenants.max(1));

    if let Some(dir) = &config.out_dir {
        // Creating the sink directory up front keeps workers fs-race-free.
        if let Err(e) = std::fs::create_dir_all(dir) {
            let mut report = empty_report(&model, config, threads);
            report.tenants_failed = config.tenants;
            report.per_tenant = (0..config.tenants)
                .map(|tenant| failed_tenant(tenant, format!("cannot create out dir: {e}")))
                .collect();
            return report;
        }
    }

    let wall_start = std::time::Instant::now();
    let next_tenant = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<TenantReport>();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next_tenant = &next_tenant;
            let model = &model;
            scope.spawn(move || loop {
                let tenant = next_tenant.fetch_add(1, Ordering::Relaxed);
                if tenant >= config.tenants {
                    break;
                }
                // A send only fails if the receiver is gone, i.e. the farm
                // is already being torn down — nothing left to report to.
                let _ = tx.send(run_tenant(model, config, tenant));
            });
        }
    });
    drop(tx);

    let mut per_tenant: Vec<TenantReport> = rx.iter().collect();
    per_tenant.sort_by_key(|t| t.tenant);
    let wall_seconds = wall_start.elapsed().as_secs_f64();

    let mut all_steps: Vec<f64> = Vec::new();
    let mut steps_total = 0u64;
    let mut budget_overruns = 0u64;
    let mut tenants_halted = 0usize;
    let mut tenants_failed = 0usize;
    for t in &per_tenant {
        steps_total += t.steps;
        budget_overruns += t.budget_overruns;
        if t.halted {
            tenants_halted += 1;
        }
        if t.error.is_some() {
            tenants_failed += 1;
        }
    }
    // Re-collect every tenant's percentile inputs for the farm aggregate:
    // per-tenant reports carry their own percentiles, and the aggregate is
    // computed over (p50, p99, max are not mergeable) the raw samples the
    // workers shipped back.
    for t in &per_tenant {
        all_steps.extend_from_slice(&t.step_samples);
    }

    let completed = per_tenant.iter().filter(|t| t.error.is_none()).count();
    FarmReport {
        tenants: config.tenants,
        threads,
        sim_seconds: config.sim_seconds,
        wall_seconds,
        ranges_per_sec: if wall_seconds > 0.0 {
            completed as f64 / wall_seconds
        } else {
            0.0
        },
        steps_total,
        steps_per_sec: if wall_seconds > 0.0 {
            steps_total as f64 / wall_seconds
        } else {
            0.0
        },
        p50_step_seconds: percentile(&mut all_steps, 0.50),
        p99_step_seconds: percentile(&mut all_steps, 0.99),
        max_step_seconds: all_steps.iter().copied().fold(0.0, f64::max),
        step_budget_ms: config.step_budget_ms,
        budget_overruns,
        tenants_halted,
        tenants_failed,
        model_summary: model.summary(),
        per_tenant,
    }
}

/// Runs one tenant to completion and measures it. Never panics; failures
/// land on the report's `error` field.
fn run_tenant(model: &Arc<CompiledModel>, config: &FarmConfig, tenant: usize) -> TenantReport {
    let telemetry = Telemetry::new();
    let mut builder = RangeBuilder::from_model(model.clone())
        .telemetry(telemetry.clone())
        .fault_seed(config.base_fault_seed + tenant as u64);
    if let Some(interval) = config.interval {
        builder = builder.interval(interval);
    }
    let wall_start = std::time::Instant::now();
    let mut range = match builder.build() {
        Ok(range) => range,
        Err(e) => return failed_tenant(tenant, e.to_string()),
    };

    let mut budget_overruns = 0u64;
    let mut halted = false;
    let mut score = None;

    match &config.scenario {
        Some(scenario) => {
            // The exercise engine owns the step loop; budget accounting is
            // post-hoc from the range's retained step statistics.
            match run_exercise(&mut range, scenario) {
                Ok(report) => {
                    let s = report.score();
                    score = Some((s.earned, s.total));
                }
                Err(e) => return failed_tenant(tenant, format!("exercise: {e}")),
            }
            if let Some(budget_ms) = config.step_budget_ms {
                let budget = budget_ms as f64 / 1e3;
                budget_overruns = range
                    .step_stats()
                    .filter(|s| s.total_seconds > budget)
                    .count() as u64;
            }
        }
        None => {
            // Plain soak: drive the step loop directly so the budget can
            // halt a runaway tenant live.
            let end = range.now() + SimDuration::from_secs(config.sim_seconds);
            while range.now() < end {
                let step_start = std::time::Instant::now();
                range.step();
                if let Some(budget_ms) = config.step_budget_ms {
                    if step_start.elapsed().as_secs_f64() * 1e3 > budget_ms as f64 {
                        budget_overruns += 1;
                        if config.max_overruns > 0 && budget_overruns >= config.max_overruns {
                            halted = true;
                            break;
                        }
                    }
                }
            }
        }
    }
    let wall_seconds = wall_start.elapsed().as_secs_f64();

    let mut step_samples: Vec<f64> = range.step_stats().map(|s| s.total_seconds).collect();
    let report = TenantReport {
        tenant,
        steps: range.steps_total(),
        wall_seconds,
        p50_step_seconds: percentile(&mut step_samples, 0.50),
        p99_step_seconds: percentile(&mut step_samples, 0.99),
        max_step_seconds: step_samples.iter().copied().fold(0.0, f64::max),
        budget_overruns,
        halted,
        solve_errors: range.solve_errors_total(),
        score,
        journal_path: None,
        error: None,
        step_samples,
    };
    match write_tenant_sinks(config, tenant, &telemetry) {
        Ok(journal_path) => TenantReport {
            journal_path,
            ..report
        },
        Err(e) => TenantReport {
            error: Some(format!("sink: {e}")),
            ..report
        },
    }
}

/// Streams one finished tenant's journal and metrics to the output
/// directory; returns the journal path written (if any).
fn write_tenant_sinks(
    config: &FarmConfig,
    tenant: usize,
    telemetry: &Telemetry,
) -> std::io::Result<Option<String>> {
    let Some(dir) = &config.out_dir else {
        return Ok(None);
    };
    let journal = dir.join(format!("tenant-{tenant:04}.journal.jsonl"));
    std::fs::write(&journal, telemetry.journal_jsonl())?;
    let metrics = dir.join(format!("tenant-{tenant:04}.metrics.json"));
    std::fs::write(&metrics, telemetry.snapshot().to_json())?;
    Ok(Some(journal.to_string_lossy().into_owned()))
}

fn failed_tenant(tenant: usize, error: String) -> TenantReport {
    TenantReport {
        tenant,
        steps: 0,
        wall_seconds: 0.0,
        p50_step_seconds: 0.0,
        p99_step_seconds: 0.0,
        max_step_seconds: 0.0,
        budget_overruns: 0,
        halted: false,
        solve_errors: 0,
        score: None,
        journal_path: None,
        error: Some(error),
        step_samples: Vec::new(),
    }
}

fn empty_report(model: &CompiledModel, config: &FarmConfig, threads: usize) -> FarmReport {
    FarmReport {
        tenants: config.tenants,
        threads,
        sim_seconds: config.sim_seconds,
        wall_seconds: 0.0,
        ranges_per_sec: 0.0,
        steps_total: 0,
        steps_per_sec: 0.0,
        p50_step_seconds: 0.0,
        p99_step_seconds: 0.0,
        max_step_seconds: 0.0,
        step_budget_ms: config.step_budget_ms,
        budget_overruns: 0,
        tenants_halted: 0,
        tenants_failed: 0,
        model_summary: model.summary(),
        per_tenant: Vec::new(),
    }
}

/// Nearest-rank percentile over an unsorted sample set (sorts in place;
/// 0.0 for an empty set).
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((samples.len() as f64 - 1.0) * q).round() as usize;
    samples[rank.min(samples.len() - 1)]
}
