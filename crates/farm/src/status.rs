//! The farm's live observability endpoint: a zero-dependency HTTP server
//! exposing `/metrics` (Prometheus text exposition), `/status`
//! (deterministic JSON of per-tenant state), and `/healthz` over a plain
//! `std::net::TcpListener`.
//!
//! The server is deliberately tiny: one thread, blocking per-request I/O
//! with short timeouts, `Connection: close` semantics. It exists so a
//! running `sgml_processor serve --status-addr …` can be scraped by
//! Prometheus and watched by `sgml_processor watch` while thousands of
//! tenants soak — not to be a general web server.

use crate::FarmShared;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// How long one request may take to arrive / be answered before the
/// connection is abandoned. Keeps a stuck client from wedging the endpoint.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// How often the accept loop re-checks the farm's shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A bound (but not yet serving) status endpoint.
///
/// Binding is separated from serving so callers can bind port 0, read the
/// kernel-assigned [`local_addr`](StatusServer::local_addr), and only then
/// start the farm — the pattern the tests and the CLI's `--status-addr`
/// share.
#[derive(Debug)]
pub struct StatusServer {
    listener: TcpListener,
    addr: SocketAddr,
}

impl StatusServer {
    /// Binds the endpoint to `addr` (e.g. `127.0.0.1:9644`, or `…:0` for a
    /// kernel-assigned port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, bad address, …).
    pub fn bind(addr: &str) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(StatusServer { listener, addr })
    }

    /// The address the endpoint actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Serves requests until the farm signals shutdown. Runs on its own thread
/// inside `run_farm`'s scope.
pub(crate) fn serve(server: StatusServer, shared: &FarmShared) {
    if server.listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.is_shutdown() {
        match server.listener.accept() {
            Ok((stream, _)) => handle(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle(mut stream: TcpStream, shared: &FarmShared) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                shared.metrics_text(),
            ),
            "/status" => ("200 OK", "application/json", shared.status_json()),
            "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found\n".to_string(),
            ),
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Reads up to the end of the request headers and returns the request line.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let line = text.lines().next()?.trim().to_string();
    if line.is_empty() {
        None
    } else {
        Some(line)
    }
}

/// Fetches `path` from a status endpoint with a minimal HTTP/1.1 GET and
/// returns the response body. Shared by the `watch` dashboard and the tests.
///
/// # Errors
///
/// I/O errors propagate; a non-200 status or a malformed response maps to
/// [`std::io::ErrorKind::InvalidData`].
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response without header terminator"))?;
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(bad(&format!("unexpected status: {status_line}")));
    }
    Ok(body.to_string())
}
