//! The farm's live observability and lifecycle endpoint: a zero-dependency
//! HTTP server exposing `/metrics` (Prometheus text exposition), `/status`
//! (deterministic JSON of per-tenant state), and `/healthz` over a plain
//! `std::net::TcpListener`, plus the dynamic tenant lifecycle API —
//! `POST /tenants` (admit a tenant mid-run; 429 over capacity) and
//! `DELETE /tenants/<id>` (graceful drain).
//!
//! The server is deliberately tiny: one thread, blocking per-request I/O
//! with short timeouts, `Connection: close` semantics. It exists so a
//! running `sgml_processor serve --status-addr …` can be scraped by
//! Prometheus, watched by `sgml_processor watch`, and administered while
//! thousands of tenants soak — not to be a general web server. Hostile or
//! malformed input (oversized request heads, truncated headers, unknown
//! methods) is answered with a best-effort 4xx and the connection closed;
//! the accept loop itself never panics or wedges on a bad client.

use crate::{AdmitRejected, FarmShared};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// How long one request may take to arrive / be answered before the
/// connection is abandoned. Keeps a stuck client from wedging the endpoint.
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// How often the accept loop re-checks the farm's shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Largest request head (request line + headers) accepted before the
/// request is rejected as oversized.
const MAX_REQUEST_HEAD: usize = 8192;

const TEXT_PLAIN: &str = "text/plain; charset=utf-8";
const APP_JSON: &str = "application/json";

/// A bound (but not yet serving) status endpoint.
///
/// Binding is separated from serving so callers can bind port 0, read the
/// kernel-assigned [`local_addr`](StatusServer::local_addr), and only then
/// start the farm — the pattern the tests and the CLI's `--status-addr`
/// share.
#[derive(Debug)]
pub struct StatusServer {
    listener: TcpListener,
    addr: SocketAddr,
}

impl StatusServer {
    /// Binds the endpoint to `addr` (e.g. `127.0.0.1:9644`, or `…:0` for a
    /// kernel-assigned port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (address in use, bad address, …).
    pub fn bind(addr: &str) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(StatusServer { listener, addr })
    }

    /// The address the endpoint actually listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

/// Serves requests until the farm signals shutdown. Runs on its own thread
/// inside `run_farm`'s scope.
pub(crate) fn serve(server: StatusServer, shared: &FarmShared) {
    if server.listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.is_shutdown() {
        match server.listener.accept() {
            Ok((stream, _)) => handle(stream, shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// The outcome of reading one request head off a connection.
enum RequestHead {
    /// A complete head (terminated by a blank line) arrived.
    Complete(String),
    /// The head exceeded [`MAX_REQUEST_HEAD`] without terminating.
    Oversized,
    /// The client sent something but hung up (or timed out) mid-head.
    Truncated,
    /// The client connected and went away without sending a byte.
    Empty,
}

fn handle(mut stream: TcpStream, shared: &FarmShared) {
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let head = match read_request_head(&mut stream) {
        RequestHead::Complete(head) => head,
        RequestHead::Oversized => {
            respond(
                &mut stream,
                "431 Request Header Fields Too Large",
                TEXT_PLAIN,
                "request head too large\n",
            );
            return;
        }
        RequestHead::Truncated => {
            respond(
                &mut stream,
                "400 Bad Request",
                TEXT_PLAIN,
                "truncated request\n",
            );
            return;
        }
        RequestHead::Empty => return,
    };
    let request_line = head.lines().next().unwrap_or("").trim();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let Some(path) = parts.next() else {
        respond(
            &mut stream,
            "400 Bad Request",
            TEXT_PLAIN,
            "malformed request line\n",
        );
        return;
    };
    let (status, content_type, body) = route(method, path, shared);
    respond(&mut stream, status, content_type, &body);
}

/// Maps one parsed request onto a response triple.
fn route(method: &str, path: &str, shared: &FarmShared) -> (&'static str, &'static str, String) {
    let not_found = || ("404 Not Found", TEXT_PLAIN, "not found\n".to_string());
    match method {
        "GET" => match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                shared.metrics_text(),
            ),
            "/status" => ("200 OK", APP_JSON, shared.status_json()),
            "/healthz" => ("200 OK", TEXT_PLAIN, "ok\n".to_string()),
            _ => not_found(),
        },
        "POST" => match path {
            "/tenants" => match shared.admit() {
                Ok(tenant) => (
                    "201 Created",
                    APP_JSON,
                    format!("{{\"tenant\":{tenant}}}\n"),
                ),
                Err(AdmitRejected::AtCapacity) => (
                    "429 Too Many Requests",
                    TEXT_PLAIN,
                    "farm at tenant capacity\n".to_string(),
                ),
                Err(AdmitRejected::Closed) => (
                    "503 Service Unavailable",
                    TEXT_PLAIN,
                    "farm is finishing; admissions closed\n".to_string(),
                ),
            },
            _ => not_found(),
        },
        "DELETE" => match path.strip_prefix("/tenants/") {
            Some(id) => match id.parse::<usize>() {
                Ok(tenant) if shared.drain(tenant) => (
                    "202 Accepted",
                    APP_JSON,
                    format!("{{\"tenant\":{tenant},\"draining\":true}}\n"),
                ),
                Ok(_) => (
                    "404 Not Found",
                    TEXT_PLAIN,
                    "unknown or already-terminal tenant\n".to_string(),
                ),
                Err(_) => (
                    "400 Bad Request",
                    TEXT_PLAIN,
                    "tenant id must be a non-negative integer\n".to_string(),
                ),
            },
            None => not_found(),
        },
        _ => (
            "405 Method Not Allowed",
            TEXT_PLAIN,
            "method not allowed\n".to_string(),
        ),
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Reads one request head off the connection, classifying malformed input
/// instead of guessing at it.
fn read_request_head(stream: &mut TcpStream) -> RequestHead {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") {
                    return RequestHead::Complete(String::from_utf8_lossy(&buf).into_owned());
                }
                if buf.len() > MAX_REQUEST_HEAD {
                    return RequestHead::Oversized;
                }
            }
            Err(_) => break,
        }
    }
    if buf.is_empty() {
        RequestHead::Empty
    } else {
        RequestHead::Truncated
    }
}

/// Sends one bodyless HTTP/1.1 request to a status endpoint and returns the
/// numeric status code plus the response body. The building block for the
/// lifecycle API clients (`POST /tenants`, `DELETE /tenants/<id>`) and for
/// the hostile-input tests.
///
/// # Errors
///
/// I/O errors propagate; a response without a valid status line or header
/// terminator maps to [`std::io::ErrorKind::InvalidData`].
pub fn http_request(addr: &str, method: &str, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let bad = |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| bad("response without header terminator"))?;
    let status_line = head.lines().next().unwrap_or("");
    let code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| bad(&format!("malformed status line: {status_line}")))?;
    Ok((code, body.to_string()))
}

/// Fetches `path` from a status endpoint with a minimal HTTP/1.1 GET and
/// returns the response body. Shared by the `watch` dashboard and the tests.
///
/// # Errors
///
/// I/O errors propagate; a non-200 status or a malformed response maps to
/// [`std::io::ErrorKind::InvalidData`].
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let (code, body) = http_request(addr, "GET", path)?;
    if code != 200 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("unexpected status: {code}"),
        ));
    }
    Ok(body)
}
