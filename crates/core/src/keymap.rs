//! The canonical mapping between power-model element names and process-store
//! keys — the contract shared by the power-flow stepper (writer), the IED
//! Config XML (reader bindings), and the experiment harness.
//!
//! Power-model element names are scoped `"{substation}/{name}"` by the SSD
//! compiler; bus names are full connectivity-node paths
//! (`"S1/VL1/B1/CN1"`). Keys replace inner slashes with dots so that key
//! segments stay unambiguous.

use sgcr_kvstore::Keys;

/// Splits a scoped element name into `(substation, dotted-rest)`.
///
/// # Examples
///
/// ```
/// assert_eq!(sgcr_core::split_scoped("S1/VL1/B1/CN1"), ("S1".to_string(), "VL1.B1.CN1".to_string()));
/// assert_eq!(sgcr_core::split_scoped("CB1"), ("sys".to_string(), "CB1".to_string()));
/// ```
pub fn split_scoped(name: &str) -> (String, String) {
    match name.split_once('/') {
        Some((substation, rest)) => (substation.to_string(), rest.replace('/', ".")),
        None => ("sys".to_string(), name.to_string()),
    }
}

/// Key of a bus voltage magnitude, from the bus's path name.
pub fn bus_vm_key(bus_path: &str) -> String {
    let (substation, rest) = split_scoped(bus_path);
    Keys::bus_voltage(&substation, &rest)
}

/// Key of a bus voltage angle.
pub fn bus_va_key(bus_path: &str) -> String {
    let (substation, rest) = split_scoped(bus_path);
    Keys::bus_angle(&substation, &rest)
}

/// Key of a branch's active power (from side).
pub fn branch_p_key(branch_name: &str) -> String {
    let (substation, rest) = split_scoped(branch_name);
    Keys::branch_p(&substation, &rest)
}

/// Key of a branch's reactive power.
pub fn branch_q_key(branch_name: &str) -> String {
    let (substation, rest) = split_scoped(branch_name);
    Keys::branch_q(&substation, &rest)
}

/// Key of a branch's current (kA).
pub fn branch_i_key(branch_name: &str) -> String {
    let (substation, rest) = split_scoped(branch_name);
    Keys::branch_i(&substation, &rest)
}

/// Key of a branch's loading percentage.
pub fn branch_loading_key(branch_name: &str) -> String {
    let (substation, rest) = split_scoped(branch_name);
    Keys::branch_loading(&substation, &rest)
}

/// Key of a breaker's position feedback.
pub fn breaker_state_key(switch_name: &str) -> String {
    let (substation, rest) = split_scoped(switch_name);
    Keys::breaker_state(&substation, &rest)
}

/// Key of a breaker's command.
pub fn breaker_cmd_key(switch_name: &str) -> String {
    let (substation, rest) = split_scoped(switch_name);
    Keys::breaker_cmd(&substation, &rest)
}

/// Key of a source's (ext grid / generator) supplied active power.
pub fn source_p_key(name: &str) -> String {
    let (substation, rest) = split_scoped(name);
    format!("meas/{substation}/src/{rest}/p_mw")
}

/// Key of a load's actual demand.
pub fn load_p_key(name: &str) -> String {
    let (substation, rest) = split_scoped(name);
    format!("meas/{substation}/load/{rest}/p_mw")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping() {
        assert_eq!(bus_vm_key("S1/VL1/B1/CN1"), "meas/S1/bus/VL1.B1.CN1/vm_pu");
        assert_eq!(branch_p_key("S2/l7"), "meas/S2/branch/l7/p_mw");
        assert_eq!(breaker_cmd_key("S1/CB1"), "cmd/S1/cb/CB1/close");
        assert_eq!(breaker_state_key("S1/CB1"), "meas/S1/cb/CB1/closed");
        assert_eq!(source_p_key("S1/G1"), "meas/S1/src/G1/p_mw");
        assert_eq!(load_p_key("S1/LOAD2"), "meas/S1/load/LOAD2/p_mw");
    }
}
